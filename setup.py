"""Legacy setup shim.

Enables ``pip install -e .`` in offline environments that lack the
``wheel`` package (pip falls back to ``setup.py develop`` when PEP 517 is
disabled).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
