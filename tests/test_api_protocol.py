"""The unified repro.api front end: factory, protocol parity, let, io.

Exercises the backend registry, the shared FunctionBase surface
(including the strict constant coercion), simultaneous ``let``
substitution, the baseline package's new parity operations
(ite/restrict/compose/quantification/sat_one/support), BDD dump/load,
and cross-backend migration.
"""

import io as _io
import itertools
import random

import pytest

import repro
from repro.api import FunctionBase, backends, register_backend
from repro.bdd.manager import BDDManager
from repro.core.exceptions import BBDDError, OperatorError, VariableError
from repro.core.manager import BBDDManager
from repro.core.operations import op_from_name, OP_LE, OP_XNOR

BACKENDS = ["bbdd", "bdd"]
#: The in-core pair plus the external-memory backend: every sweep on the
#: shared FunctionBase/protocol surface runs identically on all three.
ALL_BACKENDS = BACKENDS + ["xmem"]


# ----------------------------------------------------------------------
# factory and registry
# ----------------------------------------------------------------------


def test_open_factory_dispatch():
    assert isinstance(repro.open("bbdd", vars=3), BBDDManager)
    assert isinstance(repro.open("bdd", vars=3), BDDManager)
    assert isinstance(repro.open("BDD", vars=["x"]), BDDManager)  # case-insensitive
    assert set(backends()) >= {"bbdd", "bdd"}


def test_open_unknown_backend_lists_registered():
    with pytest.raises(BBDDError, match="bbdd"):
        repro.open("zdd", vars=2)


def test_register_backend_plugs_into_factory():
    calls = []

    def factory(variables, **kwargs):
        calls.append((variables, kwargs))
        return BBDDManager(variables, **kwargs)

    register_backend("test-backend", factory)
    try:
        m = repro.open("test-backend", vars=2, gc_min_nodes=7)
        assert isinstance(m, BBDDManager)
        assert calls == [(2, {"gc_min_nodes": 7})]
    finally:
        from repro.api import _BACKENDS

        del _BACKENDS["test-backend"]


def test_third_party_backend_uses_protocol_paths():
    """let/migrate on an unknown backend name must not sniff node layouts."""
    from repro.io.migrate import migrate_forest

    class CustomManager(BBDDManager):
        backend = "custom"

    register_backend("custom", lambda v, **kw: CustomManager(v, **kw))
    try:
        m = repro.open("custom", vars=["a", "b", "c", "d"])
        f = m.add_expr("(a ^ b) | (c & ~d)")
        g = f.let({"a": "b", "b": "a", "d": m.add_expr("a & c")})
        assert g == m.add_expr("(b ^ a) | (c & ~(a & c))")
        dst = repro.open("bdd", vars=["a", "b", "c", "d"])
        moved = migrate_forest(f, dst)
        assert moved.truth_mask(["a", "b", "c", "d"]) == f.truth_mask(
            ["a", "b", "c", "d"]
        )
    finally:
        from repro.api import _BACKENDS

        del _BACKENDS["custom"]


def test_manager_let_rejects_foreign_function():
    from repro.core.exceptions import ForeignManagerError

    m1 = repro.open("bbdd", vars=["a"])
    m2 = repro.open("bbdd", vars=["a"])
    with pytest.raises(ForeignManagerError):
        m2.let({"a": True}, m1.var("a"))


def test_open_passes_table_backends():
    m = repro.open("bbdd", vars=4, unique_backend="cantor", computed_backend="cantor")
    f = m.add_expr("x0 ^ x1 ^ x2 ^ x3")
    assert f.sat_count() == 8


# ----------------------------------------------------------------------
# shared wrapper: coercion, operators, equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_constant_coercion_accepts_bool_and_01(backend):
    m = repro.open(backend, vars=["a"])
    a = m.var("a")
    assert (a & True) == a
    assert (a & 1) == a
    assert (a & 0).is_false
    assert (a | False) == a
    assert (a ^ 1) == ~a
    assert a.ite(1, 0) == a
    assert a.equivalent(a)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("junk", [2, -1, 1.0, 0.0, "1", None, [1]])
def test_constant_coercion_rejects_non_bits(backend, junk):
    """Only bool/int 0-or-1 coerce; number-likes that == 1 must not."""
    m = repro.open(backend, vars=["a"])
    a = m.var("a")
    with pytest.raises(TypeError):
        a & junk


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_foreign_manager_rejected(backend):
    from repro.core.exceptions import ForeignManagerError

    m1 = repro.open(backend, vars=["a"])
    m2 = repro.open(backend, vars=["a"])
    with pytest.raises(ForeignManagerError):
        m1.var("a") & m2.var("a")


def test_op_from_name_aliases_and_error():
    for alias in ("nand", "NOR", "Equiv", "imp", "implies", "xnor"):
        op_from_name(alias)
    assert op_from_name("equiv") == OP_XNOR
    assert op_from_name("imp") == OP_LE
    with pytest.raises(OperatorError, match="NAND"):
        op_from_name("frobnicate")
    with pytest.raises(BBDDError):
        op_from_name("frobnicate")
    with pytest.raises(ValueError):  # backward compatible
        op_from_name("frobnicate")


# ----------------------------------------------------------------------
# let: rename / restrict / compose, simultaneous semantics
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_let_rename_restrict_compose(backend):
    m = repro.open(backend, vars=["a", "b", "c"])
    f = m.add_expr("(a & b) | c")
    assert f.let({"a": "c"}) == m.add_expr("(c & b) | c")
    assert f.let({"c": False}) == m.add_expr("a & b")
    assert f.let({"c": 1}).is_true
    g = m.add_expr("a ^ b")
    assert f.let({"c": g}) == m.add_expr("(a & b) | (a ^ b)")


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_let_is_simultaneous(backend):
    m = repro.open(backend, vars=["a", "b"])
    f = m.add_expr("a & ~b")
    swapped = f.let({"a": "b", "b": "a"})
    assert swapped == m.add_expr("b & ~a")
    # Sequential compose would collapse to FALSE; simultaneous must not.
    assert not swapped.is_false


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_let_values_may_mention_substituted_vars(backend):
    m = repro.open(backend, vars=["a", "b"])
    f = m.add_expr("a ^ b")
    g = f.let({"a": m.add_expr("a & b"), "b": m.add_expr("a | b")})
    assert g == m.add_expr("(a & b) ^ (a | b)")


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_let_rejects_bad_values(backend):
    m = repro.open(backend, vars=["a", "b"])
    f = m.var("a")
    with pytest.raises(TypeError):
        f.let({"a": 2})
    with pytest.raises(VariableError):
        f.let({"nope": True})
    other = repro.open(backend, vars=["a"])
    from repro.core.exceptions import ForeignManagerError

    with pytest.raises(ForeignManagerError):
        f.let({"a": other.var("a")})


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_let_bulk_rename_is_linear(backend):
    """A 24-variable simultaneous rename must not cofactor-expand (2^24)."""
    n = 24
    names = []
    for i in range(n):
        names += [f"x{i}", f"y{i}", f"z{i}"]
    m = repro.open(backend, vars=names)
    f = m.add_expr(" & ".join(f"(x{i} <-> z{i})" for i in range(n)))
    g = f.let({f"x{i}": f"y{i}" for i in range(n)})
    assert g == m.add_expr(" & ".join(f"(y{i} <-> z{i})" for i in range(n)))


def test_to_expr_rejects_grammar_colliding_names():
    from repro.api.expr import ExprError

    m = repro.open("bbdd", vars=["TRUE", "x"])
    f = m.var("TRUE") & m.var("x")
    with pytest.raises(ExprError):
        f.to_expr()
    m2 = repro.open("bdd", vars=["a[0]"])
    with pytest.raises(ExprError):
        m2.var("a[0]").to_expr()


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_manager_level_let_and_to_expr(backend):
    m = repro.open(backend, vars=["a", "b"])
    f = m.add_expr("a & b")
    assert m.let({"a": "b"}, f) == m.var("b")
    assert m.add_expr(m.to_expr(f)) == f


# ----------------------------------------------------------------------
# BDD backend parity (the historical feature gap)
# ----------------------------------------------------------------------


def _truth_tables_agree(f, g, names):
    return f.truth_mask(names) == g.truth_mask(names)


def test_bdd_restrict_compose_quantify_against_bbdd():
    names = ["a", "b", "c", "d"]
    rng = random.Random(7)
    for _ in range(20):
        # Random 4-var function via a random expression over minterms.
        mask = rng.getrandbits(16) or 1
        terms = []
        for i in range(16):
            if (mask >> i) & 1:
                bits = [
                    (names[j] if (i >> j) & 1 else f"~{names[j]}") for j in range(4)
                ]
                terms.append("(" + " & ".join(bits) + ")")
        expr = " | ".join(terms)
        mb = repro.open("bbdd", vars=names)
        md = repro.open("bdd", vars=names)
        fb, fd = mb.add_expr(expr), md.add_expr(expr)
        var = rng.choice(names)
        value = bool(rng.getrandbits(1))
        assert fb.restrict(var, value).truth_mask(names) == fd.restrict(
            var, value
        ).truth_mask(names)
        assert fb.exists([var]).truth_mask(names) == fd.exists([var]).truth_mask(names)
        assert fb.forall([var]).truth_mask(names) == fd.forall([var]).truth_mask(names)
        g_expr = "a ^ d"
        assert fb.compose(var, mb.add_expr(g_expr)).truth_mask(names) == fd.compose(
            var, md.add_expr(g_expr)
        ).truth_mask(names)
        assert fb.support() == fd.support()
        assert fb.sat_count() == fd.sat_count()


def test_bdd_quantify_restrict_laws():
    m = repro.open("bdd", vars=5)
    rng = random.Random(3)
    for _ in range(10):
        minterms = [rng.randrange(32) for _ in range(8)]
        expr = " | ".join(
            "("
            + " & ".join(
                (f"x{j}" if (i >> j) & 1 else f"~x{j}") for j in range(5)
            )
            + ")"
            for i in minterms
        )
        f = m.add_expr(expr)
        var = rng.randrange(5)
        f1, f0 = f.restrict(var, True), f.restrict(var, False)
        assert f.exists([var]) == (f1 | f0)
        assert f.forall([var]) == (f1 & f0)
        assert m.var_name(var) not in f1.support()


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_sat_one_satisfies_on_both_backends(backend):
    rng = random.Random(11)
    names = [f"v{i}" for i in range(6)]
    for _ in range(20):
        m = repro.open(backend, vars=names)
        minterms = {rng.randrange(64) for _ in range(rng.randint(1, 5))}
        expr = " | ".join(
            "("
            + " & ".join(
                (names[j] if (i >> j) & 1 else f"~{names[j]}") for j in range(6)
            )
            + ")"
            for i in sorted(minterms)
        )
        f = m.add_expr(expr)
        witness = f.sat_one()
        assert witness is not None
        assert set(witness) >= f.support()
        assert f.evaluate(witness)
        assert (~m.true()).sat_one() is None


def test_bdd_ite_and_equivalent():
    m = repro.open("bdd", vars=["s", "a", "b"])
    s, a, b = m.var("s"), m.var("a"), m.var("b")
    f = s.ite(a, b)
    assert f == (s & a) | (~s & b)
    assert f.equivalent((s & a) | (~s & b))
    assert not f.equivalent(a)


# ----------------------------------------------------------------------
# BDD dump/load and cross-backend migration
# ----------------------------------------------------------------------


def test_bdd_dump_load_round_trip():
    from repro import io as rio

    names = ["a", "b", "c", "d"]
    m = repro.open("bdd", vars=names)
    f = m.add_expr("(a ^ b) | (c & d)")
    g = m.add_expr("a <-> c")
    data = rio.dumps_bdd(m, {"f": f, "g": g})
    m2, funcs = rio.loads_bdd(data)
    assert funcs["f"].truth_mask(names) == f.truth_mask(names)
    assert funcs["g"].truth_mask(names) == g.truth_mask(names)
    # Into an existing manager with a superset and different order.
    m3 = repro.open("bdd", vars=["d", "x", "c", "b", "a"])
    moved = m3.load(_io.BytesIO(data))
    assert moved["f"].truth_mask(names) == f.truth_mask(names)
    # Under a rename.
    m4 = repro.open("bdd", vars=["p", "q", "r", "s"])
    renamed = rio.loads_bdd(
        data, manager=m4, rename={"a": "p", "b": "q", "c": "r", "d": "s"}
    )[1]
    assert renamed["g"].truth_mask(["p", "q", "r", "s"]) == g.truth_mask(names)


def test_dump_kind_flags_are_enforced():
    from repro import io as rio
    from repro.io.format import FormatError

    mb = repro.open("bbdd", vars=["a", "b"])
    md = repro.open("bdd", vars=["a", "b"])
    bbdd_dump = rio.dumps(mb, {"f": mb.add_expr("a ^ b")})
    bdd_dump = rio.dumps_bdd(md, {"f": md.add_expr("a ^ b")})
    with pytest.raises(FormatError):
        rio.loads(bdd_dump)
    with pytest.raises(FormatError):
        rio.loads_bdd(bbdd_dump)


@pytest.mark.parametrize("src_backend", ALL_BACKENDS)
@pytest.mark.parametrize("dst_backend", ALL_BACKENDS)
def test_cross_backend_migration_matrix(src_backend, dst_backend):
    from repro.io.migrate import migrate_forest

    names = ["a", "b", "c", "d"]
    src = repro.open(src_backend, vars=names)
    dst = repro.open(dst_backend, vars=["d", "c", "b", "a", "extra"])
    f = src.add_expr("(a ^ b) | (c & ~d)")
    moved = migrate_forest({"f": f}, dst)["f"]
    assert isinstance(moved, FunctionBase)
    assert moved.manager is dst
    assert moved.truth_mask(names) == f.truth_mask(names)


# ----------------------------------------------------------------------
# the shared protocol drives both packages through one code path
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_network_build_generic_entry_point(backend):
    from repro.circuits import arith
    from repro.network.build import build
    from repro.network.network import LogicNetwork

    net = LogicNetwork("adder2")
    a = net.add_inputs(["a0", "a1"])
    b = net.add_inputs(["b0", "b1"])
    sums, cout = arith.ripple_adder(net, a, b)
    for i, s in enumerate(sums):
        net.set_output(f"s{i}", s)
    net.set_output("cout", cout)
    manager, functions = build(net, backend=backend)
    assert manager.backend == backend
    for av, bv in itertools.product(range(4), repeat=2):
        asg = {
            "a0": av & 1, "a1": (av >> 1) & 1,
            "b0": bv & 1, "b1": (bv >> 1) & 1,
        }
        total = (
            int(functions["s0"].evaluate(asg))
            | (int(functions["s1"].evaluate(asg)) << 1)
            | (int(functions["cout"].evaluate(asg)) << 2)
        )
        assert total == av + bv


@pytest.mark.parametrize("backend", BACKENDS)
def test_table1_single_backend_run(backend):
    from repro.circuits.registry import TABLE1_ROWS
    from repro.harness.table1 import render_table1, run_table1

    rows = [r for r in TABLE1_ROWS if r.name in ("C17", "parity")]
    summary = run_table1(rows=rows, full=False, backends=(backend,))
    assert summary["backends"] == [backend]
    assert all(f"{backend}_nodes" in r for r in summary["rows"])
    text = render_table1(summary)
    assert "single-backend" in text


@pytest.mark.parametrize("backend", BACKENDS)
def test_checkpoint_forest_round_trips_any_backend(backend, tmp_path):
    """save_forest/load_forest dispatch on the dump's backend flag."""
    from repro.io.checkpoint import CheckpointStore

    store = CheckpointStore(tmp_path)
    names = ["a", "b", "c"]
    m = repro.open(backend, vars=names)
    f = m.add_expr("(a ^ b) | c")
    store.save_forest("k", m, {"f": f})
    loaded_manager, funcs = store.load_forest("k")
    assert loaded_manager.backend == backend
    assert funcs["f"].truth_mask(names) == f.truth_mask(names)


def test_manager_sift_protocol():
    for backend in BACKENDS:
        names = [f"a{i}" for i in range(3)] + [f"b{i}" for i in range(3)]
        m = repro.open(backend, vars=names)
        f = m.true()
        for i in range(3):
            f = f & m.var(f"a{i}").xnor(m.var(f"b{i}"))
        mask = f.truth_mask(names)
        result = m.sift(converge=True)
        assert result.final_size <= result.initial_size
        assert f.truth_mask(names) == mask
