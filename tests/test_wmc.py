"""Weighted model counting: differential oracles over every backend.

Three ground truths anchor :mod:`repro.wmc`:

* the **counting identity** — uniform ``1/2`` weights on the support
  reduce the weighted count to ``sat_count / 2^|support|``;
* **brute-force enumeration** — exact-Fraction ``p_one`` must match a
  term-by-term sum over all assignments, bit for bit;
* the **restrict oracle** — each posterior marginal must satisfy
  ``p(v=1 | f=1) = p_v * p_one(f|v=1) / p_one(f)``.

Every property runs on the full backend matrix (bbdd/bdd/xmem) with
chain reduction both off and on where supported.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.api.base import ForeignManagerError
from repro.wmc import WmcError, p_one, resolve_weights, shannon_count, total_mass

from test_api_protocol import ALL_BACKENDS

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (backend, manager kwargs) — the matrix every oracle test sweeps.
VARIANTS = [
    ("bbdd", {}),
    ("bbdd", {"chain_reduce": True}),
    ("bdd", {}),
    ("bdd", {"chain_reduce": True}),
    ("xmem", {}),
]


def variant_managers(names):
    """Yield ``(label, manager)`` across the backend/chain matrix."""
    for backend, kwargs in VARIANTS:
        label = backend + ("+chain" if kwargs else "")
        yield label, repro.open(backend, vars=names, **kwargs)


@st.composite
def weighted_expr(draw, max_vars=6, max_depth=4):
    """A random expression plus random per-variable Fraction weights."""
    n = draw(st.integers(min_value=2, max_value=max_vars))
    names = [f"v{i}" for i in range(n)]

    def expr(depth):
        if depth >= max_depth or draw(st.booleans()):
            leaf = draw(st.integers(min_value=0, max_value=5))
            if leaf == 0:
                return "TRUE"
            if leaf == 1:
                return "FALSE"
            return draw(st.sampled_from(names))
        op = draw(st.sampled_from(["&", "|", "^", "->", "<->", "~"]))
        if op == "~":
            return f"~({expr(depth + 1)})"
        return f"({expr(depth + 1)} {op} {expr(depth + 1)})"

    weights = {
        name: Fraction(draw(st.integers(min_value=0, max_value=8)), 8)
        for name in names
        if draw(st.booleans())
    }
    return names, expr(0), weights


def brute_force_p_one(names, f, weights):
    """Exact ``p(f = 1)`` by summing the weight of every assignment."""
    probability = {
        name: weights.get(name, Fraction(1, 2)) for name in names
    }
    totals = Fraction(0)
    for code in range(1 << len(names)):
        assignment = {
            name: bool(code >> i & 1) for i, name in enumerate(names)
        }
        if f.evaluate(assignment):
            term = Fraction(1)
            for name in names:
                p = probability[name]
                term *= p if assignment[name] else 1 - p
            totals += term
    return totals


# ----------------------------------------------------------------------
# the counting identity
# ----------------------------------------------------------------------


@given(weighted_expr())
@settings(**_SETTINGS)
def test_uniform_weights_reduce_to_sat_count(case):
    """Uniform 1/2 weights on the support = ``sat_count / 2^|support|``."""
    names, text, _weights = case
    for label, manager in variant_managers(names):
        f = manager.add_expr(text)
        support = sorted(f.support())
        uniform = {name: Fraction(1, 2) for name in support}
        # sat_count ranges over all manager variables; each satisfying
        # assignment weighs 1/2^|support| (non-support weights are 1).
        expected = Fraction(f.sat_count(), 1 << len(support))
        got = f.weighted_count(uniform)
        assert got == expected, (label, text)
        # And with no weights at all the count is exactly sat_count.
        assert f.weighted_count() == f.sat_count(), (label, text)


# ----------------------------------------------------------------------
# brute-force enumeration
# ----------------------------------------------------------------------


@given(weighted_expr())
@settings(**_SETTINGS)
def test_p_one_exact_matches_enumeration(case):
    """Exact-Fraction ``p_one`` is bit-identical to full enumeration."""
    names, text, weights = case
    oracle = None
    for label, manager in variant_managers(names):
        f = manager.add_expr(text)
        if oracle is None:
            oracle = brute_force_p_one(names, f, weights)
        got = f.p_one(weights)
        assert isinstance(got, Fraction) or got in (0, 1)
        assert got == oracle, (label, text, weights)
        # Float mode tracks the exact value to rounding error.
        assert f.p_one(weights, exact=False) == pytest.approx(float(oracle))


def test_p_one_enumeration_larger_random_expressions():
    """Randomized ≤14-variable expressions against full enumeration."""
    rng = random.Random(20140807)
    names = [f"v{i}" for i in range(14)]
    for _trial in range(3):
        terms = []
        for _ in range(6):
            picked = rng.sample(names, rng.randint(2, 4))
            literals = [
                name if rng.random() < 0.5 else f"~{name}" for name in picked
            ]
            terms.append("(" + " & ".join(literals) + ")")
        text = " | ".join(terms)
        weights = {
            name: Fraction(rng.randint(0, 16), 16)
            for name in rng.sample(names, 7)
        }
        oracle = None
        for label, manager in variant_managers(names):
            f = manager.add_expr(text)
            if oracle is None:
                oracle = brute_force_p_one(names, f, weights)
            assert f.p_one(weights) == oracle, (label, text)


# ----------------------------------------------------------------------
# the restrict oracle for marginals
# ----------------------------------------------------------------------


@given(weighted_expr())
@settings(**_SETTINGS)
def test_marginals_match_restrict_oracle(case):
    """``p(v=1|f=1) = p_v * p_one(f|v=1) / p_one(f)`` per support var."""
    names, text, weights = case
    for label, manager in variant_managers(names):
        f = manager.add_expr(text)
        denominator = f.p_one(weights)
        if not denominator:
            with pytest.raises(WmcError, match="undefined"):
                f.marginals(weights)
            continue
        got = f.marginals(weights)
        assert sorted(got) == sorted(f.support())
        for name in got:
            p_v = weights.get(name, Fraction(1, 2))
            expected = p_v * p_one(f.restrict(name, True), weights) / denominator
            assert got[name] == expected, (label, text, name)


# ----------------------------------------------------------------------
# surface, fallback and error behavior
# ----------------------------------------------------------------------


def test_manager_and_function_spellings_agree():
    manager = repro.open("bbdd", vars=["a", "b", "c"])
    f = manager.add_expr("(a & b) | c")
    weights = {"a": Fraction(1, 4)}
    assert manager.p_one(f, weights) == f.p_one(weights)
    assert manager.weighted_count(f) == f.weighted_count()
    assert manager.marginals(f, weights) == f.marginals(weights)


def test_constants_and_sparse_support():
    for label, manager in variant_managers(["a", "b", "c", "d"]):
        assert manager.true().p_one() == 1, label
        assert manager.false().p_one() == 0, label
        assert manager.true().weighted_count() == 16, label
        # A function touching one of four variables: the others cancel.
        f = manager.var("c")
        assert f.p_one({"c": Fraction(1, 8)}) == Fraction(1, 8), label
        assert f.marginals() == {"c": Fraction(1)}, label


def test_shannon_count_fallback_matches_sweep():
    """The protocol-pure recursion equals the levelized sweep."""
    names = [f"v{i}" for i in range(5)]
    manager = repro.open("bbdd", vars=names, chain_reduce=True)
    f = manager.add_expr("(v0 ^ v1) | (v2 & v3 & ~v4)")
    weights = {"v0": Fraction(1, 3), "v3": Fraction(5, 7)}
    w1, w0, one, zero = resolve_weights(manager, weights, probabilities=True)
    direct = shannon_count(manager, f.edge, w1, w0, one, zero)
    assert direct == f.p_one(weights)
    assert total_mass(w1, w0, one) == 1


def test_weight_validation_errors():
    manager = repro.open("bbdd", vars=["a", "b"])
    f = manager.var("a")
    with pytest.raises(WmcError, match=r"\[0, 1\]"):
        f.p_one({"a": 2})
    with pytest.raises(WmcError, match=r"\[0, 1\]"):
        f.p_one({"a": Fraction(-1, 2)})
    other = repro.open("bbdd", vars=["a", "b"])
    with pytest.raises(ForeignManagerError):
        manager.p_one(other.var("a"))


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_wmc_counts_sweeps(backend):
    """Every query bumps the ``repro_wmc_sweeps_total`` counter."""
    from repro import obs
    from repro.obs.catalog import family

    manager = repro.open(backend, vars=["a", "b"])
    f = manager.add_expr("a | b")
    before = family(obs.REGISTRY, "repro_wmc_sweeps_total").value
    f.p_one()
    f.marginals()
    after = family(obs.REGISTRY, "repro_wmc_sweeps_total").value
    # p_one is one sweep; marginals is one denominator + |support| more.
    assert after - before == 1 + (1 + 2)
