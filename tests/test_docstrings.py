"""Docstring coverage gate for the documented packages.

The docs site generates its API reference from docstrings, so the
packages it renders — ``repro.api``, ``repro.io``, ``repro.par``,
``repro.serve`` —
carry a hard coverage gate: >= 90% of public definitions (modules,
classes, functions, methods) must have a docstring, mirroring
``interrogate --fail-under 90`` / ruff's D1 rules without needing
either tool at runtime.  Private names (leading underscore), magic
methods and ``__init__`` are exempt, like the ruff configuration in
``pyproject.toml``.
"""

import ast
import os

import pytest

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
GATED_PACKAGES = ("api", "io", "obs", "par", "reach", "serve", "wmc")
FAIL_UNDER = 90.0


def iter_definitions(path):
    """Yield ``(qualname, has_docstring)`` for the gated definitions."""
    with open(path, "r", encoding="utf-8") as fileobj:
        tree = ast.parse(fileobj.read(), filename=path)
    yield ("<module>", ast.get_docstring(tree) is not None)

    def walk(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = child.name
                if name.startswith("_"):
                    # Private definitions are exempt, and (like
                    # pydocstyle) privacy propagates to their members.
                    continue
                qualname = f"{prefix}{name}"
                yield (qualname, ast.get_docstring(child) is not None)
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, qualname + ".")
                # Functions' nested closures are implementation detail.

    yield from walk(tree, "")


def package_files(package):
    root = os.path.join(SRC, "repro", package)
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


@pytest.mark.parametrize("package", GATED_PACKAGES)
def test_docstring_coverage_gate(package):
    total = 0
    documented = 0
    missing = []
    for path in package_files(package):
        rel = os.path.relpath(path, SRC)
        for qualname, has_doc in iter_definitions(path):
            total += 1
            if has_doc:
                documented += 1
            else:
                missing.append(f"{rel}:{qualname}")
    assert total > 0, f"no definitions found under repro/{package}"
    coverage = 100.0 * documented / total
    assert coverage >= FAIL_UNDER, (
        f"repro.{package} docstring coverage {coverage:.1f}% "
        f"< {FAIL_UNDER}% ({documented}/{total}); missing: "
        + ", ".join(missing)
    )
