"""Hostile-input coverage for the io subsystem, and the io regressions.

* Truncation fuzz: a valid dump cut at *every* byte boundary must fail
  with :class:`~repro.io.format.FormatError` (never ``IndexError`` /
  ``struct.error`` / ``UnicodeDecodeError``) through all three readers
  (``binary.load``, ``bdd_binary.load``, ``stream.scan``) — including
  the empty-forest dump.
* The ``repro.io.migrate`` module-shadowing regression: importing the
  submodule must yield the module (exposing ``ProtocolMigrator``), with
  the renamed :func:`~repro.io.migrate.migrate_forest` re-exported from
  ``repro.io`` and the legacy spellings still callable (deprecated).
* Swapped ``dump``/``load`` argument validation raises
  :class:`~repro.core.exceptions.BBDDError` naming the expected order.
"""

import io as _io
import types
import warnings

import pytest

import repro
from repro import io as rio
from repro.core.exceptions import BBDDError
from repro.io.format import FormatError

NAMES = ["a", "b", "c"]

#: Exception types that must never escape the readers on corrupt input.
_FORBIDDEN = (IndexError, KeyError, UnicodeDecodeError)


def _bbdd_dump() -> bytes:
    m = repro.open("bbdd", vars=NAMES)
    return rio.dumps(m, {"f": m.add_expr("(a ^ b) | c"), "g": m.add_expr("a <-> c")})


def _bdd_dump() -> bytes:
    m = repro.open("bdd", vars=NAMES)
    return rio.dumps_bdd(m, {"f": m.add_expr("(a ^ b) | c")})


def _empty_dump() -> bytes:
    m = repro.open("bbdd", vars=NAMES)
    return rio.dumps(m, {})


#: A parity tower over five variables: chain reduction collapses it to
#: span nodes, so these dumps exercise FLAG_CHAIN alongside
#: FLAG_COMPRESSED (span records + delta refs + shared deflate).
_CHAIN_VARS = ["a", "b", "c", "d", "e"]
_CHAIN_EXPR = "a <-> (b <-> (c <-> (d <-> e)))"


def _bbdd_dump_compressed() -> bytes:
    m = repro.open("bbdd", vars=_CHAIN_VARS, chain_reduce=True)
    return rio.dumps(
        m,
        {"par": m.add_expr(_CHAIN_EXPR), "g": m.add_expr("(a ^ b) | e")},
        compress=True,
    )


def _bdd_dump_compressed() -> bytes:
    m = repro.open("bdd", vars=_CHAIN_VARS, chain_reduce=True)
    return rio.dumps_bdd(
        m,
        {"par": m.add_expr(_CHAIN_EXPR), "g": m.add_expr("(a ^ b) | e")},
        compress=True,
    )


def _assert_formaterror(fn, data):
    try:
        fn(data)
    except FormatError:
        return
    except _FORBIDDEN as exc:  # pragma: no cover - the failure being tested
        pytest.fail(f"non-FormatError escaped: {type(exc).__name__}: {exc}")
    except Exception as exc:  # pragma: no cover - the failure being tested
        pytest.fail(f"unexpected {type(exc).__name__}: {exc}")
    else:
        pytest.fail("truncated input loaded without error")


@pytest.mark.parametrize("make_dump", [_bbdd_dump, _empty_dump, _bbdd_dump_compressed])
def test_bbdd_load_rejects_every_truncation(make_dump):
    data = make_dump()
    # Sanity: the untruncated dump loads.
    rio.loads(data)
    for cut in range(len(data)):
        _assert_formaterror(rio.loads, data[:cut])


@pytest.mark.parametrize("make_dump", [_bdd_dump, _bdd_dump_compressed])
def test_bdd_load_rejects_every_truncation(make_dump):
    data = make_dump()
    rio.loads_bdd(data)
    for cut in range(len(data)):
        _assert_formaterror(rio.loads_bdd, data[:cut])


def test_compressed_dumps_carry_v2_flags():
    """The fuzz fixtures really hit the v2 chain+compressed code paths."""
    from repro.io.format import (
        FLAG_BDD,
        FLAG_CHAIN,
        FLAG_COMPRESSED,
        FORMAT_VERSION_CHAIN,
        read_header,
    )

    bbdd = read_header(_io.BytesIO(_bbdd_dump_compressed()))
    assert bbdd.version == FORMAT_VERSION_CHAIN
    assert bbdd.flags & FLAG_COMPRESSED and bbdd.flags & FLAG_CHAIN
    assert not bbdd.flags & FLAG_BDD
    bdd = read_header(_io.BytesIO(_bdd_dump_compressed()))
    assert bdd.version == FORMAT_VERSION_CHAIN
    assert bdd.flags & FLAG_COMPRESSED and bdd.flags & FLAG_BDD


def test_xmem_load_rejects_every_truncation():
    data = _bbdd_dump()
    for cut in range(len(data)):
        manager = repro.open("xmem", vars=NAMES)
        _assert_formaterror(lambda d, m=manager: m.load(_io.BytesIO(d)), data[:cut])


def test_scan_rejects_header_truncations():
    data = _bbdd_dump()
    full = rio.scan(_io.BytesIO(data))
    assert full.node_count > 0
    for cut in range(len(data)):
        clipped = data[:cut]
        try:
            rio.scan(_io.BytesIO(clipped))
        except FormatError:
            continue
        except _FORBIDDEN as exc:  # pragma: no cover
            pytest.fail(f"scan leaked {type(exc).__name__} at cut {cut}")
        # scan only validates the header + level directory; cuts inside
        # the roots trailer are legitimately invisible to it.
        assert cut > len(data) - 16, f"scan accepted deep truncation at {cut}"


@pytest.mark.parametrize(
    "make_dump, loader",
    [(_bbdd_dump_compressed, "loads"), (_bdd_dump_compressed, "loads_bdd")],
)
def test_compressed_payload_byte_flips_never_leak_raw_errors(make_dump, loader):
    """Corrupting deflate data must surface as FormatError, not zlib.error.

    Flips are restricted to the payload region (a flipped *header* byte
    can legitimately fail in name decoding, which is out of scope here).
    A flip that still decodes to a well-formed forest is acceptable.
    """
    from repro.io.format import read_header

    load = getattr(rio, loader)
    data = make_dump()
    buf = _io.BytesIO(data)
    read_header(buf)
    start = buf.tell()
    for i in range(start, len(data)):
        flipped = data[:i] + bytes([data[i] ^ 0xFF]) + data[i + 1 :]
        try:
            load(flipped)
        except BBDDError:
            continue
        except Exception as exc:  # pragma: no cover - the failure under test
            pytest.fail(f"flip at {i} leaked {type(exc).__name__}: {exc}")


def test_unsupported_version_names_file_and_supported_range(tmp_path):
    path = tmp_path / "future.bbdd"
    # Magic + varint version 9: a container from a future writer.
    path.write_bytes(b"BBDD\x09" + b"\x00" * 16)
    with pytest.raises(FormatError) as excinfo:
        rio.load(str(path))
    message = str(excinfo.value)
    assert "future.bbdd" in message
    assert "unsupported format version 9" in message
    assert "supports versions 1, 2" in message


def test_garbage_and_wrong_magic_rejected():
    for junk in (b"", b"\x00", b"BBD", b"NOPE" + b"\x00" * 64, b"\xff" * 32):
        _assert_formaterror(rio.loads, junk)
        _assert_formaterror(rio.loads_bdd, junk)
        _assert_formaterror(lambda d: rio.scan(_io.BytesIO(d)), junk)


def test_empty_forest_round_trips():
    data = _empty_dump()
    manager, functions = rio.loads(data)
    assert functions == {}
    info = rio.scan(_io.BytesIO(data))
    assert info.node_count == 0 and info.header.num_roots == 0


# ----------------------------------------------------------------------
# regression: repro.io.migrate is a module again (the shadowing bug)
# ----------------------------------------------------------------------


def test_import_repro_io_migrate_is_a_module():
    import repro.io.migrate as migrate_module

    assert isinstance(migrate_module, types.ModuleType)
    assert hasattr(migrate_module, "ProtocolMigrator")
    assert hasattr(migrate_module, "Migrator")
    assert hasattr(migrate_module, "migrate_forest")
    # The package attribute is the module too, not the old function.
    assert rio.migrate is migrate_module
    # And the convenience function is re-exported under its new name.
    assert rio.migrate_forest is migrate_module.migrate_forest
    assert rio.ProtocolMigrator is migrate_module.ProtocolMigrator


def test_legacy_migrate_spellings_still_call_through():
    src = repro.open("bbdd", vars=["a", "b"])
    dst = repro.open("bbdd", vars=["a", "b"])
    f = src.add_expr("a ^ b")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        via_module_call = rio.migrate(f, dst)  # calling the module object
        via_function = rio.migrate.migrate(f, dst)  # the deprecated function
    assert via_module_call == via_function
    assert sum(
        issubclass(w.category, DeprecationWarning) for w in caught
    ) >= 2


# ----------------------------------------------------------------------
# swapped dump/load arguments raise BBDDError naming the order
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["bbdd", "bdd", "xmem"])
def test_swapped_dump_arguments_raise_bbdd_error(backend, tmp_path):
    m = repro.open(backend, vars=["a", "b"])
    f = m.add_expr("a & b")
    path = str(tmp_path / "forest.bbdd")
    with pytest.raises(BBDDError, match=r"dump\(functions, target\)"):
        m.dump(path, [f])
    with pytest.raises(BBDDError, match="target"):
        m.dump([f], [f])
    with pytest.raises(BBDDError, match="load"):
        m.load([f])
    # The right order still works.
    m.dump({"f": f}, path)
    assert "f" in m.load(path)


def test_module_level_dump_load_validation(tmp_path):
    m = repro.open("bbdd", vars=["a"])
    f = m.var("a")
    with pytest.raises(BBDDError, match="swapped"):
        rio.dump(m, str(tmp_path / "x.bbdd"), [f])
    with pytest.raises(BBDDError, match="load"):
        rio.load(f)
