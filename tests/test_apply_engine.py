"""Iterative engine + automatic GC: deep chains, dead counting, native ops.

These tests pin the PR-2 tentpole guarantees:

* the whole operation engine (apply, derived ops, traversals) is
  iterative — deep chains work under a *lowered* Python recursion limit,
  and no ``sys.setrecursionlimit`` call remains under ``src/``;
* automatic garbage collection keeps incremental chain builds bounded
  (peak stored nodes stays within a small multiple of the result size);
* the dead-node count is maintained incrementally (O(1) ``dead_count``)
  and stays exact through apply/GC/reordering;
* ``sat_one`` resolves couple constraints against the partner actually
  on the path (the sparse-support bugfix) and ``evaluate`` rejects
  assignments that miss support variables.
"""

import pathlib
import sys

import pytest

from repro.core import BBDDManager
from repro.core.exceptions import VariableError
from repro.core.reorder import from_truth_table, reorder_to
from repro.core.truthtable import TruthTable


@pytest.fixture
def low_recursion_limit():
    """Clamp the recursion limit to prove no operation recurses on depth."""
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(5_000)
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


def _parity_chain(manager, n):
    f = manager.var(0)
    for i in range(1, n):
        f = f ^ manager.var(i)
    return f


# ---------------------------------------------------------------------------
# deep-chain regression: iterative engine + auto-GC ceiling
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_parity_2000_chain_under_low_recursion_limit(low_recursion_limit):
    n = 2000
    m = BBDDManager(n)
    f = _parity_chain(m, n)
    final = f.node_count()
    assert final == n // 2
    # Auto-GC must have reclaimed the dead intermediates: the manager
    # never held anywhere near the ~n^2/4 nodes the build creates.
    assert m.peak_nodes < 5 * final
    assert m.size() < 5 * final
    assert m.auto_gc_runs > 0
    # Deep traversals are iterative too.
    assert f.sat_count() == 1 << (n - 1)
    witness = f.sat_one()
    assert f.evaluate(witness)
    m.check_invariants()


@pytest.mark.slow
def test_deep_derived_ops_are_iterative(low_recursion_limit):
    n = 2000
    m = BBDDManager(n)
    f = _parity_chain(m, n)
    # restrict: parity | x0=1 == complement of parity over the rest.
    r = f.restrict(0, True)
    rest = _parity_chain_from(m, 1, n)
    assert r == ~rest
    # compose x0 <- x1 makes the first couple cancel.
    c = f.compose(0, m.var(1))
    assert c == _parity_chain_from(m, 2, n)
    # quantification: parity has both cofactors satisfiable everywhere.
    assert f.exists([0, 1]).is_true
    assert f.forall([0]).is_false
    # ite over deep operands.
    g = f.ite(m.true(), m.false())
    assert g == f
    m.check_invariants()


def _parity_chain_from(manager, start, n):
    f = manager.var(start)
    for i in range(start + 1, n):
        f = f ^ manager.var(i)
    return f


def test_no_recursion_limit_hack_left_in_src():
    src = pathlib.Path(__file__).resolve().parent.parent / "src"
    offenders = [
        p
        for p in src.rglob("*.py")
        if "setrecursionlimit" in p.read_text(encoding="utf-8")
    ]
    assert offenders == []


# ---------------------------------------------------------------------------
# automatic GC and incremental dead counting
# ---------------------------------------------------------------------------


def test_dead_count_is_incremental_and_exact():
    m = BBDDManager(8)
    fs = [
        m.function(from_truth_table(m, mask))
        for mask in (0xDEAD_BEEF, 0x1234_5678, 0x0F0F_F0F0)
    ]
    assert m.dead_count() == m._scan_dead()
    del fs[1]
    assert m.dead_count() == m._scan_dead()
    assert m.dead_count() > 0  # the dropped handle cascaded
    reclaimed = m.gc()
    assert reclaimed > 0
    assert m.dead_count() == 0 == m._scan_dead()
    m.check_invariants()


def test_auto_gc_triggers_on_threshold():
    m = BBDDManager(64, gc_min_nodes=64, gc_threshold=0.25)
    f = m.var(0)
    for i in range(1, 64):
        f = f ^ m.var(i)
        f = f | (m.var(i - 1) & m.var(i))
    assert m.auto_gc_runs > 0
    assert m.dead_count() <= max(m.gc_min_nodes, m.size())
    m.check_invariants()


def test_auto_gc_disabled_accumulates_dead():
    m = BBDDManager(64, auto_gc=False, gc_min_nodes=1)
    f = m.var(0)
    for i in range(1, 64):
        f = f ^ m.var(i)
    assert m.auto_gc_runs == 0
    assert m.dead_count() > 0  # intermediates were never reclaimed
    assert m.dead_count() == m._scan_dead()
    m.check_invariants()


def test_defer_gc_blocks_collection_and_exit_keeps_bare_edges():
    m = BBDDManager(32, gc_min_nodes=1, gc_threshold=0.01)
    with m.defer_gc():
        acc = m.literal_edge(0)
        for i in range(1, 32):
            acc = m.xor_edges(acc, m.literal_edge(i))
        assert m.auto_gc_runs == 0
    # Exiting must NOT collect (the bare result would be swept before the
    # caller can reference it); the armed collection runs at the next
    # operation boundary instead.
    assert m.edge_node(acc).ref >= 0
    f = m.function(acc)
    _g = f & m.var(0)  # next op: collection may now run, f is protected
    assert f.evaluate({m.var_name(i): i == 0 for i in range(32)})
    m.check_invariants()


def test_identity_flag_recovers_after_swap_back():
    from repro.core.reorder import swap_adjacent

    m = BBDDManager(6)
    _f = m.var(0) ^ m.var(3)
    assert m.order.is_identity
    swap_adjacent(m, 1)
    assert not m.order.is_identity
    swap_adjacent(m, 1)
    # The misplaced-variable counter restores the flag exactly, so the
    # terminal-substitution fast path re-enables after a round trip.
    assert m.order.is_identity


@pytest.mark.slow
def test_migrate_deep_chain_is_iterative(low_recursion_limit):
    from repro.io.migrate import migrate_forest

    n = 2000
    src = BBDDManager(n)
    f = _parity_chain(src, n)
    dst = BBDDManager(n)
    moved = migrate_forest(f, dst)
    assert moved.node_count() == n // 2
    assert moved.sat_count() == 1 << (n - 1)
    dst.check_invariants()


def test_table_stats_exposes_gc_fields():
    m = BBDDManager(8)
    _f = m.var(0) & m.var(3)
    stats = m.table_stats()
    for field in ("dead", "peak_nodes", "gc_runs", "auto_gc_runs", "gc_threshold"):
        assert field in stats
    assert stats["dead"] == m.dead_count()


def test_dead_count_exact_after_reorder():
    m = BBDDManager(5)
    f = m.function(from_truth_table(m, 0b_1001_0110_0101_1010_1100_0011_1111_0000))
    g = m.var(0) & m.var(3)
    del g
    reorder_to(m, [4, 2, 0, 3, 1])
    assert m.dead_count() == m._scan_dead()
    m.check_invariants()
    assert f.node_count() > 0


# ---------------------------------------------------------------------------
# sat_one sparse-support bugfix + evaluate support checking
# ---------------------------------------------------------------------------


def test_sat_one_sparse_support_issue_repro():
    # The exact repro from the issue: support {x0, x2, x4} skips every
    # other variable, so the old resolution against the *global* couple
    # partner produced an unsatisfying assignment.
    m = BBDDManager(6)
    f = m.var(0) & ~m.var(2) & m.var(4)
    witness = f.sat_one()
    assert witness is not None
    assert f.evaluate(witness)
    assert witness["x0"] is True
    assert witness["x2"] is False
    assert witness["x4"] is True


def test_sat_one_covers_support_and_satisfies():
    m = BBDDManager(7)
    cases = [
        m.var(1) ^ m.var(5),
        (m.var(0) & m.var(3)) | m.var(6),
        (m.var(2) | ~m.var(4)) & (m.var(0) ^ m.var(6)),
        ~m.var(1) & ~m.var(3) & ~m.var(5),
    ]
    for f in cases:
        witness = f.sat_one()
        assert witness is not None
        # The witness names every support variable, so evaluate's strict
        # support check passes and the function is satisfied.
        assert set(witness) >= f.support()
        assert f.evaluate(witness)


def test_sat_one_unsat_and_constants():
    m = BBDDManager(4)
    assert m.false().sat_one() is None
    assert m.true().sat_one() == {}
    f = m.var(1) & ~m.var(1)
    assert f.sat_one() is None


def test_evaluate_raises_on_missing_support_variable():
    m = BBDDManager(6)
    f = m.var(0) & ~m.var(2) & m.var(4)
    with pytest.raises(VariableError, match="x2"):
        f.evaluate({"x0": 1, "x4": 1})
    # Non-support variables may be omitted freely...
    assert f.evaluate({"x0": 1, "x2": 0, "x4": 1})
    # ...and supplying them is also fine.
    assert not f.evaluate({"x0": 1, "x1": 1, "x2": 1, "x3": 0, "x4": 1, "x5": 1})


def test_evaluate_constant_needs_no_assignment():
    m = BBDDManager(3)
    assert m.true().evaluate({})
    assert not m.false().evaluate({})


# ---------------------------------------------------------------------------
# terminal-substitution fast path (disjoint-ordered operand supports)
# ---------------------------------------------------------------------------


def test_disjoint_support_operands_all_ops_exhaustive():
    """Operands with f's support strictly above g's hit the splice fast
    path; sweep every operand pair x all 16 operators against the
    truth-table oracle, including complemented edges into the bottom
    literal (where the complement must fold into the operator)."""
    from repro.core.operations import ALL_OPS, op_name

    n = 4
    for fa_mask in range(1, 16):  # f over (x0, x1)
        for gb_mask in range(1, 16):  # g over (x2, x3)
            ma = mb = 0
            for i in range(16):
                if (fa_mask >> (i & 3)) & 1:
                    ma |= 1 << i
                if (gb_mask >> ((i >> 2) & 3)) & 1:
                    mb |= 1 << i
            m = BBDDManager(n)
            f = m.function(from_truth_table(m, ma))
            g = m.function(from_truth_table(m, mb))
            want_f = TruthTable(n, ma)
            want_g = TruthTable(n, mb)
            for op in ALL_OPS:
                got = f.apply(g, op)
                want = want_f.apply(want_g, op)
                assert got.truth_mask(range(n)) == want.mask, (
                    f"{op_name(op)} on f={fa_mask:04b}, g={gb_mask:04b}"
                )
                # Canonicity of the spliced result.
                assert got == m.function(from_truth_table(m, want.mask))
            m.check_invariants()


def test_disjoint_support_other_direction_and_deep():
    # g's support strictly above f's (direction B of the fast path).
    m = BBDDManager(6)
    f = m.var(4) & ~m.var(5)
    g = (m.var(0) ^ m.var(1)) | m.var(2)
    got = g & f
    want = TruthTable(6, g.truth_mask(range(6)) & f.truth_mask(range(6)))
    assert got.truth_mask(range(6)) == want.mask


# ---------------------------------------------------------------------------
# engine semantics stay canonical through GC churn
# ---------------------------------------------------------------------------


def test_gc_churn_preserves_semantics_and_canonicity():
    n = 5
    m = BBDDManager(n, gc_min_nodes=1, gc_threshold=0.05)
    mask_a = 0b_1110_0101_1010_0110_0011_1100_0101_1001
    mask_b = 0b_0101_0101_1111_0000_1100_0011_1010_1010
    fa = m.function(from_truth_table(m, mask_a))
    fb = m.function(from_truth_table(m, mask_b))
    for _ in range(10):
        tmp = (fa & fb) ^ (fa | ~fb)
        del tmp
    got = (fa ^ fb).truth_mask(range(n))
    want = TruthTable(n, mask_a).apply(TruthTable(n, mask_b), 0b0110).mask
    assert got == want
    # Canonicity: rebuilding the same function hits the same edge.
    rebuilt = m.function(from_truth_table(m, mask_a))
    assert rebuilt == fa
    m.check_invariants()
