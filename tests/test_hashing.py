"""Cantor pairing and adaptive hash-policy tests (Sec. IV-A3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import hashing


@given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=10**9))
def test_cantor_bijection(i, j):
    assert hashing.cantor_unpair(hashing.cantor(i, j)) == (i, j)


def test_cantor_known_values():
    # C(0,0)=0, C(1,0)=2, C(0,1)=1 (the standard enumeration).
    assert hashing.cantor(0, 0) == 0
    assert hashing.cantor(0, 1) == 1
    assert hashing.cantor(1, 0) == 2


@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=6))
def test_cantor_tuple_stable_and_bounded(values):
    h = hashing.cantor_tuple(values)
    assert 0 <= h < hashing.DEFAULT_PRIME
    assert h == hashing.cantor_tuple(values)


def test_cantor_tuple_variants_differ_somewhere():
    values = (3, 1, 4, 1, 5)
    assert hashing.cantor_tuple(values) != hashing.cantor_tuple_reversed(values)


def test_primes_are_prime():
    def is_prime(n):
        if n < 2:
            return False
        k = 2
        while k * k <= n:
            if n % k == 0:
                return False
            k += 1
        return True

    for p in hashing.PRIME_LADDER:
        assert is_prime(p), p


def test_controller_grows_under_load():
    ctrl = hashing.AdaptiveHashController()
    for _ in range(ctrl.EVALUATION_PERIOD):
        ctrl.record_access(5)  # long probes
    assert ctrl.should_evaluate()
    decision = ctrl.decide(table_size=64, entry_count=63)
    assert decision == "grow"


def test_controller_rehash_when_growth_stalls():
    ctrl = hashing.AdaptiveHashController()
    # First evaluation establishes a metric; second with no improvement and
    # low load must trigger a hash-function change.
    for _ in range(ctrl.EVALUATION_PERIOD):
        ctrl.record_access(5)
    assert ctrl.decide(table_size=1024, entry_count=10) in ("grow", "rehash")
    for _ in range(ctrl.EVALUATION_PERIOD):
        ctrl.record_access(6)
    assert ctrl.decide(table_size=2048, entry_count=10) == "rehash"
    before = (ctrl.variant, ctrl.prime)
    ctrl.next_hash_function()
    assert (ctrl.variant, ctrl.prime) != before


def test_hash_tuple_in_range():
    ctrl = hashing.AdaptiveHashController()
    for size in (16, 1024):
        for values in ((1, 2, 3), (0,), (9, 9, 9, 9)):
            assert 0 <= ctrl.hash_tuple(values, size) < size
