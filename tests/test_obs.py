"""Tests of :mod:`repro.obs` — metrics, tracing, exposition, wiring."""

import json
import urllib.request

import pytest

import repro
from repro import obs
from repro.obs import promtext, trace
from repro.obs.registry import (
    MetricsRegistry,
    ObsError,
    log_buckets,
    merge_snapshots,
    snapshot_quantile,
)


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------


def test_counter_semantics():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", "Requests.")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ObsError):
        c.inc(-1)


def test_gauge_semantics():
    reg = MetricsRegistry()
    g = reg.gauge("depth", "Depth.")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13
    g.set(-4)
    assert g.value == -4


def test_histogram_semantics():
    reg = MetricsRegistry()
    h = reg.histogram("lat", "Latency.", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        h.observe(value)
    sample = reg.snapshot()["lat"]["samples"][0]
    assert sample["counts"] == [1, 1, 1, 1]  # one per bucket + overflow
    assert sample["count"] == 4
    assert sample["sum"] == pytest.approx(555.5)


def test_histogram_rejects_bad_buckets():
    reg = MetricsRegistry()
    with pytest.raises(ObsError):
        reg.histogram("bad", "x", buckets=(5.0, 1.0))


def test_labels_create_distinct_children():
    reg = MetricsRegistry()
    c = reg.counter("ops_total", "Ops.", labelnames=("backend",))
    c.labels(backend="bbdd").inc(3)
    c.labels(backend="bdd").inc(1)
    values = {
        s["labels"]["backend"]: s["value"]
        for s in reg.snapshot()["ops_total"]["samples"]
    }
    assert values == {"bbdd": 3, "bdd": 1}
    with pytest.raises(ObsError):
        c.labels(wrong="x")


def test_get_or_create_rejects_kind_and_label_mismatch():
    reg = MetricsRegistry()
    reg.counter("thing_total", "x", labelnames=("a",))
    assert reg.counter("thing_total", "x", labelnames=("a",)) is not None
    with pytest.raises(ObsError):
        reg.gauge("thing_total", "x")
    with pytest.raises(ObsError):
        reg.counter("thing_total", "x", labelnames=("b",))


def test_log_buckets_are_increasing():
    buckets = log_buckets(1e-3, 1e3)
    assert all(a < b for a, b in zip(buckets, buckets[1:]))
    assert buckets[0] == pytest.approx(1e-3)
    assert buckets[-1] == pytest.approx(1e3)


# ----------------------------------------------------------------------
# snapshot merging
# ----------------------------------------------------------------------


def _sample_registry(counter, hist_values):
    reg = MetricsRegistry()
    reg.counter("c_total", "C.", labelnames=("k",)).labels(k="x").inc(counter)
    h = reg.histogram("h", "H.", buckets=(1.0, 10.0))
    for value in hist_values:
        h.observe(value)
    return reg.snapshot()


def test_merge_sums_counters_and_buckets():
    merged = merge_snapshots(
        _sample_registry(2, [0.5]), _sample_registry(3, [5.0, 50.0])
    )
    assert merged["c_total"]["samples"][0]["value"] == 5
    hist = merged["h"]["samples"][0]
    assert hist["counts"] == [1, 1, 1]
    assert hist["count"] == 3


def test_merge_is_associative():
    parts = [
        _sample_registry(1, [0.5]),
        _sample_registry(2, [5.0]),
        _sample_registry(4, [50.0, 0.1]),
    ]
    left = merge_snapshots(merge_snapshots(parts[0], parts[1]), parts[2])
    right = merge_snapshots(parts[0], merge_snapshots(parts[1], parts[2]))
    assert left == right == merge_snapshots(*parts)


def test_merge_rejects_bucket_layout_mismatch():
    reg_a = MetricsRegistry()
    reg_a.histogram("h", "H.", buckets=(1.0, 10.0)).observe(2.0)
    reg_b = MetricsRegistry()
    reg_b.histogram("h", "H.", buckets=(2.0, 20.0)).observe(2.0)
    with pytest.raises(ObsError):
        merge_snapshots(reg_a.snapshot(), reg_b.snapshot())


def test_snapshot_quantile_interpolates():
    reg = MetricsRegistry()
    h = reg.histogram("h", "H.", buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 3.0, 3.5):
        h.observe(value)
    entry = reg.snapshot()["h"]
    assert 0.0 < snapshot_quantile(entry, 0.25) <= 1.0
    assert 2.0 < snapshot_quantile(entry, 0.9) <= 4.0


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------


def test_span_noop_when_disabled():
    trace.disable()
    assert obs.span("anything") is obs.span("else_")  # the shared no-op


def test_span_records_nested_names():
    reg_before = {
        s["labels"]["span"]
        for s in obs.REGISTRY.snapshot()
        .get("repro_span_total", {})
        .get("samples", ())
    }
    with trace.tracing():
        with obs.span("outer", backend="bbdd"):
            with obs.span("inner"):
                pass
    spans = {
        s["labels"]["span"]: s["value"]
        for s in obs.REGISTRY.snapshot()["repro_span_total"]["samples"]
    }
    assert spans["outer[backend=bbdd]"] >= 1
    assert spans["outer[backend=bbdd].inner"] >= 1
    assert reg_before is not None  # silence lint on the guard variable


def test_tracing_context_restores_flag():
    trace.disable()
    with trace.tracing():
        assert trace.enabled()
        with trace.tracing(False):
            assert not trace.enabled()
        assert trace.enabled()
    assert not trace.enabled()


# ----------------------------------------------------------------------
# Prometheus text rendering
# ----------------------------------------------------------------------

GOLDEN = """\
# HELP demo_latency_seconds Latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{op="load",le="1"} 1
demo_latency_seconds_bucket{op="load",le="10"} 2
demo_latency_seconds_bucket{op="load",le="+Inf"} 3
demo_latency_seconds_sum{op="load"} 105.5
demo_latency_seconds_count{op="load"} 3
# HELP demo_queue_depth Depth "now".
# TYPE demo_queue_depth gauge
demo_queue_depth 7
# HELP demo_requests_total Requests.
# TYPE demo_requests_total counter
demo_requests_total{backend="bbdd"} 5
"""


def test_prometheus_text_golden():
    reg = MetricsRegistry()
    reg.counter(
        "demo_requests_total", "Requests.", labelnames=("backend",)
    ).labels(backend="bbdd").inc(5)
    reg.gauge("demo_queue_depth", 'Depth "now".').set(7)
    h = reg.histogram(
        "demo_latency_seconds", "Latency.", labelnames=("op",),
        buckets=(1.0, 10.0),
    )
    for value in (0.5, 5.0, 100.0):
        h.labels(op="load").observe(value)
    assert promtext.render(reg.snapshot()) == GOLDEN


def test_prometheus_escaping():
    reg = MetricsRegistry()
    reg.counter("esc_total", 'has \\ and\nnewline', labelnames=("p",)).labels(
        p='va"l\\ue\n'
    ).inc()
    text = promtext.render(reg.snapshot())
    assert '# HELP esc_total has \\\\ and\\nnewline' in text
    assert 'esc_total{p="va\\"l\\\\ue\\n"} 1' in text


# ----------------------------------------------------------------------
# manager collectors match the legacy stats surfaces
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["bbdd", "bdd"])
def test_manager_counters_match_table_stats(backend):
    manager = repro.open(backend, vars=["a", "b", "c", "d"])
    f = manager.add_expr("a & b | c")
    g = manager.add_expr("c ^ d")
    _ = (f | g).is_true
    del f, g
    manager.gc()

    stats = manager.table_stats()
    reg = MetricsRegistry()
    manager.collect_metrics(reg)
    snap = reg.snapshot()

    def metric(name):
        samples = snap[name]["samples"]
        assert len(samples) == 1
        assert samples[0]["labels"] == {"backend": backend}
        return samples[0]["value"]

    assert metric("repro_manager_unique_lookups_total") == stats["unique"]["lookups"]
    assert metric("repro_manager_unique_hits_total") == stats["unique"]["hits"]
    assert metric("repro_manager_computed_lookups_total") == stats["computed"]["lookups"]
    assert metric("repro_manager_computed_hits_total") == stats["computed"]["hits"]
    assert metric("repro_manager_apply_total") == stats["apply_calls"] > 0
    assert metric("repro_manager_gc_runs_total") == stats["gc_runs"] >= 1
    assert metric("repro_manager_gc_reclaimed_total") == stats["gc_reclaimed"]
    assert metric("repro_manager_nodes") == stats["nodes"]
    assert metric("repro_manager_peak_nodes") == stats["peak_nodes"]


def test_xmem_collector_matches_stats(tmp_path):
    manager = repro.open(
        "xmem", vars=[f"x{i}" for i in range(10)], node_budget=8,
        spill_dir=str(tmp_path),
    )
    f = manager.add_expr("x0 & x1 | x2 & x3 | x4 & x5")
    g = manager.add_expr("x6 ^ x7 ^ x8 ^ x9")
    _ = f | g

    stats = manager.stats()
    reg = MetricsRegistry()
    manager.collect_metrics(reg)
    snap = reg.snapshot()

    def metric(name):
        return snap[name]["samples"][0]["value"]

    assert metric("repro_xmem_spill_bytes_total") == stats["spill_bytes"]
    assert metric("repro_xmem_level_spills_total") == stats["spill_writes"]
    assert metric("repro_xmem_spilled_nodes_total") == stats["spilled_nodes"]
    assert metric("repro_xmem_level_loads_total") == stats["level_loads"]
    assert metric("repro_xmem_resident_nodes") == stats["resident_nodes"]
    assert metric("repro_xmem_resident_blocks") == stats["resident_blocks"]
    assert metric("repro_xmem_live_nodes") == stats["live_nodes"]
    # An 8-node budget forces the sweeps to spill real bytes.
    assert stats["spill_bytes"] > 0
    assert stats["spill_writes"] > 0


def test_global_snapshot_is_pure_sampling():
    manager = repro.open("bbdd", vars=["a", "b"])
    manager.add_expr("a & b")
    first = obs.snapshot()
    second = obs.snapshot()
    for name in ("repro_manager_apply_total", "repro_manager_nodes"):
        assert first[name]["samples"] == second[name]["samples"]
    assert manager is not None  # keep the manager tracked through both


def test_catalog_families_always_render():
    # A fresh process-level snapshot exposes every catalogued family,
    # even ones with no traffic (dashboards can rely on the names).
    text = promtext.render(obs.snapshot())
    for name in (
        "repro_xmem_spill_bytes_total",
        "repro_serve_request_latency_seconds",
        "repro_manager_unique_lookups_total",
    ):
        assert f"# TYPE {name}" in text


# ----------------------------------------------------------------------
# /metrics HTTP endpoint
# ----------------------------------------------------------------------


def test_metrics_http_endpoint():
    reg = MetricsRegistry()
    reg.counter("endpoint_total", "Hits.").inc(9)
    with obs.MetricsHTTPServer(port=0, snapshot_fn=reg.snapshot) as server:
        url = f"http://127.0.0.1:{server.port}/metrics"
        with urllib.request.urlopen(url) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            body = response.read().decode("utf-8")
        assert "endpoint_total 9" in body
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/nope"
            )


def test_report_renders_nonzero_lines():
    reg = MetricsRegistry()
    reg.counter("seen_total", "Seen.").inc(3)
    reg.counter("quiet_total", "Quiet.")
    text = obs.report(reg.snapshot())
    assert "seen_total  3" in text
    assert "quiet_total" not in text


def test_snapshot_is_json_serializable():
    manager = repro.open("bbdd", vars=["a", "b"])
    manager.add_expr("a | b")
    encoded = json.dumps(obs.snapshot())
    assert "repro_manager_apply_total" in encoded
    assert manager is not None
