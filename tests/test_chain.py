"""Chain-reduced diagrams (CBBDD/CBDD) across every layer.

* Golden v1 dump: the checked-in pre-chain container must keep loading
  bit-exactly (and re-dump byte-identically) forever.
* Chain canonicity: parity towers collapse to span nodes under
  ``chain_reduce=True`` on both backends, with invariants intact, and
  strictly fewer stored nodes than the plain managers.
* Reordering: adjacent swaps refuse to run while chain reduction is
  active; ``sift()`` wraps the swap plan in expand/re-merge; the
  expand/reduce pair is a lossless involution.
* Operations: restrict/compose/quantify/ite/sat agree with the plain
  managers on span-heavy functions.
* Sweeps: ``evaluate_batch``/``satisfiable_batch`` and the shared-memory
  :class:`~repro.par.shm.ShmForest` (5-column chain layout plus legacy
  4-column attach) match the plain managers bit for bit.
* Interchange: v2 chain/compressed dumps round-trip across ALL
  backends, chain <-> plain migration is lossless both ways, and the
  ``python -m repro.io scan`` CLI reports every container kind.
"""

import io as stdio
import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro import io as rio
from repro.core import reorder
from repro.core.exceptions import OrderError
from repro.core.manager import BBDDManager
from repro.core.traversal import structural_profile
from repro.bdd import reorder as bdd_reorder
from repro.io.__main__ import main as io_main
from repro.io.format import (
    FLAG_BDD,
    FLAG_CHAIN,
    FLAG_COMPRESSED,
    FORMAT_VERSION,
    FORMAT_VERSION_CHAIN,
    read_header,
)
from repro.io.migrate import migrate_forest
from repro.par.shm import ShmForest, shm_available

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

BACKENDS = ["bbdd", "bdd"]
ALL_BACKENDS = BACKENDS + ["xmem"]

GOLDEN_V1 = os.path.join(os.path.dirname(__file__), "data", "golden_v1.bbdd")
GOLDEN_VARS = ["a", "b", "c", "d"]
GOLDEN_MASKS = {"maj": 0xE8E8, "parity": 0x6996, "bic": 0x9990}

N = 8
NAMES = [f"x{i}" for i in range(N)]


def _parity(m, lo=0, hi=N, neg=False):
    """An XNOR tower over ``names[lo:hi]`` — the span-forming shape."""
    f = m.var(NAMES[lo])
    for i in range(lo + 1, hi):
        f = ~f.xnor(m.var(NAMES[i]))
    return ~f if neg else f


#: label -> builder; every shape that exercised a distinct span case
#: during bring-up (pure spans, negated spans, spans under AND/OR, two
#: spans meeting, spans over a strict subset of the variables).
SPAN_BUILDERS = {
    "parity8": lambda m: _parity(m),
    "parity8n": lambda m: _parity(m, neg=True),
    "parity_mid": lambda m: _parity(m, 2, 7),
    "parity_and": lambda m: _parity(m, 1, 6) & m.var("x0"),
    "parity_or": lambda m: _parity(m, 0, 5) | (m.var("x6") & m.var("x7")),
    "two_par": lambda m: _parity(m, 0, 4).xnor(_parity(m, 4, 8)),
    "par_xor_var": lambda m: ~_parity(m, 0, 6).xnor(m.var("x7")),
    "mixed": lambda m: (_parity(m, 0, 5) & m.var("x5"))
    | (~_parity(m, 2, 8) & ~m.var("x0")),
}


def _span_count(manager, function):
    """Number of span nodes reachable from ``function`` (either backend)."""
    if isinstance(manager, BBDDManager):
        return structural_profile(manager, [function.edge])["span_nodes"]
    node, _attr = function.edge
    seen, spans, stack = set(), 0, [] if node.is_sink else [node]
    while stack:
        n = stack.pop()
        if n in seen or n.is_sink:
            continue
        seen.add(n)
        if n.bot != n.var:
            spans += 1
        stack.append(n.then)
        stack.append(n.else_)
    return spans


def _pair(backend, builder):
    """(plain function, chain function) for one builder on one backend."""
    plain = repro.open(backend, vars=NAMES)
    chain = repro.open(backend, vars=NAMES, chain_reduce=True)
    return plain, builder(plain), chain, builder(chain)


# ----------------------------------------------------------------------
# golden v1 regression
# ----------------------------------------------------------------------


def test_golden_v1_reloads_bit_exactly():
    with open(GOLDEN_V1, "rb") as fileobj:
        data = fileobj.read()
    header = read_header(stdio.BytesIO(data))
    assert header.version == FORMAT_VERSION
    assert header.flags == 0
    manager, functions = rio.loads(data)
    assert set(functions) == set(GOLDEN_MASKS)
    for name, mask in GOLDEN_MASKS.items():
        assert functions[name].truth_mask(GOLDEN_VARS) == mask, name
    # A plain manager re-dumps the v1 container byte for byte.
    assert rio.dumps(manager, functions) == data


def test_golden_v1_loads_into_chain_manager():
    chain = repro.open("bbdd", vars=GOLDEN_VARS, chain_reduce=True)
    functions = chain.load(GOLDEN_V1)
    for name, mask in GOLDEN_MASKS.items():
        assert functions[name].truth_mask(GOLDEN_VARS) == mask, name
    # The 4-var parity re-reduces into a span on import.
    assert _span_count(chain, functions["parity"]) >= 1
    chain.check_invariants()


# ----------------------------------------------------------------------
# chain canonicity and store invariants
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_full_parity_collapses_to_one_node(backend):
    chain = repro.open(backend, vars=NAMES, chain_reduce=True)
    f = _parity(chain)
    assert f.node_count() == 1
    assert _span_count(chain, f) == 1
    chain.check_invariants()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("label", sorted(SPAN_BUILDERS))
def test_chain_reduction_never_grows_the_diagram(backend, label):
    plain, fp, chain, fc = _pair(backend, SPAN_BUILDERS[label])
    assert fc.truth_mask(NAMES) == fp.truth_mask(NAMES)
    assert fc.node_count() <= fp.node_count()
    assert fc.sat_count() == fp.sat_count()
    chain.check_invariants()
    plain.check_invariants()


@pytest.mark.parametrize("backend", BACKENDS)
def test_span_builders_really_produce_spans(backend):
    total = 0
    for builder in SPAN_BUILDERS.values():
        chain = repro.open(backend, vars=NAMES, chain_reduce=True)
        total += _span_count(chain, builder(chain))
    assert total >= 5, "span fixtures stopped exercising chain nodes"


# ----------------------------------------------------------------------
# reordering under chain reduction
# ----------------------------------------------------------------------


def test_adjacent_swap_refuses_while_chain_reduced():
    chain = repro.open("bbdd", vars=NAMES, chain_reduce=True)
    _parity(chain)
    with pytest.raises(OrderError, match="chain"):
        reorder.swap_adjacent(chain, 0)
    bdd = repro.open("bdd", vars=NAMES, chain_reduce=True)
    _parity(bdd)
    with pytest.raises(OrderError, match="chain"):
        bdd_reorder.swap_adjacent_bdd(bdd, 0)


def test_bbdd_sift_wraps_chain_expansion():
    chain = repro.open("bbdd", vars=NAMES, chain_reduce=True)
    f = SPAN_BUILDERS["mixed"](chain)
    mask = f.truth_mask(NAMES)
    chain.sift()
    assert chain.chain_reduce is True
    assert f.truth_mask(NAMES) == mask
    chain.check_invariants()


def test_expand_and_reduce_chains_are_inverse():
    chain = repro.open("bbdd", vars=NAMES, chain_reduce=True)
    f = SPAN_BUILDERS["two_par"](chain)
    mask = f.truth_mask(NAMES)
    spans_before = _span_count(chain, f)
    assert spans_before >= 1
    assert chain.expand_chains() >= spans_before
    assert _span_count(chain, f) == 0
    assert f.truth_mask(NAMES) == mask
    chain.check_invariants()
    assert chain.reduce_chains() >= 1
    assert _span_count(chain, f) == spans_before
    assert f.truth_mask(NAMES) == mask
    chain.check_invariants()


# ----------------------------------------------------------------------
# span-aware operations agree with the plain managers
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("label", ["parity8", "parity_mid", "mixed", "two_par"])
def test_span_ops_match_plain(backend, label):
    plain, fp, chain, fc = _pair(backend, SPAN_BUILDERS[label])
    for var in ("x0", "x3", "x7"):
        for value in (False, True):
            assert fc.restrict(var, value).truth_mask(NAMES) == fp.restrict(
                var, value
            ).truth_mask(NAMES), (var, value)
        assert fc.exists([var]).truth_mask(NAMES) == fp.exists([var]).truth_mask(NAMES)
        assert fc.forall([var]).truth_mask(NAMES) == fp.forall([var]).truth_mask(NAMES)
    g_c = chain.add_expr("x1 & ~x6")
    g_p = plain.add_expr("x1 & ~x6")
    assert fc.compose("x3", g_c).truth_mask(NAMES) == fp.compose("x3", g_p).truth_mask(
        NAMES
    )
    assert fc.ite(g_c, ~g_c).truth_mask(NAMES) == fp.ite(g_p, ~g_p).truth_mask(NAMES)
    assert fc.support() == fp.support()
    witness = fc.sat_one()
    if witness is None:
        assert fp.sat_one() is None
    else:
        assert fc.evaluate(witness)
    chain.check_invariants()


# ----------------------------------------------------------------------
# batch sweeps and the shared-memory forest
# ----------------------------------------------------------------------


def _all_assignments():
    return [
        {NAMES[i]: bool((m >> i) & 1) for i in range(N)} for m in range(1 << N)
    ]


def _random_cubes(count=120, seed=0xC0DE):
    rng = random.Random(seed)
    cubes = []
    for _ in range(count):
        chosen = rng.sample(NAMES, rng.randrange(0, N + 1))
        cubes.append({name: bool(rng.getrandbits(1)) for name in chosen})
    return cubes


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("label", sorted(SPAN_BUILDERS))
def test_batch_sweeps_match_plain(backend, label):
    plain, fp, chain, fc = _pair(backend, SPAN_BUILDERS[label])
    assignments = _all_assignments()
    assert fc.evaluate_batch(assignments) == fp.evaluate_batch(assignments)
    cubes = _random_cubes()
    assert fc.satisfiable_batch(cubes) == fp.satisfiable_batch(cubes)


@pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("label", ["parity8", "parity_and", "two_par", "mixed"])
def test_shm_forest_chain_layout(backend, label):
    plain, fp, chain, fc = _pair(backend, SPAN_BUILDERS[label])
    assignments = _all_assignments()
    cubes = _random_cubes(count=80, seed=0xBEEF)
    with ShmForest.freeze(chain, {"f": fc}) as frozen:
        attached = ShmForest.attach(frozen.name)
        try:
            assert attached.evaluate_batch("f", assignments) == fp.evaluate_batch(
                assignments
            )
            assert attached.satisfiable_batch("f", cubes) == fp.satisfiable_batch(cubes)
            assert attached.sat_count("f") == fp.sat_count()
        finally:
            attached.close()


@pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")
def test_shm_forest_plain_segments_stay_four_column():
    """Span-free freezes keep the legacy layout, and it still attaches."""
    plain = repro.open("bbdd", vars=NAMES)
    f = SPAN_BUILDERS["mixed"](plain)
    export = plain.freeze_export([("f", f.edge)])
    assert "bot" not in export or export.get("bot") is None
    with ShmForest.freeze(plain, {"f": f}) as frozen:
        attached = ShmForest.attach(frozen.name)
        try:
            assert attached.sat_count("f") == f.sat_count()
        finally:
            attached.close()


# ----------------------------------------------------------------------
# interchange: v2 containers, migration, CLI
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_chain_dump_sets_v2_flags(backend):
    chain = repro.open(backend, vars=NAMES, chain_reduce=True)
    f = _parity(chain)
    buf = stdio.BytesIO()
    chain.dump({"par": f}, buf, compress=True)
    header = read_header(stdio.BytesIO(buf.getvalue()))
    assert header.version == FORMAT_VERSION_CHAIN
    assert header.flags & FLAG_CHAIN
    assert header.flags & FLAG_COMPRESSED
    assert bool(header.flags & FLAG_BDD) == (backend == "bdd")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("compress", [False, True])
def test_chain_dump_round_trips_into_plain_and_chain(backend, compress):
    """Chain -> plain and chain -> chain imports are both lossless."""
    _plain, fp, chain, fc = _pair(backend, SPAN_BUILDERS["two_par"])
    mask = fp.truth_mask(NAMES)
    buf = stdio.BytesIO()
    chain.dump({"f": fc}, buf, compress=compress)
    data = buf.getvalue()
    for chain_reduce in (False, True):
        target = repro.open(backend, vars=NAMES, chain_reduce=chain_reduce)
        loaded = target.load(stdio.BytesIO(data))
        assert loaded["f"].truth_mask(NAMES) == mask
        spans = _span_count(target, loaded["f"])
        assert spans >= 1 if chain_reduce else spans == 0
        target.check_invariants()


def test_migrate_forest_chain_to_plain_and_back():
    chain = repro.open("bbdd", vars=NAMES, chain_reduce=True)
    fc = SPAN_BUILDERS["two_par"](chain)
    mask = fc.truth_mask(NAMES)
    plain = repro.open("bbdd", vars=NAMES)
    via_plain = migrate_forest(fc, plain)
    assert via_plain.truth_mask(NAMES) == mask
    assert _span_count(plain, via_plain) == 0
    chain2 = repro.open("bbdd", vars=NAMES, chain_reduce=True)
    back = migrate_forest(via_plain, chain2)
    assert back.truth_mask(NAMES) == mask
    assert _span_count(chain2, back) >= 1
    assert back.node_count() == fc.node_count()


def test_scan_cli_reports_every_container_kind(tmp_path):
    chain = repro.open("bbdd", vars=NAMES, chain_reduce=True)
    f = _parity(chain)
    compressed = str(tmp_path / "par.bbdd")
    chain.dump({"par": f}, compressed, compress=True)
    out = stdio.StringIO()
    assert io_main(["scan", compressed, GOLDEN_V1], out=out) == 0
    text = out.getvalue()
    assert "version:        2" in text
    assert "chain" in text and "compressed" in text
    assert "version:        1" in text
    assert "backend kind:   bbdd" in text
    assert "bytes per node:" in text


def test_scan_cli_missing_file_exits_nonzero(tmp_path, capsys):
    out = stdio.StringIO()
    missing = str(tmp_path / "nope.bbdd")
    assert io_main(["scan", missing], out=out) == 1
    captured = capsys.readouterr()
    assert "nope.bbdd" in captured.err
    assert out.getvalue() == ""


# ----------------------------------------------------------------------
# property round trips across every backend
# ----------------------------------------------------------------------


@st.composite
def masked_function(draw, max_vars=4):
    n = draw(st.integers(min_value=2, max_value=max_vars))
    mask = draw(st.integers(min_value=0, max_value=(1 << (1 << n)) - 1))
    return n, mask


def _build_from_mask(manager, names, mask):
    """Sum-of-minterms build through the shared protocol surface."""
    f = manager.false()
    variables = [manager.var(name) for name in names]
    for idx in range(1 << len(names)):
        if not (mask >> idx) & 1:
            continue
        term = manager.true()
        for bit, v in enumerate(variables):
            term = term & (v if (idx >> bit) & 1 else ~v)
        f = f | term
    return f


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@given(masked_function(), st.booleans())
@settings(**_SETTINGS)
def test_compressed_roundtrip_across_backends(backend, fn, compress):
    n, mask = fn
    names = [f"v{i}" for i in range(n)]
    manager = repro.open(backend, vars=names)
    f = _build_from_mask(manager, names, mask)
    buf = stdio.BytesIO()
    manager.dump({"f": f}, buf, compress=compress)
    fresh = repro.open(backend, vars=names)
    loaded = fresh.load(stdio.BytesIO(buf.getvalue()))
    assert loaded["f"].truth_mask(names) == mask


@pytest.mark.parametrize("backend", BACKENDS)
@given(masked_function(), st.booleans())
@settings(**_SETTINGS)
def test_plain_chain_compressed_roundtrip_property(backend, fn, compress):
    """plain build == chain build == chain dump -> plain reload."""
    n, mask = fn
    names = [f"v{i}" for i in range(n)]
    plain = repro.open(backend, vars=names)
    fp = _build_from_mask(plain, names, mask)
    chain = repro.open(backend, vars=names, chain_reduce=True)
    fc = _build_from_mask(chain, names, mask)
    assert fc.truth_mask(names) == mask
    assert fc.node_count() <= fp.node_count()
    buf = stdio.BytesIO()
    chain.dump({"f": fc}, buf, compress=compress)
    target = repro.open(backend, vars=names)
    reloaded = target.load(stdio.BytesIO(buf.getvalue()))
    assert reloaded["f"].truth_mask(names) == mask
    # Chain -> plain reload lands on the canonical plain diagram.
    assert reloaded["f"].node_count() == fp.node_count()
    target.check_invariants()
