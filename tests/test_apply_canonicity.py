"""Algorithm 1 correctness: all 16 operators vs. the truth-table oracle,
canonicity of the result, and sat-count with level skipping."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BBDDManager
from repro.core.operations import ALL_OPS, op_name
from repro.core.reorder import from_truth_table
from repro.core.truthtable import TruthTable


@pytest.mark.parametrize("op", ALL_OPS)
def test_all_ops_exhaustive_n3(op):
    n = 3
    for ma in range(0, 256, 37):
        for mb in range(0, 256, 41):
            m = BBDDManager(n)
            fa = m.function(from_truth_table(m, ma))
            fb = m.function(from_truth_table(m, mb))
            fc = fa.apply(fb, op)
            tt = TruthTable(n, ma).apply(TruthTable(n, mb), op)
            assert fc.truth_mask(range(n)) == tt.mask, op_name(op)


@given(
    st.integers(min_value=2, max_value=6),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_random_ops_match_truth_tables(n, data):
    full = (1 << (1 << n)) - 1
    ma = data.draw(st.integers(min_value=0, max_value=full))
    mb = data.draw(st.integers(min_value=0, max_value=full))
    op = data.draw(st.sampled_from(ALL_OPS))
    m = BBDDManager(n)
    fa = m.function(from_truth_table(m, ma))
    fb = m.function(from_truth_table(m, mb))
    fc = fa.apply(fb, op)
    tt = TruthTable(n, ma).apply(TruthTable(n, mb), op)
    assert fc.truth_mask(range(n)) == tt.mask
    # Canonicity: the truth-table build of the result is the same edge.
    rebuilt = m.function(from_truth_table(m, tt.mask))
    assert fc == rebuilt
    m.check_invariants()


@given(st.integers(min_value=1, max_value=7), st.data())
@settings(max_examples=60, deadline=None)
def test_sat_count_matches_popcount(n, data):
    full = (1 << (1 << n)) - 1
    mask = data.draw(st.integers(min_value=0, max_value=full))
    m = BBDDManager(n)
    f = m.function(from_truth_table(m, mask))
    assert f.sat_count() == TruthTable(n, mask).sat_count()


def test_canonicity_different_expression_trees():
    m = BBDDManager(4)
    a, b, c, d = m.variables()
    f1 = (a & b) | (c & d)
    f2 = (d & c) | (b & a)
    f3 = ~(~(a & b) & ~(c & d))
    assert f1 == f2 == f3


def test_equivalence_is_pointer_comparison():
    m = BBDDManager(5)
    vs = m.variables()
    parity1 = vs[0]
    for v in vs[1:]:
        parity1 = parity1 ^ v
    parity2 = vs[4] ^ vs[3] ^ vs[2] ^ vs[1] ^ vs[0]
    assert parity1.node is parity2.node
    assert parity1.attr == parity2.attr


def test_xor_rich_compactness():
    """BBDDs should beat BDDs clearly on parity (the paper's motivation)."""
    from repro.bdd import BDDManager

    n = 12
    m = BBDDManager(n)
    vs = m.variables()
    p = vs[0]
    for v in vs[1:]:
        p = p ^ v
    mb = BDDManager(n)
    vsb = mb.variables()
    pb = vsb[0]
    for v in vsb[1:]:
        pb = pb ^ v
    assert p.node_count() < pb.node_count()


def test_sat_one_returns_satisfying_assignment():
    random.seed(5)
    for _ in range(20):
        n = random.randint(2, 6)
        mask = random.getrandbits(1 << n)
        m = BBDDManager(n)
        f = m.function(from_truth_table(m, mask))
        witness = f.sat_one()
        if mask == 0:
            assert witness is None
        else:
            assert witness is not None
            assert f.evaluate(witness)
