"""Round-trip, migration, streaming and checkpoint tests for repro.io."""

import io as stdio
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import io as rio
from repro.circuits.registry import TABLE1_ROWS, TABLE2_ROWS
from repro.core import BBDDManager, reorder
from repro.core.dot import to_dot
from repro.core.exceptions import BBDDError, VariableError
from repro.core.traversal import levelize
from repro.harness.table1 import run_table1
from repro.io.checkpoint import CheckpointStore
from repro.io.format import FormatError, unpack_ref
from repro.io.stream import LevelStreamReader
from repro.network.build import build_bbdd

# max_examples comes from the active hypothesis profile (fast/ci —
# see tests/conftest.py); only per-test shape settings live here.
_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

VARS = ["a", "b", "c", "d"]


def _small_forest():
    m = BBDDManager(VARS)
    a, b, c, d = m.variables()
    return m, {
        "f": (a ^ b) | (c & d),
        "g": a.xnor(b),
        "maj": (a & b) | (a & c) | (b & c),
        "t": m.true(),
        "z": m.false(),
    }


def _masks(functions, variables=VARS):
    return {name: f.truth_mask(variables) for name, f in functions.items()}


# ----------------------------------------------------------------------
# binary round trips
# ----------------------------------------------------------------------


def test_binary_roundtrip_fresh_manager():
    m, fns = _small_forest()
    m2, loaded = rio.loads(rio.dumps(m, fns))
    assert set(loaded) == set(fns)
    assert _masks(loaded) == _masks(fns)
    assert loaded["t"].is_true and loaded["z"].is_false
    # Same order => node-for-node identical canonical forest.
    live = {n: f for n, f in fns.items() if not f.is_constant}
    assert m2.node_count(list(loaded.values())) == m.node_count(list(fns.values()))
    for name, f in live.items():
        assert loaded[name].node_count() == f.node_count()
    m2.check_invariants()


def test_binary_roundtrip_permuted_order():
    m, fns = _small_forest()
    data = rio.dumps(m, fns)
    m2 = BBDDManager(list(reversed(VARS)))
    loaded = m2.load(stdio.BytesIO(data))
    assert _masks(loaded) == _masks(fns)
    m2.check_invariants()


def test_binary_roundtrip_superset_variables():
    m, fns = _small_forest()
    data = rio.dumps(m, fns)
    m2 = BBDDManager(["a", "x0", "b", "x1", "c", "d", "x2"])
    loaded = m2.load(stdio.BytesIO(data))
    assert _masks(loaded) == _masks(fns)
    # Interleaved foreign variables never enter the rebuilt support.
    assert loaded["f"].support() == fns["f"].support()
    m2.check_invariants()


def test_binary_roundtrip_rename():
    m, fns = _small_forest()
    data = rio.dumps(m, fns)
    m2 = BBDDManager(["p", "q", "r", "s"])
    loaded = m2.load(
        stdio.BytesIO(data), rename={"a": "p", "b": "q", "c": "r", "d": "s"}
    )
    assert {n: f.truth_mask(["p", "q", "r", "s"]) for n, f in loaded.items()} == _masks(
        fns
    )


def test_load_rename_into_fresh_manager():
    # rename with no explicit target manager: the fresh manager is
    # created with the *renamed* variable names.
    m, fns = _small_forest()
    m2, loaded = rio.loads(
        rio.dumps(m, fns), rename={"a": "p", "b": "q", "c": "r", "d": "s"}
    )
    assert m2.current_order() == ("p", "q", "r", "s")
    assert {n: f.truth_mask(["p", "q", "r", "s"]) for n, f in loaded.items()} == _masks(
        fns
    )
    data = rio.to_dict(m, fns)
    m3, loaded3 = rio.from_dict(data, rename={"a": "w"})
    assert m3.current_order() == ("w", "b", "c", "d")
    assert loaded3["f"].truth_mask(["w", "b", "c", "d"]) == fns["f"].truth_mask(VARS)


def test_load_missing_variable_raises():
    m, fns = _small_forest()
    data = rio.dumps(m, fns)
    m2 = BBDDManager(["a", "b", "c"])  # no "d"
    with pytest.raises(VariableError):
        m2.load(stdio.BytesIO(data))


def test_bad_magic_raises():
    with pytest.raises(FormatError):
        rio.loads(b"NOPE" + b"\x00" * 16)


def test_truncated_dump_raises():
    m, fns = _small_forest()
    data = rio.dumps(m, fns)
    with pytest.raises(FormatError):
        rio.loads(data[: len(data) - 3])


# ----------------------------------------------------------------------
# streaming and scanning
# ----------------------------------------------------------------------


def test_scan_reports_forest_shape():
    m, fns = _small_forest()
    data = rio.dumps(m, fns)
    info = rio.scan(stdio.BytesIO(data))
    assert info.node_count == m.node_count(list(fns.values()))
    assert info.header.num_roots == len(fns)
    assert info.file_bytes == len(data)
    assert sum(count for _p, count in info.header.levels) == info.node_count
    assert info.summary()["bytes_per_node"] > 0


def test_iter_levels_is_bottom_up_and_backward_referencing():
    m, fns = _small_forest()
    reader = LevelStreamReader(stdio.BytesIO(rio.dumps(m, fns)))
    next_id = 1
    last_position = None
    for position, records in reader.iter_levels():
        if last_position is not None:
            assert position < last_position  # deepest level first
        last_position = position
        for sv_delta, neq_ref, eq_ref in records:
            if sv_delta:  # chain node: both children already written
                assert unpack_ref(neq_ref)[0] < next_id
                assert unpack_ref(eq_ref)[0] < next_id
            next_id += 1
    roots = reader.read_roots()
    assert {name for _ref, name in roots} == set(fns)


def test_levelize_orders_children_first():
    m, fns = _small_forest()
    levels = levelize(m, [f.edge for f in fns.values()])
    seen = {1}  # the sink's index
    for _position, nodes in levels:
        for node in nodes:
            view = m.node_view(node)
            if view.is_chain:
                assert view.neq.index in seen and view.eq.index in seen
            seen.add(node)


# ----------------------------------------------------------------------
# JSON interchange
# ----------------------------------------------------------------------


def test_json_roundtrip():
    m, fns = _small_forest()
    data = rio.to_dict(m, fns)
    assert data["format"] == "bbdd-json"
    assert data["order"] == VARS
    m2, loaded = rio.from_dict(data)
    assert _masks(loaded) == _masks(fns)
    m2.check_invariants()


def test_json_roundtrip_permuted_order(tmp_path):
    m, fns = _small_forest()
    path = tmp_path / "forest.json"
    rio.dump_json(m, fns, str(path))
    m2 = BBDDManager(["c", "a", "d", "b"])
    _m, loaded = rio.load_json(str(path), manager=m2)
    assert _masks(loaded) == _masks(fns)
    m2.check_invariants()


def test_json_rejects_foreign_documents():
    with pytest.raises(FormatError):
        rio.from_dict({"format": "something-else"})


# ----------------------------------------------------------------------
# live cross-manager migration
# ----------------------------------------------------------------------


def test_migrate_to_permuted_superset_manager():
    m, fns = _small_forest()
    m2 = BBDDManager(["d", "b", "extra", "a", "c"])
    moved = rio.migrate_forest(fns, m2)
    assert _masks(moved) == _masks(fns)
    m2.check_invariants()
    # Shared structure is migrated once: total target nodes stay bounded
    # by a fresh canonical build, not by per-function copies.
    assert m2.node_count(list(moved.values())) <= sum(
        f.node_count() for f in moved.values()
    )


def test_migrate_with_rename_and_shapes():
    m = BBDDManager(["a", "b"])
    f = m.var("a") ^ m.var("b")
    m2 = BBDDManager(["x", "y"])
    moved = rio.migrate_forest(f, m2, rename={"a": "x", "b": "y"})
    assert moved.truth_mask(["x", "y"]) == f.truth_mask(["a", "b"])
    assert rio.migrate_forest([], m2) == []
    assert rio.migrate_forest({}, m2) == {}


def test_migrate_same_manager_rejected():
    m, fns = _small_forest()
    with pytest.raises(BBDDError):
        rio.migrate_forest(fns, m)


# ----------------------------------------------------------------------
# convenience APIs
# ----------------------------------------------------------------------


def test_function_dump_and_manager_load(tmp_path):
    m, fns = _small_forest()
    path = tmp_path / "f.bbdd"
    fns["f"].dump(str(path), name="f")
    manager, loaded = rio.load(str(path))
    assert loaded["f"].truth_mask(VARS) == fns["f"].truth_mask(VARS)
    assert manager.current_order() == m.current_order()

    path2 = tmp_path / "forest.bbdd"
    m.dump(fns, str(path2))
    again = m.load(str(path2))
    for name, f in fns.items():
        assert again[name] == f  # same manager: pointer equality


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------


@st.composite
def masked_function(draw, max_vars=5):
    n = draw(st.integers(min_value=2, max_value=max_vars))
    mask = draw(st.integers(min_value=0, max_value=(1 << (1 << n)) - 1))
    return n, mask


@given(masked_function())
@settings(**_SETTINGS)
def test_roundtrip_preserves_semantics_and_size_property(fn):
    n, mask = fn
    m = BBDDManager(n)
    f = m.function(reorder.from_truth_table(m, mask))
    m2, loaded = rio.loads(rio.dumps(m, {"f": f}))
    assert loaded["f"].truth_mask(range(n)) == mask
    assert loaded["f"].node_count() == f.node_count()
    m2.check_invariants()


@given(masked_function(), st.data())
@settings(**_SETTINGS)
def test_roundtrip_into_permuted_manager_property(fn, data):
    n, mask = fn
    m = BBDDManager(n)
    f = m.function(reorder.from_truth_table(m, mask))
    permutation = data.draw(st.permutations(range(n)))
    m2 = BBDDManager([f"x{i}" for i in permutation])
    loaded = m2.load(stdio.BytesIO(rio.dumps(m, {"f": f})))
    assert loaded["f"].truth_mask([f"x{i}" for i in range(n)]) == mask
    m2.check_invariants()


# ----------------------------------------------------------------------
# registry sweep (acceptance: every circuit, both table backends)
# ----------------------------------------------------------------------


def _registry_networks():
    from repro.synth.flow import datapath_order

    for row in TABLE1_ROWS:
        yield row.name, row.build(full=False)
    for row in TABLE2_ROWS:
        # Raw datapath input orders are exponential for BBDDs (that is the
        # point of the flow's interleaving heuristic); build the way the
        # Table II flow does.
        network = row.build(full=False).copy()
        network.inputs = datapath_order(network.inputs)
        yield row.name, network


def _spot_check(network, originals, reloaded, rng, vectors=8):
    for _ in range(vectors):
        assignment = {name: rng.random() < 0.5 for name in network.inputs}
        for name, f in originals.items():
            assert reloaded[name].evaluate(assignment) == f.evaluate(assignment), name


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["dict", "cantor"])
def test_registry_dump_reload_sweep(backend):
    rng = random.Random(0xBBDD)
    for name, network in _registry_networks():
        manager, functions = build_bbdd(
            network, unique_backend=backend, computed_backend=backend
        )
        data = rio.dumps(manager, functions)

        # Same order: canonical node-for-node reconstruction.
        fresh, reloaded = rio.loads(data)
        assert fresh.node_count(list(reloaded.values())) == manager.node_count(
            list(functions.values())
        ), name
        for out, f in functions.items():
            assert reloaded[out].node_count() == f.node_count(), (name, out)
        _spot_check(network, functions, reloaded, rng)

        # Permuted order: semantics survive re-canonicalization.  An
        # adjacent transposition is a genuine permutation that disables
        # the structural fast path (every node re-enters via ITE) while
        # keeping the rebuilt diagrams near their canonical size — a
        # full reversal would make variable-order-sensitive circuits
        # (adders, comparators) exponentially large.
        names = list(manager.var_names)
        names[0], names[1] = names[1], names[0]
        permuted = BBDDManager(
            names,
            unique_backend=backend,
            computed_backend=backend,
        )
        replayed = permuted.load(stdio.BytesIO(data))
        _spot_check(network, functions, replayed, rng)
        if network.num_inputs <= 10:
            order = list(network.inputs)
            for out, f in functions.items():
                assert replayed[out].truth_mask(order) == f.truth_mask(order), (
                    name,
                    out,
                )
        permuted.check_invariants()


# ----------------------------------------------------------------------
# harness checkpointing
# ----------------------------------------------------------------------


def test_checkpoint_store_roundtrip(tmp_path):
    store = CheckpointStore(tmp_path)
    record = {"name": "C17", "bbdd_nodes": 10}
    store.save_result("table1-C17-fast", record)
    assert store.has_result("table1-C17-fast")
    assert store.load_result("table1-C17-fast") == record
    m, fns = _small_forest()
    store.save_forest("table1-C17-fast", m, fns)
    _m2, loaded = store.load_forest("table1-C17-fast")
    assert _masks(loaded) == _masks(fns)
    assert store.keys() == ["table1-C17-fast"]
    store.clear()
    assert not store.has_result("table1-C17-fast")
    assert store.load_forest("table1-C17-fast") is None


def test_table1_checkpoint_resume(tmp_path):
    rows = [r for r in TABLE1_ROWS if r.name in ("C17", "parity")]
    first = run_table1(rows=rows, full=False, checkpoint_dir=str(tmp_path))
    assert all(not r["cached"] for r in first["rows"])
    store = CheckpointStore(tmp_path)
    assert store.has_forest("table1-C17-fast")
    assert store.has_forest("table1-parity-fast")

    second = run_table1(rows=rows, full=False, checkpoint_dir=str(tmp_path))
    assert all(r["cached"] for r in second["rows"])
    for before, after in zip(first["rows"], second["rows"]):
        assert before["bbdd_nodes"] == after["bbdd_nodes"]
        assert before["bdd_nodes"] == after["bdd_nodes"]

    # The persisted forest really is the benchmark's BBDD forest.
    manager, functions = store.load_forest("table1-parity-fast")
    record = next(r for r in first["rows"] if r["name"] == "parity")
    assert manager.node_count(list(functions.values())) == record["bbdd_nodes"]


def test_checkpoint_keys_distinguish_run_settings(tmp_path):
    rows = [r for r in TABLE1_ROWS if r.name == "parity"]
    run_table1(rows=rows, full=False, sift=True, checkpoint_dir=str(tmp_path))
    nosift = run_table1(rows=rows, full=False, sift=False, checkpoint_dir=str(tmp_path))
    # A no-sift run must not reuse rows measured with sifting enabled.
    assert not nosift["rows"][0]["cached"]
    assert nosift["rows"][0]["bbdd_sift"] == 0.0
    again = run_table1(rows=rows, full=False, sift=False, checkpoint_dir=str(tmp_path))
    assert again["rows"][0]["cached"]


def test_rebuilder_rejects_malformed_records():
    m = BBDDManager(["a", "b"])
    from repro.io.migrate import ForestRebuilder

    rb = ForestRebuilder(m, ["a", "b"])
    with pytest.raises(FormatError):
        rb.add_record(9, 0, 0, 0)  # PV position out of range
    with pytest.raises(FormatError):
        rb.add_record(1, 5, 0, 0)  # SV position out of range
    with pytest.raises(FormatError):
        rio.from_dict(
            {
                "format": "bbdd-json",
                "version": 1,
                "variables": ["a"],
                "order": ["a"],
                "nodes": [{"id": 1, "var": "zzz"}],
                "roots": {},
            }
        )
    with pytest.raises(FormatError):
        # Negative child ids must not wrap through Python indexing.
        rio.from_dict(
            {
                "format": "bbdd-json",
                "version": 1,
                "variables": ["a", "b"],
                "order": ["a", "b"],
                "nodes": [
                    {"id": 1, "var": "b"},
                    {"id": 2, "pv": "a", "sv": "b", "neq": [-1, False], "eq": [1, False]},
                ],
                "roots": {"f": [2, False]},
            }
        )


# ----------------------------------------------------------------------
# dot export validation (satellite fix)
# ----------------------------------------------------------------------


def test_to_dot_rejects_mismatched_names():
    m = BBDDManager(["a", "b"])
    f = m.var("a") & m.var("b")
    with pytest.raises(BBDDError):
        to_dot(m, [f], names=["f", "extra"])
    with pytest.raises(BBDDError):
        to_dot(m, [f, ~f], names=["only-one"])
    # Matching names and the auto-naming default both still work.
    assert "digraph" in to_dot(m, [f], names=["f"])
    assert "f0" in to_dot(m, [f])
