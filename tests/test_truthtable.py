"""Truth-table oracle self-tests (everything else is validated against it)."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.operations import ALL_OPS
from repro.core.truthtable import TruthTable


def test_var_patterns():
    t = TruthTable.var(3, 0)
    for i in range(8):
        assert t.value(i) == bool(i & 1)
    t2 = TruthTable.var(3, 2)
    for i in range(8):
        assert t2.value(i) == bool((i >> 2) & 1)


def test_operators_pointwise():
    rng = random.Random(1)
    for _ in range(20):
        n = rng.randint(1, 6)
        a = TruthTable(n, rng.getrandbits(1 << n))
        b = TruthTable(n, rng.getrandbits(1 << n))
        for i in range(1 << n):
            assert (a & b).value(i) == (a.value(i) and b.value(i))
            assert (a | b).value(i) == (a.value(i) or b.value(i))
            assert (a ^ b).value(i) == (a.value(i) != b.value(i))
            assert (~a).value(i) == (not a.value(i))


def test_apply_matches_op_tables():
    rng = random.Random(2)
    n = 4
    a = TruthTable(n, rng.getrandbits(1 << n))
    b = TruthTable(n, rng.getrandbits(1 << n))
    for op in ALL_OPS:
        c = a.apply(b, op)
        for i in range(1 << n):
            want = (op >> ((a.value(i) << 1) | b.value(i))) & 1
            assert c.value(i) == bool(want)


@given(st.integers(min_value=1, max_value=6), st.data())
def test_restrict_semantics(n, data):
    mask = data.draw(st.integers(min_value=0, max_value=(1 << (1 << n)) - 1))
    j = data.draw(st.integers(min_value=0, max_value=n - 1))
    value = data.draw(st.booleans())
    t = TruthTable(n, mask)
    r = t.restrict(j, value)
    for i in range(1 << n):
        forced = (i | (1 << j)) if value else (i & ~(1 << j))
        assert r.value(i) == t.value(forced)


def test_compose_and_quantify():
    n = 4
    rng = random.Random(3)
    f = TruthTable(n, rng.getrandbits(1 << n))
    g = TruthTable(n, rng.getrandbits(1 << n))
    h = f.compose(1, g)
    for i in range(1 << n):
        forced = (i | 2) if g.value(i) else (i & ~2)
        assert h.value(i) == f.value(forced)
    ex = f.exists(2)
    fa = f.forall(2)
    for i in range(1 << n):
        lo, hi = i & ~4, i | 4
        assert ex.value(i) == (f.value(lo) or f.value(hi))
        assert fa.value(i) == (f.value(lo) and f.value(hi))


def test_support_and_satcount():
    t = TruthTable.var(4, 1) ^ TruthTable.var(4, 3)
    assert t.support() == frozenset({1, 3})
    assert t.sat_count() == 8
    assert TruthTable.const(4, True).sat_count() == 16


def test_permute():
    n = 3
    t = TruthTable.var(n, 0) & ~TruthTable.var(n, 2)
    perm = [2, 0, 1]  # new var perm[j] is old var j
    p = t.permute(perm)
    expected = TruthTable.var(n, 2) & ~TruthTable.var(n, 1)
    assert p == expected
