"""Baseline BDD package tests (the CUDD substitute of Table I)."""

import random

import pytest

from repro.bdd import BDDManager
from repro.bdd.reorder import reorder_to_bdd, sift_bdd, swap_adjacent_bdd
from repro.core.operations import ALL_OPS
from repro.core.truthtable import TruthTable


def _build(manager, tt, variables):
    """Shannon-build a BDD from a truth table (test-local oracle path)."""
    if tt.mask == 0:
        return manager.false()
    if tt.mask == tt._full():
        return manager.true()

    def rec(table, j):
        if table.mask == 0:
            return manager.false()
        if table.mask == table._full():
            return manager.true()
        f1 = rec(table.restrict(j, True), j + 1)
        f0 = rec(table.restrict(j, False), j + 1)
        return variables[j].ite(f1, f0)

    return rec(tt, 0)


@pytest.mark.parametrize("op", ALL_OPS)
def test_bdd_ops_match_truth_tables(op):
    rng = random.Random(op)
    n = 4
    m = BDDManager(n)
    vs = m.variables()
    ta = TruthTable(n, rng.getrandbits(1 << n))
    tb = TruthTable(n, rng.getrandbits(1 << n))
    fa = _build(m, ta, vs)
    fb = _build(m, tb, vs)
    fc = fa.apply(fb, op)
    assert fc.truth_mask(range(n)) == ta.apply(tb, op).mask
    m.check_invariants()


def test_bdd_canonicity_and_complement_edges():
    m = BDDManager(3)
    a, b, c = m.variables()
    f1 = (a & b) | c
    f2 = ~(~(a & b) & ~c)
    assert f1 == f2
    assert ~~f1 == f1
    assert (f1 ^ f1).is_false


def test_bdd_sat_count():
    rng = random.Random(9)
    for _ in range(15):
        n = rng.randint(1, 6)
        tt = TruthTable(n, rng.getrandbits(1 << n))
        m = BDDManager(n)
        f = _build(m, tt, m.variables())
        assert f.sat_count() == tt.sat_count()


@pytest.mark.parametrize("seed", range(6))
def test_bdd_swap_preserves_functions(seed):
    rng = random.Random(seed)
    n = rng.randint(2, 6)
    m = BDDManager(n)
    vs = m.variables()
    masks = [rng.getrandbits(1 << n) for _ in range(2)]
    funcs = [_build(m, TruthTable(n, mask), vs) for mask in masks]
    for _ in range(rng.randint(1, 8)):
        swap_adjacent_bdd(m, rng.randrange(n - 1))
        m.check_invariants()
        for f, mask in zip(funcs, masks):
            assert f.truth_mask(range(n)) == mask


def test_bdd_sift_preserves_and_shrinks():
    n_pairs = 4
    names = [f"a{i}" for i in range(n_pairs)] + [f"b{i}" for i in range(n_pairs)]
    m = BDDManager(names)
    f = m.true()
    for i in range(n_pairs):
        f = f & m.var(f"a{i}").xnor(m.var(f"b{i}"))
    mask = f.truth_mask(names)
    result = sift_bdd(m, converge=True)
    m.check_invariants()
    assert f.truth_mask(names) == mask
    assert result.final_size <= result.initial_size


def test_bdd_reorder_to():
    rng = random.Random(3)
    n = 5
    m = BDDManager(n)
    vs = m.variables()
    mask = rng.getrandbits(1 << n)
    f = _build(m, TruthTable(n, mask), vs)
    perm = list(range(n))
    rng.shuffle(perm)
    reorder_to_bdd(m, perm)
    assert m.order.order == tuple(perm)
    assert f.truth_mask(range(n)) == mask


def test_bdd_gc():
    m = BDDManager(3)
    a, b, c = m.variables()
    f = (a & b) ^ c
    before = m.size()
    del f
    assert m.gc() > 0
    assert m.size() < before
    m.check_invariants()
