"""Shared test configuration: hypothesis profiles and fixtures.

Two hypothesis profiles are registered:

* ``fast`` (the default) — few examples per property; keeps the local
  tier-1 run quick.
* ``ci`` — the full example counts for thorough runs.

Select with ``HYPOTHESIS_PROFILE=ci pytest`` (the CI workflow does).
Property tests express only per-test *shape* settings (deadline,
health checks) and inherit ``max_examples`` from the active profile.

The slowest tests are additionally marked ``@pytest.mark.slow`` (see
``pyproject.toml``); deselect them locally with ``-m "not slow"`` —
they still run by default so the tier-1 gate covers everything.

``@pytest.mark.timeout(seconds)`` puts a hard SIGALRM deadline on a
test — used by the multi-process pool tests, where a dispatch bug
would otherwise hang the whole suite on a queue that never answers.
"""

import os
import signal
import sys
import threading

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "fast",
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=75,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))


@pytest.fixture(autouse=True)
def _hard_timeout(request):
    """Enforce ``@pytest.mark.timeout(seconds)`` with SIGALRM.

    Implemented in-tree (no pytest-timeout dependency); silently
    inactive where SIGALRM cannot fire (non-main thread, platforms
    without it) — the marker is a safety net, not a correctness gate.
    """
    marker = request.node.get_closest_marker("timeout")
    if (
        marker is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    seconds = int(marker.args[0]) if marker.args else 60

    def _expired(signum, frame):
        pytest.fail(f"test exceeded the {seconds}s hard timeout", pytrace=False)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def low_recursion_limit():
    """Run a test under a low interpreter recursion limit.

    Any engine that recursed on operand depth would blow this limit on
    the deep-chain workloads; the iterative engines must not notice.
    """
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(1000)
    try:
        yield 1000
    finally:
        sys.setrecursionlimit(old)
