"""Shared test configuration: hypothesis profiles and fixtures.

Two hypothesis profiles are registered:

* ``fast`` (the default) — few examples per property; keeps the local
  tier-1 run quick.
* ``ci`` — the full example counts for thorough runs.

Select with ``HYPOTHESIS_PROFILE=ci pytest`` (the CI workflow does).
Property tests express only per-test *shape* settings (deadline,
health checks) and inherit ``max_examples`` from the active profile.

The slowest tests are additionally marked ``@pytest.mark.slow`` (see
``pyproject.toml``); deselect them locally with ``-m "not slow"`` —
they still run by default so the tier-1 gate covers everything.
"""

import os
import sys

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "fast",
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=75,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))


@pytest.fixture
def low_recursion_limit():
    """Run a test under a low interpreter recursion limit.

    Any engine that recursed on operand depth would blow this limit on
    the deep-chain workloads; the iterative engines must not notice.
    """
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(1000)
    try:
        yield 1000
    finally:
        sys.setrecursionlimit(old)
