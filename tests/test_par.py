"""The repro.par subsystem: shared-memory forests and parallel sweeps.

Covers the freeze → attach → query contract against the in-process
manager as oracle (all backends, hypothesis-driven), the segment
lifecycle error surface, true cross-process attachment, the
:class:`~repro.par.pool.ParallelPool` round trip including
worker-death respawn, and the no-leaked-segments guarantee.
"""

import multiprocessing
import random
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from test_expr_api import expressions
from repro.par import (
    ParallelPool,
    ParError,
    ShmForest,
    active_segments,
    parallel_sat_count,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

NAMES = ["a", "b", "c", "d", "e", "f"]
ALL_BACKENDS = ["bbdd", "bdd", "xmem"]


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must unlink the segments it created."""
    before = set(active_segments())
    yield
    assert set(active_segments()) - before == set()


def all_assignments(names):
    for bits in range(1 << len(names)):
        yield {name: (bits >> i) & 1 for i, name in enumerate(names)}


def build(backend, expr="(a ^ b) | (c & d) | (e & ~f)"):
    manager = repro.open(backend, vars=NAMES)
    return manager, manager.add_expr(expr)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_frozen_forest_matches_manager(backend):
    manager, f = build(backend)
    g = manager.add_expr("~a | (b ^ c)")
    queries = list(all_assignments(NAMES))
    rng = random.Random(5)
    cubes = [
        {name: rng.getrandbits(1) for name in rng.sample(NAMES, rng.randrange(len(NAMES)))}
        for _ in range(64)
    ]
    with ShmForest.freeze(manager, {"f": f, "g": g}) as forest:
        assert forest.kind == backend
        assert sorted(forest.functions) == ["f", "g"]
        assert forest.num_vars == len(NAMES)
        assert forest.node_count > 0
        for name, func in (("f", f), ("g", g)):
            assert forest.evaluate_batch(name, queries) == func.evaluate_batch(queries)
            assert forest.satisfiable_batch(name, cubes) == func.satisfiable_batch(cubes)
            assert forest.sat_count(name) == func.sat_count()
            named_support = {forest.var_name(i) for i in forest.support(name)}
            assert named_support == func.support()


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_frozen_constants_and_complements(backend):
    manager = repro.open(backend, vars=["x", "y"])
    t, f_ = manager.true(), manager.false()
    g = ~(manager.var("x") & manager.var("y"))
    queries = list(all_assignments(["x", "y"]))
    with ShmForest.freeze(manager, {"t": t, "f": f_, "g": g}) as forest:
        assert forest.evaluate_batch("t", queries) == [True] * 4
        assert forest.evaluate_batch("f", queries) == [False] * 4
        assert forest.evaluate_batch("g", queries) == g.evaluate_batch(queries)
        assert forest.sat_count("t") == 4
        assert forest.sat_count("f") == 0
        assert forest.sat_count("g") == 3


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@settings(**_SETTINGS)
@given(data=st.data())
def test_frozen_forest_equivalence_property(backend, data):
    expr = data.draw(expressions(tuple(NAMES[:4])))
    manager = repro.open(backend, vars=NAMES[:4])
    f = manager.add_expr(expr)
    queries = list(all_assignments(NAMES[:4]))
    with ShmForest.freeze(manager, {"f": f}) as forest:
        assert forest.evaluate_batch("f", queries) == f.evaluate_batch(queries)
        assert forest.sat_count("f") == f.sat_count()


def test_sequential_fallback_when_freeze_unavailable():
    """A backend whose ``batch_stream`` yields no export still answers."""
    manager, f = build("bbdd")
    queries = list(all_assignments(NAMES))
    want = f.evaluate_batch(queries)
    manager.freeze_export = lambda named: None
    with pytest.raises(ParError, match="sequential in-process batch path"):
        ShmForest.freeze(manager, {"f": f})
    # The workers= protocol surface falls back without raising.
    assert f.evaluate_batch(queries, workers=2) == want
    assert f.satisfiable_batch([{"a": 1}], workers=2) == f.satisfiable_batch([{"a": 1}])
    assert parallel_sat_count({"f": f}) == {"f": f.sat_count()}


def test_segment_lifecycle_errors():
    manager, f = build("bbdd")
    forest = ShmForest.freeze(manager, {"f": f})
    name = forest.name
    attached = ShmForest.attach(name)
    assert attached.evaluate("f", {n: 1 for n in NAMES}) == f.evaluate(
        {n: 1 for n in NAMES}
    )
    attached.close()
    attached.close()  # double close is fine
    with pytest.raises(ParError, match="closed"):
        attached.evaluate("f", {n: 1 for n in NAMES})
    forest.unlink()
    with pytest.raises(ParError, match="no shared forest segment"):
        ShmForest.attach(name)
    with pytest.raises(ParError):
        forest.unlink()  # double unlink reports, not crashes
    forest.close()


def test_freeze_rejects_bad_functions():
    manager, f = build("bbdd")
    other = repro.open("bbdd", vars=NAMES)
    with pytest.raises(ParError):
        ShmForest.freeze(manager, {})
    with pytest.raises(ParError):
        ShmForest.freeze(manager, {"g": other.add_expr("a")})


def _attach_and_evaluate(segment, queries, queue):
    from repro.par import ShmForest

    forest = ShmForest.attach(segment)
    try:
        queue.put(forest.evaluate_batch("f", queries))
    finally:
        forest.close()


@pytest.mark.timeout(60)
def test_attach_from_subprocess():
    """A separate process sees the same bits through the segment."""
    manager, f = build("bbdd")
    queries = list(all_assignments(NAMES))
    want = f.evaluate_batch(queries)
    with ShmForest.freeze(manager, {"f": f}) as forest:
        ctx = multiprocessing.get_context()
        queue = ctx.Queue()
        process = ctx.Process(
            target=_attach_and_evaluate, args=(forest.name, queries, queue)
        )
        process.start()
        got = queue.get(timeout=30)
        process.join(timeout=10)
    assert got == want
    assert process.exitcode == 0


@pytest.mark.timeout(120)
def test_parallel_pool_round_trip():
    manager, f = build("bbdd")
    g = manager.add_expr("a <-> (b & e)")
    rng = random.Random(11)
    queries = [{n: rng.getrandbits(1) for n in NAMES} for _ in range(500)]
    cubes = [
        {n: rng.getrandbits(1) for n in rng.sample(NAMES, rng.randrange(len(NAMES)))}
        for _ in range(200)
    ]
    forest = ShmForest.freeze(manager, {"f": f, "g": g})
    try:
        with ParallelPool(workers=2, timeout=60) as pool:
            assert sorted(pool.warm(forest)) == ["f", "g"]
            assert pool.evaluate_batch(forest, "f", queries) == f.evaluate_batch(queries)
            many = pool.evaluate_many(forest, ["f", "g"], queries)
            assert many["g"] == g.evaluate_batch(queries)
            assert pool.satisfiable_batch(forest, "f", cubes) == f.satisfiable_batch(cubes)
            assert pool.sat_count(forest, ["f", "g"]) == {
                "f": f.sat_count(),
                "g": g.sat_count(),
            }
            stats = pool.stats()
            assert stats["workers"] == 2
            assert stats["batches"] >= 3
            assert stats["tasks_dispatched"] >= stats["batches"]
            pool.detach(forest)
    finally:
        forest.unlink()
        forest.close()


def test_parallel_pool_inline_mode():
    """``workers=0`` serves the same answers without subprocesses."""
    manager, f = build("bbdd")
    queries = list(all_assignments(NAMES))
    forest = ShmForest.freeze(manager, {"f": f})
    try:
        with ParallelPool(workers=0) as pool:
            assert pool.workers == 0
            assert pool.evaluate_batch(forest, "f", queries) == f.evaluate_batch(queries)
            assert pool.sat_count(forest, ["f"]) == {"f": f.sat_count()}
    finally:
        forest.unlink()
        forest.close()


@pytest.mark.timeout(120)
def test_parallel_pool_worker_death_respawns():
    manager, f = build("bbdd")
    rng = random.Random(13)
    queries = [{n: rng.getrandbits(1) for n in NAMES} for _ in range(300)]
    want = f.evaluate_batch(queries)
    forest = ShmForest.freeze(manager, {"f": f})
    try:
        with ParallelPool(workers=2, timeout=60) as pool:
            pool.warm(forest)
            assert pool.evaluate_batch(forest, "f", queries) == want
            pool._crew.processes[0].kill()
            time.sleep(0.2)
            assert pool.evaluate_batch(forest, "f", queries) == want
            assert pool.worker_restarts >= 1
    finally:
        forest.unlink()
        forest.close()


def test_one_shot_helpers_and_workers_kwarg():
    manager, f = build("bbdd")
    queries = list(all_assignments(NAMES))
    want = f.evaluate_batch(queries)
    assert f.evaluate_batch(queries, workers=2) == want
    assert parallel_sat_count({"f": f}, workers=2) == {"f": f.sat_count()}
