"""CVO swap theory and sifting: the Fig. 2 validation battery.

The in-place swap is checked against the strongest available oracle: a
from-scratch rebuild under the new order must be structurally identical
(canonicity), and every user handle must keep its function.
"""

import random

import pytest

from repro.core import BBDDManager
from repro.core import reorder
from repro.core.traversal import count_nodes


def _random_forest(rng, n, count):
    m = BBDDManager(n)
    masks = [rng.getrandbits(1 << n) for _ in range(count)]
    funcs = [m.function(reorder.from_truth_table(m, mask)) for mask in masks]
    return m, masks, funcs


@pytest.mark.parametrize("seed", range(8))
def test_single_swap_preserves_functions(seed):
    rng = random.Random(seed)
    n = rng.randint(2, 7)
    m, masks, funcs = _random_forest(rng, n, rng.randint(1, 4))
    k = rng.randrange(n - 1)
    reorder.swap_adjacent(m, k)
    m.check_invariants()
    for f, mask in zip(funcs, masks):
        assert f.truth_mask(range(n)) == mask


@pytest.mark.parametrize("seed", range(8))
def test_swap_sequence_matches_rebuild_oracle(seed):
    rng = random.Random(100 + seed)
    n = rng.randint(3, 7)
    m, masks, funcs = _random_forest(rng, n, rng.randint(1, 3))
    for _ in range(rng.randint(2, 12)):
        reorder.swap_adjacent(m, rng.randrange(n - 1))
    m.check_invariants()
    m2 = BBDDManager(n)
    m2.order.set_order(m.order.order)
    edges2 = [reorder.from_truth_table(m2, mask) for mask in masks]
    m.gc()
    assert count_nodes(m, [f.edge for f in funcs]) == count_nodes(m2, edges2)
    for f, e2 in zip(funcs, edges2):
        assert f.attr == (e2 < 0)
        assert f.truth_mask(range(n)) == m2.function(e2).truth_mask(range(n))


def test_swap_is_pointer_stable():
    m = BBDDManager(4)
    a, b, c, d = m.variables()
    f = (a & b) | (c ^ d)
    root_before = f.node
    reorder.swap_adjacent(m, 1)
    assert f.node is root_before  # handles stay valid without rewriting


def test_swap_locality_untouched_functions():
    """Functions that involve only one of the two swapped variables must
    keep their root node untouched (the paper's locality claim)."""
    m = BBDDManager(5)
    a, b, c, d, e = m.variables()
    g = a.xnor(c)  # depends on neither x1 nor... involves c only
    h = b & e
    g_root, h_root = g.node, h.node
    g_tuple = (g.node.pv, g.node.sv, g.node.neq, g.node.eq)
    reorder.swap_adjacent(m, 3)  # swap x3, x4: g untouched entirely
    assert g.node is g_root
    assert (g.node.pv, g.node.sv, g.node.neq, g.node.eq) == g_tuple
    assert h.node is h_root  # h depends on x4 but not x3: untouched
    m.check_invariants()


def test_sift_shrinks_interleaving_blowup():
    n_pairs = 4
    names = [f"a{i}" for i in range(n_pairs)] + [f"b{i}" for i in range(n_pairs)]
    m = BBDDManager(names)
    f = m.true()
    for i in range(n_pairs):
        f = f & m.var(f"a{i}").xnor(m.var(f"b{i}"))
    mask = f.truth_mask(names)
    result = reorder.sift(m, converge=True)
    m.check_invariants()
    assert f.truth_mask(names) == mask
    assert result.final_size <= result.initial_size
    # The equality-of-vectors function is linear under the sifted order.
    assert f.node_count() <= n_pairs + 1


def test_swap_with_dead_garbage_then_converge_sift():
    """Swapping over a store holding once-live dead nodes must not let a
    reclaimed slot's recycled identity alias a stale unique-table key
    (the flat store's ABA hazard): the dead node's key names child slots
    whose counts it already dropped, so a level sweep may free and
    ``_make`` re-issue them mid-swap."""
    width = 6
    names = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    m = BBDDManager(names)
    # add_expr leaves floating intermediates and once-live dead nodes
    # behind — deliberately no gc() before the raw swap primitive.
    equal = m.add_expr(" & ".join(f"(a{i} <-> b{i})" for i in range(width)))
    mask = equal.truth_mask(names)
    reorder.swap_adjacent(m, width - 1)
    m.check_invariants()
    assert equal.truth_mask(names) == mask
    result = reorder.sift(m, converge=True)
    m.check_invariants()
    assert equal.truth_mask(names) == mask
    # The interleaved comparator chain is linear.
    assert result.final_size <= 2 * width + 1


@pytest.mark.parametrize("seed", range(5))
def test_sift_preserves_random_forests(seed):
    rng = random.Random(200 + seed)
    n = rng.randint(3, 7)
    m, masks, funcs = _random_forest(rng, n, 2)
    reorder.sift(m)
    m.check_invariants()
    for f, mask in zip(funcs, masks):
        assert f.truth_mask(range(n)) == mask


def test_reorder_to_target():
    rng = random.Random(42)
    n = 6
    m, masks, funcs = _random_forest(rng, n, 2)
    perm = list(range(n))
    rng.shuffle(perm)
    reorder.reorder_to(m, perm)
    assert m.order.order == tuple(perm)
    m.check_invariants()
    for f, mask in zip(funcs, masks):
        assert f.truth_mask(range(n)) == mask


def test_sift_max_swaps_budget():
    rng = random.Random(77)
    m, masks, funcs = _random_forest(rng, 6, 3)
    result = reorder.sift(m, max_swaps=5)
    assert result.swaps <= 5
    for f, mask in zip(funcs, masks):
        assert f.truth_mask(range(6)) == mask


def test_from_truth_table_builds_canonically():
    m = BBDDManager(3)
    a, b, c = m.variables()
    f_apply = (a ^ b) | c
    mask = f_apply.truth_mask(range(3))
    f_tt = m.function(reorder.from_truth_table(m, mask))
    assert f_apply == f_tt
