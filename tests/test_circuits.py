"""Benchmark generator tests: functional correctness + paper signatures."""

import random

import pytest

from repro.circuits import datapath, iscas, mcnc
from repro.circuits.registry import TABLE1_ROWS, TABLE2_ROWS, get_circuit
from repro.network.simulate import apply_vector, output_truth_masks


def test_paper_signatures_table1():
    for row in TABLE1_ROWS:
        net = row.build(full=True)
        assert net.num_inputs == row.paper_inputs, row.name
        assert net.num_outputs == row.paper_outputs, row.name
        net.validate()


def test_paper_signatures_table2():
    for row in TABLE2_ROWS:
        net = row.build(full=True)
        assert net.num_inputs == row.paper_inputs, row.name
        assert net.num_outputs == row.paper_outputs, row.name
        net.validate()


def test_fast_profile_builds():
    for row in TABLE1_ROWS:
        row.build(full=False).validate()
    for row in TABLE2_ROWS:
        row.build(full=False).validate()


def test_registry_lookup():
    assert get_circuit("C17").num_inputs == 5
    with pytest.raises(KeyError):
        get_circuit("nonexistent")


def test_my_adder_functional():
    rng = random.Random(1)
    net = mcnc.my_adder(6)
    for _ in range(40):
        a, b, c = rng.randrange(64), rng.randrange(64), rng.randrange(2)
        asg = {f"a{i}": (a >> i) & 1 for i in range(6)}
        asg.update({f"b{i}": (b >> i) & 1 for i in range(6)})
        asg["cin"] = c
        out = apply_vector(net, asg)
        total = sum(out[f"s{i}"] << i for i in range(6)) + (out["cout"] << 6)
        assert total == a + b + c


def test_comp_functional():
    rng = random.Random(2)
    net = mcnc.comp(5)
    for _ in range(40):
        a, b = rng.randrange(32), rng.randrange(32)
        asg = {f"a{i}": (a >> i) & 1 for i in range(5)}
        asg.update({f"b{i}": (b >> i) & 1 for i in range(5)})
        out = apply_vector(net, asg)
        assert out["lt"] == int(a < b)
        assert out["eq"] == int(a == b)
        assert out["gt"] == int(a > b)


def test_parity_and_9symml():
    net = mcnc.parity(8)
    rng = random.Random(3)
    for _ in range(30):
        bits = [rng.randrange(2) for _ in range(8)]
        out = apply_vector(net, {f"x{i}": bits[i] for i in range(8)})
        assert out["p"] == sum(bits) % 2
    sym = mcnc.nine_symml()
    for _ in range(40):
        bits = [rng.randrange(2) for _ in range(9)]
        out = apply_vector(sym, {f"x{i}": bits[i] for i in range(9)})
        assert out["f"] == int(3 <= sum(bits) <= 6)


def test_decod_functional():
    net = mcnc.decod()
    for code in range(16):
        asg = {f"a{i}": (code >> i) & 1 for i in range(4)}
        asg["en"] = 1
        out = apply_vector(net, asg)
        for j in range(16):
            assert out[f"d{j}"] == int(j == code)
        asg["en"] = 0
        out = apply_vector(net, asg)
        assert all(out[f"d{j}"] == 0 for j in range(16))


def test_z4ml_functional():
    net = mcnc.z4ml()
    rng = random.Random(4)
    for _ in range(40):
        a, b, c, cin = rng.randrange(4), rng.randrange(4), rng.randrange(4), rng.randrange(2)
        asg = {
            "a0": a & 1, "a1": (a >> 1) & 1,
            "b0": b & 1, "b1": (b >> 1) & 1,
            "c0": c & 1, "c1": (c >> 1) & 1,
            "cin": cin,
        }
        out = apply_vector(net, asg)
        total = sum(out[f"s{i}"] << i for i in range(4))
        assert total == a + b + c + cin


def test_count_functional():
    width = 6
    net = mcnc.count(width)
    rng = random.Random(5)
    for _ in range(60):
        q, d = rng.randrange(1 << width), rng.randrange(1 << width)
        clear, load, en = rng.randrange(2), rng.randrange(2), rng.randrange(2)
        asg = {f"q{i}": (q >> i) & 1 for i in range(width)}
        asg.update({f"d{i}": (d >> i) & 1 for i in range(width)})
        asg.update({"clear": clear, "load": load, "en": en})
        out = apply_vector(net, asg)
        value = sum(out[f"n{i}"] << i for i in range(width))
        if clear:
            expect = 0
        elif load:
            expect = d
        elif en:
            expect = (q + 1) % (1 << width)
        else:
            expect = q
        assert value == expect


def test_sec_circuits_correct_single_errors():
    width = 8
    net = iscas.c499(width)
    rng = random.Random(6)
    columns = list(range(1, width + 1))
    checks = len([n for n in net.inputs if n.startswith("ic")])
    for _ in range(25):
        data = [rng.randrange(2) for _ in range(width)]
        # Consistent check word for the data.
        check = []
        for j in range(checks):
            bit = 0
            for i, col in enumerate(columns):
                if (col >> j) & 1:
                    bit ^= data[i]
            check.append(bit)
        flip = rng.randrange(width + 1)  # width == no error
        received = list(data)
        if flip < width:
            received[flip] ^= 1
        asg = {f"id{i}": received[i] for i in range(width)}
        asg.update({f"ic{j}": check[j] for j in range(checks)})
        asg["r"] = 1
        out = apply_vector(net, asg)
        corrected = [out[f"od{i}"] for i in range(width)]
        assert corrected == data  # single error corrected (or none)


def test_c1355_matches_c499_function():
    from repro.network.simulate import networks_equivalent

    a = iscas.c499(6)
    b = iscas.c1355(6)
    # Same function family; C1355 interleaves inputs, so compare by
    # matching names rather than position.
    assert sorted(a.inputs) == sorted(b.inputs)
    assert networks_equivalent(a, b)


def test_alu4_logic_mode_truth_table():
    net = mcnc.alu4()
    rng = random.Random(8)
    for _ in range(40):
        a, b, s = rng.randrange(16), rng.randrange(16), rng.randrange(16)
        asg = {f"a{i}": (a >> i) & 1 for i in range(4)}
        asg.update({f"b{i}": (b >> i) & 1 for i in range(4)})
        asg.update({f"s{i}": (s >> i) & 1 for i in range(4)})
        asg.update({"m": 1, "cn": 0})
        out = apply_vector(net, asg)
        for i in range(4):
            idx = (((a >> i) & 1) << 1) | ((b >> i) & 1)
            assert out[f"f{i}"] == (s >> idx) & 1


def test_barrel_rotates():
    net = datapath.barrel(8, controls=True)
    rng = random.Random(9)
    for _ in range(40):
        data = rng.randrange(256)
        sh = rng.randrange(8)
        asg = {f"d{i}": (data >> i) & 1 for i in range(8)}
        asg.update({f"sh{j}": (sh >> j) & 1 for j in range(3)})
        asg.update({"left": 1, "rot": 1})
        out = apply_vector(net, asg)
        value = sum(out[f"q{i}"] << i for i in range(8))
        expect = ((data << sh) | (data >> (8 - sh))) & 0xFF if sh else data
        assert value == expect


def test_barrel_shifts_zero_fill():
    net = datapath.barrel(8, controls=True)
    rng = random.Random(10)
    for _ in range(40):
        data = rng.randrange(256)
        sh = rng.randrange(8)
        asg = {f"d{i}": (data >> i) & 1 for i in range(8)}
        asg.update({f"sh{j}": (sh >> j) & 1 for j in range(3)})
        asg.update({"left": 0, "rot": 0})
        out = apply_vector(net, asg)
        value = sum(out[f"q{i}"] << i for i in range(8))
        assert value == (data >> sh)


def test_datapath_adder_and_comparators():
    rng = random.Random(11)
    add = datapath.adder(6)
    eq = datapath.equality_dp(6)
    mag = datapath.magnitude_dp(6)
    for _ in range(40):
        a, b = rng.randrange(64), rng.randrange(64)
        asg = {f"a{i}": (a >> i) & 1 for i in range(6)}
        asg.update({f"b{i}": (b >> i) & 1 for i in range(6)})
        out = apply_vector(add, asg)
        total = sum(out[f"s{i}"] << i for i in range(6)) + (out["cout"] << 6)
        assert total == a + b
        assert apply_vector(eq, asg)["eq"] == int(a == b)
        assert apply_vector(mag, asg)["lt"] == int(a < b)


def test_pla_determinism():
    n1 = mcnc.misex1()
    n2 = mcnc.misex1()
    assert output_truth_masks(n1) == output_truth_masks(n2)
