"""Hypothesis property tests over the core invariants.

These complement the randomized trials in the other modules with
shrinkable, generator-driven coverage of the package's central claims:
operation semantics, canonicity, swap-based reordering, and the
cross-package agreement between BBDDs and the baseline BDDs.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.bdd import BDDManager
from repro.core import BBDDManager
from repro.core import reorder
from repro.core.operations import ALL_OPS
from repro.core.truthtable import TruthTable
from repro.io.migrate import ProtocolMigrator

# max_examples comes from the active hypothesis profile (fast/ci —
# see tests/conftest.py); only per-test shape settings live here.
_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def masked_function(draw, max_vars=5):
    n = draw(st.integers(min_value=2, max_value=max_vars))
    mask = draw(st.integers(min_value=0, max_value=(1 << (1 << n)) - 1))
    return n, mask


@given(masked_function(), st.sampled_from(ALL_OPS), st.data())
@settings(**_SETTINGS)
def test_apply_semantics_property(fn, op, data):
    n, ma = fn
    mb = data.draw(st.integers(min_value=0, max_value=(1 << (1 << n)) - 1))
    m = BBDDManager(n)
    fa = m.function(reorder.from_truth_table(m, ma))
    fb = m.function(reorder.from_truth_table(m, mb))
    fc = fa.apply(fb, op)
    assert fc.truth_mask(range(n)) == TruthTable(n, ma).apply(TruthTable(n, mb), op).mask
    m.check_invariants()


@given(masked_function())
@settings(**_SETTINGS)
def test_double_negation_and_self_ops(fn):
    n, mask = fn
    m = BBDDManager(n)
    f = m.function(reorder.from_truth_table(m, mask))
    assert ~~f == f
    assert (f ^ f).is_false
    assert (f & f) == f
    assert (f | ~f).is_true


@given(masked_function(), st.data())
@settings(**_SETTINGS)
def test_swap_preserves_function_property(fn, data):
    n, mask = fn
    m = BBDDManager(n)
    f = m.function(reorder.from_truth_table(m, mask))
    k = data.draw(st.integers(min_value=0, max_value=n - 2))
    reorder.swap_adjacent(m, k)
    m.check_invariants()
    assert f.truth_mask(range(n)) == mask


@given(masked_function())
@settings(**_SETTINGS)
def test_swap_involution_restores_structure(fn):
    n, mask = fn
    m = BBDDManager(n)
    f = m.function(reorder.from_truth_table(m, mask))
    before_order = m.order.order
    before_count = f.node_count()
    reorder.swap_adjacent(m, 0)
    reorder.swap_adjacent(m, 0)
    assert m.order.order == before_order
    assert f.node_count() == before_count
    assert f.truth_mask(range(n)) == mask


@given(masked_function())
@settings(**_SETTINGS)
def test_bbdd_and_bdd_agree(fn):
    n, mask = fn
    m = BBDDManager(n)
    f = m.function(reorder.from_truth_table(m, mask))
    mb = BDDManager(n)
    vs = mb.variables()

    def build(table, j=0):
        if table.mask == 0:
            return mb.false()
        if table.mask == table._full():
            return mb.true()
        f1 = build(table.restrict(j, True), j + 1)
        f0 = build(table.restrict(j, False), j + 1)
        return vs[j].ite(f1, f0)

    g = build(TruthTable(n, mask))
    assert f.truth_mask(range(n)) == g.truth_mask(range(n))
    assert f.sat_count() == g.sat_count()


@st.composite
def sparse_function(draw, max_vars=8):
    """A function over a random *subset* of the manager's variables.

    The support-chained CVO makes couples skip non-support variables,
    which is exactly the regime where sat_one's old partner resolution
    (against the global order) produced unsatisfying assignments.
    """
    n = draw(st.integers(min_value=2, max_value=max_vars))
    k = draw(st.integers(min_value=1, max_value=min(n, 4)))
    chosen = sorted(
        draw(
            st.sets(
                st.integers(min_value=0, max_value=n - 1),
                min_size=k,
                max_size=k,
            )
        )
    )
    sub_mask = draw(st.integers(min_value=1, max_value=(1 << (1 << k)) - 1))
    # Expand the k-variable table to all n variables (don't-care fill).
    mask = 0
    for i in range(1 << n):
        j = 0
        for bit, var in enumerate(chosen):
            j |= ((i >> var) & 1) << bit
        if (sub_mask >> j) & 1:
            mask |= 1 << i
    return n, mask


@given(sparse_function(), st.sampled_from(["dict", "cantor"]))
@settings(**_SETTINGS)
def test_sat_one_always_satisfies_property(fn, backend):
    n, mask = fn
    m = BBDDManager(n, unique_backend=backend, computed_backend=backend)
    f = m.function(reorder.from_truth_table(m, mask))
    witness = f.sat_one()
    assert witness is not None  # sub_mask >= 1 guarantees satisfiability
    # The witness covers the support, so the strict evaluate accepts it
    # and the function holds under it.
    assert set(witness) >= f.support()
    assert f.evaluate(witness)
    # Cross-check against the truth-table oracle as well.
    index = 0
    for var in range(n):
        if witness.get(m.var_name(var), False):
            index |= 1 << var
    assert (mask >> index) & 1


@st.composite
def expr_forest(draw, max_vars=4, max_funcs=3, max_depth=3):
    """A small forest of random Boolean expression strings."""
    n = draw(st.integers(min_value=2, max_value=max_vars))
    names = [f"v{i}" for i in range(n)]

    def expr(depth):
        if depth >= max_depth or draw(st.booleans()):
            leaf = draw(st.integers(min_value=0, max_value=5))
            if leaf == 0:
                return "TRUE"
            if leaf == 1:
                return "FALSE"
            return draw(st.sampled_from(names))
        op = draw(st.sampled_from(["&", "|", "^", "->", "<->", "~", "ite"]))
        if op == "~":
            return f"~({expr(depth + 1)})"
        if op == "ite":
            return (
                f"ite({expr(depth + 1)}, {expr(depth + 1)}, {expr(depth + 1)})"
            )
        return f"({expr(depth + 1)} {op} {expr(depth + 1)})"

    count = draw(st.integers(min_value=1, max_value=max_funcs))
    return n, names, [expr(0) for _ in range(count)]


@given(expr_forest())
@settings(**_SETTINGS)
def test_backend_equivalence_round_trip_property(forest):
    """Every backend agrees with the BDD oracle through the migrator.

    A random expression forest is built on the flat int store, copied to
    each registered backend with :class:`ProtocolMigrator`, and copied
    back into a fresh int store; ``evaluate_batch``/``sat_count``/
    ``to_expr`` must agree with an independently built BDD oracle at
    every hop.
    """
    n, names, exprs = forest
    oracle_mgr = repro.open(backend="bdd", vars=names)
    oracles = [oracle_mgr.add_expr(s) for s in exprs]
    src = repro.open(backend="bbdd", vars=names)
    fs = [src.add_expr(s) for s in exprs]
    assignments = [
        {name: bool((i >> k) & 1) for k, name in enumerate(names)}
        for i in range(1 << n)
    ]
    expected = [o.evaluate_batch(assignments) for o in oracles]
    for f, o, want in zip(fs, oracles, expected):
        assert f.evaluate_batch(assignments) == want
        assert f.sat_count() == o.sat_count()
    for backend in repro.backends():
        dst = repro.open(backend=backend, vars=names)
        out = ProtocolMigrator(src, dst)
        back_mgr = repro.open(backend="bbdd", vars=names)
        for f, o, want in zip(fs, oracles, expected):
            copy = out.function(f)
            assert copy.evaluate_batch(assignments) == want
            assert copy.sat_count() == o.sat_count()
            round_trip = ProtocolMigrator(dst, back_mgr).function(copy)
            assert round_trip.evaluate_batch(assignments) == want
            assert round_trip.sat_count() == o.sat_count()
            reparsed = back_mgr.add_expr(copy.to_expr())
            assert reparsed.evaluate_batch(assignments) == want
        back_mgr.check_invariants()
    src.check_invariants()


@given(
    st.lists(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        min_size=2,
        max_size=6,
    ),
    st.data(),
)
@settings(**_SETTINGS)
def test_gc_churn_free_list_reuse_property(masks, data):
    """Interleaved builds and drops keep the store's accounting exact.

    At every step the incremental dead counter matches a full scan and
    the flat arrays partition into {slot 0, sink, allocated, free list}.
    After a collection, rebuilding the same forest must be served
    entirely from the free list — the arrays may not grow.
    """
    m = BBDDManager(5, auto_gc=False)

    def check_accounting():
        assert m.dead_count() == m._scan_dead()
        # Slot 0 and the sink are never allocated; everything else is
        # either a live/dead node or on the free list.
        assert len(m._pv) == 2 + m.size() + len(m._free_nodes)

    live = {}
    for i, mask in enumerate(masks):
        live[i] = m.function(reorder.from_truth_table(m, mask))
        check_accounting()
        if live and data.draw(st.booleans()):
            del live[data.draw(st.sampled_from(sorted(live)))]
            check_accounting()
    m.gc()
    assert m.dead_count() == 0 == m._scan_dead()
    check_accounting()
    m.check_invariants()
    # Free-list reuse: the first build reached this capacity with the
    # whole forest (plus construction intermediates) resident, so an
    # identical rebuild fits in the reclaimed slots.
    capacity = len(m._pv)
    rebuilt = [m.function(reorder.from_truth_table(m, mask)) for mask in masks]
    assert len(m._pv) == capacity
    check_accounting()
    for f, mask in zip(rebuilt, masks):
        assert f.truth_mask(range(5)) == mask
    m.check_invariants()


@given(masked_function(), st.data())
@settings(**_SETTINGS)
def test_restrict_quantify_laws(fn, data):
    n, mask = fn
    var = data.draw(st.integers(min_value=0, max_value=n - 1))
    m = BBDDManager(n)
    f = m.function(reorder.from_truth_table(m, mask))
    f1 = f.restrict(var, True)
    f0 = f.restrict(var, False)
    assert f.exists([var]) == (f1 | f0)
    assert f.forall([var]) == (f1 & f0)
    # Restriction removes the variable from the support.
    assert m.var_name(var) not in f1.support()
