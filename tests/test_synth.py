"""Synthesis subsystem tests: passes, mappers, BBDD rewriting, flows."""

import pytest

from repro.circuits import datapath
from repro.network.build import build_bbdd
from repro.network.network import LogicNetwork
from repro.network.simulate import networks_equivalent, output_truth_masks
from repro.synth.bbdd_rewrite import rewrite_functions
from repro.synth.flow import baseline_flow, bbdd_flow, datapath_order
from repro.synth.library import default_library
from repro.synth.mapper import map_generic, map_preserving
from repro.synth.netlist import MappedNetlist
from repro.synth.optimize import (
    flatten_associative,
    lower_to_aig,
    optimize,
    propagate_constants,
)

LIBRARY = default_library()


def small_mixed_network():
    net = LogicNetwork("mixed")
    a, b, c, d = net.add_inputs(["a", "b", "c", "d"])
    net.set_output("y1", net.mux(a, net.xor(b, c), net.maj(b, c, d)))
    net.set_output("y2", net.add_gate("NOR", [net.and_(a, b), net.inv(d)]))
    return net


def test_propagate_constants_folds():
    net = LogicNetwork("c")
    a = net.add_input("a")
    one = net.const(True)
    zero = net.const(False)
    net.set_output("y", net.and_(a, one))
    net.set_output("z", net.mux(zero, a, net.xor(a, one)))
    folded = propagate_constants(net)
    masks = output_truth_masks(folded)
    assert masks["y"] == 0b10
    assert masks["z"] == 0b01  # ~a
    assert networks_equivalent(net, folded)


def test_optimize_preserves_function():
    net = small_mixed_network()
    assert networks_equivalent(net, optimize(net))


def test_lower_to_aig_only_and_inv():
    net = small_mixed_network()
    aig = lower_to_aig(net)
    assert networks_equivalent(net, aig)
    for gate in aig.gates.values():
        assert gate.op in ("AND", "INV", "CONST0", "CONST1", "BUF")


def test_flatten_associative_balances_chains():
    net = LogicNetwork("chain")
    xs = net.add_inputs([f"x{i}" for i in range(8)])
    acc = xs[0]
    for x in xs[1:]:
        acc = net.and_(acc, x)
    net.set_output("y", acc)
    flat = flatten_associative(net)
    assert networks_equivalent(net, flat)
    widths = [len(g.fanins) for g in flat.gates.values() if g.op == "AND"]
    assert max(widths) == 8  # one wide gate


@pytest.mark.parametrize("mapper", [map_generic, map_preserving])
def test_mappers_equivalence_and_library(mapper):
    net = small_mixed_network()
    mapped = mapper(net, LIBRARY)
    assert networks_equivalent(net, mapped)
    MappedNetlist(mapped, LIBRARY)  # raises if any op is not a cell


def test_generic_mapper_rediscovers_xor():
    net = LogicNetwork("x")
    a, b = net.add_inputs(["a", "b"])
    net.set_output("y", net.xor(a, b))
    mapped = map_generic(net, LIBRARY)
    hist = MappedNetlist(mapped, LIBRARY).histogram()
    assert hist.get("XOR", 0) + hist.get("XNOR", 0) >= 1


def test_preserving_mapper_keeps_maj():
    net = LogicNetwork("m")
    a, b, c = net.add_inputs(["a", "b", "c"])
    net.set_output("y", net.maj(a, b, c))
    mapped = map_preserving(net, LIBRARY)
    assert MappedNetlist(mapped, LIBRARY).histogram().get("MAJ") == 1


def test_metrics_monotone_in_size():
    small = map_preserving(datapath.equality_dp(4), LIBRARY)
    large = map_preserving(datapath.equality_dp(8), LIBRARY)
    assert MappedNetlist(large, LIBRARY).area() > MappedNetlist(small, LIBRARY).area()
    assert MappedNetlist(large, LIBRARY).gate_count() > MappedNetlist(
        small, LIBRARY
    ).gate_count()


def test_bbdd_rewrite_equivalent_and_maj_rich():
    rtl = datapath.magnitude_dp(6)
    ordered = rtl.copy()
    ordered.inputs = datapath_order(rtl.inputs)
    manager, functions = build_bbdd(ordered)
    rewritten = rewrite_functions(manager, functions)
    assert networks_equivalent(rtl, rewritten)
    hist = rewritten.gate_histogram()
    assert hist.get("MAJ", 0) >= 4  # the comparator chain becomes majorities


def test_bbdd_rewrite_adder_xor_structure():
    rtl = datapath.adder(6)
    ordered = rtl.copy()
    ordered.inputs = datapath_order(rtl.inputs)
    manager, functions = build_bbdd(ordered)
    rewritten = rewrite_functions(manager, functions)
    assert networks_equivalent(rtl, rewritten)
    hist = rewritten.gate_histogram()
    assert hist.get("XNOR", 0) + hist.get("XOR", 0) >= 6
    assert hist.get("MAJ", 0) >= 4  # carry chain


def test_datapath_order_heuristic():
    assert datapath_order(["a0", "a1", "b0", "b1"]) == ["a1", "b1", "a0", "b0"]
    order = datapath_order(["d0", "d1", "d2", "d3", "sh0", "sh1", "left"])
    assert order[0] == "left"  # controls first
    assert order.index("sh1") < order.index("d3")  # narrow bus before wide


@pytest.mark.parametrize(
    "generator,width",
    [
        (datapath.adder, 8),
        (datapath.equality_dp, 8),
        (datapath.magnitude_dp, 8),
        (datapath.barrel, 8),
    ],
)
def test_flows_equivalent(generator, width):
    rtl = generator(width)
    base = baseline_flow(rtl, LIBRARY)
    bb = bbdd_flow(rtl, LIBRARY)
    assert base.equivalent
    assert bb.equivalent


def test_bbdd_flow_wins_on_magnitude():
    """The paper's headline case: comparators shrink dramatically."""
    rtl = datapath.magnitude_dp(12)
    base = baseline_flow(rtl, LIBRARY)
    bb = bbdd_flow(rtl, LIBRARY)
    assert bb.area < base.area
    assert bb.gate_count < base.gate_count


def test_bbdd_flow_wins_on_adder():
    rtl = datapath.adder(10)
    base = baseline_flow(rtl, LIBRARY)
    bb = bbdd_flow(rtl, LIBRARY)
    assert bb.area < base.area
    assert bb.delay_ns <= base.delay_ns


def test_flow_reports():
    rtl = datapath.equality_dp(6)
    result = bbdd_flow(rtl, LIBRARY)
    report = result.report()
    assert report["equivalent"] is True
    assert report["gates"] == result.gate_count
    assert result.bbdd_nodes > 0
