"""Unique-table and computed-table backend tests."""

import pytest

from repro.core.computed_table import make_computed_table
from repro.core.unique_table import make_unique_table


@pytest.mark.parametrize("backend", ["dict", "cantor"])
def test_unique_table_protocol(backend):
    table = make_unique_table(backend)
    key = (1, 2, 3, False, 4)
    assert table.lookup(key) is None
    table.insert(key, "node")
    assert table.lookup(key) == "node"
    assert len(table) == 1
    assert list(table.values()) == ["node"]
    table.delete(key)
    assert table.lookup(key) is None
    assert len(table) == 0
    with pytest.raises(KeyError):
        table.delete(key)


@pytest.mark.parametrize("backend", ["dict", "cantor"])
def test_unique_table_many_entries(backend):
    table = make_unique_table(backend)
    keys = [(i, i + 1, i * 7, bool(i & 1), i * 3) for i in range(3000)]
    for i, key in enumerate(keys):
        table.insert(key, i)
    assert len(table) == 3000
    for i, key in enumerate(keys):
        assert table.lookup(key) == i
    for key in keys[::2]:
        table.delete(key)
    assert len(table) == 1500
    assert table.lookup(keys[0]) is None
    assert table.lookup(keys[1]) == 1
    stats = table.stats()
    assert stats["entries"] == 1500


def test_cantor_alias_resolves_to_dict_table():
    # "cantor" survives as a config alias only; extra sizing kwargs of
    # the removed open-addressed tables are accepted and ignored.
    table = make_unique_table("cantor", initial_size=16)
    for i in range(5000):
        table.insert((i, i, i, False, i), i)
        table.lookup((i, i, i, False, i))
    stats = table.stats()
    assert stats["backend"] == "dict"
    assert stats["entries"] == 5000


@pytest.mark.parametrize("backend", ["dict", "cantor"])
def test_computed_table_roundtrip(backend):
    cache = make_computed_table(backend)
    assert cache.lookup((1, 2, 8)) is None
    cache.insert((1, 2, 8), "result")
    assert cache.lookup((1, 2, 8)) == "result"
    cache.clear()
    assert cache.lookup((1, 2, 8)) is None


def test_cantor_computed_alias_resolves_to_dict_table():
    cache = make_computed_table("cantor", size=4)
    for i in range(64):
        cache.insert((i, i, 6), i)
    for i in range(64):
        assert cache.lookup((i, i, 6)) == i
    assert cache.stats()["backend"] == "dict"


def test_disabled_computed_table():
    cache = make_computed_table("disabled")
    cache.insert((1, 2, 3), "x")
    assert cache.lookup((1, 2, 3)) is None
    assert len(cache) == 0
