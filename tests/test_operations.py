"""Operator-algebra unit tests (the updateop machinery of Algorithm 1)."""

import pytest

from repro.core import operations as ops


def brute(op, a, b):
    return (op >> ((a << 1) | b)) & 1


@pytest.mark.parametrize("op", ops.ALL_OPS)
def test_op_eval_matches_bit_layout(op):
    for a in (0, 1):
        for b in (0, 1):
            assert ops.op_eval(op, a, b) == brute(op, a, b)


@pytest.mark.parametrize("op", ops.ALL_OPS)
def test_flip_a_semantics(op):
    flipped = ops.flip_a(op)
    for a in (0, 1):
        for b in (0, 1):
            assert ops.op_eval(flipped, a, b) == ops.op_eval(op, 1 - a, b)


@pytest.mark.parametrize("op", ops.ALL_OPS)
def test_flip_b_semantics(op):
    flipped = ops.flip_b(op)
    for a in (0, 1):
        for b in (0, 1):
            assert ops.op_eval(flipped, a, b) == ops.op_eval(op, a, 1 - b)


@pytest.mark.parametrize("op", ops.ALL_OPS)
def test_flip_output_and_swap(op):
    assert ops.flip_output(op) == (~op) & 0xF
    swapped = ops.swap_operands(op)
    for a in (0, 1):
        for b in (0, 1):
            assert ops.op_eval(swapped, a, b) == ops.op_eval(op, b, a)


@pytest.mark.parametrize("op", ops.ALL_OPS)
def test_commutativity_flag(op):
    expected = all(
        ops.op_eval(op, a, b) == ops.op_eval(op, b, a)
        for a in (0, 1)
        for b in (0, 1)
    )
    assert ops.is_commutative(op) == expected


def test_named_constants():
    assert ops.op_eval(ops.OP_AND, 1, 1) == 1
    assert ops.op_eval(ops.OP_AND, 1, 0) == 0
    assert ops.op_eval(ops.OP_OR, 0, 0) == 0
    assert ops.op_eval(ops.OP_XOR, 1, 0) == 1
    assert ops.op_eval(ops.OP_XNOR, 1, 1) == 1
    assert ops.op_eval(ops.OP_NAND, 1, 1) == 0
    assert ops.op_eval(ops.OP_NOR, 0, 0) == 1


def test_op_names_round_trip():
    for op in ops.ALL_OPS:
        assert ops.op_from_name(ops.op_name(op)) == op
    assert ops.op_from_name("implies") == ops.OP_LE
    with pytest.raises(ValueError):
        ops.op_from_name("frobnicate")


@pytest.mark.parametrize("op", ops.ALL_OPS)
def test_restriction_outcomes(op):
    for value in (0, 1):
        outcome = ops.restrict_a(op, value)
        for b in (0, 1):
            want = ops.op_eval(op, value, b)
            got = {"0": 0, "1": 1, "id": b, "not": 1 - b}[outcome]
            assert got == want
        outcome = ops.restrict_b(op, value)
        for a in (0, 1):
            want = ops.op_eval(op, a, value)
            got = {"0": 0, "1": 1, "id": a, "not": 1 - a}[outcome]
            assert got == want


@pytest.mark.parametrize("op", ops.ALL_OPS)
def test_diagonal_outcome(op):
    outcome = ops.diagonal(op)
    for a in (0, 1):
        want = ops.op_eval(op, a, a)
        got = {"0": 0, "1": 1, "id": a, "not": 1 - a}[outcome]
        assert got == want
