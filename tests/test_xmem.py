"""The external-memory levelized backend (repro.xmem).

Differential coverage against the in-core BBDD package (the oracle):
random expressions agree on truth tables, sat counts, support and
canonical equality; spilling actually happens under a tiny
``node_budget`` and spilled representations keep answering; dumps are
standard ``.bbdd`` containers that round-trip through the in-core
loader (and vice versa); migration runs structurally in all directions.
"""

import io as _io
import random

import pytest

import repro
from repro.core.exceptions import BBDDError
from repro.core.operations import ALL_OPS
from repro.io.migrate import migrate_forest

NAMES = [f"v{i}" for i in range(5)]


def _random_expr(rng, names, depth=4):
    if depth == 0 or rng.random() < 0.2:
        return rng.choice(names + ["TRUE", "FALSE"])
    pick = rng.random()
    if pick < 0.15:
        return f"~({_random_expr(rng, names, depth - 1)})"
    if pick < 0.25:
        parts = [_random_expr(rng, names, depth - 1) for _ in range(3)]
        return f"ite({parts[0]}, {parts[1]}, {parts[2]})"
    if pick < 0.33:
        quant = rng.choice(["\\E", "\\A"])
        return f"({quant} {rng.choice(names)}: {_random_expr(rng, names, depth - 1)})"
    op = rng.choice(["&", "|", "^", "->", "<->"])
    return (
        f"({_random_expr(rng, names, depth - 1)} {op} "
        f"{_random_expr(rng, names, depth - 1)})"
    )


def test_xmem_matches_bbdd_oracle_randomized():
    rng = random.Random(0xE4)
    for _ in range(40):
        expr = _random_expr(rng, NAMES)
        mx = repro.open("xmem", vars=NAMES)
        mb = repro.open("bbdd", vars=NAMES)
        fx, fb = mx.add_expr(expr), mb.add_expr(expr)
        assert fx.truth_mask(NAMES) == fb.truth_mask(NAMES)
        assert fx.sat_count() == fb.sat_count()
        assert fx.support() == fb.support()
        assert mx.add_expr(fx.to_expr()) == fx  # canonical round trip
        other = _random_expr(rng, NAMES)
        gx, gb = mx.add_expr(other), mb.add_expr(other)
        op = rng.choice(ALL_OPS)
        assert fx.apply(gx, op).truth_mask(NAMES) == fb.apply(gb, op).truth_mask(
            NAMES
        )
        mx.check_invariants()


def test_xmem_derived_ops_match_oracle():
    rng = random.Random(7)
    for _ in range(15):
        expr = _random_expr(rng, NAMES)
        mx = repro.open("xmem", vars=NAMES)
        mb = repro.open("bbdd", vars=NAMES)
        fx, fb = mx.add_expr(expr), mb.add_expr(expr)
        var = rng.choice(NAMES)
        value = bool(rng.getrandbits(1))
        assert fx.restrict(var, value).truth_mask(NAMES) == fb.restrict(
            var, value
        ).truth_mask(NAMES)
        assert fx.exists([var]).truth_mask(NAMES) == fb.exists([var]).truth_mask(
            NAMES
        )
        assert fx.forall([var]).truth_mask(NAMES) == fb.forall([var]).truth_mask(
            NAMES
        )
        g_expr = "v0 ^ v4"
        assert fx.compose(var, mx.add_expr(g_expr)).truth_mask(
            NAMES
        ) == fb.compose(var, mb.add_expr(g_expr)).truth_mask(NAMES)


def test_xmem_equality_is_structural_across_representations():
    m = repro.open("xmem", vars=["a", "b", "c"])
    f = m.add_expr("(a & b) | c")
    g = m.add_expr("(b & a) | c")  # separately computed representation
    assert f == g
    assert hash(f) == hash(g)
    assert f != ~g
    assert ~f == ~g
    assert f.equivalent(g)
    assert len({f, g}) == 1


def test_xmem_spills_under_budget_and_stays_correct():
    names = [f"x{i}" for i in range(24)]
    budget = 40
    mx = repro.open("xmem", vars=names, node_budget=budget, request_chunk=8)
    mb = repro.open("bbdd", vars=names)
    rng = random.Random(1)
    pairs = []
    for k in range(8):
        fx, fb = mx.true(), mb.true()
        for i in range(0, 24, 2):
            u, v = names[(i + k) % 24], names[(i + k + 1) % 24]
            xor_like = rng.random() < 0.5
            tx = mx.var(u).xnor(mx.var(v))
            tb = mb.var(u).xnor(mb.var(v))
            fx = fx & tx if xor_like else fx ^ tx
            fb = fb & tb if xor_like else fb ^ tb
        pairs.append((fx, fb))
    stats = mx.stats()
    assert stats["live_nodes"] > 3 * budget  # forest far beyond the budget
    assert stats["resident_nodes"] <= budget  # steady-state residency bounded
    assert stats["spill_writes"] > 0  # levels actually spilled
    assert stats["request_runs_spilled"] > 0  # request queues spilled runs
    arng = random.Random(9)
    for _ in range(64):
        assignment = {n: bool(arng.getrandbits(1)) for n in names}
        for fx, fb in pairs:
            assert fx.evaluate(assignment) == fb.evaluate(assignment)


def test_xmem_dump_interoperates_with_bbdd_container():
    names = ["a", "b", "c", "d"]
    mx = repro.open("xmem", vars=names)
    f = mx.add_expr("(a ^ b) | (c & ~d)")
    g = mx.add_expr("a <-> c")
    buffer = _io.BytesIO()
    mx.dump({"f": f, "g": g}, buffer)
    data = buffer.getvalue()
    # The dump is a plain .bbdd container: the in-core loader reads it.
    from repro import io as rio

    m2, funcs = rio.loads(data)
    assert m2.backend == "bbdd"
    assert funcs["f"].truth_mask(names) == f.truth_mask(names)
    assert funcs["g"].truth_mask(names) == g.truth_mask(names)
    # ... and xmem reads BBDD dumps, into different orders and renames.
    back = rio.dumps(m2, funcs)
    mx2 = repro.open("xmem", vars=["d", "x", "c", "b", "a"])
    reloaded = mx2.load(_io.BytesIO(back))
    assert reloaded["f"].truth_mask(names) == f.truth_mask(names)
    from repro.xmem import loads_forest

    mx3 = repro.open("xmem", vars=["p", "q", "r", "s"])
    renamed = loads_forest(
        mx3, data, rename={"a": "p", "b": "q", "c": "r", "d": "s"}
    )
    assert renamed["g"].truth_mask(["p", "q", "r", "s"]) == g.truth_mask(names)


def test_xmem_dump_load_shares_one_representation():
    names = ["a", "b", "c"]
    mx = repro.open("xmem", vars=names)
    f = mx.add_expr("a & b")
    g = mx.add_expr("a & b | c")
    buffer = _io.BytesIO()
    mx.dump({"f": f, "g": g, "t": mx.true()}, buffer)
    buffer.seek(0)
    loaded = mx.load(buffer)  # back into the same manager: canonical equality
    assert loaded["f"] == f and loaded["g"] == g and loaded["t"].is_true
    assert loaded["f"].node.rep is loaded["g"].node.rep  # shared forest file


def test_xmem_swapped_dump_arguments_raise_bbdd_error(tmp_path):
    mx = repro.open("xmem", vars=["a"])
    f = mx.var("a")
    with pytest.raises(BBDDError, match="dump"):
        mx.dump(str(tmp_path / "f.bbdd"), [f])
    with pytest.raises(BBDDError, match="load"):
        mx.load([f])


def test_xmem_migration_all_directions():
    names = ["a", "b", "c", "d"]
    expr = "(a ^ b) | (c & ~d)"
    for src_backend in ("bbdd", "bdd", "xmem"):
        for dst_backend in ("bbdd", "bdd", "xmem"):
            src = repro.open(src_backend, vars=names)
            dst = repro.open(dst_backend, vars=["d", "c", "b", "a", "extra"])
            f = src.add_expr(expr)
            moved = migrate_forest({"f": f}, dst)["f"]
            assert moved.manager is dst
            assert moved.truth_mask(names) == f.truth_mask(names)
    # constants migrate too
    src = repro.open("xmem", vars=["a"])
    dst = repro.open("bbdd", vars=["a"])
    assert migrate_forest(src.true(), dst).is_true
    assert migrate_forest(~src.true(), dst).is_false


def test_xmem_migration_with_rename():
    src = repro.open("xmem", vars=["a", "b"])
    dst = repro.open("xmem", vars=["x", "y"])
    f = src.add_expr("a & ~b")
    moved = migrate_forest(f, dst, rename={"a": "x", "b": "y"})
    assert moved == dst.add_expr("x & ~y")


def test_xmem_deep_chain_is_level_iterative():
    # The sweeps iterate levels, never recursing on operand depth.
    n = 300
    m = repro.open("xmem", vars=n)
    f = m.add_expr(" ^ ".join(f"x{i}" for i in range(n)))
    assert len(f.support()) == n
    oracle = repro.open("bbdd", vars=n).add_expr(" ^ ".join(f"x{i}" for i in range(n)))
    assert f.node_count() == oracle.node_count()
    witness = f.sat_one()
    assert witness is not None and f.evaluate(witness)


def test_xmem_sift_unsupported():
    m = repro.open("xmem", vars=3)
    assert m.supports_sift is False
    with pytest.raises(BBDDError, match="reordering"):
        m.sift()


def test_xmem_node_budget_validation():
    with pytest.raises(BBDDError):
        repro.open("xmem", vars=2, node_budget=0)


def test_xmem_count_nodes_matches_oracle_sizes():
    # Canonical levelized reps are node-for-node the in-core diagrams.
    rng = random.Random(3)
    for _ in range(10):
        expr = _random_expr(rng, NAMES)
        mx = repro.open("xmem", vars=NAMES)
        mb = repro.open("bbdd", vars=NAMES)
        fx, fb = mx.add_expr(expr), mb.add_expr(expr)
        assert fx.node_count() == fb.node_count()
