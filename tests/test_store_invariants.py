"""The ``REPRO_CHECK=1`` flat-store debug checker.

The checker walks the parallel arrays after each harness pipeline stage
(post-build and post-sift) and validates what an int-coded refactor can
silently break: dangling child indices, reference-count drift against a
full parent scan, the R1/R2/R4 reduction rules and ``=``-edge
regularity.  These tests cover both directions — clean stores pass, and
hand-corrupted arrays are caught.
"""

import pytest

from repro.circuits.registry import TABLE1_ROWS
from repro.core import BBDDManager
from repro.core.exceptions import InvariantViolation
from repro.harness.table1 import run_benchmark

_ROWS = {row.name: row for row in TABLE1_ROWS}


def _forest(n=4):
    m = BBDDManager(n)
    fs = [
        (m.var(0) ^ m.var(1)) & m.var(2),
        m.var(1).xnor(m.var(3)) | m.var(0),
        ~(m.var(2) & m.var(3)),
    ]
    return m, fs


def _chain_node(m):
    """Any stored chain (non-literal) node index."""
    for node in m._uniq_raw.values():
        if m._sv[node] != -1:  # SV_ONE
            return node
    raise AssertionError("no chain node in forest")


def test_ref_count_scan_passes_on_live_forest():
    m, fs = _forest()
    m.check_ref_counts()  # lower-bound mode: handles unknown
    m.check_ref_counts([f.edge for f in fs])  # exact mode
    del fs[1]
    m.check_ref_counts([f.edge for f in fs])  # dead nodes scan to zero
    m.gc()
    m.check_ref_counts([f.edge for f in fs])


def test_ref_count_scan_detects_drift():
    m, fs = _forest()
    node = _chain_node(m)
    m._ref[node] += 1  # leaked acquire
    with pytest.raises(InvariantViolation):
        m.check_ref_counts([f.edge for f in fs])
    m._ref[node] -= 2  # lost reference: below the parent-scan floor
    with pytest.raises(InvariantViolation):
        m.check_ref_counts()
    m._ref[node] += 1


def test_checker_detects_dangling_child():
    m, fs = _forest()
    # Tombstone a referenced child without fixing its parents.
    child = None
    for node in m._uniq_raw.values():
        e = m._eq[node]
        if e != 1 and m._sv[node] != -1:  # non-sink =-child of a chain node
            child = e
            break
    assert child is not None
    del m._uniq_raw[m._node_key(child)]
    m._ref[child] = -1
    with pytest.raises(InvariantViolation):
        m.check_invariants()


def test_checker_detects_reduction_rule_violations():
    # R2: identical children.
    m, fs = _forest()
    node = _chain_node(m)
    m._neq[node] = m._eq[node]
    with pytest.raises(InvariantViolation):
        m.check_invariants()

    # =-edge regularity: complemented =-child.
    m, fs = _forest()
    node = _chain_node(m)
    m._eq[node] = -m._eq[node]
    with pytest.raises(InvariantViolation):
        m.check_invariants()

    # R4 literal shape: a stored literal node must be exactly
    # (!=: complemented sink, =: sink).
    m, fs = _forest()
    literal = next(n for n in m._uniq_raw.values() if m._sv[n] == -1)
    m._eq[literal] = -1
    with pytest.raises(InvariantViolation):
        m.check_invariants()


def test_harness_stage_hook_gated_by_env(monkeypatch):
    calls = []
    orig = BBDDManager.check_invariants

    def spy(self):
        calls.append(1)
        return orig(self)

    monkeypatch.setattr(BBDDManager, "check_invariants", spy)
    network = _ROWS["C17"].build(full=False)

    monkeypatch.delenv("REPRO_CHECK", raising=False)
    run_benchmark(network, "bbdd")
    assert calls == []  # off by default: no harness slowdown

    monkeypatch.setenv("REPRO_CHECK", "1")
    result = run_benchmark(network, "bbdd")
    assert len(calls) == 2  # post-build and post-sift
    assert result.nodes > 0
    # Other backends run the stages without the BBDD walkers.
    run_benchmark(network, "bdd")
    assert len(calls) == 2


def test_harness_hook_surfaces_corruption(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")
    orig = BBDDManager.sift

    def corrupt_then_sift(self, **kw):
        # Leak a count on a *live* node: floating garbage would simply
        # be swept by the collection at the head of sifting.
        node = next(
            n
            for n in self._uniq_raw.values()
            if self._sv[n] != -1 and self._ref[n] > 0
        )
        self._ref[node] += 1
        return orig(self, **kw)

    monkeypatch.setattr(BBDDManager, "sift", corrupt_then_sift)
    with pytest.raises(InvariantViolation):
        run_benchmark(_ROWS["C17"].build(full=False), "bbdd")
