"""Harness smoke tests (tiny subsets) and export-format tests."""

from repro.circuits.registry import TABLE1_ROWS, TABLE2_ROWS
from repro.core import BBDDManager
from repro.core.dot import to_dot
from repro.core.verilog_out import bbdd_to_verilog
from repro.harness.report import format_table
from repro.harness.table1 import render_table1, run_table1
from repro.harness.table2 import render_table2, run_table2
from repro.network.simulate import output_truth_masks
from repro.network.verilog import parse_verilog


def test_table1_harness_subset():
    rows = [r for r in TABLE1_ROWS if r.name in ("C17", "parity", "z4ml", "9symml")]
    summary = run_table1(rows=rows, full=False)
    assert len(summary["rows"]) == 4
    by_name = {r["name"]: r for r in summary["rows"]}
    # Parity: the paper's flagship XOR-rich row — BBDD must be smaller.
    assert by_name["parity"]["bbdd_nodes"] < by_name["parity"]["bdd_nodes"]
    text = render_table1(summary)
    assert "parity" in text and "node reduction" in text


def test_table2_harness_subset():
    rows = [r for r in TABLE2_ROWS if r.name in ("Equality 32", "Magnitude 32")]
    summary = run_table2(rows=rows, full=False)
    assert summary["all_equivalent"]
    by_name = {r["name"]: r for r in summary["rows"]}
    assert by_name["Magnitude 32"]["bbdd_area"] < by_name["Magnitude 32"]["base_area"]
    text = render_table2(summary)
    assert "area reduction" in text


def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], ["x", None]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert all(len(l) == len(lines[1]) for l in lines[1:])


def test_dot_export_contains_structure():
    m = BBDDManager(["a", "b", "c"])
    f = (m.var("a") ^ m.var("b")) & m.var("c")
    dot = to_dot(m, [f], names=["f"])
    assert dot.startswith("digraph")
    assert "a,b" in dot and "sink" in dot


def test_exports_render_literal_chain_and_complement():
    """Regression: the export paths ride the node-view layer.

    One forest exercising the three shapes an identity refactor breaks
    silently: a literal (R4) node, a chain-transform couple that skips an
    order variable, and complemented edges (root attribute and stored
    ``!=``-edge attribute).
    """
    m = BBDDManager(["a", "b", "c"])
    lit = m.var("b")  # literal node
    chain = m.var("a").xnor(m.var("c"))  # chain-transform couple (a, c)
    comp = m.var("a") ^ m.var("b")  # complemented root of the (a, b) node
    assert m.edge_attr(comp.edge), "xor roots carry the complement attribute"
    dot = to_dot(m, [lit, chain, comp], names=["lit", "chain", "comp"])
    # Literal: box node labelled with its variable, implicit sink edges.
    assert 'shape=box, label="b"' in dot
    # Chain transform: couple label pairs non-adjacent support variables.
    assert 'label="a,c"' in dot
    # Complements: root arrow of `comp` and the xnor node's !=-edge are
    # both dot-terminated.
    assert "comp -> " in dot and "arrowhead=odot" in dot
    comp_root = m.edge_node(comp.edge)
    assert (
        f"n{comp_root.uid} -> sink [style=dashed, arrowhead=odot" in dot
    )
    # The same three shapes survive the Verilog writer semantically.
    text = bbdd_to_verilog(
        m, {"lit": lit, "chain": chain, "comp": comp}, module_name="shapes"
    )
    net = parse_verilog(text)
    masks = output_truth_masks(net)
    order = net.inputs
    assert masks["lit"] == lit.truth_mask(order)
    assert masks["chain"] == chain.truth_mask(order)
    assert masks["comp"] == comp.truth_mask(order)


def test_bbdd_to_verilog_round_trips():
    m = BBDDManager(["a", "b", "c"])
    f = (m.var("a") & m.var("b")) | m.var("c")
    g = m.var("a").xnor(m.var("c"))
    text = bbdd_to_verilog(m, {"f": f, "g": g}, module_name="out")
    net = parse_verilog(text)
    masks = output_truth_masks(net)
    order = net.inputs
    assert masks["f"] == f.truth_mask(order)
    assert masks["g"] == g.truth_mask(order)
