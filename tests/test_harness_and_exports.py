"""Harness smoke tests (tiny subsets) and export-format tests."""

from repro.circuits.registry import TABLE1_ROWS, TABLE2_ROWS
from repro.core import BBDDManager
from repro.core.dot import to_dot
from repro.core.verilog_out import bbdd_to_verilog
from repro.harness.report import format_table
from repro.harness.table1 import render_table1, run_table1
from repro.harness.table2 import render_table2, run_table2
from repro.network.simulate import output_truth_masks
from repro.network.verilog import parse_verilog


def test_table1_harness_subset():
    rows = [r for r in TABLE1_ROWS if r.name in ("C17", "parity", "z4ml", "9symml")]
    summary = run_table1(rows=rows, full=False)
    assert len(summary["rows"]) == 4
    by_name = {r["name"]: r for r in summary["rows"]}
    # Parity: the paper's flagship XOR-rich row — BBDD must be smaller.
    assert by_name["parity"]["bbdd_nodes"] < by_name["parity"]["bdd_nodes"]
    text = render_table1(summary)
    assert "parity" in text and "node reduction" in text


def test_table2_harness_subset():
    rows = [r for r in TABLE2_ROWS if r.name in ("Equality 32", "Magnitude 32")]
    summary = run_table2(rows=rows, full=False)
    assert summary["all_equivalent"]
    by_name = {r["name"]: r for r in summary["rows"]}
    assert by_name["Magnitude 32"]["bbdd_area"] < by_name["Magnitude 32"]["base_area"]
    text = render_table2(summary)
    assert "area reduction" in text


def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], ["x", None]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert all(len(l) == len(lines[1]) for l in lines[1:])


def test_dot_export_contains_structure():
    m = BBDDManager(["a", "b", "c"])
    f = (m.var("a") ^ m.var("b")) & m.var("c")
    dot = to_dot(m, [f], names=["f"])
    assert dot.startswith("digraph")
    assert "a,b" in dot and "sink" in dot


def test_bbdd_to_verilog_round_trips():
    m = BBDDManager(["a", "b", "c"])
    f = (m.var("a") & m.var("b")) | m.var("c")
    g = m.var("a").xnor(m.var("c"))
    text = bbdd_to_verilog(m, {"f": f, "g": g}, module_name="out")
    net = parse_verilog(text)
    masks = output_truth_masks(net)
    order = net.inputs
    assert masks["f"] == f.truth_mask(order)
    assert masks["g"] == g.truth_mask(order)
