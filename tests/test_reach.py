"""Symbolic reachability: differential oracles over every backend.

Two ground truths anchor :mod:`repro.reach`:

* **explicit-state BFS** — the symbolic fixpoint's reachable set must
  enumerate to exactly the codes explicit simulation finds, on random
  transition systems up to 12 state bits;
* the **unfused oracle** — ``and_exists(f, g, V)`` must equal
  ``exists(f & g, V)`` on every backend (the fused relational product
  is an optimization, never a semantic change).

Plus the fixtures the fixpoint contract promises: termination on a
known-cyclic FSM, the ``max_iterations`` guard, and the latch-aware
BLIF round trip the frontends feed from.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.network.blif import parse_blif, write_blif
from repro.network.network import LogicNetwork
from repro.reach import (
    ReachError,
    explicit_reachable,
    from_network,
    initial_codes,
    models,
    primed,
    reachable,
)

from test_api_protocol import ALL_BACKENDS

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (backend, manager kwargs) — the matrix the oracle tests sweep.
VARIANTS = [
    ("bbdd", {}),
    ("bbdd", {"chain_reduce": True}),
    ("bdd", {}),
    ("xmem", {}),
]


def random_transition_network(rng, bits, inputs=0):
    """A random sequential network: ``bits`` latches, random next-state.

    Each next-state function is a random small expression over the
    current state (and optional primary inputs) built from the network
    convenience gates, so the explicit oracle and the symbolic builder
    see the identical structure.
    """
    net = LogicNetwork(f"rand{bits}")
    states = [f"s{i}" for i in range(bits)]
    extra = [net.add_input(f"x{j}") for j in range(inputs)]
    for i, state in enumerate(states):
        net.add_latch(f"d{i}", state, rng.randint(0, 1))
    net.reserve_names([f"d{i}" for i in range(bits)])
    signals = states + extra
    for i in range(bits):
        a, b, c = (rng.choice(signals) for _ in range(3))
        kind = rng.randrange(5)
        if kind == 0:
            out = net.xor(a, b)
        elif kind == 1:
            out = net.and_(a, net.inv(b))
        elif kind == 2:
            out = net.or_(a, net.and_(b, c))
        elif kind == 3:
            out = net.mux(a, b, net.inv(c))
        else:
            out = net.xnor(a, b)
        net.add_gate("BUF", [out], name=f"d{i}")
    net.set_output("q", states[0])
    net.validate()
    return net


# ----------------------------------------------------------------------
# symbolic vs explicit-state BFS
# ----------------------------------------------------------------------


def test_random_systems_match_explicit_bfs():
    """Random ≤12-bit transition systems: symbolic == explicit, all backends."""
    rng = random.Random(14)
    cases = [(3, 0), (4, 1), (5, 2), (6, 0), (8, 1), (10, 0), (12, 0)]
    for bits, inputs in cases:
        net = random_transition_network(rng, bits, inputs)
        oracle = explicit_reachable(net)
        for backend, kwargs in VARIANTS:
            system = from_network(net, backend=backend, **kwargs)
            result = reachable(system)
            codes = system.state_codes(result.states)
            assert codes == oracle, (net.name, backend, kwargs)
            assert result.state_count == len(oracle)
            assert result.iterations <= len(oracle)


def test_model_families_match_explicit_bfs():
    """The shipped FSM families agree with the oracle on every backend."""
    nets = [
        models.counter(4),
        models.lfsr(5),
        models.cellular_automaton(5, seed=0b101),
    ]
    for net in nets:
        oracle = explicit_reachable(net)
        for backend, kwargs in VARIANTS:
            system = from_network(net, backend=backend, **kwargs)
            result = reachable(system)
            assert system.state_codes(result.states) == oracle, (
                net.name,
                backend,
            )


def test_dont_care_resets_expand_both_initial_states():
    net = models.lfsr(3)
    net.latches[1] = (net.latches[1][0], net.latches[1][1], 2)
    assert len(initial_codes(net)) == 2
    oracle = explicit_reachable(net)
    system = from_network(net)
    result = reachable(system)
    assert system.state_codes(result.states) == oracle


# ----------------------------------------------------------------------
# the unfused and_exists oracle
# ----------------------------------------------------------------------


@st.composite
def conjoined_pair(draw, max_vars=6, max_depth=3):
    """Two random expressions plus a quantified-variable subset."""
    n = draw(st.integers(min_value=2, max_value=max_vars))
    names = [f"v{i}" for i in range(n)]

    def expr(depth):
        if depth >= max_depth or draw(st.booleans()):
            leaf = draw(st.integers(min_value=0, max_value=5))
            if leaf == 0:
                return "TRUE"
            if leaf == 1:
                return "FALSE"
            return draw(st.sampled_from(names))
        op = draw(st.sampled_from(["&", "|", "^", "->", "<->", "~"]))
        if op == "~":
            return f"~({expr(depth + 1)})"
        return f"({expr(depth + 1)} {op} {expr(depth + 1)})"

    subset = [name for name in names if draw(st.booleans())]
    return names, expr(0), expr(0), subset


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@given(case=conjoined_pair())
@settings(**_SETTINGS)
def test_and_exists_equals_unfused(backend, case):
    """``and_exists(f, g, V) == exists(f & g, V)`` on every backend."""
    names, f_text, g_text, subset = case
    manager = repro.open(backend, vars=names)
    f = manager.add_expr(f_text)
    g = manager.add_expr(g_text)
    fused = f.and_exists(g, subset)
    assert fused == (f & g).exists(subset), (backend, f_text, g_text, subset)
    # Manager spelling, operand order and the empty set behave too.
    assert manager.and_exists(g, f, subset) == fused
    assert f.and_exists(g, []) == (f & g)


@given(case=conjoined_pair())
@settings(**_SETTINGS)
def test_and_exists_equals_unfused_chain_reduced(case):
    names, f_text, g_text, subset = case
    for backend in ("bbdd", "bdd"):
        manager = repro.open(backend, vars=names, chain_reduce=True)
        f = manager.add_expr(f_text)
        g = manager.add_expr(g_text)
        assert f.and_exists(g, subset) == (f & g).exists(subset), (
            backend,
            f_text,
            g_text,
            subset,
        )


# ----------------------------------------------------------------------
# fixpoint contract
# ----------------------------------------------------------------------


def test_fixpoint_terminates_on_known_cyclic_fsm():
    """The enabled counter cycles through all states and still converges."""
    system = from_network(models.counter(5))
    result = reachable(system)
    assert result.state_count == 32
    assert result.iterations == 32
    assert result.frontier_peak >= 1
    assert result.visited_peak >= result.frontier_peak
    # Re-running from the full fixpoint converges immediately.
    again = reachable(system, init=result.states)
    assert again.iterations <= 1
    assert again.state_count == 32


def test_max_iterations_guard():
    system = from_network(models.counter(4))
    with pytest.raises(ReachError, match="3 iterations"):
        reachable(system, max_iterations=3)
    assert reachable(system, max_iterations=16).state_count == 16


def test_from_network_requires_latches():
    net = LogicNetwork("comb")
    net.add_input("a")
    net.set_output("q", "a")
    with pytest.raises(ReachError, match="no latches"):
        from_network(net)
    with pytest.raises(ReachError, match="no latches"):
        explicit_reachable(net)


def test_primed_names_and_order_interleaving():
    system = from_network(models.lfsr(3))
    manager = system.manager
    assert system.primed == [primed(s) for s in system.current]
    order = [manager.var_name(v) for v in manager.order.order]
    assert order[:6] == ["s0", "s0'", "s1", "s1'", "s2", "s2'"]


# ----------------------------------------------------------------------
# latch-aware BLIF round trip
# ----------------------------------------------------------------------


def test_blif_latch_round_trip():
    net = models.cellular_automaton(4, seed=0b0110)
    text = write_blif(net)
    back = parse_blif(text)
    assert back.latches == net.latches
    # Latch states must not reappear as .inputs.
    inputs_line = next(
        line for line in text.splitlines() if line.startswith(".inputs")
    )
    assert "c0" not in inputs_line
    assert explicit_reachable(back) == explicit_reachable(net)


def test_blif_latch_defaults_and_init():
    net = parse_blif(
        """
        .model seq
        .inputs x
        .outputs y
        .latch nxt st 1
        .latch nxt st2
        .names x st nxt
        11 1
        .names st y
        1 1
        .end
        """
    )
    assert net.latches == [("nxt", "st", 1), ("nxt", "st2", 0)]
    assert initial_codes(net) == [1]
