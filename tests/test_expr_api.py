"""The Boolean expression language and the parser round-trip property.

Covers the tentpole acceptance property — ``manager.add_expr(f.to_expr())
== f`` under hypothesis on *both* backends — plus a semantic oracle for
``add_expr`` and a cross-backend equivalence sweep (the same expression
built via BBDD and BDD agrees on sat_count and on 64 random
assignments).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.api.expr import ExprError, parse

# max_examples comes from the active hypothesis profile (fast/ci —
# see tests/conftest.py); only per-test shape settings live here.
_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

NAMES = ["a", "b", "c", "d"]
BACKENDS = ["bbdd", "bdd"]
ALL_BACKENDS = BACKENDS + ["xmem"]


def expressions(names=tuple(NAMES)):
    """Random expression strings over ``names`` (whole grammar)."""
    names = list(names)
    atoms = st.sampled_from(names + ["TRUE", "FALSE"])

    def extend(children):
        binary = st.tuples(
            children, st.sampled_from(["&", "|", "^", "->", "<->"]), children
        ).map(lambda t: f"({t[0]} {t[1]} {t[2]})")
        negation = children.map(lambda e: f"~({e})")
        ite = st.tuples(children, children, children).map(
            lambda t: f"ite({t[0]}, {t[1]}, {t[2]})"
        )
        quant = st.tuples(
            st.sampled_from(["\\E", "\\A"]),
            st.lists(st.sampled_from(names), min_size=1, max_size=2, unique=True),
            children,
        ).map(lambda t: f"({t[0]} {', '.join(t[1])}: {t[2]})")
        return st.one_of(binary, negation, ite, quant)

    return st.recursive(atoms, extend, max_leaves=12)


def eval_ast(ast, assignment):
    """Reference interpreter for the expression AST over plain bools."""
    kind = ast[0]
    if kind == "const":
        return ast[1]
    if kind == "var":
        return assignment[ast[1]]
    if kind == "not":
        return not eval_ast(ast[1], assignment)
    if kind == "ite":
        return (
            eval_ast(ast[2], assignment)
            if eval_ast(ast[1], assignment)
            else eval_ast(ast[3], assignment)
        )
    if kind in ("exists", "forall"):
        results = []
        for bits in range(1 << len(ast[1])):
            sub = dict(assignment)
            for j, name in enumerate(ast[1]):
                sub[name] = bool((bits >> j) & 1)
            results.append(eval_ast(ast[2], sub))
        return any(results) if kind == "exists" else all(results)
    a = eval_ast(ast[1], assignment)
    b = eval_ast(ast[2], assignment)
    if kind == "and":
        return a and b
    if kind == "or":
        return a or b
    if kind == "xor":
        return a != b
    if kind == "imp":
        return (not a) or b
    return a == b  # iff


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@given(expr=expressions())
@settings(**_SETTINGS)
def test_add_expr_to_expr_round_trip(backend, expr):
    """The acceptance property: add_expr(f.to_expr()) == f (canonicity)."""
    m = repro.open(backend, vars=NAMES)
    f = m.add_expr(expr)
    text = f.to_expr()
    assert m.add_expr(text) == f
    # The canonical output is deterministic.
    assert f.to_expr() == text


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@given(expr=expressions(), data=st.data())
@settings(**_SETTINGS)
def test_add_expr_matches_reference_semantics(backend, expr, data):
    m = repro.open(backend, vars=NAMES)
    f = m.add_expr(expr)
    ast = parse(expr)
    bits = data.draw(st.integers(min_value=0, max_value=(1 << len(NAMES)) - 1))
    assignment = {name: bool((bits >> i) & 1) for i, name in enumerate(NAMES)}
    assert f.evaluate(assignment) == eval_ast(ast, assignment)


@given(expr=expressions(names=("a", "b", "c", "d", "e", "f")))
@settings(**_SETTINGS)
def test_cross_backend_equivalence_sweep(expr):
    """The same expression built on every backend denotes one function."""
    names = ["a", "b", "c", "d", "e", "f"]
    built = [repro.open(b, vars=names).add_expr(expr) for b in ALL_BACKENDS]
    assert len({f.sat_count() for f in built}) == 1
    rng = random.Random(0xBBDD)
    for _ in range(64):
        assignment = {name: bool(rng.getrandbits(1)) for name in names}
        assert len({f.evaluate(assignment) for f in built}) == 1


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_expression_precedence_and_forms(backend):
    m = repro.open(backend, vars=["a", "b", "c"])
    a, b, c = (m.var(n) for n in "abc")
    assert m.add_expr("a & b | c") == (a & b) | c
    assert m.add_expr("a | b & c") == a | (b & c)
    assert m.add_expr("a ^ b & c") == a ^ (b & c)
    assert m.add_expr("~a & b") == ~a & b
    assert m.add_expr("a -> b -> c") == a.implies(b.implies(c))  # right-assoc
    assert m.add_expr("a -> b <-> ~a | b").is_true
    assert m.add_expr("ite(a, b, c)") == a.ite(b, c)
    assert m.add_expr("TRUE").is_true and m.add_expr("FALSE").is_false
    assert m.add_expr("\\E a: a & b") == b
    assert m.add_expr("\\A a, b: a | b").is_false
    assert m.add_expr("\\E a, b: a & b").is_true


@pytest.mark.slow
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_long_operator_chain_is_recursion_safe(backend, low_recursion_limit):
    # Deeper than the (lowered) interpreter recursion limit: an engine
    # recursing on operand depth would crash; the iterative/level-sweep
    # engines must not notice.
    n = low_recursion_limit + 200
    m = repro.open(backend, vars=n)
    f = m.add_expr(" ^ ".join(f"x{i}" for i in range(n)))
    assert len(f.support()) == n


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "a &",
        "& a",
        "a b",
        "ite(a, b)",
        "(a | b",
        "\\E : a",
        "\\E a a: b",
        "a ? b",
        "a @ b",
    ],
)
def test_parser_rejects_malformed(bad):
    m = repro.open("bbdd", vars=["a", "b"])
    with pytest.raises(ExprError):
        m.add_expr(bad)
    # ExprError doubles as ValueError and BBDDError.
    from repro.core.exceptions import BBDDError

    assert issubclass(ExprError, (ValueError, BBDDError))


def test_add_expr_unknown_variable():
    from repro.core.exceptions import VariableError

    m = repro.open("bdd", vars=["a"])
    with pytest.raises(VariableError):
        m.add_expr("a & nope")
