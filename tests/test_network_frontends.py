"""Logic network IR, BLIF/Verilog frontends, simulation, builders."""

import pytest

from repro.core.truthtable import TruthTable
from repro.network.blif import parse_blif, write_blif
from repro.network.build import build_bbdd, build_bdd
from repro.network.network import LogicNetwork
from repro.network.simulate import (
    apply_vector,
    networks_equivalent,
    output_truth_masks,
)
from repro.network.verilog import parse_verilog, write_verilog


def full_adder_network():
    net = LogicNetwork("fa")
    a, b, cin = net.add_inputs(["a", "b", "cin"])
    s = net.xor(net.xor(a, b), cin)
    cout = net.maj(a, b, cin)
    net.set_output("sum", s)
    net.set_output("cout", cout)
    return net


def test_network_construction_and_stats():
    net = full_adder_network()
    net.validate()
    assert net.num_inputs == 3
    assert net.num_outputs == 2
    stats = net.stats()
    assert stats["gates"] == net.num_gates
    assert "MAJ" in stats["histogram"]


def test_network_rejects_duplicates_and_cycles():
    net = LogicNetwork()
    net.add_input("a")
    with pytest.raises(ValueError):
        net.add_input("a")
    net.add_gate("INV", ["a"], name="x")
    with pytest.raises(ValueError):
        net.add_gate("INV", ["a"], name="x")
    bad = LogicNetwork()
    bad.add_input("i")
    bad.gates["p"] = bad.gates.get("p") or __import__(
        "repro.network.network", fromlist=["Gate"]
    ).Gate("AND", ["i", "q"])
    bad.gates["q"] = __import__(
        "repro.network.network", fromlist=["Gate"]
    ).Gate("AND", ["i", "p"])
    with pytest.raises(ValueError):
        bad.topological_order()


def test_simulation_matches_truth_tables():
    net = full_adder_network()
    masks = output_truth_masks(net)
    a = TruthTable.var(3, 0)
    b = TruthTable.var(3, 1)
    c = TruthTable.var(3, 2)
    assert masks["sum"] == (a ^ b ^ c).mask
    assert masks["cout"] == ((a & b) | (a & c) | (b & c)).mask


def test_apply_vector():
    net = full_adder_network()
    out = apply_vector(net, {"a": 1, "b": 1, "cin": 0})
    assert out == {"sum": 0, "cout": 1}


def test_blif_round_trip():
    net = full_adder_network()
    text = write_blif(net)
    back = parse_blif(text)
    assert networks_equivalent(net, back)
    assert back.name == net.name


def test_blif_cover_parsing():
    text = """
.model cover
.inputs a b c
.outputs y z
.names a b c y
11- 1
--1 1
.names a z
0 1
.end
"""
    net = parse_blif(text)
    masks = output_truth_masks(net)
    a, b, c = (TruthTable.var(3, i) for i in range(3))
    assert masks["y"] == ((a & b) | c).mask
    assert masks["z"] == (~a).mask


def test_verilog_round_trip():
    net = full_adder_network()
    text = write_verilog(net)
    back = parse_verilog(text)
    assert networks_equivalent(net, back)


def test_verilog_gate_instances_and_assign():
    src = """
module mixed (a, b, y, z);
  input a, b;
  output y, z;
  wire w;
  nand g1 (w, a, b);
  assign y = ~(a ^ b) | w;
  assign z = 1'b1 & a;
endmodule
"""
    net = parse_verilog(src)
    masks = output_truth_masks(net)
    a, b = TruthTable.var(2, 0), TruthTable.var(2, 1)
    assert masks["y"] == (~(a ^ b) | ~(a & b)).mask
    assert masks["z"] == a.mask


def test_verilog_rejects_vectors():
    with pytest.raises(ValueError):
        parse_verilog("module m (a); input [3:0] a; endmodule")


def test_builders_match_simulation():
    net = full_adder_network()
    masks = output_truth_masks(net)
    _mg, fns = build_bbdd(net)
    for name, f in fns.items():
        assert f.truth_mask(net.inputs) == masks[name]
    _mg2, fns2 = build_bdd(net)
    for name, f in fns2.items():
        assert f.truth_mask(net.inputs) == masks[name]


def test_builders_share_across_outputs():
    net = full_adder_network()
    mg, fns = build_bbdd(net)
    total = mg.node_count(list(fns.values()))
    separate = sum(f.node_count() for f in fns.values())
    assert total <= separate


def test_networks_equivalent_detects_difference():
    net1 = full_adder_network()
    net2 = LogicNetwork("fa")
    a, b, cin = net2.add_inputs(["a", "b", "cin"])
    net2.set_output("sum", net2.xor(a, b))  # wrong: misses cin
    net2.set_output("cout", net2.maj(a, b, cin))
    assert not networks_equivalent(net1, net2)
