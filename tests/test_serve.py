"""The repro.serve query service: bulk sweeps, pool, coalescing server.

Covers the levelized batch-evaluation sweep against the per-query
oracle on every backend (hypothesis property, duplicates, empty batch,
beyond-``request_chunk`` batches on xmem), the batched cube
satisfiability, the strict assignment error contract (missing support
variables are *named*, batch errors carry the position, constants
reject malformed mappings), the multi-process pool with sharding and
result caching, the asyncio batching server, and the
``python -m repro.serve`` CLI.
"""

import asyncio
import json
import os
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.exceptions import VariableError
from repro.serve import (
    BatchingServer,
    ColumnBatch,
    ForestPool,
    ServeError,
    serve_tcp,
)
from repro.serve.bulk import EncodedBatch, encode_mappings

BACKENDS = ["bbdd", "bdd"]
ALL_BACKENDS = BACKENDS + ["xmem"]

NAMES = ["a", "b", "c", "d", "e"]


def open_backend(backend, names=NAMES, **kwargs):
    if backend == "xmem":
        kwargs.setdefault("node_budget", 64)
        kwargs.setdefault("request_chunk", 16)
    return repro.open(backend, vars=names, **kwargs)


def random_function(manager, rng, terms=4):
    f = manager.false()
    for _ in range(terms):
        cube = manager.true()
        for name in rng.sample(NAMES, rng.randrange(1, 4)):
            literal = manager.var(name)
            cube &= literal if rng.getrandbits(1) else ~literal
        f = (f | cube) if rng.getrandbits(1) else (f ^ cube)
    return f


# ----------------------------------------------------------------------
# bulk evaluation: the hypothesis property across all backends
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@settings(deadline=None)
@given(data=st.data())
def test_evaluate_batch_matches_looped_evaluate(backend, data):
    """evaluate_batch(assignments) == [evaluate(a) for a in assignments]."""
    rng = random.Random(data.draw(st.integers(0, 2**32 - 1)))
    manager = open_backend(backend)
    f = random_function(manager, rng)
    assignments = [
        {name: rng.getrandbits(1) for name in NAMES}
        for _ in range(data.draw(st.integers(0, 40)))
    ]
    # Duplicates must round-trip identically (and hit dedup paths).
    if assignments:
        assignments.extend(rng.choices(assignments, k=5))
    assert f.evaluate_batch(assignments) == [f.evaluate(a) for a in assignments]


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_evaluate_batch_column_input(backend):
    manager = open_backend(backend)
    f = manager.add_expr("(a ^ b) | (c & d) | (a <-> e)")
    rng = random.Random(11)
    batch = [{name: rng.getrandbits(1) for name in NAMES} for _ in range(257)]
    columns = {name: 0 for name in NAMES}
    for i, assignment in enumerate(batch):
        for name in NAMES:
            if assignment[name]:
                columns[name] |= 1 << i
    want = [f.evaluate(a) for a in batch]
    assert f.evaluate_batch(ColumnBatch(columns, len(batch))) == want
    assert f.evaluate_batch(batch) == want
    assert manager.evaluate_batch(f, batch) == want


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_evaluate_batch_edge_cases(backend):
    manager = open_backend(backend)
    f = manager.add_expr("a & b")
    assert f.evaluate_batch([]) == []
    assert manager.true().evaluate_batch([{}, {"a": 1}]) == [True, True]
    assert manager.false().evaluate_batch([{}]) == [False]
    # Heterogeneous key orders within one batch (run splitting).
    batch = [{"a": 1, "b": 1}, {"b": 1, "a": 1}, {"a": 1, "b": 0, "c": 0}]
    assert f.evaluate_batch(batch) == [True, True, False]
    # Support variables may come by index, extras may be omitted.
    assert f.evaluate_batch([{0: 1, 1: 1}]) == [True]


def test_evaluate_batch_xmem_streams_beyond_request_chunk():
    """Batches far above request_chunk sweep within the node budget."""
    manager = open_backend("xmem", node_budget=48, request_chunk=8)
    f = manager.add_expr("(a ^ b) | (c & d) | (b <-> e)")
    rng = random.Random(5)
    batch = [{name: rng.getrandbits(1) for name in NAMES} for _ in range(512)]
    want = [f.evaluate(a) for a in batch]
    assert f.evaluate_batch(batch) == want
    assert manager.stats()["resident_nodes"] <= 48


# ----------------------------------------------------------------------
# batched cube satisfiability
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@settings(deadline=None)
@given(data=st.data())
def test_satisfiable_batch_matches_restrict_oracle(backend, data):
    rng = random.Random(data.draw(st.integers(0, 2**32 - 1)))
    manager = open_backend(backend)
    f = random_function(manager, rng)
    cubes = [
        {
            name: rng.getrandbits(1)
            for name in rng.sample(NAMES, rng.randrange(0, len(NAMES) + 1))
        }
        for _ in range(data.draw(st.integers(0, 25)))
    ]
    got = f.satisfiable_batch(cubes)
    for cube, sat in zip(cubes, got):
        cofactor = f
        for name, value in cube.items():
            cofactor = cofactor.restrict(name, bool(value))
        assert (not cofactor.is_false) == sat


def test_satisfiable_batch_relational_consistency():
    """Free variables shared by consecutive couples stay consistent.

    ``a <-> c`` with ``a`` fixed and ``c`` fixed opposite is
    unsatisfiable even though the middle couples leave ``b`` free — the
    naive both-ways sweep would follow an inconsistent path.
    """
    manager = open_backend("bbdd")
    f = manager.add_expr("a <-> c")
    assert f.satisfiable_batch(
        [{"a": 1, "c": 0}, {"a": 1, "c": 1}, {"a": 1}, {}]
    ) == [False, True, True, True]
    g = manager.add_expr("(a ^ b) | (c & d) | (a <-> e)")
    assert g.satisfiable_batch([{"a": 1, "b": 1, "e": 0, "d": 0}]) == [False]


# ----------------------------------------------------------------------
# the error-message contract (bugfix: missing variables are *named*)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_evaluate_names_missing_support_variables(backend):
    manager = open_backend(backend)
    f = manager.add_expr("(a & d) | e")
    with pytest.raises(VariableError, match=r"misses support variable\(s\): a, d"):
        f.evaluate({"e": 0})
    with pytest.raises(VariableError, match="unknown variable"):
        f.evaluate({"zz": 1})
    with pytest.raises(TypeError, match="variable 'a'"):
        f.evaluate({"a": "yes", "d": 1, "e": 0, "b": 0, "c": 0})
    with pytest.raises(VariableError, match="more than once"):
        f.evaluate({"a": 1, 0: 1, "d": 0, "e": 0})


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_empty_support_constant_rejects_malformed_mappings(backend):
    """Constants validate assignments too instead of accepting anything."""
    manager = open_backend(backend)
    true = manager.true()
    assert true.evaluate({"a": 1}) is True
    with pytest.raises(VariableError, match="unknown variable"):
        true.evaluate({"not-a-var": 1})
    with pytest.raises(TypeError, match="must be a Boolean"):
        true.evaluate({"a": 2})
    with pytest.raises(TypeError, match="must be a Boolean"):
        true.evaluate({"a": None})
    with pytest.raises(VariableError, match="more than once"):
        true.evaluate({"a": 1, 0: 0})


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_evaluate_batch_errors_name_position_and_variables(backend):
    manager = open_backend(backend)
    f = manager.add_expr("(a & d) | e")
    complete = {"a": 1, "b": 0, "c": 0, "d": 1, "e": 0}
    with pytest.raises(
        VariableError, match=r"assignment 1 misses support variable\(s\): a, d"
    ):
        f.evaluate_batch([complete, {"e": 1}])
    with pytest.raises(TypeError, match="assignment 2"):
        f.evaluate_batch([complete, complete, {**complete, "d": "x"}])
    with pytest.raises(TypeError, match="assignment 1"):
        f.evaluate_batch([complete, {**complete, "d": 7}])
    with pytest.raises(VariableError, match="unknown variable"):
        f.evaluate_batch([{**complete, "zz": 1}])
    with pytest.raises(VariableError, match="more than once"):
        f.evaluate_batch([{**complete, 0: 1}])
    with pytest.raises(TypeError, match="assignment 0 must be a mapping"):
        f.evaluate_batch([("a", 1)])
    # A non-mapping whose key tuple matches a mapping's signature joins
    # its run; the error must still name the offending element.
    with pytest.raises(TypeError, match="assignment 1 must be a mapping, got str"):
        f.evaluate_batch([{"a": 1}, "a"])
    with pytest.raises(VariableError, match=r"batch misses support variable\(s\)"):
        f.evaluate_batch(ColumnBatch({"e": 0}, 1))


def test_column_batch_validation():
    with pytest.raises(TypeError, match="int bitmask"):
        ColumnBatch({"a": "0b1"}, 4)
    with pytest.raises(Exception, match="beyond"):
        ColumnBatch({"a": 1 << 5}, 4)
    batch = ColumnBatch.from_assignments([{"a": 1}, {"a": 0, "b": 1}])
    assert batch.count == 2
    assert batch.columns == {"a": 1, "b": 2}


def test_encoded_batch_fallback_loop_matches_sweep():
    """The protocol default (no batch_stream) agrees with the sweep."""
    manager = open_backend("bbdd")
    f = manager.add_expr("(a ^ b) | (c & d)")
    rng = random.Random(2)
    batch = [{name: rng.getrandbits(1) for name in NAMES} for _ in range(64)]
    encoded = encode_mappings(manager, batch)
    assert isinstance(encoded, EncodedBatch)
    looped = [
        manager.evaluate_edge(f.edge, values)
        for values in encoded.iter_value_dicts(manager.num_vars)
    ]
    assert f.evaluate_batch(batch) == looped


# ----------------------------------------------------------------------
# the worker pool
# ----------------------------------------------------------------------


@pytest.fixture
def forest_path(tmp_path):
    manager = repro.open("bbdd", vars=NAMES)
    f = manager.add_expr("(a ^ b) | (c & d)")
    g = manager.add_expr("a & ~e")
    path = tmp_path / "forest.bbdd"
    manager.dump({"f": f, "g": g}, str(path))
    return str(path)


def reference_batch(count=200, seed=9):
    rng = random.Random(seed)
    return [{name: rng.getrandbits(1) for name in NAMES} for _ in range(count)]


def reference_results(forest, name, batch):
    from repro import io as rio

    _manager, functions = rio.load(forest)
    return [functions[name].evaluate(a) for a in batch]


def test_inline_pool_shards_and_caches(forest_path):
    batch = reference_batch()
    want = reference_results(forest_path, "f", batch)
    with ForestPool(workers=0, cache_size=128, shard_size=64) as pool:
        assert pool.warm(forest_path) == ["f", "g"]
        assert pool.evaluate_batch(forest_path, "f", batch) == want
        stats = pool.stats()
        assert stats["workers"] == 0
        # 5 variables => at most 32 distinct assignments: the second
        # call must be answered from the result cache entirely.
        assert pool.evaluate_batch(forest_path, "f", batch) == want
        assert pool.stats()["cache_hits"] >= len(batch)
        assert pool.evaluate(forest_path, "g", {"a": 1, "e": 0}) is True
        # A malformed value must raise identically on a warm cache (the
        # cache key normalization must not coerce it to a hit first).
        with pytest.raises(TypeError, match="must be a Boolean"):
            pool.evaluate(forest_path, "g", {"a": 7, "e": 0})
    with pytest.raises(ServeError, match="no function 'nope'"):
        ForestPool(workers=0).evaluate(forest_path, "nope", {})


def test_multiprocess_pool_round_trip(forest_path):
    batch = reference_batch(150)
    want = reference_results(forest_path, "f", batch)
    with ForestPool(workers=2, cache_size=0, shard_size=8) as pool:
        assert pool.warm(forest_path) == ["f", "g"]
        assert pool.evaluate_batch(forest_path, "f", batch) == want
        stats = pool.stats()
        assert stats["workers"] == 2
        # 5 variables give at most 32 distinct assignments; after the
        # dispatcher dedups them, shard_size=8 still needs 4 shards.
        assert stats["shards_dispatched"] >= 4
        with pytest.raises(ServeError, match="worker failed"):
            pool.evaluate_batch(forest_path, "nope", batch[:2])
        # The pool survives a failed request.
        assert pool.evaluate_batch(forest_path, "g", batch[:8]) == (
            reference_results(forest_path, "g", batch[:8])
        )


def test_multiprocess_pool_concurrent_collect(forest_path):
    """Concurrent dispatcher threads must not steal each other's replies.

    This is exactly the call pattern ``BatchingServer._flush`` produces
    (one executor thread per function group): both threads block on the
    shared result queue, and the demux must park the other thread's
    reply instead of losing its wakeup until the timeout.
    """
    import concurrent.futures

    batch = reference_batch(80, seed=13)
    want_f = reference_results(forest_path, "f", batch)
    want_g = reference_results(forest_path, "g", batch)
    with ForestPool(workers=2, cache_size=0, timeout=20) as pool:
        pool.warm(forest_path)
        with concurrent.futures.ThreadPoolExecutor(4) as executor:
            futures = []
            for _ in range(3):
                futures.append(
                    executor.submit(pool.evaluate_batch, forest_path, "f", batch)
                )
                futures.append(
                    executor.submit(pool.evaluate_batch, forest_path, "g", batch)
                )
            outcomes = [future.result(timeout=30) for future in futures]
    for index, outcome in enumerate(outcomes):
        assert outcome == (want_f if index % 2 == 0 else want_g)


def test_inline_pool_concurrent_cache_access(forest_path):
    """The result cache must survive concurrent executor threads.

    With a small cache, one thread's lookup racing another thread's
    eviction used to raise KeyError from ``move_to_end``; everything
    cache-touching now runs under the pool lock.
    """
    import concurrent.futures

    batch = reference_batch(120, seed=17)
    want_f = reference_results(forest_path, "f", batch)
    want_g = reference_results(forest_path, "g", batch)
    with ForestPool(workers=0, cache_size=20) as pool:
        pool.warm(forest_path)
        with concurrent.futures.ThreadPoolExecutor(8) as executor:
            futures = [
                executor.submit(
                    pool.evaluate_batch,
                    forest_path,
                    "f" if i % 2 == 0 else "g",
                    batch,
                )
                for i in range(16)
            ]
            outcomes = [future.result(timeout=30) for future in futures]
    for index, outcome in enumerate(outcomes):
        assert outcome == (want_f if index % 2 == 0 else want_g)


def test_forest_host_lru(tmp_path):
    paths = []
    for i in range(3):
        manager = repro.open("bbdd", vars=["x"])
        path = tmp_path / f"forest{i}.bbdd"
        manager.dump({"f": manager.var("x")}, str(path))
        paths.append(str(path))
    from repro.serve import ForestHost

    host = ForestHost(max_forests=2)
    for path in paths:
        assert host.evaluate(path, "f", [{"x": 1}]) == [True]
    assert host.loads == 3
    host.evaluate(paths[0], "f", [{"x": 0}])  # evicted: reloads
    assert host.loads == 4
    host.evaluate(paths[0], "f", [{"x": 1}])  # now cached
    assert host.hits == 1


# ----------------------------------------------------------------------
# the asyncio batching server
# ----------------------------------------------------------------------


def test_batching_server_coalesces(forest_path):
    batch = reference_batch(120, seed=4)
    want = reference_results(forest_path, "f", batch)

    async def scenario():
        pool = ForestPool(workers=0)
        server = BatchingServer(pool, forest_path, batch_window=0.01, max_batch=500)
        assert server.warm() == ["f", "g"]
        results = await asyncio.gather(
            *(server.query("f", assignment) for assignment in batch)
        )
        stats = server.stats()
        pool.close()
        return list(results), stats

    results, stats = asyncio.run(scenario())
    assert results == want
    assert stats["queries"] == len(batch)
    # Queries issued in one burst coalesce into very few sweeps.
    assert stats["batches_flushed"] <= 3
    assert stats["p50_latency_s"] > 0


def test_batching_server_tcp_protocol(forest_path):
    async def scenario():
        pool = ForestPool(workers=0)
        server = BatchingServer(pool, forest_path, batch_window=0.001)
        tcp = await serve_tcp(server, "127.0.0.1", 0)
        port = tcp.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        requests = [
            {"f": "g", "assignment": {"a": 1, "e": 0}, "id": 1},
            {"f": "g", "assignment": {"a": 0, "e": 0}, "id": 2},
            {"f": "missing", "assignment": {}, "id": 3},
            {"op": "stats", "id": 4},
        ]
        for request in requests:
            writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        responses = [json.loads(await reader.readline()) for _ in requests]
        writer.close()
        tcp.close()
        await tcp.wait_closed()
        pool.close()
        return responses

    responses = asyncio.run(scenario())
    by_id = {response["id"]: response for response in responses}
    assert by_id[1]["result"] is True
    assert by_id[2]["result"] is False
    assert "no function 'missing'" in by_id[3]["error"]
    assert by_id[4]["result"]["queries"] >= 2


def test_tcp_pipelined_queries_coalesce(forest_path):
    """Queries pipelined on ONE connection still merge into few sweeps."""
    batch = reference_batch(60, seed=21)
    want = reference_results(forest_path, "f", batch)

    async def scenario():
        pool = ForestPool(workers=0)
        server = BatchingServer(pool, forest_path, batch_window=0.05)
        server.warm()
        tcp = await serve_tcp(server, "127.0.0.1", 0)
        port = tcp.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        for i, assignment in enumerate(batch):
            writer.write(
                json.dumps({"f": "f", "assignment": assignment, "id": i}).encode()
                + b"\n"
            )
        await writer.drain()
        responses = [json.loads(await reader.readline()) for _ in batch]
        flushes = server.stats()["batches_flushed"]
        writer.close()
        tcp.close()
        await tcp.wait_closed()
        pool.close()
        return responses, flushes

    responses, flushes = asyncio.run(scenario())
    by_id = {response["id"]: response["result"] for response in responses}
    assert [by_id[i] for i in range(len(batch))] == want
    # The whole pipelined burst lands within the batch window.
    assert flushes <= 3


def test_serve_cli_answers_and_exits(forest_path):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            forest_path,
            "--port",
            "0",
            "--max-requests",
            "2",
            "--batch-window",
            "0.001",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        banner = process.stdout.readline()
        assert "serving" in banner and "functions: f, g" in banner
        port = int(banner.split(" on ", 1)[1].split()[0].rsplit(":", 1)[1])

        async def client():
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for i, assignment in enumerate([{"a": 1, "e": 0}, {"a": 0, "e": 1}]):
                writer.write(
                    json.dumps({"f": "g", "assignment": assignment, "id": i}).encode()
                    + b"\n"
                )
            await writer.drain()
            answers = [json.loads(await reader.readline()) for _ in range(2)]
            writer.close()
            return answers

        answers = asyncio.run(client())
        assert [a["result"] for a in sorted(answers, key=lambda a: a["id"])] == [
            True,
            False,
        ]
        assert process.wait(timeout=10) == 0
    finally:
        if process.poll() is None:
            process.kill()
        process.stdout.close()


@pytest.mark.timeout(60)
def test_serve_cli_sigterm_unlinks_segments(forest_path):
    """SIGTERM exits gracefully and leaves no shared-memory segments."""
    import signal as signal_mod

    from repro.par.shm import active_segments

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    before = set(active_segments())
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            forest_path,
            "--port",
            "0",
            "--workers",
            "2",
            "--batch-window",
            "0.001",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        banner = process.stdout.readline()
        assert "serving" in banner
        # Warm-up froze the forest into a segment the workers attach.
        assert set(active_segments()) - before
        process.send_signal(signal_mod.SIGTERM)
        assert process.wait(timeout=15) == 0
        assert set(active_segments()) - before == set()
    finally:
        if process.poll() is None:
            process.kill()
        process.stdout.close()


# ----------------------------------------------------------------------
# observability surfaces
# ----------------------------------------------------------------------


def test_pool_stats_expose_forest_counters_inline(forest_path):
    with ForestPool(workers=0) as pool:
        pool.warm(forest_path)
        pool.evaluate(forest_path, "f", reference_batch(1, seed=3)[0])
        stats = pool.stats()
    assert stats["forest_loads"] == 1
    assert stats["forest_hits"] >= 1


def test_pool_stats_expose_forest_counters_workers(forest_path):
    with ForestPool(workers=2, shared_memory=False) as pool:
        pool.warm(forest_path)
        pool.evaluate_batch(forest_path, "f", reference_batch(20, seed=11))
        stats = pool.stats()
    # Warming loads the forest once per worker (private-copy mode).
    assert stats["forest_loads"] == 2
    assert stats["forest_hits"] >= 1


def test_pool_shared_memory_attaches_instead_of_loading(forest_path):
    """Shared-memory pools freeze the dump once; workers never decode it."""
    batch = reference_batch(60, seed=21)
    want = reference_results(forest_path, "f", batch)
    with ForestPool(workers=2, cache_size=0, shared_memory=True) as pool:
        assert pool.shared_memory is True
        assert pool.warm(forest_path) == ["f", "g"]
        assert pool.evaluate_batch(forest_path, "f", batch) == want
        stats = pool.stats()
    assert stats["forest_loads"] == 0
    assert stats["shm_attaches"] == 2
    assert stats["shm_freezes"] == 1
    assert stats["shared_segments"] == 1
    assert stats["shm_segment_bytes"] > 0


def test_pool_shared_memory_hot_reload(forest_path, tmp_path):
    """A dump rewritten on disk is re-frozen under a new generation."""
    import os
    import time as time_mod

    batch = reference_batch(40, seed=23)
    with ForestPool(workers=2, cache_size=0, shared_memory=True) as pool:
        pool.warm(forest_path)
        before = pool.evaluate_batch(forest_path, "g", batch)
        time_mod.sleep(0.01)
        manager = repro.open("bbdd", vars=NAMES)
        f = manager.add_expr("(a ^ b) | (c & d)")
        g = manager.add_expr("~(a & ~e)")  # inverted vs the fixture
        manager.dump({"f": f, "g": g}, forest_path)
        os.utime(forest_path)
        after = pool.evaluate_batch(forest_path, "g", batch)
        stats = pool.stats()
    assert after == [not value for value in before]
    assert stats["shm_freezes"] == 2
    assert stats["shared_segments"] == 1  # the stale segment was retired


@pytest.mark.timeout(60)
def test_pool_worker_death_respawns_and_retries(forest_path):
    """A worker killed mid-service is respawned; the batch retries once."""
    import time as time_mod

    batch = reference_batch(50, seed=27)
    want = reference_results(forest_path, "f", batch)
    with ForestPool(workers=2, cache_size=0, timeout=30) as pool:
        pool.warm(forest_path)
        assert pool.evaluate_batch(forest_path, "f", batch) == want
        pool._crew.processes[0].kill()
        time_mod.sleep(0.2)
        assert pool.evaluate_batch(forest_path, "f", batch) == want
        stats = pool.stats()
    assert stats["worker_restarts"] >= 1


def test_pool_close_unlinks_all_segments(forest_path):
    """Closing a shared-memory pool leaves no segments behind."""
    from repro.par.shm import active_segments

    before = set(active_segments())
    pool = ForestPool(workers=2, cache_size=0, shared_memory=True)
    try:
        pool.warm(forest_path)
        assert set(active_segments()) - before
    finally:
        pool.close()
    assert set(active_segments()) - before == set()


def test_server_metrics_snapshot_and_op(forest_path):
    from repro import obs

    batch = reference_batch(60, seed=5)

    async def scenario():
        pool = ForestPool(workers=0)
        server = BatchingServer(pool, forest_path, batch_window=0.005)
        server.warm()
        await asyncio.gather(
            *(server.query("f", assignment) for assignment in batch)
        )
        tcp = await serve_tcp(server, "127.0.0.1", 0)
        port = tcp.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(json.dumps({"op": "metrics", "id": 1}).encode() + b"\n")
        await writer.drain()
        reply = json.loads(await reader.readline())
        writer.close()
        tcp.close()
        await tcp.wait_closed()
        snap = server.metrics_snapshot()
        pool.close()
        return reply, snap

    reply, snap = asyncio.run(scenario())
    assert reply["id"] == 1
    remote = reply["result"]
    for payload in (remote, snap):
        latency = payload["repro_serve_request_latency_seconds"]["samples"][0]
        assert latency["count"] >= len(batch)
        assert payload["repro_serve_forest_loads_total"]["samples"][0]["value"] >= 1
    text = obs.render_prometheus(snap)
    assert "repro_serve_request_latency_seconds_bucket" in text
    assert "repro_xmem_spill_bytes_total" in text


def test_serve_cli_metrics_port(forest_path):
    import urllib.request

    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            forest_path,
            "--port",
            "0",
            "--metrics-port",
            "0",
            "--max-requests",
            "2",
            "--batch-window",
            "0.001",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        banner = process.stdout.readline()
        assert "serving" in banner
        port = int(banner.split(" on ", 1)[1].split()[0].rsplit(":", 1)[1])
        metrics_line = process.stdout.readline()
        assert metrics_line.startswith("metrics on http://")
        metrics_url = metrics_line.split(" on ", 1)[1].strip()

        # Scrape before the queries: with --max-requests 2 the server
        # exits as soon as both answers are flushed, taking the exporter
        # with it.  Catalog pre-declaration guarantees every family —
        # including the latency histogram — renders even on a fresh
        # process, so the acceptance assertions hold on this scrape.
        body = urllib.request.urlopen(metrics_url, timeout=5).read().decode()

        async def client():
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for i, assignment in enumerate([{"a": 1, "e": 0}, {"a": 0, "e": 1}]):
                writer.write(
                    json.dumps({"f": "g", "assignment": assignment, "id": i}).encode()
                    + b"\n"
                )
            await writer.drain()
            answers = [json.loads(await reader.readline()) for _ in range(2)]
            writer.close()
            return answers

        answers = asyncio.run(client())
        assert {a["result"] for a in answers} == {True, False}
        # The acceptance surface: serve latency histogram, manager
        # cache counters and xmem spill bytes all render as text 0.0.4.
        assert "repro_serve_request_latency_seconds_bucket" in body
        assert "# TYPE repro_manager_computed_hits_total counter" in body
        assert "# TYPE repro_xmem_spill_bytes_total counter" in body
        assert process.wait(timeout=10) == 0
    finally:
        if process.poll() is None:
            process.kill()
        process.stdout.close()


# ----------------------------------------------------------------------
# weighted-counting query class and percentile validation
# ----------------------------------------------------------------------


def test_latency_percentile_rejects_out_of_range():
    """q outside 0..100 raises instead of silently extrapolating."""

    async def scenario():
        pool = ForestPool(workers=0)
        server = BatchingServer(pool, "unused.bbdd")
        for bad in (-1, -0.001, 100.5, 101, 1e6):
            with pytest.raises(ServeError, match="0..100"):
                server.latency_percentile(bad)
        # ...while boundary and interior values stay accepted (the
        # latency histogram is process-global, so earlier tests may
        # already have recorded traffic into it).
        for good in (0, 50, 100):
            assert server.latency_percentile(good) >= 0.0
        pool.close()
        return True

    assert asyncio.run(scenario())


def test_stats_percentiles_still_work_after_traffic(forest_path):
    """stats() keeps calling the validated percentile path (50/99)."""

    async def scenario():
        pool = ForestPool(workers=0)
        server = BatchingServer(pool, forest_path, batch_window=0.001)
        await asyncio.gather(
            *(server.query("f", a) for a in reference_batch(20, seed=3))
        )
        stats = server.stats()
        pool.close()
        return stats

    stats = asyncio.run(scenario())
    assert stats["p50_latency_s"] > 0
    assert stats["p99_latency_s"] >= stats["p50_latency_s"]


def wmc_reference(forest, name, weights=None, variables=None):
    """Float-mode p_one/marginals straight off the stored function."""
    from repro import io as rio

    _manager, functions = rio.load(forest)
    f = functions[name]
    return f.p_one(weights, exact=False), f.marginals(
        weights, variables, exact=False
    )


def test_pool_p_one_and_marginals_inline(forest_path):
    weights = {"a": 0.25, "c": 0.75}
    want_p, want_m = wmc_reference(forest_path, "f", weights)
    with ForestPool(workers=0) as pool:
        assert pool.p_one(forest_path, "f", weights) == pytest.approx(want_p)
        got = pool.marginals(forest_path, "f", weights)
        assert got == pytest.approx(want_m)
        only = pool.marginals(forest_path, "f", weights, ["a"])
        assert set(only) == {"a"}
        with pytest.raises(ServeError, match="no function"):
            pool.p_one(forest_path, "nope")


@pytest.mark.timeout(60)
def test_pool_p_one_and_marginals_workers(forest_path):
    """Worker dispatch — zero-copy via the shared segment when available."""
    want_p, want_m = wmc_reference(forest_path, "f")
    with ForestPool(workers=2, timeout=20) as pool:
        pool.warm(forest_path)
        assert pool.p_one(forest_path, "f") == pytest.approx(want_p)
        assert pool.marginals(forest_path, "f") == pytest.approx(want_m)
        with pytest.raises(ServeError):
            pool.p_one(forest_path, "nope")


def test_tcp_p_one_and_marginals_ops(forest_path):
    weights = {"a": 0.125}
    want_p, want_m = wmc_reference(forest_path, "f", weights)

    async def scenario():
        pool = ForestPool(workers=0)
        server = BatchingServer(pool, forest_path, batch_window=0.001)
        tcp = await serve_tcp(server, "127.0.0.1", 0)
        port = tcp.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        requests = [
            {"op": "p_one", "f": "f", "weights": weights, "id": 1},
            {"op": "marginals", "f": "f", "weights": weights, "id": 2},
            {"op": "p_one", "f": "f", "id": 3},
            {"op": "p_one", "f": "missing", "id": 4},
        ]
        for request in requests:
            writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        responses = [json.loads(await reader.readline()) for _ in requests]
        writer.close()
        tcp.close()
        await tcp.wait_closed()
        pool.close()
        return responses

    by_id = {r["id"]: r for r in asyncio.run(scenario())}
    assert by_id[1]["result"] == pytest.approx(want_p)
    assert by_id[2]["result"] == pytest.approx(want_m)
    assert by_id[3]["result"] == pytest.approx(
        wmc_reference(forest_path, "f")[0]
    )
    assert "no function 'missing'" in by_id[4]["error"]
