"""Extended operations: ITE, restrict, compose, quantification, support."""

import random

from repro.core import BBDDManager
from repro.core.reorder import from_truth_table
from repro.core.truthtable import TruthTable


def _pair(n, seed):
    rng = random.Random(seed)
    m = BBDDManager(n)
    masks = [rng.getrandbits(1 << n) for _ in range(3)]
    funcs = [m.function(from_truth_table(m, mask)) for mask in masks]
    tts = [TruthTable(n, mask) for mask in masks]
    return m, funcs, tts


def test_ite_matches_oracle():
    for seed in range(10):
        n = 4
        m, (f, g, h), (tf, tg, th) = _pair(n, seed)
        got = f.ite(g, h)
        want = (tf & tg) | (~tf & th)
        assert got.truth_mask(range(n)) == want.mask


def test_restrict_all_vars_both_values():
    for seed in range(8):
        n = 5
        m, (f, _g, _h), (tf, _tg, _th) = _pair(n, seed)
        for var in range(n):
            for value in (False, True):
                got = f.restrict(var, value)
                assert got.truth_mask(range(n)) == tf.restrict(var, value).mask


def test_restrict_then_support_drops_variable():
    m = BBDDManager(4)
    a, b, c, d = m.variables()
    f = (a & b) ^ (c | d)
    r = f.restrict("x1", True)
    assert "x1" not in r.support()


def test_compose_matches_oracle():
    for seed in range(8):
        n = 4
        m, (f, g, _h), (tf, tg, _th) = _pair(n, seed)
        var = seed % n
        got = f.compose(var, g)
        assert got.truth_mask(range(n)) == tf.compose(var, tg).mask


def test_quantification():
    for seed in range(8):
        n = 4
        m, (f, _g, _h), (tf, _tg, _th) = _pair(n, seed)
        var = seed % n
        assert f.exists([var]).truth_mask(range(n)) == tf.exists(var).mask
        assert f.forall([var]).truth_mask(range(n)) == tf.forall(var).mask


def test_multi_var_quantification():
    n = 5
    m, (f, _g, _h), (tf, _tg, _th) = _pair(n, 99)
    got = f.exists([0, 2, 4])
    want = tf.exists(0).exists(2).exists(4)
    assert got.truth_mask(range(n)) == want.mask


def test_support_exactness_random():
    rng = random.Random(7)
    for _ in range(30):
        n = rng.randint(1, 6)
        mask = rng.getrandbits(1 << n)
        m = BBDDManager(n)
        f = m.function(from_truth_table(m, mask))
        want = frozenset(m.var_name(v) for v in TruthTable(n, mask).support())
        assert f.support() == want


def test_implies_and_and_not():
    m = BBDDManager(2)
    a, b = m.variables()
    assert a.implies(b).evaluate({0: 0, 1: 0})
    assert not a.implies(b).evaluate({0: 1, 1: 0})
    assert a.and_not(b).evaluate({0: 1, 1: 0})
    assert not a.and_not(b).evaluate({0: 1, 1: 1})
