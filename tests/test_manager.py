"""BBDD manager unit tests: construction, reduction rules, GC."""

import pytest

from repro.core import BBDDManager
from repro.core.exceptions import ForeignManagerError, VariableError


def test_variable_registration():
    m = BBDDManager(["a", "b", "c"])
    assert m.num_vars == 3
    assert m.var_index("b") == 1
    assert m.var_name(2) == "c"
    with pytest.raises(VariableError):
        m.var_index("z")
    with pytest.raises(VariableError):
        BBDDManager(["a", "a"])


def test_new_var_appends():
    m = BBDDManager(2)
    idx = m.new_var("extra")
    assert idx == 2
    assert m.current_order()[-1] == "extra"
    f = m.var("extra") & m.var(0)
    assert f.evaluate({"extra": 1, 0: 1})


def test_constants_and_literals():
    m = BBDDManager(2)
    assert m.true().is_true
    assert m.false().is_false
    a = m.var(0)
    assert a.evaluate({0: 1, 1: 0})
    assert not a.evaluate({0: 0, 1: 0})
    assert (~a).evaluate({0: 0, 1: 1})
    # The literal node is unique (strong canonical form).
    assert m.var(0).node is m.var(0).node


def test_complement_edge_identities():
    m = BBDDManager(3)
    a, b, c = m.variables()
    f = (a & b) | c
    assert ~~f == f
    assert (~f | f).is_true
    assert (~f & f).is_false


def test_reduction_r2_identical_children():
    m = BBDDManager(2)
    a, b = m.variables()
    # (a AND b) OR (a AND NOT b) == a: the couple on b must collapse.
    f = (a & b) | (a & ~b)
    assert f == a


def test_reduction_r4_literal_degeneration():
    m = BBDDManager(3)
    a, b, c = m.variables()
    # (a XNOR b) XNOR b == a (the chain through b cancels to a literal).
    f = a.xnor(b).xnor(b)
    assert f == a
    assert f.node.sv == -1  # SV_ONE: an R4 "BDD node"


def test_sv_elimination_support_chaining():
    m = BBDDManager(5)
    a, b, c, d, e = m.variables()
    # A function of {a, e} must not pay for the b, c, d gap (rule R3).
    g = a.xnor(e)
    assert g.node_count() == 1
    assert g.support() == frozenset({"x0", "x4"})


def test_gc_reclaims_unreferenced():
    m = BBDDManager(4)
    a, b, c, d = m.variables()
    f = (a ^ b) | (c & d)
    size_with_f = m.size()
    del f
    reclaimed = m.gc()
    assert reclaimed > 0
    assert m.size() < size_with_f
    m.check_invariants()
    # Variables still alive through the handles.
    assert m.size() >= 4


def test_gc_keeps_live_nodes():
    m = BBDDManager(3)
    a, b, c = m.variables()
    f = a & b | c
    mask = f.truth_mask(["x0", "x1", "x2"])
    m.gc()
    assert f.truth_mask(["x0", "x1", "x2"]) == mask
    m.check_invariants()


def test_foreign_manager_rejected():
    m1 = BBDDManager(2)
    m2 = BBDDManager(2)
    with pytest.raises(ForeignManagerError):
        m1.var(0) & m2.var(0)


def test_table_stats_shape():
    m = BBDDManager(3)
    a, b, c = m.variables()
    _f = (a & b) ^ c
    stats = m.table_stats()
    assert stats["nodes"] == m.size()
    assert "unique" in stats and "computed" in stats


def test_cantor_backend_manager_end_to_end():
    m = BBDDManager(4, unique_backend="cantor", computed_backend="cantor")
    a, b, c, d = m.variables()
    f = (a ^ b) | (c & d)
    ref = BBDDManager(4)
    g = (ref.var(0) ^ ref.var(1)) | (ref.var(2) & ref.var(3))
    assert f.truth_mask(range(4)) == g.truth_mask(range(4))
    m.check_invariants()


def test_disabled_cache_still_correct():
    m = BBDDManager(4, computed_backend="disabled")
    a, b, c, d = m.variables()
    f = (a & b) | (c ^ d)
    ref = BBDDManager(4)
    g = (ref.var(0) & ref.var(1)) | (ref.var(2) ^ ref.var(3))
    assert f.truth_mask(range(4)) == g.truth_mask(range(4))
