"""Datapath RTL generators for the Table II case study (Sec. V).

The paper synthesizes adder, equality, magnitude and barrel-shifter
datapaths at 32/64-bit operand widths.  The generators below produce the
structural RTL a designer would write, with the paper's exact I/O
signatures:

====================  =======  =======
benchmark             inputs   outputs
====================  =======  =======
Adder 32              64       33
Adder 64              128      65
Equality 32           64       1
Equality 64           128      1
Magnitude 32          64       1
Magnitude 64          128      1
Barrel 32             39       32   (32 data + 5 shamt + dir + rotate)
Barrel 64              70       64   (64 data + 6 shamt, rotate-left)
====================  =======  =======

The 32-bit barrel shifter carries direction/rotate controls while the
64-bit one is a pure rotator — the paper's input counts (39 vs. 70) imply
exactly this asymmetry, which we preserve.
"""

from __future__ import annotations

from repro.circuits import arith
from repro.network.network import LogicNetwork


def adder(width: int = 32) -> LogicNetwork:
    """Ripple-carry adder RTL: ``2*width`` inputs, ``width + 1`` outputs."""
    net = LogicNetwork(f"Adder {width}")
    a = net.add_inputs([f"a{i}" for i in range(width)])
    b = net.add_inputs([f"b{i}" for i in range(width)])
    sums, cout = arith.ripple_adder(net, a, b)
    for i, s in enumerate(sums):
        net.set_output(f"s{i}", s)
    net.set_output("cout", cout)
    return net


def equality_dp(width: int = 32) -> LogicNetwork:
    """Equality comparator: ``2*width`` inputs, 1 output."""
    net = LogicNetwork(f"Equality {width}")
    a = net.add_inputs([f"a{i}" for i in range(width)])
    b = net.add_inputs([f"b{i}" for i in range(width)])
    net.set_output("eq", arith.equality(net, a, b))
    return net


def magnitude_dp(width: int = 32) -> LogicNetwork:
    """Magnitude comparator (``a < b``): ``2*width`` inputs, 1 output."""
    net = LogicNetwork(f"Magnitude {width}")
    a = net.add_inputs([f"a{i}" for i in range(width)])
    b = net.add_inputs([f"b{i}" for i in range(width)])
    net.set_output("lt", arith.magnitude_less_than(net, a, b))
    return net


def barrel(width: int = 32, controls: bool = None) -> LogicNetwork:
    """Barrel shifter RTL with the paper's input counts.

    The 32-bit benchmark carries direction + rotate controls (32 data +
    5 shamt + 2 = 39 inputs); the 64-bit one is a pure rotate-left
    (64 + 6 = 70 inputs) — the asymmetry the paper's input counts imply.
    ``controls`` overrides the choice for scaled widths (the fast
    benchmark profile keeps each row's control structure).
    """
    if controls is None:
        controls = width == 32
    net = LogicNetwork(f"Barrel {width}")
    data = net.add_inputs([f"d{i}" for i in range(width)])
    shamt_bits = (width - 1).bit_length()
    shamt = net.add_inputs([f"sh{j}" for j in range(shamt_bits)])
    if controls:
        left = net.add_input("left")
        rot = net.add_input("rot")
        outs = arith.barrel_shift_or_rotate(net, data, shamt, left, rot)
    else:
        outs = arith.barrel_rotate_left(net, data, shamt)
    for i, sig in enumerate(outs):
        net.set_output(f"q{i}", sig)
    return net
