"""Benchmark catalogue: name -> generator, with the paper's reference data.

``TABLE1_ROWS`` reproduces the row order of Table I; each row records the
paper's input/output counts, node counts and timings so the harness can
print paper-vs-measured comparisons.  ``fast_kwargs`` scale the heaviest
generators down for the default benchmark profile (pure-Python speed; see
DESIGN.md §3.5) — setting the environment variable ``REPRO_FULL=1``
selects the paper-scale versions.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from repro.circuits import datapath, iscas, mcnc
from repro.network.network import LogicNetwork


class Table1Row:
    """One Table I benchmark with the paper's reference numbers."""

    __slots__ = (
        "name",
        "generator",
        "fast_kwargs",
        "paper_inputs",
        "paper_outputs",
        "paper_bbdd_nodes",
        "paper_bbdd_build",
        "paper_bbdd_sift",
        "paper_bdd_nodes",
        "paper_bdd_build",
        "paper_bdd_sift",
        "fidelity",
    )

    def __init__(
        self,
        name: str,
        generator: Callable[..., LogicNetwork],
        paper_inputs: int,
        paper_outputs: int,
        paper_bbdd: tuple,
        paper_bdd: tuple,
        fidelity: str,
        fast_kwargs: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.generator = generator
        self.fast_kwargs = fast_kwargs or {}
        self.paper_inputs = paper_inputs
        self.paper_outputs = paper_outputs
        self.paper_bbdd_nodes, self.paper_bbdd_build, self.paper_bbdd_sift = paper_bbdd
        self.paper_bdd_nodes, self.paper_bdd_build, self.paper_bdd_sift = paper_bdd
        self.fidelity = fidelity

    def build(self, full: Optional[bool] = None) -> LogicNetwork:
        """Instantiate the benchmark (paper scale when ``full``)."""
        if full is None:
            full = full_profile()
        kwargs = {} if full else dict(self.fast_kwargs)
        return self.generator(**kwargs)


def full_profile() -> bool:
    """True when the paper-scale benchmark profile is requested."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "no")


#: Table I rows in paper order.  Paper columns: (nodes, build s, sift s);
#: "<0.01" entries are recorded as 0.005.
TABLE1_ROWS = [
    Table1Row("C1355", iscas.c1355, 41, 32, (54225, 0.23, 0.11), (74056, 0.06, 0.59),
              "family substitute (SEC-32, NAND-expanded XORs)",
              fast_kwargs={"data_width": 16}),
    Table1Row("C1908", iscas.c1908, 33, 25, (14918, 0.06, 0.23), (17980, 0.09, 0.34),
              "family substitute (SEC/DED-16)",
              fast_kwargs={"data_width": 8}),
    Table1Row("C499", iscas.c499, 41, 32, (135784, 1.56, 3.21), (160691, 3.04, 4.28),
              "family substitute (SEC-32, XOR form)",
              fast_kwargs={"data_width": 16}),
    Table1Row("seq", mcnc.seq, 41, 35, (4554, 0.07, 0.33), (5607, 0.14, 0.44),
              "signature substitute (seeded PLA)",
              fast_kwargs={"num_inputs": 18}),
    Table1Row("my_adder", mcnc.my_adder, 33, 17, (166, 0.13, 0.15), (1006, 0.15, 0.14),
              "exact (ripple adder)"),
    Table1Row("frg1", mcnc.frg1, 28, 3, (284, 0.005, 0.005), (296, 0.005, 0.005),
              "signature substitute (seeded PLA)",
              fast_kwargs={"num_inputs": 20}),
    Table1Row("misex3", mcnc.misex3, 14, 14, (745, 0.02, 0.005), (885, 0.03, 0.02),
              "signature substitute (seeded PLA)"),
    Table1Row("misex1", mcnc.misex1, 8, 7, (51, 0.005, 0.005), (68, 0.005, 0.005),
              "signature substitute (seeded PLA)"),
    Table1Row("comp", mcnc.comp, 32, 3, (97, 0.005, 0.005), (330, 0.23, 0.67),
              "exact family (16-bit magnitude comparator)"),
    Table1Row("count", mcnc.count, 35, 16, (328, 0.005, 0.005), (342, 0.005, 0.01),
              "family substitute (loadable counter)"),
    Table1Row("cordic", mcnc.cordic, 23, 2, (54, 0.005, 0.005), (80, 0.005, 0.01),
              "family substitute (rotation decision)"),
    Table1Row("alu4", mcnc.alu4, 14, 8, (1076, 0.005, 0.005), (897, 0.005, 0.005),
              "family substitute (74181-signature ALU)"),
    Table1Row("C17", iscas.c17, 5, 2, (15, 0.005, 0.005), (13, 0.005, 0.005),
              "exact"),
    Table1Row("9symml", mcnc.nine_symml, 9, 1, (19, 0.005, 0.005), (25, 0.005, 0.005),
              "exact"),
    Table1Row("z4ml", mcnc.z4ml, 7, 4, (21, 0.005, 0.005), (37, 0.005, 0.005),
              "exact family (2-bit 3-operand adder)"),
    Table1Row("decod", mcnc.decod, 5, 16, (46, 0.005, 0.005), (96, 0.005, 0.005),
              "exact family (4-to-16 decoder)"),
    Table1Row("parity", mcnc.parity, 16, 1, (9, 0.005, 0.005), (17, 0.005, 0.005),
              "exact"),
]


class Table2Row:
    """One Table II datapath with the paper's reference numbers."""

    __slots__ = (
        "name",
        "generator",
        "width",
        "fast_width",
        "paper_inputs",
        "paper_outputs",
        "paper_bbdd",  # (area um^2, delay ns, gates)
        "paper_commercial",
    )

    def __init__(self, name, generator, width, fast_width,
                 paper_inputs, paper_outputs, paper_bbdd, paper_commercial) -> None:
        self.name = name
        self.generator = generator
        self.width = width
        self.fast_width = fast_width
        self.paper_inputs = paper_inputs
        self.paper_outputs = paper_outputs
        self.paper_bbdd = paper_bbdd
        self.paper_commercial = paper_commercial

    def build(self, full: Optional[bool] = None) -> LogicNetwork:
        if full is None:
            full = full_profile()
        return self.generator(self.width if full else self.fast_width)


def _barrel_with_controls(width: int):
    return datapath.barrel(width, controls=True)


def _barrel_rotator(width: int):
    return datapath.barrel(width, controls=False)


TABLE2_ROWS = [
    Table2Row("Adder 32", datapath.adder, 32, 16, 64, 33,
              (41.01, 2.17, 186), (45.98, 3.42, 216)),
    Table2Row("Adder 64", datapath.adder, 64, 24, 128, 65,
              (83.05, 4.46, 380), (93.02, 7.01, 440)),
    Table2Row("Equality 32", datapath.equality_dp, 32, 16, 64, 1,
              (17.78, 0.11, 63), (18.27, 0.18, 72)),
    Table2Row("Equality 64", datapath.equality_dp, 64, 24, 128, 1,
              (35.57, 0.13, 119), (36.18, 0.20, 136)),
    Table2Row("Magnitude 32", datapath.magnitude_dp, 32, 16, 64, 1,
              (13.65, 0.82, 41), (21.77, 1.16, 186)),
    Table2Row("Magnitude 64", datapath.magnitude_dp, 64, 24, 128, 1,
              (29.44, 1.64, 102), (44.17, 2.30, 378)),
    Table2Row("Barrel 32", _barrel_with_controls, 32, 8, 39, 32,
              (71.68, 0.50, 545), (76.44, 0.50, 569)),
    Table2Row("Barrel 64", _barrel_rotator, 64, 16, 70, 64,
              (165.42, 0.58, 1255), (178.50, 0.60, 1320)),
]


_CIRCUITS: Dict[str, Callable[[], LogicNetwork]] = {
    row.name: row.build for row in TABLE1_ROWS
}
_CIRCUITS.update({row.name: row.build for row in TABLE2_ROWS})


def get_circuit(name: str, full: Optional[bool] = None) -> LogicNetwork:
    """Instantiate a benchmark by its Table I / Table II row name."""
    try:
        builder = _CIRCUITS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_CIRCUITS)}"
        ) from None
    return builder(full=full)
