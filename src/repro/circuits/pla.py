"""Deterministic PLA cover generation for the random-logic Table I rows.

The MCNC benchmarks misex1, misex3, seq and frg1 are two-level PLA-style
random logic whose exact covers are not redistributable here.  We generate
same-signature substitutes from seeded covers: a fixed RNG seed per
benchmark makes every run bit-identical, and the cube statistics (literal
density, output sharing) are chosen to resemble control-dominant PLAs.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.circuits.arith import balanced_tree
from repro.network.network import LogicNetwork


class Cube:
    """One product term: per-input literal in {'0', '1', '-'} and an
    output mask selecting which outputs the cube feeds."""

    __slots__ = ("literals", "outputs")

    def __init__(self, literals: str, outputs: int) -> None:
        self.literals = literals
        self.outputs = outputs


def random_cover(
    num_inputs: int,
    num_outputs: int,
    num_cubes: int,
    seed: int,
    care_density: float = 0.45,
    output_density: float = 0.3,
) -> List[Cube]:
    """Seeded cover with roughly PLA-like literal/output densities."""
    rng = random.Random(seed)
    cubes: List[Cube] = []
    for _ in range(num_cubes):
        literals = "".join(
            rng.choice("01") if rng.random() < care_density else "-"
            for _ in range(num_inputs)
        )
        mask = 0
        for j in range(num_outputs):
            if rng.random() < output_density:
                mask |= 1 << j
        if mask == 0:
            mask = 1 << rng.randrange(num_outputs)
        cubes.append(Cube(literals, mask))
    # Guarantee every output has at least one cube.
    covered = 0
    for cube in cubes:
        covered |= cube.outputs
    for j in range(num_outputs):
        if not (covered >> j) & 1:
            cubes[rng.randrange(num_cubes)].outputs |= 1 << j
    return cubes


def pla_network(
    name: str,
    num_inputs: int,
    num_outputs: int,
    cubes: Sequence[Cube],
    input_prefix: str = "x",
    output_prefix: str = "y",
) -> LogicNetwork:
    """Materialize a cover as a two-level AND-OR network."""
    net = LogicNetwork(name)
    inputs = net.add_inputs([f"{input_prefix}{i}" for i in range(num_inputs)])
    inverted = {}

    def inv_of(sig: str) -> str:
        if sig not in inverted:
            inverted[sig] = net.inv(sig)
        return inverted[sig]

    products: List[str] = []
    for cube in cubes:
        literals = []
        for bit, sig in zip(cube.literals, inputs):
            if bit == "1":
                literals.append(sig)
            elif bit == "0":
                literals.append(inv_of(sig))
        if not literals:
            products.append(net.const(True))
        elif len(literals) == 1:
            products.append(literals[0])
        else:
            products.append(balanced_tree(net, "AND", literals))

    for j in range(num_outputs):
        terms = [p for p, cube in zip(products, cubes) if (cube.outputs >> j) & 1]
        if not terms:
            sig = net.const(False)
        elif len(terms) == 1:
            sig = net.add_gate("BUF", [terms[0]])
        else:
            sig = balanced_tree(net, "OR", terms)
        net.set_output(f"{output_prefix}{j}", sig)
    return net


def seeded_pla(
    name: str,
    num_inputs: int,
    num_outputs: int,
    num_cubes: int,
    seed: int,
    xor_fraction: float = 0.0,
    xor_span: int = 4,
    **densities,
) -> LogicNetwork:
    """Seeded cover + network in one call, with optional XOR enrichment.

    ``xor_fraction`` of the outputs are XOR-ed with the parity of a small
    seeded input subset (``xor_span`` wide).  The real MCNC random-logic
    benchmarks (seq, misex3, frg1) contain datapath-derived XOR structure
    — a uniformly random AND-OR cover is the known worst case for
    XOR-oriented decision diagrams and would contradict the behaviour the
    paper measures on those rows, so the substitutes mix both flavours
    (documented in DESIGN.md §3).
    """
    cubes = random_cover(num_inputs, num_outputs, num_cubes, seed, **densities)
    net = pla_network(name, num_inputs, num_outputs, cubes)
    if xor_fraction <= 0:
        return net
    rng = random.Random(seed ^ 0x5A5A)
    enriched = LogicNetwork(name)
    enriched.add_inputs(net.inputs)
    enriched.reserve_names([f"y{j}" for j in range(num_outputs)])
    # Re-emit the cover body, then overlay parity terms on chosen outputs.
    mapping = {}
    for signal in net.topological_order():
        gate = net.gates[signal]
        mapping[signal] = enriched.add_gate(
            gate.op, [mapping.get(f, f) for f in gate.fanins]
        )
    for name_, sig in net.outputs:
        out_sig = mapping[sig]
        if rng.random() < xor_fraction:
            span = rng.sample(net.inputs, min(xor_span, len(net.inputs)))
            parity = span[0]
            for s in span[1:]:
                parity = enriched.xor(parity, s)
            out_sig = enriched.xor(out_sig, parity)
        enriched.set_output(name_, out_sig)
    return enriched
