"""Benchmark circuit generators.

Deterministic generators for every workload of the paper's evaluation:

* :mod:`repro.circuits.arith` — reusable arithmetic builders (adders,
  comparators, shifters, decoders, counting networks);
* :mod:`repro.circuits.iscas` — ISCAS-85 rows of Table I (exact C17;
  same-family error-correction substitutes for C499/C1355/C1908);
* :mod:`repro.circuits.mcnc` — the remaining MCNC rows of Table I;
* :mod:`repro.circuits.pla` — seeded PLA covers for the random-logic rows;
* :mod:`repro.circuits.datapath` — Table II datapath RTL (adder, equality,
  magnitude, barrel shifter at 32/64 bits);
* :mod:`repro.circuits.registry` — the name -> generator catalogue with
  the paper's reference numbers.
"""

from repro.circuits.registry import TABLE1_ROWS, TABLE2_ROWS, get_circuit

__all__ = ["TABLE1_ROWS", "TABLE2_ROWS", "get_circuit"]
