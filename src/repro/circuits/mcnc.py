"""MCNC rows of Table I (non-ISCAS).

Exact-function rows: ``my_adder`` (16+16+cin ripple adder), ``parity``
(16-input XOR tree), ``9symml`` (count-in-[3,6] symmetric function),
``decod`` (4-to-16 decoder with enable), ``comp`` (16-bit magnitude
comparator with LT/EQ/GT), ``z4ml`` (2-bit three-operand adder).

Family substitutes with the paper's I/O signature: ``alu4`` (4-bit ALU
slice with the 74181 port list), ``count`` (16-bit loadable counter next-
state logic), ``cordic`` (rotation-direction decision step), and the
seeded PLA rows ``misex1``, ``misex3``, ``seq``, ``frg1``
(:mod:`repro.circuits.pla`).  DESIGN.md §5 tabulates the fidelity of every
row.
"""

from __future__ import annotations

from typing import List

from repro.circuits import arith
from repro.circuits.pla import seeded_pla
from repro.network.network import LogicNetwork


def my_adder(width: int = 16) -> LogicNetwork:
    """Ripple-carry adder: ``width*2 + 1`` inputs, ``width + 1`` outputs.

    The input list interleaves the operand buses bit by bit (``cin a0 b0
    a1 b1 ..``) — the effective order of the original benchmark file,
    under which the pre-sift diagrams are linear-sized (an operand-after-
    operand order is exponential for both BDDs and BBDDs).
    """
    net = LogicNetwork("my_adder" if width == 16 else f"my_adder_{width}")
    cin = net.add_input("cin")
    a: list = []
    b: list = []
    for i in range(width):
        a.append(net.add_input(f"a{i}"))
        b.append(net.add_input(f"b{i}"))
    sums, cout = arith.ripple_adder(net, a, b, cin)
    for i, s in enumerate(sums):
        net.set_output(f"s{i}", s)
    net.set_output("cout", cout)
    return net


def parity(width: int = 16) -> LogicNetwork:
    net = LogicNetwork("parity" if width == 16 else f"parity_{width}")
    bits = net.add_inputs([f"x{i}" for i in range(width)])
    net.set_output("p", arith.parity_tree(net, bits))
    return net


def nine_symml() -> LogicNetwork:
    """9-input symmetric function: 1 iff the input weight is in [3, 6]."""
    net = LogicNetwork("9symml")
    bits = net.add_inputs([f"x{i}" for i in range(9)])
    count = arith.popcount(net, bits)
    net.set_output("f", arith.constant_compare_range(net, count, 3, 6))
    return net


def decod() -> LogicNetwork:
    """4-to-16 decoder with enable: 5 inputs, 16 outputs."""
    net = LogicNetwork("decod")
    select = net.add_inputs([f"a{i}" for i in range(4)])
    enable = net.add_input("en")
    outs = arith.decoder(net, select, enable)
    for i, sig in enumerate(outs):
        net.set_output(f"d{i}", sig)
    return net


def comp(width: int = 16) -> LogicNetwork:
    """Magnitude comparator: 2*width inputs, LT/EQ/GT outputs.

    Operand buses interleaved in the input list (see :func:`my_adder`).
    """
    net = LogicNetwork("comp" if width == 16 else f"comp_{width}")
    a: list = []
    b: list = []
    for i in range(width):
        a.append(net.add_input(f"a{i}"))
        b.append(net.add_input(f"b{i}"))
    lt, eq, gt = arith.magnitude_compare(net, a, b)
    net.set_output("lt", lt)
    net.set_output("eq", eq)
    net.set_output("gt", gt)
    return net


def z4ml() -> LogicNetwork:
    """Three 2-bit operands plus carry-in: 7 inputs, 4 sum outputs."""
    net = LogicNetwork("z4ml")
    a1, b1, c1 = net.add_inputs(["a1", "b1", "c1"])
    a0, b0, c0 = net.add_inputs(["a0", "b0", "c0"])
    cin = net.add_input("cin")
    a, b, c = [a0, a1], [b0, b1], [c0, c1]
    s_ab, cout_ab = arith.ripple_adder(net, a, b, cin)
    # Second addition: (a+b+cin) + c; the first stage carry extends the word.
    word = s_ab + [cout_ab]
    c_ext = c + [net.const(False)]
    s, cout = arith.ripple_adder(net, word, c_ext)
    for i in range(3):
        net.set_output(f"s{i}", s[i])
    net.set_output("s3", cout)
    return net


def count(width: int = 16) -> LogicNetwork:
    """Loadable/clearable counter next-state logic.

    Inputs: current value ``q`` (width), load data ``d`` (width), and
    ``clear``/``load``/``en`` controls — ``2*width + 3`` inputs, ``width``
    next-state outputs (35/16 at the paper's signature).
    """
    net = LogicNetwork("count" if width == 16 else f"count_{width}")
    clear = net.add_input("clear")
    load = net.add_input("load")
    en = net.add_input("en")
    q: list = []
    d: list = []
    for i in range(width):
        q.append(net.add_input(f"q{i}"))
        d.append(net.add_input(f"d{i}"))
    inc, _carry = arith.incrementer(net, q, en)
    nclear = net.inv(clear)
    for i in range(width):
        held = net.mux(load, d[i], inc[i])
        net.set_output(f"n{i}", net.and_(nclear, held))
    return net


def cordic(angle_width: int = 11) -> LogicNetwork:
    """CORDIC rotation-direction decision step.

    Inputs: residual angle ``z`` and target ``t`` (``angle_width`` bits
    each) plus a mode bit — 23 inputs at the paper signature.  Outputs:
    the two micro-rotation direction decisions (2 outputs), computed from
    sign/magnitude comparisons, the decision kernel of a CORDIC stage.
    """
    net = LogicNetwork("cordic" if angle_width == 11 else f"cordic_{angle_width}")
    z: list = []
    t: list = []
    for i in range(angle_width):
        z.append(net.add_input(f"z{i}"))
        t.append(net.add_input(f"t{i}"))
    mode = net.add_input("m")
    lt = arith.magnitude_less_than(net, z, t)
    eq = arith.equality(net, z, t)
    sign = z[-1]
    d1 = net.mux(mode, lt, sign)
    d2 = net.add_gate("NOR", [net.mux(mode, eq, lt), sign])
    net.set_output("d1", d1)
    net.set_output("d2", d2)
    return net


def alu4() -> LogicNetwork:
    """4-bit ALU slice with the 74181 port signature (14 in, 8 out).

    Logic mode (``m = 1``): the four select bits are the truth table of
    the bitwise function ``F_i = S[(A_i, B_i)]`` (how the 74181's logic
    mode behaves conceptually).  Arithmetic mode (``m = 0``):
    ``F = A + ((S3 & B) | (S2 & ~B)) + cn`` with ripple carries.  Outputs:
    ``F0..F3``, carry-out, group propagate/generate, and ``A=B``.  The
    exact 74181 S-encoding is not bit-matched (family substitute).
    """
    net = LogicNetwork("alu4")
    m = net.add_input("m")
    cn = net.add_input("cn")
    s = net.add_inputs([f"s{i}" for i in range(4)])
    a: List[str] = []
    b: List[str] = []
    for i in reversed(range(4)):
        a.append(net.add_input(f"a{i}"))
        b.append(net.add_input(f"b{i}"))
    a.reverse()
    b.reverse()

    # Logic mode: F_i = mux over (a_i, b_i) of the S truth table.
    logic_bits: List[str] = []
    for i in range(4):
        low = net.mux(b[i], s[1], s[0])
        high = net.mux(b[i], s[3], s[2])
        logic_bits.append(net.mux(a[i], high, low))

    # Arithmetic mode: operand transform then ripple addition.
    operand: List[str] = []
    for i in range(4):
        t_pos = net.and_(s[3], b[i])
        t_neg = net.and_(s[2], net.inv(b[i]))
        operand.append(net.or_(t_pos, t_neg))
    sums, cout = arith.ripple_adder(net, a, operand, cn)

    f_bits = [net.mux(m, logic_bits[i], sums[i]) for i in range(4)]
    for i in range(4):
        net.set_output(f"f{i}", f_bits[i])
    net.set_output("cn4", net.and_(net.inv(m), cout))
    # Group propagate / generate over the arithmetic operands.
    p_bits = [net.or_(a[i], operand[i]) for i in range(4)]
    g_terms = []
    for i in range(4):
        g_i = net.and_(a[i], operand[i])
        chain = [g_i] + [p_bits[j] for j in range(i + 1, 4)]
        g_terms.append(arith.balanced_tree(net, "AND", chain) if len(chain) > 1 else g_i)
    net.set_output("p", arith.balanced_tree(net, "AND", p_bits))
    net.set_output("g", arith.balanced_tree(net, "OR", g_terms))
    net.set_output("aeqb", arith.balanced_tree(net, "AND", f_bits))
    return net


def misex1() -> LogicNetwork:
    return seeded_pla("misex1", 8, 7, 12, seed=0x1501)


def misex3(num_inputs: int = 14) -> LogicNetwork:
    return seeded_pla(
        "misex3" if num_inputs == 14 else f"misex3_{num_inputs}",
        num_inputs,
        14,
        40,
        seed=0x1503,
        care_density=0.5,
        xor_fraction=0.4,
        xor_span=4,
    )


def seq(num_inputs: int = 41) -> LogicNetwork:
    return seeded_pla(
        "seq" if num_inputs == 41 else f"seq_{num_inputs}",
        num_inputs,
        35,
        max(12, int(1.2 * num_inputs)),
        seed=0x0541,
        care_density=0.3,
        output_density=0.15,
        xor_fraction=0.5,
        xor_span=6,
    )


def frg1(num_inputs: int = 28) -> LogicNetwork:
    return seeded_pla(
        "frg1" if num_inputs == 28 else f"frg1_{num_inputs}",
        num_inputs,
        3,
        25,
        seed=0x0F01,
        care_density=0.3,
        output_density=0.5,
        xor_fraction=0.34,
        xor_span=5,
    )
