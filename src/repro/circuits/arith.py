"""Reusable gate-level arithmetic builders.

All builders operate on an existing :class:`~repro.network.network.LogicNetwork`
and return signal names, so generators can compose them freely.  The
structures are the textbook ones a synthesis front-end would instantiate
(ripple carry, XNOR equality trees, mux-based barrel stages) — i.e. the
"conventional architectures" the Table II baseline flow is meant to
represent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def full_adder(net, a: str, b: str, cin: str) -> Tuple[str, str]:
    """(sum, carry) via two XORs and a majority."""
    axb = net.xor(a, b)
    s = net.xor(axb, cin)
    c = net.maj(a, b, cin)
    return s, c


def half_adder(net, a: str, b: str) -> Tuple[str, str]:
    return net.xor(a, b), net.and_(a, b)


def ripple_adder(
    net,
    a_bits: Sequence[str],
    b_bits: Sequence[str],
    cin: Optional[str] = None,
) -> Tuple[List[str], str]:
    """LSB-first ripple-carry adder; returns (sum bits, carry out)."""
    if len(a_bits) != len(b_bits):
        raise ValueError("operand widths differ")
    sums: List[str] = []
    carry = cin
    for a, b in zip(a_bits, b_bits):
        if carry is None:
            s, carry = half_adder(net, a, b)
        else:
            s, carry = full_adder(net, a, b, carry)
        sums.append(s)
    return sums, carry


def incrementer(net, bits: Sequence[str], en: str) -> Tuple[List[str], str]:
    """LSB-first conditional incrementer; returns (next bits, carry out)."""
    outs: List[str] = []
    carry = en
    for bit in bits:
        outs.append(net.xor(bit, carry))
        carry = net.and_(bit, carry)
    return outs, carry


def equality(net, a_bits: Sequence[str], b_bits: Sequence[str]) -> str:
    """``a == b`` as a balanced AND tree over per-bit XNORs."""
    terms = [net.xnor(a, b) for a, b in zip(a_bits, b_bits)]
    return balanced_tree(net, "AND", terms)


def magnitude_less_than(
    net, a_bits: Sequence[str], b_bits: Sequence[str]
) -> str:
    """``a < b`` (unsigned, LSB-first operands) as a ripple chain.

    ``lt_i = (~a_i & b_i) | ((a_i xnor b_i) & lt_{i-1})`` — a 2:1 mux with
    an XNOR select per stage, the comparator structure a BBDD node
    expresses natively (Sec. V-A).
    """
    lt = None
    for a, b in zip(a_bits, b_bits):  # LSB to MSB; MSB decided last
        bit_lt = net.and_(net.inv(a), b)
        if lt is None:
            lt = bit_lt
        else:
            eq = net.xnor(a, b)
            lt = net.or_(bit_lt, net.and_(eq, lt))
    return lt


def magnitude_compare(
    net, a_bits: Sequence[str], b_bits: Sequence[str]
) -> Tuple[str, str, str]:
    """(lt, eq, gt) for unsigned LSB-first operands."""
    lt = magnitude_less_than(net, a_bits, b_bits)
    eq = equality(net, a_bits, b_bits)
    gt = net.add_gate("NOR", [lt, eq])
    return lt, eq, gt


def balanced_tree(net, op: str, signals: Sequence[str]) -> str:
    """Reduce ``signals`` with a balanced tree of 2-input ``op`` gates."""
    level = list(signals)
    if not level:
        raise ValueError("cannot reduce an empty signal list")
    while len(level) > 1:
        nxt: List[str] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(net.add_gate(op, [level[i], level[i + 1]]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def parity_tree(net, signals: Sequence[str]) -> str:
    return balanced_tree(net, "XOR", signals)


def decoder(net, select: Sequence[str], enable: Optional[str] = None) -> List[str]:
    """Full decoder: ``2**len(select)`` one-hot outputs (LSB-first select)."""
    inverted = [net.inv(s) for s in select]
    outs: List[str] = []
    for code in range(1 << len(select)):
        literals = [
            select[j] if (code >> j) & 1 else inverted[j]
            for j in range(len(select))
        ]
        if enable is not None:
            literals.append(enable)
        outs.append(balanced_tree(net, "AND", literals) if len(literals) > 1 else literals[0])
    return outs


def mux_tree(net, select: Sequence[str], leaves: Sequence[str]) -> str:
    """Select one of ``2**len(select)`` leaves (select LSB-first)."""
    if len(leaves) != 1 << len(select):
        raise ValueError("leaf count must be 2**len(select)")
    level = list(leaves)
    for s in select:
        level = [
            net.mux(s, level[i + 1], level[i]) for i in range(0, len(level), 2)
        ]
    return level[0]


def barrel_rotate_left(net, data: Sequence[str], shamt: Sequence[str]) -> List[str]:
    """Logarithmic barrel rotator (LSB-first data, LSB-first shamt)."""
    n = len(data)
    stage = list(data)
    for j, s in enumerate(shamt):
        k = (1 << j) % n
        rotated = [stage[(i - k) % n] for i in range(n)]
        stage = [net.mux(s, rotated[i], stage[i]) for i in range(n)]
    return stage


def barrel_shift_or_rotate(
    net,
    data: Sequence[str],
    shamt: Sequence[str],
    left: str,
    rotate: str,
) -> List[str]:
    """Bidirectional barrel shifter/rotator with control inputs.

    ``left`` selects the shift direction, ``rotate`` selects rotation
    versus zero-fill shifting.  Logarithmic mux stages.
    """
    n = len(data)
    zero = net.const(False)
    stage = list(data)
    for j, s in enumerate(shamt):
        k = (1 << j) % n
        moved: List[str] = []
        for i in range(n):
            li = (i - k) % n
            ri = (i + k) % n
            l_in_range = i >= k
            r_in_range = i < n - k
            left_shift = stage[li] if l_in_range else zero
            left_rot = stage[li]
            right_shift = stage[ri] if r_in_range else zero
            right_rot = stage[ri]
            lval = net.mux(rotate, left_rot, left_shift)
            rval = net.mux(rotate, right_rot, right_shift)
            moved.append(net.mux(left, lval, rval))
        stage = [net.mux(s, moved[i], stage[i]) for i in range(n)]
    return stage


def popcount(net, signals: Sequence[str]) -> List[str]:
    """Counting network: LSB-first binary count of set inputs.

    Built from full/half adders (a carry-save style reduction), used by
    symmetric-function benchmarks such as 9symml.
    """
    columns: List[List[str]] = [list(signals)]
    result: List[str] = []
    while columns:
        col = columns[0]
        carries: List[str] = []
        while len(col) >= 3:
            a, b, c = col.pop(), col.pop(), col.pop()
            s, cy = full_adder(net, a, b, c)
            col.append(s)
            carries.append(cy)
        if len(col) == 2:
            a, b = col.pop(), col.pop()
            s, cy = half_adder(net, a, b)
            col.append(s)
            carries.append(cy)
        result.append(col[0])
        columns = columns[1:]
        if carries:
            if columns:
                columns[0].extend(carries)
            else:
                columns.append(carries)
    return result


def constant_compare_range(
    net, count_bits: Sequence[str], low: int, high: int
) -> str:
    """``low <= value(count_bits) <= high`` for an LSB-first counter value."""
    terms: List[str] = []
    width = len(count_bits)
    for value in range(low, high + 1):
        literals = [
            count_bits[j] if (value >> j) & 1 else net.inv(count_bits[j])
            for j in range(width)
        ]
        terms.append(balanced_tree(net, "AND", literals) if len(literals) > 1 else literals[0])
    return balanced_tree(net, "OR", terms) if len(terms) > 1 else terms[0]
