"""ISCAS-85 rows of Table I.

``C17`` is implemented exactly (its six-NAND netlist is public knowledge).
``C499``/``C1355`` are 32-bit single-error-correction (SEC) circuits and
``C1908`` a 16-bit SEC/DED-style coder; their exact netlists are not
redistributable here, so we build same-family substitutes with the paper's
I/O signatures: syndrome computation over a parity-check matrix with
distinct non-zero columns, followed by correction.  C1355 is, as in the
real suite, the same function as C499 with every XOR expanded into four
NANDs (and a different input interleaving, mirroring the distinct source
files).  All substitutions are documented in DESIGN.md §3/§5.
"""

from __future__ import annotations

from typing import List

from repro.circuits.arith import balanced_tree, parity_tree
from repro.network.network import LogicNetwork

#: Parity-check columns for the 32-bit SEC substitutes: 32 distinct
#: non-zero 8-bit values (data bit i is covered by check j iff bit j set).
_SEC32_COLUMNS = tuple(range(1, 33))

#: Columns for the 16-bit SEC/DED substitute (distinct, non-zero, 6 bits).
_SEC16_COLUMNS = tuple(range(3, 19))


def c17() -> LogicNetwork:
    """The exact ISCAS-85 C17: six NAND2 gates, 5 inputs, 2 outputs."""
    net = LogicNetwork("C17")
    in1, in2, in3, in4, in5 = net.add_inputs(["in1", "in2", "in3", "in4", "in5"])
    w1 = net.add_gate("NAND", [in1, in3])
    w2 = net.add_gate("NAND", [in3, in4])
    w3 = net.add_gate("NAND", [in2, w2])
    w4 = net.add_gate("NAND", [w2, in5])
    out1 = net.add_gate("NAND", [w1, w3])
    out2 = net.add_gate("NAND", [w3, w4])
    net.set_output("out1", out1)
    net.set_output("out2", out2)
    return net


def _sec_core(
    net: LogicNetwork,
    data: List[str],
    checks: List[str],
    enable: str,
    columns,
    xor_fn,
) -> List[str]:
    """Shared SEC structure: syndrome, column match, conditional flip."""
    num_checks = len(checks)
    syndrome: List[str] = []
    for j in range(num_checks):
        covered = [data[i] for i, col in enumerate(columns) if (col >> j) & 1]
        terms = covered + [checks[j]]
        acc = terms[0]
        for t in terms[1:]:
            acc = xor_fn(acc, t)
        syndrome.append(acc)
    inverted = [net.inv(s) for s in syndrome]
    corrected: List[str] = []
    for i, col in enumerate(columns):
        literals = [
            syndrome[j] if (col >> j) & 1 else inverted[j] for j in range(num_checks)
        ]
        literals.append(enable)
        match = balanced_tree(net, "AND", literals)
        corrected.append(xor_fn(data[i], match))
    return corrected


def c499(data_width: int = 32) -> LogicNetwork:
    """41-input/32-output SEC decoder substitute (XOR form).

    ``data_width`` scales the circuit for the fast benchmark profile;
    check count tracks the width (8 checks at width 32, 6 at width 16).
    """
    checks = max((2 * data_width - 1).bit_length(), data_width // 4)
    net = LogicNetwork(f"C499" if data_width == 32 else f"C499_{data_width}")
    data = net.add_inputs([f"id{i}" for i in range(data_width)])
    check = net.add_inputs([f"ic{j}" for j in range(checks)])
    enable = net.add_input("r")
    columns = tuple(range(1, data_width + 1))
    outs = _sec_core(net, data, check, enable, columns, net.xor)
    for i, sig in enumerate(outs):
        net.set_output(f"od{i}", sig)
    return net


def c1355(data_width: int = 32) -> LogicNetwork:
    """C499's function with XORs expanded to NAND pairs, interleaved inputs.

    In the real suite C1355 computes the same function as C499 with each
    XOR realized by four NAND2 gates; the distinct source file also lists
    the inputs differently, which is why the two rows behave differently
    under build-then-sift.  We reproduce both aspects.
    """
    checks = max((2 * data_width - 1).bit_length(), data_width // 4)
    net = LogicNetwork("C1355" if data_width == 32 else f"C1355_{data_width}")

    def nand_xor(a: str, b: str) -> str:
        nab = net.add_gate("NAND", [a, b])
        return net.add_gate(
            "NAND",
            [net.add_gate("NAND", [a, nab]), net.add_gate("NAND", [b, nab])],
        )

    # Interleave data and check inputs (different file order than C499).
    data: List[str] = []
    check: List[str] = []
    di, ci = 0, 0
    for slot in range(data_width + checks):
        place_check = (slot % 5 == 4 and ci < checks) or di >= data_width
        if place_check:
            check.append(net.add_input(f"ic{ci}"))
            ci += 1
        else:
            data.append(net.add_input(f"id{di}"))
            di += 1
    enable = net.add_input("r")
    columns = tuple(range(1, data_width + 1))
    outs = _sec_core(net, data, check, enable, columns, nand_xor)
    for i, sig in enumerate(outs):
        net.set_output(f"od{i}", sig)
    return net


def c1908(data_width: int = 16) -> LogicNetwork:
    """33-input/25-output SEC/DED-style coder substitute.

    Inputs: 16 data, 16 received check bits, 1 enable (33).  Outputs: 16
    corrected data, 8 recomputed check bits, 1 error flag (25).
    """
    checks_in = data_width  # received check word (same width as data)
    checks_out = max(2, (2 * data_width - 1).bit_length() + 3)
    net = LogicNetwork("C1908" if data_width == 16 else f"C1908_{data_width}")
    data = net.add_inputs([f"d{i}" for i in range(data_width)])
    received = net.add_inputs([f"r{i}" for i in range(checks_in)])
    enable = net.add_input("en")

    syndrome_checks = max(2, (2 * data_width - 1).bit_length())
    received_low = received[:syndrome_checks]
    columns = tuple(range(3, 3 + data_width))
    corrected = _sec_core(net, data, received_low, enable, columns, net.xor)
    for i, sig in enumerate(corrected):
        net.set_output(f"cd{i}", sig)
    # Recomputed check word over the corrected data.
    for j in range(checks_out):
        covered = [corrected[i] for i, col in enumerate(columns) if ((col * 7 + j) >> (j % 3)) & 1]
        if not covered:
            covered = [corrected[j % data_width]]
        net.set_output(f"nc{j}", parity_tree(net, covered) if len(covered) > 1 else covered[0])
    # Error flag: any syndrome bit set among the used checks.
    flags = [net.xor(received[k], corrected[k % data_width]) for k in range(syndrome_checks, checks_in)]
    net.set_output("err", balanced_tree(net, "OR", flags))
    return net
