"""Exception hierarchy for the BBDD package."""


class BBDDError(Exception):
    """Base class for all errors raised by the BBDD package."""


class VariableError(BBDDError):
    """An unknown or ill-typed variable was supplied."""


class OrderError(BBDDError):
    """A variable order is inconsistent with the manager's variables."""


class ForeignManagerError(BBDDError):
    """Functions from two different managers were combined."""


class OperatorError(BBDDError, ValueError):
    """An unknown Boolean operator name was supplied.

    Subclasses ``ValueError`` as well for backward compatibility with
    the historical ``op_from_name`` contract.
    """


class InvariantViolation(BBDDError):
    """An internal canonical-form invariant was violated.

    Raised only by the debugging ``check_invariants`` facilities; seeing
    this exception in the wild indicates a bug in the package itself.
    """
