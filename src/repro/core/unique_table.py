"""The unique table: strong canonical form storage (Sec. IV-A1).

Every BBDD node has a distinct entry keyed by its strong-canonical
tuple — ``(pv, sv, neq_edge, eq_edge)`` for chain nodes (the children
are signed int edges of the flat store, so the ``!=``-attr rides on
the sign) and ``(pv, SV_ONE)`` for literal nodes.  A lookup before
each insertion guarantees that structurally equal nodes get the *same
index*, reducing equivalence tests to integer comparisons.

One backend remains: :class:`UniqueTable`, a thin stats-keeping shell
around the built-in dict.  The historical ``"cantor"`` bucket-array
implementation (nested Cantor pairings + adaptive rehashing) was
retired with the integer-coded store — packed int-tuple keys hash
natively faster than any pure-Python bucket scheme — so the factory
accepts ``"cantor"`` only as a compatibility alias.

The protocol is unchanged: ``lookup``, ``insert``, ``delete``,
``__len__``, ``__contains__``, ``values``, ``clear`` and ``stats``.
Hot paths (``BBDDManager._make``) bypass the method layer and work on
the raw ``_table`` dict directly, settling the ``_lookups``/``_hits``
counters themselves.
"""

from __future__ import annotations

from typing import Iterable


class UniqueTable:
    """Unique table backed by the built-in dict (packed int-tuple keys)."""

    __slots__ = ("_table", "_lookups", "_hits")

    def __init__(self) -> None:
        self._table: dict = {}
        self._lookups = 0
        self._hits = 0

    def lookup(self, key: tuple):
        self._lookups += 1
        node = self._table.get(key)
        if node is not None:
            self._hits += 1
        return node

    def insert(self, key: tuple, node) -> None:
        self._table[key] = node

    def delete(self, key: tuple) -> None:
        del self._table[key]

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: tuple) -> bool:
        return key in self._table

    def values(self) -> Iterable:
        return self._table.values()

    def clear(self) -> None:
        self._table.clear()

    def stats(self) -> dict:
        return {
            "backend": "dict",
            "entries": len(self._table),
            "lookups": self._lookups,
            "hits": self._hits,
        }


#: Backwards-compatible name (the pre-refactor default backend class).
DictUniqueTable = UniqueTable


def make_unique_table(backend: str = "dict", **kwargs):
    """Factory used by the managers.

    ``"dict"`` is the only real backend; ``"cantor"`` is accepted as a
    deprecated alias (extra sizing kwargs are ignored) so existing
    configuration keeps working.
    """
    if backend in ("dict", "cantor"):
        return UniqueTable()
    raise ValueError(f"unknown unique-table backend: {backend!r}")
