"""Unique tables: strong canonical form storage (Sec. IV-A1).

Every BBDD node has a distinct entry keyed by its strong-canonical tuple
``{CVO-level, !=-child, !=-attr, =-child}``; a lookup before each insertion
guarantees that structurally equal nodes are the *same object*, reducing
equivalence tests to pointer comparisons.

Two interchangeable backends are provided:

* :class:`DictUniqueTable` — Python's native hash map.  Fast; the default.
* :class:`CantorUniqueTable` — the paper's faithful implementation: bucket
  array addressed by nested Cantor pairings with prime modulo reduction,
  collisions chained in per-bucket lists, dynamic resizing and adaptive
  re-hashing controlled by the ``{size x access-time}`` metric
  (:class:`repro.core.hashing.AdaptiveHashController`).

Both expose the same protocol: ``lookup``, ``insert``, ``delete``,
``__len__``, ``values`` and ``stats``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.hashing import AdaptiveHashController, next_table_size


class DictUniqueTable:
    """Unique table backed by the built-in dict (native hashing)."""

    __slots__ = ("_table", "_lookups", "_hits")

    def __init__(self) -> None:
        self._table: dict = {}
        self._lookups = 0
        self._hits = 0

    def lookup(self, key: tuple):
        self._lookups += 1
        node = self._table.get(key)
        if node is not None:
            self._hits += 1
        return node

    def insert(self, key: tuple, node) -> None:
        self._table[key] = node

    def delete(self, key: tuple) -> None:
        del self._table[key]

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: tuple) -> bool:
        return key in self._table

    def values(self) -> Iterable:
        return self._table.values()

    def clear(self) -> None:
        self._table.clear()

    def stats(self) -> dict:
        return {
            "backend": "dict",
            "entries": len(self._table),
            "lookups": self._lookups,
            "hits": self._hits,
        }


def _default_key_fold(key: tuple) -> tuple:
    """Flatten a node key into non-negative ints for Cantor pairing."""
    out = []
    for part in key:
        if isinstance(part, bool):
            out.append(int(part))
        else:
            # Variable indices may use small negative sentinels; shift.
            out.append(part + 4 if part >= -4 else part)
    return tuple(out)


class CantorUniqueTable:
    """Faithful unique table: Cantor hashing, chaining, adaptive policy.

    Collisions are handled by a linked list per hash value (here: a Python
    list used as the chain).  The table grows when the controller requests
    it and re-arranges all elements under a modified hash function when
    growth stops improving the ``size x access-time`` metric.
    """

    __slots__ = ("_buckets", "_size", "_count", "_controller", "_fold", "_lookups", "_hits")

    INITIAL_SIZE = 1024

    def __init__(
        self,
        initial_size: int = INITIAL_SIZE,
        key_fold: Callable[[tuple], tuple] = _default_key_fold,
        controller: Optional[AdaptiveHashController] = None,
    ) -> None:
        self._size = max(16, initial_size)
        self._buckets: list = [None] * self._size
        self._count = 0
        self._controller = controller or AdaptiveHashController()
        self._fold = key_fold
        self._lookups = 0
        self._hits = 0

    # -- hashing ----------------------------------------------------------

    def _index(self, key: tuple) -> int:
        return self._controller.hash_tuple(self._fold(key), self._size)

    # -- protocol ----------------------------------------------------------

    def lookup(self, key: tuple):
        self._lookups += 1
        chain = self._buckets[self._index(key)]
        probes = 0
        if chain is not None:
            for probes, (k, node) in enumerate(chain, start=1):
                if k == key:
                    self._controller.record_access(probes)
                    self._maybe_adapt()
                    self._hits += 1
                    return node
        self._controller.record_access(probes + 1)
        self._maybe_adapt()
        return None

    def insert(self, key: tuple, node) -> None:
        idx = self._index(key)
        chain = self._buckets[idx]
        if chain is None:
            self._buckets[idx] = [(key, node)]
        else:
            chain.append((key, node))
        self._count += 1

    def delete(self, key: tuple) -> None:
        idx = self._index(key)
        chain = self._buckets[idx]
        if chain is not None:
            for i, (k, _node) in enumerate(chain):
                if k == key:
                    chain.pop(i)
                    self._count -= 1
                    if not chain:
                        self._buckets[idx] = None
                    return
        raise KeyError(key)

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: tuple) -> bool:
        return self.lookup(key) is not None

    def values(self):
        for chain in self._buckets:
            if chain is not None:
                for _key, node in chain:
                    yield node

    def clear(self) -> None:
        self._buckets = [None] * self._size
        self._count = 0

    # -- dynamics -----------------------------------------------------------

    def _maybe_adapt(self) -> None:
        if not self._controller.should_evaluate():
            return
        decision = self._controller.decide(self._size, self._count)
        if decision == "grow":
            self._resize(next_table_size(self._size))
        elif decision == "rehash":
            self._controller.next_hash_function()
            self._resize(self._size)

    def _resize(self, new_size: int) -> None:
        entries = [(k, n) for chain in self._buckets if chain for (k, n) in chain]
        self._size = new_size
        self._buckets = [None] * new_size
        self._count = 0
        for key, node in entries:
            self.insert(key, node)

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        used = sum(1 for c in self._buckets if c)
        longest = max((len(c) for c in self._buckets if c), default=0)
        data = {
            "backend": "cantor",
            "entries": self._count,
            "table_size": self._size,
            "buckets_used": used,
            "longest_chain": longest,
            "lookups": self._lookups,
            "hits": self._hits,
        }
        data.update(self._controller.stats())
        return data


def make_unique_table(backend: str = "dict", **kwargs):
    """Factory used by the managers (``backend in {"dict", "cantor"}``)."""
    if backend == "dict":
        return DictUniqueTable()
    if backend == "cantor":
        return CantorUniqueTable(**kwargs)
    raise ValueError(f"unknown unique-table backend: {backend!r}")
