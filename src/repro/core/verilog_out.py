"""BBDD-to-Verilog writer: the package's output format (Sec. IV-B).

The paper's package "provides as output a Verilog description for the
built BBDD"; this module rewrites a BBDD forest into the comparator-
structured netlist (:mod:`repro.synth.bbdd_rewrite`) and serializes it as
flattened structural Verilog.
"""

from __future__ import annotations

from typing import Dict


def bbdd_to_verilog(manager, functions: Dict[str, object], module_name: str = "bbdd") -> str:
    """Serialize ``{output name: Function}`` as a Verilog netlist."""
    from repro.network.verilog import write_verilog
    from repro.synth.bbdd_rewrite import rewrite_functions

    network = rewrite_functions(manager, functions)
    network.name = module_name
    return write_verilog(network, module_name)
