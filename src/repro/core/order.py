"""Chain Variable Order (CVO) bookkeeping (Sec. III-B, Eq. 2).

Given an input variable order ``pi = (pi_0, .., pi_{n-1})`` the CVO couples
adjacent variables level by level::

    (PV_i, SV_i) = (pi_i, pi_{i+1})     for i = 0 .. n-2
    (PV_{n-1}, SV_{n-1}) = (pi_{n-1}, 1)

We number *positions* from 0 at the root to ``n - 1`` at the bottom; the
paper's ``maxlevel`` (root-most level of an operand pair) is our minimum
position.  The class maintains the order, its inverse permutation, and the
derived couples, and supports the adjacent transposition that underlies the
re-ordering theory of Sec. IV-A4.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.exceptions import OrderError
from repro.core.node import SV_ONE


class ChainVariableOrder:
    """Mutable variable order with CVO couple derivation."""

    __slots__ = ("_order", "_position", "_misplaced")

    def __init__(self, order: Sequence[int]) -> None:
        self._order: List[int] = list(order)
        self._position: dict[int, int] = {}
        self._rebuild_positions()
        if len(self._position) != len(self._order):
            raise OrderError("variable order contains duplicates")
        self._misplaced = sum(v != p for p, v in enumerate(self._order))

    def _rebuild_positions(self) -> None:
        self._position = {var: pos for pos, var in enumerate(self._order)}

    @property
    def is_identity(self) -> bool:
        """True while position(v) == v for every variable.

        While the order is the identity permutation, variable-index
        comparisons on support masks are position comparisons — the
        manager's terminal-substitution fast path keys on this.  Tracked
        exactly (a misplaced-variable counter updated O(1) per swap), so
        the flag recovers when reordering returns to the identity.
        """
        return self._misplaced == 0

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return iter(self._order)

    @property
    def order(self) -> tuple:
        """The current order ``pi`` as a tuple of variable indices."""
        return tuple(self._order)

    def position(self, var: int) -> int:
        """Position (0 = root) of ``var`` in the current order."""
        try:
            return self._position[var]
        except KeyError:
            raise OrderError(f"variable {var} is not in the order") from None

    def var_at(self, position: int) -> int:
        return self._order[position]

    def sv_of_position(self, position: int) -> int:
        """Secondary variable of the couple at ``position`` (Eq. 2).

        Returns :data:`~repro.core.node.SV_ONE` for the bottom couple.
        """
        if position == len(self._order) - 1:
            return SV_ONE
        return self._order[position + 1]

    def couple(self, position: int) -> tuple:
        """The CVO couple ``(PV, SV)`` at ``position``."""
        return (self._order[position], self.sv_of_position(position))

    def couples(self) -> list:
        """All couples, root to bottom — the paper's CVO example layout."""
        return [self.couple(p) for p in range(len(self._order))]

    def contains(self, var: int) -> bool:
        return var in self._position

    # -- mutation ----------------------------------------------------------------

    def swap_positions(self, position: int) -> None:
        """Transpose the variables at ``position`` and ``position + 1``.

        This is the order-level effect of the CVO swap ``i <-> i+1``; the
        node-level effect is implemented by :mod:`repro.core.reorder`.
        """
        n = len(self._order)
        if not 0 <= position < n - 1:
            raise OrderError(f"cannot swap positions {position},{position + 1} of {n}")
        a, b = self._order[position], self._order[position + 1]
        self._order[position], self._order[position + 1] = b, a
        self._position[a] = position + 1
        self._position[b] = position
        self._misplaced += (
            (a != position + 1)
            + (b != position)
            - (a != position)
            - (b != position + 1)
        )

    def append(self, var: int) -> None:
        """Append a fresh variable at the bottom of the order."""
        if var in self._position:
            raise OrderError(f"variable {var} already in the order")
        self._misplaced += var != len(self._order)
        self._position[var] = len(self._order)
        self._order.append(var)

    def set_order(self, order: Iterable[int]) -> None:
        new = list(order)
        if sorted(new) != sorted(self._order):
            raise OrderError("new order must be a permutation of the variables")
        self._order = new
        self._rebuild_positions()
        self._misplaced = sum(v != p for p, v in enumerate(new))

    def copy(self) -> "ChainVariableOrder":
        return ChainVariableOrder(self._order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CVO{tuple(self._order)}"
