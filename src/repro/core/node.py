"""BBDD node and edge primitives (Fig. 1 of the paper).

A BBDD internal node is labelled by a Primary Variable (PV) and a Secondary
Variable (SV) and has two out-edges, ``PV != SV`` and ``PV = SV``; it
denotes the biconditional expansion (Eq. 1)::

    f = (v xor w) f_neq  +  (v xnor w) f_eq

Canonical-form conventions implemented here (Sec. III-D):

* only the 1-sink exists; the constant 0 is a complemented edge to it;
* complement attributes live on ``!=``-edges (and on external edges);
  ``=``-edges of stored nodes are always regular;
* single-variable functions degenerate to *literal nodes* — rule R4's
  "BDD node" with ``SV = 1`` — whose children are fixed: the ``!=``-edge
  is the complemented sink (value 0), the ``=``-edge the regular sink.

Edges are plain ``(node, attr)`` tuples in the hot paths; the
:class:`repro.core.function.Function` wrapper gives users a safe handle.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: Sentinel variable index for a literal node's secondary variable (the
#: fictitious constant-1 variable of the paper's boundary condition).
SV_ONE = -1

#: Sentinel variable index identifying the sink node.
SINK_VAR = -2


class BBDDNode:
    """A single BBDD node.

    Nodes are mutable only through the manager (creation, in-place CVO-swap
    rewriting, sweep).  Identity is object identity; structural equality is
    exactly unique-table equality, which is what makes equivalence tests a
    pointer comparison (strong canonical form).

    Attributes
    ----------
    pv:
        Primary variable index; ``SINK_VAR`` for the sink.
    sv:
        Secondary variable index; ``SV_ONE`` for literal (R4) nodes and the
        sink.
    neq / neq_attr:
        The ``PV != SV`` child and its complement attribute.
    eq:
        The ``PV = SV`` child (always a regular edge).
    ref:
        Reference count: parents plus user handles.
    uid:
        Manager-unique dense integer id (feeds the Cantor hashes).
    """

    __slots__ = (
        "pv",
        "sv",
        "neq",
        "neq_attr",
        "eq",
        "ref",
        "floating",
        "uid",
        "supp",
        "tkey",
        "__weakref__",
    )

    def __init__(
        self,
        pv: int,
        sv: int,
        neq: Optional["BBDDNode"],
        neq_attr: bool,
        eq: Optional["BBDDNode"],
        uid: int,
    ) -> None:
        self.pv = pv
        self.sv = sv
        self.neq = neq
        self.neq_attr = neq_attr
        self.eq = eq
        self.ref = 0
        # A *floating* node was created but never yet referenced: it holds
        # one count on each child (from birth) although its own count is
        # zero.  First acquisition clears the flag in O(1); death (a
        # ref > 0 -> 0 transition) releases the child counts, so a node
        # with ref == 0 and floating == False holds none.
        self.floating = False
        self.uid = uid
        # Support bitmask over variable indices; maintained by the manager
        # (0 for the sink, 1 << pv for literals, the union + couple for
        # chain nodes).
        self.supp = 0 if pv == SINK_VAR else (1 << pv if pv >= 0 else 0)
        # Materialized unique-table key (the tuple actually inserted);
        # kept by the manager so sweeps need not rebuild it.
        self.tkey = None

    # -- classification ------------------------------------------------------

    @property
    def is_sink(self) -> bool:
        return self.pv == SINK_VAR

    @property
    def is_literal(self) -> bool:
        """True for R4 "BDD" nodes (``SV = 1``)."""
        return self.sv == SV_ONE and self.pv != SINK_VAR

    @property
    def is_chain(self) -> bool:
        """True for regular two-variable biconditional nodes."""
        return self.sv != SV_ONE and self.pv != SINK_VAR

    # -- representation -------------------------------------------------------

    def key(self) -> tuple:
        """Unique-table key of this node (the paper's strong-canonical tuple).

        Chain nodes are keyed by ``(pv, sv, neq.uid, neq_attr, eq.uid)``;
        under a CVO the pair ``(pv, sv)`` is equivalent to the paper's
        ``CVO-level`` field, and keying by the variable pair keeps
        unaffected nodes stable across re-ordering.  Literal nodes are keyed
        by their variable alone (their children are fixed).
        """
        if self.is_literal:
            return (self.pv, SV_ONE)
        return (self.pv, self.sv, self.neq.uid, self.neq_attr, self.eq.uid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_sink:
            return "<sink-1>"
        if self.is_literal:
            return f"<lit v{self.pv} uid={self.uid} ref={self.ref}>"
        return (
            f"<node (v{self.pv},v{self.sv}) uid={self.uid} ref={self.ref} "
            f"neq={self.neq.uid}{'~' if self.neq_attr else ''} eq={self.eq.uid}>"
        )


#: An edge is ``(node, complement_attr)``.
Edge = Tuple[BBDDNode, bool]


def make_sink(uid: int = 0) -> BBDDNode:
    """Create the (per-manager singleton) 1-sink node."""
    node = BBDDNode(SINK_VAR, SV_ONE, None, False, None, uid)
    node.ref = 1  # the sink is immortal
    return node


def negate(edge: Edge) -> Edge:
    """Complement an edge (free thanks to complement attributes)."""
    return (edge[0], not edge[1])


def edge_key(edge: Edge) -> tuple:
    """Hashable identity of an edge (for computed tables / test oracles)."""
    return (edge[0].uid, edge[1])
