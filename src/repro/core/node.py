"""Edge coding and node views for the flat integer-coded BBDD store.

The core stores nodes as **dense positive integers** indexing parallel
arrays owned by :class:`repro.core.manager.BBDDManager` (the
tulip-control/dd idiom): slot ``i`` of the ``_pv``/``_sv``/``_neq``/
``_eq``/``_ref``/``_supp`` arrays holds node ``i``'s fields.  An *edge*
is a single signed int whose sign carries the complement attribute —
``-e`` is ``NOT e``, so negation is unary minus and the operator
updates of Algorithm 1 become integer arithmetic.  The sink is index
``1`` (``+1`` = constant True edge, ``-1`` = constant False edge);
index ``0`` is never allocated so every edge has an observable sign.

A BBDD internal node is labelled by a Primary Variable (PV) and a
Secondary Variable (SV) and has two out-edges, ``PV != SV`` and
``PV = SV``; it denotes the biconditional expansion (Eq. 1)::

    f = (v xor w) f_neq  +  (v xnor w) f_eq

Canonical-form conventions (Sec. III-D) carried over into the coding:

* only the 1-sink exists; the constant 0 is the complemented edge -1;
* complement attributes live on ``!=``-edges (and on external edges):
  ``_neq[i]`` is stored as a signed edge while ``_eq[i]`` is always
  regular, i.e. positive;
* single-variable functions degenerate to *literal nodes* — rule R4's
  "BDD node" with ``SV = 1`` — whose children are fixed: ``neq = -1``
  (value 0) and ``eq = +1``.

:class:`BBDDNode` survives only as a **lazy read-only view** over one
slot, interned per manager (``manager.node_view(i)`` returns the same
object for the same index) so handle identity checks such as
``f.node is g.node`` keep working.  A view is not a handle: holding it
does not keep the slot alive, and its fields are undefined once the
slot is swept.
"""

from __future__ import annotations

import weakref

#: Sentinel variable index for a literal node's secondary variable (the
#: fictitious constant-1 variable of the paper's boundary condition).
SV_ONE = -1

#: Sentinel variable index identifying the sink node.
SINK_VAR = -2

#: Index of the sink node in every manager's arrays.
SINK = 1

#: An edge is one signed int: ``abs(edge)`` is the node index,
#: ``edge < 0`` the complement attribute.
Edge = int


class BBDDNode:
    """Read-only view of one node slot (render/debug surface).

    Exposes the object-style field surface (``pv``, ``sv``, ``neq``,
    ``neq_attr``, ``eq``, ``ref``, ``supp``, ``uid``, ...) on top of
    the manager's arrays.  Child accessors return interned views; the
    raw signed child edges are available as ``neq_edge``/``eq_edge``.
    """

    __slots__ = ("_manager", "index")

    def __init__(self, manager, index: int) -> None:
        # Weak back-reference: the manager interns its views, so a
        # strong one would cycle manager <-> view and managers could
        # then only die through Python's cyclic collector.
        self._manager = weakref.ref(manager)
        self.index = index

    @property
    def manager(self):
        return self._manager()

    # -- raw fields ----------------------------------------------------------

    @property
    def pv(self) -> int:
        return self.manager._pv[self.index]

    @property
    def sv(self) -> int:
        return self.manager._sv[self.index]

    @property
    def neq_edge(self) -> Edge:
        """The stored ``!=``-edge as a signed int."""
        return self.manager._neq[self.index]

    @property
    def eq_edge(self) -> Edge:
        """The stored ``=``-edge (always regular, i.e. positive)."""
        return self.manager._eq[self.index]

    @property
    def ref(self) -> int:
        return self.manager._ref[self.index]

    @property
    def floating(self) -> bool:
        return bool(self.manager._float[self.index])

    @property
    def supp(self) -> int:
        return self.manager._supp[self.index]

    @property
    def bot(self) -> int:
        """Chain-bottom variable of this node's span (== ``sv`` when plain)."""
        return self.manager._bot[self.index]

    @property
    def uid(self) -> int:
        """Stable identity of this node — its array index."""
        return self.index

    # -- object-style child surface ------------------------------------------

    @property
    def neq(self):
        """View of the ``!=``-child node (None on the sink)."""
        if self.index == SINK:
            return None
        child = self.manager._neq[self.index]
        return self.manager.node_view(-child if child < 0 else child)

    @property
    def neq_attr(self) -> bool:
        return self.manager._neq[self.index] < 0

    @property
    def eq(self):
        """View of the ``=``-child node (None on the sink)."""
        if self.index == SINK:
            return None
        return self.manager.node_view(self.manager._eq[self.index])

    # -- classification ------------------------------------------------------

    @property
    def is_sink(self) -> bool:
        return self.index == SINK

    @property
    def is_literal(self) -> bool:
        """True for R4 "BDD" nodes (``SV = 1``)."""
        return self.index != SINK and self.manager._sv[self.index] == SV_ONE

    @property
    def is_chain(self) -> bool:
        """True for regular two-variable biconditional nodes."""
        return self.index != SINK and self.manager._sv[self.index] != SV_ONE

    @property
    def is_span(self) -> bool:
        """True for chain-reduced nodes whose SV spans several levels.

        A span node ``(pv, sv:bot, d, e)`` collapses the linear chain of
        couples between ``sv`` and ``bot`` (Bryant-style ``t:b`` chain
        reduction): it denotes ``f = e xor S`` with
        ``S = x_pv xor x_sv xor ... xor x_bot`` over every order
        position from ``sv`` down to ``bot``.  Plain couples have
        ``bot == sv``.
        """
        if self.index == SINK:
            return False
        manager = self.manager
        return (
            manager._sv[self.index] != SV_ONE
            and manager._bot[self.index] != manager._sv[self.index]
        )

    def key(self) -> tuple:
        """The unique-table key of this node's slot.

        Chain nodes are keyed by ``(pv, sv, neq_edge, eq_edge)``; under
        a CVO the pair ``(pv, sv)`` is equivalent to the paper's
        ``CVO-level`` field, and keying by the variable pair keeps
        unaffected nodes stable across re-ordering.  Literal nodes are
        keyed by ``(pv, SV_ONE)`` alone (their children are fixed).
        Span nodes carry the chain-bottom variable as a fifth key
        component.
        """
        manager = self.manager
        index = self.index
        if manager._sv[index] == SV_ONE:
            return (manager._pv[index], SV_ONE)
        if manager._bot[index] != manager._sv[index]:
            return (
                manager._pv[index],
                manager._sv[index],
                manager._bot[index],
                manager._neq[index],
                manager._eq[index],
            )
        return (
            manager._pv[index],
            manager._sv[index],
            manager._neq[index],
            manager._eq[index],
        )

    # -- identity ------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BBDDNode)
            and other.manager is self.manager
            and other.index == self.index
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.index))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.index == SINK:
            return "<sink-1>"
        try:
            if self.is_literal:
                return f"<lit v{self.pv} uid={self.index} ref={self.ref}>"
            if self.is_span:
                return (
                    f"<node (v{self.pv},v{self.sv}:v{self.bot}) "
                    f"uid={self.index} ref={self.ref} "
                    f"neq={self.neq_edge} eq={self.eq_edge}>"
                )
            return (
                f"<node (v{self.pv},v{self.sv}) uid={self.index} "
                f"ref={self.ref} neq={self.neq_edge} eq={self.eq_edge}>"
            )
        except (IndexError, KeyError):
            return f"<node uid={self.index} (swept)>"


def negate(edge: Edge) -> Edge:
    """Complement an edge — unary minus in the signed-int coding."""
    return -edge


def edge_key(edge: Edge) -> Edge:
    """Hashable identity of an edge — the signed int itself."""
    return edge
