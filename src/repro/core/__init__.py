"""BBDD core package: the paper's primary contribution.

This subpackage implements the Biconditional Binary Decision Diagram
manipulation package of Amaru, Gaillardon and De Micheli (DATE 2014):
strong-canonical node storage, iterative (explicit-stack) Boolean
operations over biconditional expansions, automatic reference-counting
memory management and chain-variable re-ordering.
"""

from repro.core.exceptions import BBDDError, OrderError, VariableError
from repro.core.function import Function
from repro.core.manager import BBDDManager
from repro.core.operations import (
    OP_AND,
    OP_NAND,
    OP_NOR,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    op_name,
)

__all__ = [
    "BBDDManager",
    "Function",
    "BBDDError",
    "OrderError",
    "VariableError",
    "OP_AND",
    "OP_OR",
    "OP_XOR",
    "OP_XNOR",
    "OP_NAND",
    "OP_NOR",
    "op_name",
]
