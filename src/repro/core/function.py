"""User-facing handle on a BBDD function.

A :class:`Function` owns a reference on its root node (released on
garbage collection of the handle), overloads the Boolean operators, and
exposes the package API: evaluation, satisfiability, counting, cofactors,
composition, quantification and export helpers.

Because reduced and ordered BBDDs are canonical, ``f == g`` is a pointer
comparison on ``(node, attr)`` — the strong-canonical-form payoff of
Sec. IV-A1.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Union

from repro.core import apply as _ops
from repro.core import traversal as _trav
from repro.core.exceptions import ForeignManagerError
from repro.core.node import Edge
from repro.core.operations import (
    OP_AND,
    OP_GT,
    OP_LE,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    op_from_name,
)


class Function:
    """A Boolean function represented by a BBDD edge.

    Create instances through :class:`~repro.core.manager.BBDDManager`
    helpers (``manager.var``, ``manager.true``, ...) or by combining other
    functions with the overloaded operators.
    """

    __slots__ = ("manager", "node", "attr", "__weakref__")

    def __init__(self, manager, edge: Edge) -> None:
        self.manager = manager
        self.node = edge[0]
        self.attr = edge[1]
        manager.acquire_ref(self.node)

    def __del__(self) -> None:
        # Interpreter shutdown may have torn down attributes already.
        node = getattr(self, "node", None)
        if node is None:
            return
        manager = getattr(self, "manager", None)
        if manager is None:
            node.ref -= 1
            return
        try:
            # Dropping a handle feeds the automatic garbage collector.
            manager.release_ref(node)
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    # -- identity -----------------------------------------------------------

    @property
    def edge(self) -> Edge:
        return (self.node, self.attr)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Function):
            return NotImplemented
        return (
            self.manager is other.manager
            and self.node is other.node
            and self.attr == other.attr
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node.uid, self.attr))

    def _wrap(self, edge: Edge) -> "Function":
        return Function(self.manager, edge)

    def _coerce(self, other) -> Edge:
        if isinstance(other, Function):
            if other.manager is not self.manager:
                raise ForeignManagerError(
                    "cannot combine functions from different managers"
                )
            return other.edge
        if other is True or other == 1:
            return self.manager.true_edge
        if other is False or other == 0:
            return self.manager.false_edge
        raise TypeError(f"cannot combine Function with {type(other).__name__}")

    # -- Boolean operators ----------------------------------------------------

    def apply(self, other, op: Union[int, str]) -> "Function":
        """Apply any of the 16 two-operand operators (table or name)."""
        if isinstance(op, str):
            op = op_from_name(op)
        return self._wrap(self.manager.apply_edges(self.edge, self._coerce(other), op))

    def __and__(self, other) -> "Function":
        return self.apply(other, OP_AND)

    __rand__ = __and__

    def __or__(self, other) -> "Function":
        return self.apply(other, OP_OR)

    __ror__ = __or__

    def __xor__(self, other) -> "Function":
        return self.apply(other, OP_XOR)

    __rxor__ = __xor__

    def __invert__(self) -> "Function":
        return self._wrap((self.node, not self.attr))

    def xnor(self, other) -> "Function":
        """Biconditional (equality) of two functions."""
        return self.apply(other, OP_XNOR)

    def implies(self, other) -> "Function":
        return self.apply(other, OP_LE)

    def and_not(self, other) -> "Function":
        return self.apply(other, OP_GT)

    def ite(self, g, h) -> "Function":
        """``self ? g : h``."""
        return self._wrap(
            _ops.ite(self.manager, self.edge, self._coerce(g), self._coerce(h))
        )

    # -- constants -------------------------------------------------------------

    @property
    def is_true(self) -> bool:
        return self.node.is_sink and not self.attr

    @property
    def is_false(self) -> bool:
        return self.node.is_sink and self.attr

    @property
    def is_constant(self) -> bool:
        return self.node.is_sink

    # -- semantics ---------------------------------------------------------------

    def _values_from(self, assignment: Mapping) -> Dict[int, bool]:
        values: Dict[int, bool] = {}
        for key, bit in assignment.items():
            values[self.manager.var_index(key)] = bool(bit)
        return values

    def _support_indices(self) -> Iterator[int]:
        mask = self.node.supp
        var = 0
        while mask:
            if mask & 1:
                yield var
            mask >>= 1
            var += 1

    def evaluate(self, assignment: Mapping) -> bool:
        """Evaluate at an assignment keyed by variable name or index.

        The assignment must cover the function's support variables;
        missing support variables raise
        :class:`~repro.core.exceptions.VariableError`.  Variables outside
        the support may be omitted (they default to False, which cannot
        change the result).
        """
        from repro.core.exceptions import VariableError

        values = self._values_from(assignment)
        missing = [v for v in self._support_indices() if v not in values]
        if missing:
            names = ", ".join(self.manager.var_name(v) for v in missing)
            raise VariableError(
                f"assignment misses support variable(s): {names}"
            )
        for var in range(self.manager.num_vars):
            values.setdefault(var, False)
        return _trav.evaluate(self.edge, values)

    def __call__(self, **kwargs) -> bool:
        return self.evaluate(kwargs)

    def sat_count(self) -> int:
        """Number of satisfying assignments over all manager variables."""
        return _trav.sat_count(self.manager, self.edge)

    def sat_one(self) -> Optional[Dict[str, bool]]:
        """One satisfying assignment (by name), or None if unsatisfiable.

        The assignment covers the function's whole support (support
        variables the witness path leaves unconstrained are fixed to
        False), so it always evaluates to True via :meth:`evaluate`.
        """
        path = _trav.find_sat_path(self.manager, self.edge, want=True)
        if path is None:
            return None
        return self._assignment_from_path(path)

    def _assignment_from_path(self, path) -> Dict[str, bool]:
        """Concretize a root-to-sink path (``(pv, sv, rel)`` triples).

        Constraints resolve bottom-up against the couple partner actually
        on the path (*not* the global order's partner — under the
        support-chained CVO a node's SV is its function's next *support*
        variable, which may skip order positions).  A partner the path
        never pins absolutely is a free variable and defaults to False;
        remaining unconstrained support variables are False as well.
        """
        values: Dict[int, bool] = {}
        # ``path`` is root-to-sink; resolve deepest-first so each couple's
        # partner is already fixed (or known free) when it is needed.
        for pv, sv, rel in reversed(path):
            if rel == "0" or rel == "1":
                values[pv] = rel == "1"
            else:
                if sv not in values:
                    values[sv] = False
                values[pv] = (not values[sv]) if rel == "!=" else values[sv]
        for var in self._support_indices():
            values.setdefault(var, False)
        return {self.manager.var_name(v): b for v, b in values.items()}

    def node_count(self) -> int:
        """Nodes of this function's BBDD (sink excluded)."""
        return _trav.count_nodes([self.edge])

    def support(self) -> frozenset:
        """Names of the variables the function truly depends on."""
        vars_ = _ops.support(self.manager, self.edge)
        return frozenset(self.manager.var_name(v) for v in vars_)

    def truth_mask(self, variables: Iterable) -> int:
        """Truth-table bitmask over the given variables (testing helper)."""
        indices = [self.manager.var_index(v) for v in variables]
        return _trav.truth_table_mask(self.manager, self.edge, indices)

    # -- manipulation ---------------------------------------------------------------

    def restrict(self, var, value: bool) -> "Function":
        """Cofactor with ``var = value``."""
        return self._wrap(_ops.restrict(self.manager, self.edge, var, value))

    def compose(self, var, g: "Function") -> "Function":
        """Substitute function ``g`` for variable ``var``."""
        return self._wrap(_ops.compose(self.manager, self.edge, var, self._coerce(g)))

    def exists(self, variables) -> "Function":
        return self._wrap(_ops.exists(self.manager, self.edge, variables))

    def forall(self, variables) -> "Function":
        return self._wrap(_ops.forall(self.manager, self.edge, variables))

    def equivalent(self, other) -> bool:
        """Canonicity-based equivalence check (pointer comparison)."""
        other_edge = self._coerce(other)
        return self.node is other_edge[0] and self.attr == other_edge[1]

    # -- persistence -----------------------------------------------------------------

    def dump(self, target, name: str = "f0") -> None:
        """Write this function to ``target`` in the levelized binary format.

        ``target`` is a path or a binary file object; ``name`` is the
        root's stored name (what :func:`repro.io.load` keys it by).
        Mirrors ``dd``'s ``Function.dump`` convenience surface.
        """
        from repro.io import binary as _binary

        _binary.dump(self.manager, {name: self}, target)

    # -- display ------------------------------------------------------------------------

    def __repr__(self) -> str:
        if self.is_true:
            return "<Function TRUE>"
        if self.is_false:
            return "<Function FALSE>"
        return (
            f"<Function root=(v{self.node.pv},"
            f"{'1' if self.node.sv < 0 else 'v%d' % self.node.sv})"
            f"{'~' if self.attr else ''} nodes={self.node_count()}>"
        )


def _install_manager_helpers() -> None:
    """Attach Function-returning convenience methods to BBDDManager.

    Kept here to avoid a circular import between manager and function
    modules while still giving users ``manager.var(..)`` etc.
    """
    from repro.core.manager import BBDDManager

    def var(self, name_or_index) -> Function:
        return Function(self, self.literal_edge(name_or_index))

    def nvar(self, name_or_index) -> Function:
        return Function(self, self.literal_edge(name_or_index, positive=False))

    def variables(self) -> list:
        return [Function(self, self.literal_edge(i)) for i in range(self.num_vars)]

    def true(self) -> Function:
        return Function(self, self.true_edge)

    def false(self) -> Function:
        return Function(self, self.false_edge)

    def function(self, edge) -> Function:
        return Function(self, edge)

    def node_count(self, functions) -> int:
        edges = [f.edge if isinstance(f, Function) else f for f in functions]
        return _trav.count_nodes(edges)

    BBDDManager.var = var
    BBDDManager.nvar = nvar
    BBDDManager.variables = variables
    BBDDManager.true = true
    BBDDManager.false = false
    BBDDManager.function = function
    BBDDManager.node_count = node_count


_install_manager_helpers()
