"""User-facing handle on a BBDD function.

:class:`Function` is the BBDD instantiation of the shared
:class:`repro.api.base.FunctionBase` wrapper: all operators and the
whole manipulation API (``ite``, ``restrict``, ``compose``,
``exists``/``forall``, ``sat_one``, ``let``, ``to_expr``, ``dump``) are
implemented once in the base against the
:class:`~repro.api.base.DDManager` edge protocol; this module only adds
the BBDD-specific display form and installs the manager conveniences.

Because reduced and ordered BBDDs are canonical, ``f == g`` is a pointer
comparison on ``(node, attr)`` — the strong-canonical-form payoff of
Sec. IV-A1.
"""

from __future__ import annotations

from repro.api.base import FunctionBase, install_function_helpers


class Function(FunctionBase):
    """A Boolean function represented by a BBDD edge.

    Create instances through :class:`~repro.core.manager.BBDDManager`
    helpers (``manager.var``, ``manager.true``, ``manager.add_expr``,
    ...) or by combining other functions with the overloaded operators.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        if self.is_true:
            return "<Function TRUE>"
        if self.is_false:
            return "<Function FALSE>"
        return (
            f"<Function root=(v{self.node.pv},"
            f"{'1' if self.node.sv < 0 else 'v%d' % self.node.sv})"
            f"{'~' if self.attr else ''} nodes={self.node_count()}>"
        )


def _install_manager_helpers() -> None:
    """Install the shared conveniences (here to avoid an import cycle)."""
    from repro.core.manager import BBDDManager

    install_function_helpers(BBDDManager, Function)


_install_manager_helpers()
