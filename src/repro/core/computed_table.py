"""Computed table: the operation cache of Algorithm 1 (Sec. IV-A2/3).

Previously performed Boolean operations ``{f, g, op} -> result`` are
stored for later reuse.  Keys and values are packed ints of the flat
store: an apply entry is ``(f_index, g_index, op) -> signed_result``,
and the derived-op families (ITE/restrict/quantify) prefix a tag int
so the key spaces can never collide.

Two backends remain: the dict-backed cache (the default — packed int
keys hash natively) and :class:`DisabledComputedTable` for ablation
runs.  The historical direct-mapped ``"cantor"`` array went away with
the Cantor hash machinery; the factory accepts the name only as a
compatibility alias for ``"dict"``.
"""

from __future__ import annotations


class DictComputedTable:
    """Unbounded dict-backed operation cache (cleared at GC / reorder)."""

    __slots__ = ("_table", "lookups", "hits")

    def __init__(self) -> None:
        self._table: dict = {}
        self.lookups = 0
        self.hits = 0

    def lookup(self, key: tuple):
        self.lookups += 1
        entry = self._table.get(key)
        if entry is not None:
            self.hits += 1
        return entry

    def insert(self, key: tuple, value) -> None:
        self._table[key] = value

    def clear(self) -> None:
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)

    def stats(self) -> dict:
        return {
            "backend": "dict",
            "entries": len(self._table),
            "lookups": self.lookups,
            "hits": self.hits,
        }


class DisabledComputedTable:
    """Null cache used by the ablation benches (computed table off)."""

    __slots__ = ("lookups", "hits")

    def __init__(self) -> None:
        self.lookups = 0
        self.hits = 0

    def lookup(self, key: tuple):
        self.lookups += 1
        return None

    def insert(self, key: tuple, value) -> None:
        pass

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def stats(self) -> dict:
        return {"backend": "disabled", "entries": 0, "lookups": self.lookups, "hits": 0}


def make_computed_table(backend: str = "dict", **kwargs):
    """Factory; ``"cantor"`` is a deprecated alias for ``"dict"``."""
    if backend in ("dict", "cantor"):
        return DictComputedTable()
    if backend == "disabled":
        return DisabledComputedTable()
    raise ValueError(f"unknown computed-table backend: {backend!r}")
