"""Computed table: the operation cache of Algorithm 1 (Sec. IV-A2/3).

Previously performed Boolean operations ``{f, g, op} -> result`` are stored
for later reuse.  Per the paper, the computed table is cache-like: on a
hash collision the old entry is simply overwritten (no chaining), trading
completeness for constant-time access.

Backends mirror the unique table: a dict-backed cache (bounded, random
eviction via overwrite of an arbitrary slot is not needed — dicts grow) and
the faithful direct-mapped Cantor-hashed array.
"""

from __future__ import annotations

from typing import Optional

from repro.core.hashing import AdaptiveHashController


class DictComputedTable:
    """Unbounded dict-backed operation cache (cleared at GC / reorder)."""

    __slots__ = ("_table", "lookups", "hits")

    def __init__(self) -> None:
        self._table: dict = {}
        self.lookups = 0
        self.hits = 0

    def lookup(self, key: tuple):
        self.lookups += 1
        entry = self._table.get(key)
        if entry is not None:
            self.hits += 1
        return entry

    def insert(self, key: tuple, value) -> None:
        self._table[key] = value

    def clear(self) -> None:
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)

    def stats(self) -> dict:
        return {
            "backend": "dict",
            "entries": len(self._table),
            "lookups": self.lookups,
            "hits": self.hits,
        }


class CantorComputedTable:
    """Direct-mapped cache addressed by nested Cantor pairings.

    A collision overwrites the resident entry (the paper's cache-like
    approach); the slot stores ``(key, value)`` so false hits are
    impossible.
    """

    __slots__ = ("_slots", "_size", "_controller", "lookups", "hits", "overwrites", "_count")

    def __init__(self, size: int = 1 << 16, controller: Optional[AdaptiveHashController] = None) -> None:
        self._size = size
        self._slots: list = [None] * size
        self._controller = controller or AdaptiveHashController()
        self.lookups = 0
        self.hits = 0
        self.overwrites = 0
        self._count = 0

    def _index(self, key: tuple) -> int:
        return self._controller.hash_tuple(key, self._size)

    def lookup(self, key: tuple):
        self.lookups += 1
        slot = self._slots[self._index(key)]
        if slot is not None and slot[0] == key:
            self.hits += 1
            return slot[1]
        return None

    def insert(self, key: tuple, value) -> None:
        idx = self._index(key)
        if self._slots[idx] is None:
            self._count += 1
        elif self._slots[idx][0] != key:
            self.overwrites += 1
        self._slots[idx] = (key, value)

    def clear(self) -> None:
        self._slots = [None] * self._size
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def stats(self) -> dict:
        return {
            "backend": "cantor",
            "entries": self._count,
            "table_size": self._size,
            "lookups": self.lookups,
            "hits": self.hits,
            "overwrites": self.overwrites,
        }


class DisabledComputedTable:
    """Null cache used by the ablation benches (computed table off)."""

    __slots__ = ("lookups", "hits")

    def __init__(self) -> None:
        self.lookups = 0
        self.hits = 0

    def lookup(self, key: tuple):
        self.lookups += 1
        return None

    def insert(self, key: tuple, value) -> None:
        pass

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def stats(self) -> dict:
        return {"backend": "disabled", "entries": 0, "lookups": self.lookups, "hits": 0}


def make_computed_table(backend: str = "dict", **kwargs):
    """Factory (``backend in {"dict", "cantor", "disabled"}``)."""
    if backend == "dict":
        return DictComputedTable()
    if backend == "cantor":
        return CantorComputedTable(**kwargs)
    if backend == "disabled":
        return DisabledComputedTable()
    raise ValueError(f"unknown computed-table backend: {backend!r}")
