"""Bitmask truth tables: the exhaustive oracle used throughout the tests.

A :class:`TruthTable` over ``n`` variables stores the function as a
``2**n``-bit integer where bit ``i`` is the value at the assignment whose
``j``-th variable equals bit ``j`` of ``i``.  All sixteen two-operand
operators, cofactors, composition and quantification are implemented with
integer arithmetic, providing an independent reference implementation for
the decision-diagram packages.
"""

from __future__ import annotations

from typing import Sequence


def _var_pattern(j: int, n: int) -> int:
    """Truth mask of variable ``j`` over ``n`` variables."""
    full = (1 << (1 << n)) - 1
    block = 1 << j  # run length of equal bits
    pattern = ((1 << block) - 1) << block  # 0^block 1^block
    period = block << 1
    mask = 0
    for start in range(0, 1 << n, period):
        mask |= pattern << start
    return mask & full


class TruthTable:
    """Immutable truth table over a fixed variable count."""

    __slots__ = ("n", "mask")

    def __init__(self, n: int, mask: int) -> None:
        self.n = n
        self.mask = mask & ((1 << (1 << n)) - 1)

    # -- constructors ------------------------------------------------------

    @classmethod
    def const(cls, n: int, value: bool) -> "TruthTable":
        return cls(n, ((1 << (1 << n)) - 1) if value else 0)

    @classmethod
    def var(cls, n: int, j: int) -> "TruthTable":
        if not 0 <= j < n:
            raise ValueError(f"variable {j} out of range for {n} variables")
        return cls(n, _var_pattern(j, n))

    @classmethod
    def from_values(cls, values: Sequence[int]) -> "TruthTable":
        n = (len(values) - 1).bit_length()
        if 1 << n != len(values):
            raise ValueError("value vector length must be a power of two")
        mask = 0
        for i, v in enumerate(values):
            if v:
                mask |= 1 << i
        return cls(n, mask)

    # -- scalar access ------------------------------------------------------

    def value(self, assignment: int) -> bool:
        return bool((self.mask >> assignment) & 1)

    def __call__(self, *bits: int) -> bool:
        idx = 0
        for j, b in enumerate(bits):
            if b:
                idx |= 1 << j
        return self.value(idx)

    # -- operators ------------------------------------------------------------

    def _full(self) -> int:
        return (1 << (1 << self.n)) - 1

    def _check(self, other: "TruthTable") -> None:
        if self.n != other.n:
            raise ValueError("truth tables over different variable counts")

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.n, ~self.mask)

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.n, self.mask & other.mask)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.n, self.mask | other.mask)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.n, self.mask ^ other.mask)

    def apply(self, other: "TruthTable", op: int) -> "TruthTable":
        """Apply a 4-bit operator table (same encoding as the packages)."""
        self._check(other)
        full = self._full()
        a, b = self.mask, other.mask
        result = 0
        if op & 0b0001:
            result |= ~a & ~b
        if op & 0b0010:
            result |= ~a & b
        if op & 0b0100:
            result |= a & ~b
        if op & 0b1000:
            result |= a & b
        return TruthTable(self.n, result & full)

    def __eq__(self, other) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self.n == other.n and self.mask == other.mask

    def __hash__(self) -> int:
        return hash((self.n, self.mask))

    # -- semantics ---------------------------------------------------------------

    def sat_count(self) -> int:
        return self.mask.bit_count()

    def is_const(self) -> bool:
        return self.mask == 0 or self.mask == self._full()

    def restrict(self, j: int, value: bool) -> "TruthTable":
        """Cofactor on variable ``j`` (result still over ``n`` variables)."""
        var = _var_pattern(j, self.n)
        keep = var if value else ~var & self._full()
        block = 1 << j
        picked = self.mask & keep
        if value:
            spread = picked | (picked >> block)
        else:
            spread = picked | (picked << block)
        return TruthTable(self.n, spread)

    def compose(self, j: int, g: "TruthTable") -> "TruthTable":
        self._check(g)
        f1 = self.restrict(j, True)
        f0 = self.restrict(j, False)
        return (g & f1) | (~g & f0)

    def exists(self, j: int) -> "TruthTable":
        return self.restrict(j, True) | self.restrict(j, False)

    def forall(self, j: int) -> "TruthTable":
        return self.restrict(j, True) & self.restrict(j, False)

    def support(self) -> frozenset:
        return frozenset(
            j for j in range(self.n) if self.restrict(j, True) != self.restrict(j, False)
        )

    def permute(self, perm: Sequence[int]) -> "TruthTable":
        """Re-index variables: new variable ``perm[j]`` is old variable ``j``."""
        values = []
        for i in range(1 << self.n):
            old_index = 0
            for j in range(self.n):
                if (i >> perm[j]) & 1:
                    old_index |= 1 << j
            values.append(self.value(old_index))
        return TruthTable.from_values(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        width = 1 << self.n
        bits = bin(self.mask)[2:].zfill(width)
        return f"TruthTable(n={self.n}, {bits})"
