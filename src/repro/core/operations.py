"""Two-operand Boolean operator algebra for Algorithm 1.

Every two-operand Boolean operator ``op`` is encoded as a 4-bit truth table
``t`` where bit ``(a << 1) | b`` holds ``op(a, b)``.  This encoding makes
the paper's ``updateop`` step (adjusting the operator for the complement
attributes riding on the operand edges) a pure bit permutation, and makes
every trivial/terminal case of Algorithm 1 a constant-time table lookup.

Bit layout reminder::

    bit 0 -> op(0, 0)
    bit 1 -> op(0, 1)
    bit 2 -> op(1, 0)
    bit 3 -> op(1, 1)
"""

from __future__ import annotations

# The sixteen two-operand operators, by their conventional names.
OP_FALSE = 0b0000
OP_NOR = 0b0001
OP_LT = 0b0010  # (NOT a) AND b        (only op(0,1) = 1, bit 1)
OP_NOT_A = 0b0011
OP_GT = 0b0100  # a AND (NOT b)        (only op(1,0) = 1, bit 2)
OP_NOT_B = 0b0101
OP_XOR = 0b0110
OP_NAND = 0b0111
OP_AND = 0b1000
OP_XNOR = 0b1001
OP_B = 0b1010
OP_LE = 0b1011  # (NOT a) OR b  ==  a IMPLIES b
OP_A = 0b1100
OP_GE = 0b1101  # a OR (NOT b)  ==  b IMPLIES a
OP_OR = 0b1110
OP_TRUE = 0b1111

_NAMES = {
    OP_FALSE: "FALSE",
    OP_NOR: "NOR",
    OP_GT: "GT",
    OP_NOT_B: "NOT_B",
    OP_LT: "LT",
    OP_NOT_A: "NOT_A",
    OP_XOR: "XOR",
    OP_NAND: "NAND",
    OP_AND: "AND",
    OP_XNOR: "XNOR",
    OP_A: "A",
    OP_GE: "GE",
    OP_B: "B",
    OP_LE: "LE",
    OP_OR: "OR",
    OP_TRUE: "TRUE",
}

_BY_NAME = {name: op for op, name in _NAMES.items()}
# Common aliases accepted by the user-facing API.
_BY_NAME.update(
    {
        "IMPLIES": OP_LE,
        "IMP": OP_LE,
        "IMPLY": OP_LE,
        "EQUIV": OP_XNOR,
        "EQ": OP_XNOR,
        "IFF": OP_XNOR,
        "XNOR2": OP_XNOR,
        "DIFF": OP_GT,
        "NIMP": OP_GT,
    }
)


def op_name(op: int) -> str:
    """Return the conventional name of the 4-bit operator table ``op``."""
    return _NAMES[op & 0xF]


def op_from_name(name: str) -> int:
    """Return the 4-bit table for an operator *name*.

    Case-insensitive; accepts the conventional names (``AND``, ``NAND``,
    ``NOR``, ``XNOR``, ...) and the common aliases (``equiv``, ``imp``,
    ``implies``, ...).  Unknown names raise
    :class:`~repro.core.exceptions.OperatorError` (a ``BBDDError`` and
    ``ValueError``) listing the valid names.
    """
    from repro.core.exceptions import OperatorError

    try:
        return _BY_NAME[name.upper()]
    except (KeyError, AttributeError):
        valid = ", ".join(sorted(_BY_NAME))
        raise OperatorError(
            f"unknown Boolean operator name: {name!r}; valid names "
            f"(case-insensitive): {valid}"
        ) from None


def op_eval(op: int, a: int, b: int) -> int:
    """Evaluate ``op(a, b)`` for scalar bits ``a``, ``b``."""
    return (op >> ((a << 1) | b)) & 1


def flip_a(op: int) -> int:
    """Operator table for ``op(NOT a, b)`` (push a complement on operand a).

    This is one half of the paper's ``updateop``: swap the ``a = 0`` rows
    with the ``a = 1`` rows of the table.
    """
    return ((op & 0b0011) << 2) | ((op & 0b1100) >> 2)


def flip_b(op: int) -> int:
    """Operator table for ``op(a, NOT b)`` (push a complement on operand b)."""
    return ((op & 0b0101) << 1) | ((op & 0b1010) >> 1)


def flip_output(op: int) -> int:
    """Operator table for ``NOT op(a, b)``."""
    return (~op) & 0xF


def swap_operands(op: int) -> int:
    """Operator table for ``op(b, a)``."""
    return (op & 0b1001) | ((op & 0b0010) << 1) | ((op & 0b0100) >> 1)


def is_commutative(op: int) -> bool:
    """True when ``op(a, b) == op(b, a)`` for all bits."""
    return ((op >> 1) & 1) == ((op >> 2) & 1)


# ---------------------------------------------------------------------------
# Terminal-case resolution (the ``identical_terminal`` list of Algorithm 1).
#
# When an operand collapses (constant operand, or both operands are the same
# node), the result is a function of the single surviving operand.  We
# describe such a unary outcome with a pair ``(r0, r1)`` = (result when the
# survivor is 0, result when it is 1):
#
#   (0, 0) -> constant 0        (1, 1) -> constant 1
#   (0, 1) -> survivor          (1, 0) -> complemented survivor
# ---------------------------------------------------------------------------

UNARY_FALSE = "0"
UNARY_TRUE = "1"
UNARY_ID = "id"
UNARY_NOT = "not"

_UNARY = {
    (0, 0): UNARY_FALSE,
    (1, 1): UNARY_TRUE,
    (0, 1): UNARY_ID,
    (1, 0): UNARY_NOT,
}


def restrict_a(op: int, value: int) -> str:
    """Unary outcome of ``op`` when operand *a* is the constant ``value``.

    The survivor of the restriction is operand *b*.
    """
    base = value << 1
    r0 = (op >> base) & 1
    r1 = (op >> (base | 1)) & 1
    return _UNARY[(r0, r1)]


def restrict_b(op: int, value: int) -> str:
    """Unary outcome of ``op`` when operand *b* is the constant ``value``."""
    r0 = (op >> value) & 1
    r1 = (op >> (0b10 | value)) & 1
    return _UNARY[(r0, r1)]


def diagonal(op: int) -> str:
    """Unary outcome of ``op(f, f)`` as a function of ``f``."""
    return _UNARY[(op & 1, (op >> 3) & 1)]


def absorbs_equal_cofactors(op: int) -> bool:
    """True when ``op`` depends on both operands somewhere (needs recursion).

    Purely informational; Algorithm 1 handles every operator uniformly.
    """
    return restrict_a(op, 0) != restrict_a(op, 1) or restrict_b(op, 0) != restrict_b(op, 1)


ALL_OPS = tuple(range(16))
# Operators that actually require recursion (both operands matter); the
# remaining tables short-circuit at the first apply call.
BINARY_OPS = tuple(
    op
    for op in ALL_OPS
    if op not in (OP_FALSE, OP_TRUE, OP_A, OP_NOT_A, OP_B, OP_NOT_B)
)
