"""Graphviz/DOT export for BBDD and BDD forests (debugging/teaching aid)."""

from __future__ import annotations

from typing import Iterable, List

from repro.core.exceptions import BBDDError
from repro.core.traversal import reachable_nodes


def to_dot(manager, functions, names: Iterable[str] = ()) -> str:
    """Render a forest of :class:`~repro.core.function.Function` handles.

    ``!=``-edges are dashed (dot-terminated when complemented); ``=``-edges
    solid.  Literal (R4) nodes are drawn as boxes.  ``names``, when
    given, must match ``functions`` one-to-one.

    Works on :meth:`~repro.core.manager.BBDDManager.node_view` views over
    the flat store; node ids in the output are the store indices, emitted
    in ascending order for determinism.
    """
    edges = [f.edge if hasattr(f, "edge") else f for f in functions]
    labels = list(names)
    if labels and len(labels) != len(edges):
        raise BBDDError(
            f"{len(labels)} names given for {len(edges)} functions"
        )
    if not labels:
        labels = [f"f{i}" for i in range(len(edges))]
    nodes = [manager.node_view(i) for i in sorted(reachable_nodes(manager, edges))]
    lines: List[str] = ["digraph BBDD {", "  rankdir=TB;"]
    lines.append('  sink [shape=box, label="1"];')
    for node in nodes:
        if node.is_literal:
            lines.append(
                f"  n{node.uid} [shape=box, label=\"{manager.var_name(node.pv)}\"];"
            )
        elif getattr(node, "is_span", False):
            # Chain-reduced span: condition covers sv..bot inclusive.
            lines.append(
                f"  n{node.uid} [shape=ellipse, peripheries=2, "
                f"label=\"{manager.var_name(node.pv)},"
                f"{manager.var_name(node.sv)}:{manager.var_name(node.bot)}\"];"
            )
        else:
            lines.append(
                f"  n{node.uid} [shape=ellipse, "
                f"label=\"{manager.var_name(node.pv)},{manager.var_name(node.sv)}\"];"
            )
    for node in nodes:
        if node.is_literal:
            continue
        neq_target = "sink" if node.neq.is_sink else f"n{node.neq.uid}"
        eq_target = "sink" if node.eq.is_sink else f"n{node.eq.uid}"
        arrow = "odot" if node.neq_attr else "normal"
        lines.append(
            f"  n{node.uid} -> {neq_target} [style=dashed, arrowhead={arrow}, label=\"!=\"];"
        )
        lines.append(f"  n{node.uid} -> {eq_target} [label=\"=\"];")
        # Literal nodes point at the sink implicitly; draw for completeness.
    for node in nodes:
        if node.is_literal:
            lines.append(f"  n{node.uid} -> sink [style=dashed, arrowhead=odot];")
            lines.append(f"  n{node.uid} -> sink;")
    for label, edge in zip(labels, edges):
        lines.append(f'  {label} [shape=plaintext];')
        root = manager.edge_node(edge)
        target = "sink" if root.is_sink else f"n{root.uid}"
        arrow = "odot" if manager.edge_attr(edge) else "normal"
        lines.append(f"  {label} -> {target} [arrowhead={arrow}];")
    lines.append("}")
    return "\n".join(lines)
