"""The BBDD manager: node construction, Boolean operations, memory management.

This module implements the manipulation core of Sec. IV of the paper on a
**flat integer-coded node store** (the tulip-control/dd idiom): nodes are
dense positive ints indexing parallel arrays (``_pv``/``_sv``/``_neq``/
``_eq``/``_ref``/``_supp``/``_float``), and an edge is one signed int
whose sign is the complement attribute — ``NOT`` is unary minus, and the
operator updates of Algorithm 1 (``updateop``) are integer arithmetic.
The sink is index 1 (edge ``+1`` = True, ``-1`` = False); index 0 is
never allocated.

* ``_make`` — get-or-create a node in strong canonical form, enforcing
  reduction rules R1 (unique table), R2 (identical children), R4 (literal
  degeneration) and the complement-attribute normalization (``=``-edges
  are always regular, i.e. stored positive);
* ``apply_edges`` — Algorithm 1: any two-operand Boolean operation over
  biconditional expansions, with terminal-case short circuits, a computed
  table keyed on packed int tuples, operator update for complement
  attributes and on-the-fly chain transformation of single-variable
  operands.  The expansion is driven by an **explicit pending-frame
  stack**, not Python recursion, so operand depth is limited by memory
  alone;
* reference-counting memory management with **cascading** counts held in
  a flat array: a node whose count drops to zero immediately releases its
  children (and a revived node re-acquires them), so the number of dead
  nodes is known exactly at all times and :meth:`BBDDManager.dead_count`
  is O(1).  Garbage collection triggers automatically (dd/CUDD style)
  when the dead/total ratio crosses a configurable threshold, but only at
  safe points — never while an operation holds intermediate edges.
  Swept slots go on a free list and are recycled by ``_make``.

All hot-path functions work on bare signed-int edges; the user-facing
wrapper lives in :mod:`repro.core.function`, and
:meth:`BBDDManager.node_view` materializes read-only
:class:`~repro.core.node.BBDDNode` views (interned per index) for
rendering and debugging.  Code that holds bare edges across several
manager operations must either reference them
(:meth:`BBDDManager.inc_ref`) or suspend collection with
:meth:`BBDDManager.defer_gc` for the duration.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.api.base import DDManager
from repro.core.computed_table import make_computed_table
from repro.core.exceptions import BBDDError, VariableError
from repro.core.node import SINK, SINK_VAR, SV_ONE, BBDDNode, Edge
from repro.core.operations import (
    OP_AND,
    OP_OR,
    OP_XOR,
    UNARY_FALSE,
    UNARY_ID,
    UNARY_NOT,
    UNARY_TRUE,
    diagonal,
    flip_a,
    flip_b,
    op_from_name,
    restrict_a,
    restrict_b,
)
from repro.core.order import ChainVariableOrder
from repro.core.unique_table import make_unique_table

#: Pending-frame tags of the iterative apply engine.
_CALL = 0
_COMBINE = 1
_UNWIND = 2

# Terminal-case outcome tables, precomputed per 4-bit operator so the hot
# loop replaces the ``restrict_a``/``diagonal`` + ``_UNARY`` dict chain
# with one tuple index.  Outcomes are coded so complementing the operator
# (output-polarity normalization) is ``outcome ^ 1``.
_U_FALSE, _U_TRUE, _U_ID, _U_NOT = 0, 1, 2, 3
_OUTCOME_CODE = {UNARY_FALSE: _U_FALSE, UNARY_TRUE: _U_TRUE, UNARY_ID: _U_ID, UNARY_NOT: _U_NOT}
_RA1 = tuple(_OUTCOME_CODE[restrict_a(op, 1)] for op in range(16))
_RB1 = tuple(_OUTCOME_CODE[restrict_b(op, 1)] for op in range(16))
_RA0 = tuple(_OUTCOME_CODE[restrict_a(op, 0)] for op in range(16))
_RB0 = tuple(_OUTCOME_CODE[restrict_b(op, 0)] for op in range(16))
_DIAG = tuple(_OUTCOME_CODE[diagonal(op)] for op in range(16))


class _GCDeferral:
    """Context manager suspending automatic GC (re-entrant).

    Entering bumps the manager's in-operation counter, which inhibits
    :meth:`BBDDManager._maybe_gc`.  Leaving deliberately does **not**
    collect: code commonly returns bare (unreferenced) edges produced
    inside the block, and ``__exit__`` runs before the caller can
    reference them — an exit-time sweep would reclaim the very results
    the deferral protected.  An armed collection simply happens at the
    next organic safe point (end of an apply/derived op, or an explicit
    ``dec_ref``), where the fresh result is protected.
    """

    __slots__ = ("_manager",)

    def __init__(self, manager: "BBDDManager") -> None:
        self._manager = manager

    def __enter__(self) -> "BBDDManager":
        self._manager._in_op += 1
        return self._manager

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._manager._in_op -= 1
        return False


class BBDDManager(DDManager):
    """Shared manager for a forest of BBDDs over a common variable set.

    Parameters
    ----------
    variables:
        Either the number of variables or a sequence of distinct names.
    unique_backend / computed_backend:
        ``"dict"`` (default; ``"cantor"`` is a deprecated alias — the
        packed-int-key dict table absorbed the historical Cantor
        backend); the computed table additionally accepts ``"disabled"``
        for ablation runs.
    auto_gc:
        Enable automatic garbage collection (default).  When enabled, a
        collection runs at the next safe point after the dead/total node
        ratio exceeds ``gc_threshold`` (and at least ``gc_min_nodes``
        nodes are stored).
    gc_threshold:
        Dead/total ratio that arms the automatic collector.
    gc_min_nodes:
        Minimum stored-node count before automatic GC considers running
        (keeps small working sets collection-free).
    chain_reduce:
        Enable Bryant-style chain reduction (off by default): linear
        couples over contiguous order positions collapse into single
        *span* nodes ``(pv, sv:bot)`` denoting
        ``f = e xor x_pv xor x_sv xor ... xor x_bot``.  Span nodes are
        first-class in the store (the ``_bot`` column records the chain
        bottom; plain couples have ``bot == sv``) and every walker
        interprets them; the flag only controls whether ``_make``
        *creates* them.
    """

    #: Registry name of this backend in the repro.api front end.
    backend = "bbdd"

    def __init__(
        self,
        variables: Union[int, Sequence[str]],
        unique_backend: str = "dict",
        computed_backend: str = "dict",
        auto_gc: bool = True,
        gc_threshold: float = 0.5,
        gc_min_nodes: int = 1024,
        chain_reduce: bool = False,
    ) -> None:
        if isinstance(variables, int):
            names = [f"x{i}" for i in range(variables)]
        else:
            names = list(variables)
        if len(set(names)) != len(names):
            raise VariableError("variable names must be distinct")
        self._names: List[str] = names
        self._index: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self._order = ChainVariableOrder(range(len(names)))

        # The flat store: slot 0 is a never-allocated dummy (so edges
        # always have an observable sign), slot 1 the immortal sink.
        self._pv: List[int] = [0, SINK_VAR]
        self._sv: List[int] = [0, SV_ONE]
        #: Chain-bottom variable of each slot's span; ``bot == sv`` for
        #: plain couples, ``SV_ONE`` for literals and the sink.
        self._bot: List[int] = [0, SV_ONE]
        self._neq: List[int] = [0, 0]
        self._eq: List[int] = [0, 0]
        self._ref: List[int] = [0, 1]
        self._supp: List[int] = [0, 0]
        self._float = bytearray((0, 0))
        self.chain_reduce = bool(chain_reduce)
        #: Swept slot indices available for recycling by ``_make``.
        self._free_nodes: List[int] = []
        #: Interned read-only views (index -> BBDDNode), popped on sweep.
        self._views: Dict[int, BBDDNode] = {}

        self._unique = make_unique_table(unique_backend)
        # Hot-path accelerators: per-variable support bits (avoids big-int
        # shifts per node) and the unique table's raw dict.
        self._var_bits: List[int] = [1 << i for i in range(len(names))]
        self._uniq_raw: dict = self._unique._table
        self._cache = make_computed_table(computed_backend)
        self._literals: Dict[int, int] = {}
        self._by_pv: Dict[int, set] = {i: set() for i in range(len(names))}
        self._by_sv: Dict[int, set] = {i: set() for i in range(len(names))}
        self._node_count = 0
        self.peak_nodes = 0
        self.gc_count = 0
        self.auto_gc_runs = 0
        self.apply_calls = 0
        self.gc_reclaimed = 0

        self.auto_gc = auto_gc
        self.gc_threshold = gc_threshold
        self.gc_min_nodes = gc_min_nodes
        #: The stored nodes with a zero reference count, maintained
        #: incrementally by the ref/deref/make/sweep hooks; GC sweeps this
        #: set directly instead of scanning the unique table.
        self._dead_set: set = set()
        #: Depth of in-flight operations; automatic GC only runs at zero.
        self._in_op = 0
        self._bind_hot()

        from repro import obs  # late: repro.__init__ imports core first

        self._trace_state = obs.trace.STATE
        obs.track(self)

    # ------------------------------------------------------------------
    # identifiers and variables
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return len(self._names)

    @property
    def var_names(self) -> tuple:
        return tuple(self._names)

    def var_index(self, var: Union[int, str]) -> int:
        """Normalize a variable name or index to its index."""
        if isinstance(var, str):
            try:
                return self._index[var]
            except KeyError:
                raise VariableError(f"unknown variable {var!r}") from None
        if not 0 <= var < len(self._names):
            raise VariableError(f"variable index {var} out of range")
        return var

    def var_name(self, index: int) -> str:
        return self._names[index]

    def new_var(self, name: Optional[str] = None) -> int:
        """Append a fresh variable at the bottom of the order."""
        index = len(self._names)
        if name is None:
            name = f"x{index}"
        if name in self._index:
            raise VariableError(f"variable {name!r} already exists")
        self._names.append(name)
        self._index[name] = index
        self._var_bits.append(1 << index)
        self._by_pv[index] = set()
        self._by_sv[index] = set()
        self._order.append(index)
        return index

    # ------------------------------------------------------------------
    # order access
    # ------------------------------------------------------------------

    @property
    def order(self) -> ChainVariableOrder:
        return self._order

    def current_order(self) -> tuple:
        """Current variable order as a tuple of names (root to bottom)."""
        return tuple(self._names[v] for v in self._order.order)

    def cvo_couples(self) -> list:
        """The CVO couples as name pairs, SV of the bottom couple is '1'."""
        out = []
        for pv, sv in self._order.couples():
            out.append((self._names[pv], "1" if sv == SV_ONE else self._names[sv]))
        return out

    def _root_position(self, node: int) -> int:
        """Position of a node's root couple; the sink sorts below everything."""
        if node == SINK:
            return len(self._names)
        return self._order.position(self._pv[node])

    # ------------------------------------------------------------------
    # node views and field access
    # ------------------------------------------------------------------

    @property
    def sink(self) -> BBDDNode:
        """Read-only view of the sink node (debug/render surface)."""
        return self.node_view(SINK)

    def node_view(self, index: int) -> BBDDNode:
        """The interned read-only view of node ``index``.

        Repeated calls return the same object, so identity checks on
        ``Function.node`` handles keep working across operations (slots
        are index-stable until swept; sweeping drops the view).
        """
        views = self._views
        view = views.get(index)
        if view is None:
            view = views[index] = BBDDNode(self, index)
        return view

    def node_fields(self, index: int):
        """``(pv, sv, bot, neq_edge, eq_edge)`` of one slot (io/debug helper)."""
        return (
            self._pv[index],
            self._sv[index],
            self._bot[index],
            self._neq[index],
            self._eq[index],
        )

    def _node_key(self, index: int):
        """The unique-table key of a stored slot (derived, not stored)."""
        if self._sv[index] == SV_ONE:
            return (self._pv[index], SV_ONE)
        if self._bot[index] != self._sv[index]:
            return (
                self._pv[index],
                self._sv[index],
                self._bot[index],
                self._neq[index],
                self._eq[index],
            )
        return (
            self._pv[index],
            self._sv[index],
            self._neq[index],
            self._eq[index],
        )

    # ------------------------------------------------------------------
    # signed-int edge protocol (repro.api hooks)
    # ------------------------------------------------------------------

    def edge_node(self, edge: Edge) -> BBDDNode:
        return self.node_view(-edge if edge < 0 else edge)

    def edge_attr(self, edge: Edge) -> bool:
        return edge < 0

    def node_edge(self, node) -> Edge:
        """Regular edge onto ``node`` (an index or a view)."""
        return node if isinstance(node, int) else node.index

    def negate_edge(self, edge: Edge) -> Edge:
        return -edge

    def edge_is_sink(self, edge: Edge) -> bool:
        return edge == 1 or edge == -1

    def edge_is_false(self, edge: Edge) -> bool:
        return edge == -1

    def edge_uid(self, edge: Edge) -> Edge:
        return edge

    def acquire_edge(self, edge: Edge) -> None:
        self._ref_index(-edge if edge < 0 else edge)

    def release_edge(self, edge: Edge) -> None:
        self._deref_index(-edge if edge < 0 else edge)

    # ------------------------------------------------------------------
    # terminal edges and literals
    # ------------------------------------------------------------------

    @property
    def true_edge(self) -> Edge:
        return 1

    @property
    def false_edge(self) -> Edge:
        return -1

    def literal_node(self, var: int) -> int:
        """The R4 literal node index for ``var`` (created on demand).

        Like every node, a fresh literal is born dead (count zero, no
        child references); acquiring it references the sink twice.
        """
        node = self._literals.get(var)
        if node is None:
            free = self._free_nodes
            if free:
                node = free.pop()
                self._pv[node] = var
                self._sv[node] = SV_ONE
                self._bot[node] = SV_ONE
                self._neq[node] = -SINK
                self._eq[node] = SINK
                self._ref[node] = 0
                self._supp[node] = self._var_bits[var]
            else:
                node = len(self._pv)
                self._pv.append(var)
                self._sv.append(SV_ONE)
                self._bot.append(SV_ONE)
                self._neq.append(-SINK)
                self._eq.append(SINK)
                self._ref.append(0)
                self._supp.append(self._var_bits[var])
                self._float.append(0)
            self._float[node] = 1
            self._ref[SINK] += 2  # birth holds both (sink) children
            self._literals[var] = node
            self._uniq_raw[(var, SV_ONE)] = node
            self._node_count += 1
            self._dead_set.add(node)
            if self._node_count > self.peak_nodes:
                self.peak_nodes = self._node_count
        return node

    def literal_edge(self, var: Union[int, str], positive: bool = True) -> Edge:
        index = self.var_index(var)
        node = self.literal_node(index)
        return node if positive else -node

    # ------------------------------------------------------------------
    # canonical node construction (rules R1, R2, R4 + normalization)
    # ------------------------------------------------------------------

    def _shannon_view(self, edge: Edge, w: int, value: int):
        """Constant restriction ``edge|w=value`` as a comparable view.

        Only called for edges rooted at ``w``.  Returns either
        ``("const", bit)`` for a literal root or ``(t, high, low)`` for a
        chain root ``(w, t)`` — ``high``/``low`` are the edges selected at
        ``t = 1`` / ``t = 0``.  Two equal views denote equal functions
        (children are canonical), which is what the reduction test needs.
        """
        node = -edge if edge < 0 else edge
        if self._sv[node] == SV_ONE:
            return ("const", bool(value) ^ (edge < 0))
        neq = self._neq[node]
        eq = self._eq[node]
        if edge < 0:
            neq = -neq
            eq = -eq
        # The chain bottom is part of the view: two span roots with
        # equal (sv, children) but different bots denote different
        # functions.
        if value == 0:
            return (self._sv[node], self._bot[node], neq, eq)
        return (self._sv[node], self._bot[node], eq, neq)

    def _bind_hot(self) -> None:
        """(Re)bind the allocation hot-path tuple.

        ``_make`` runs hundreds of thousands of times per sift; one
        attribute load plus a tuple unpack replaces ~15 separate
        ``self._X`` loads per call.  The referenced containers are only
        ever mutated in place — rebinding happens solely here (from
        ``__init__`` and ``_restore``).
        """
        self._hot = (
            self._pv,
            self._sv,
            self._bot,
            self._neq,
            self._eq,
            self._ref,
            self._float,
            self._supp,
            self._var_bits,
            self._uniq_raw,
            self._free_nodes,
            self._dead_set,
            self._by_pv,
            self._by_sv,
        )

    def _make(
        self, pv: int, sv: int, d: Edge, e: Edge, _probed: bool = False
    ) -> Edge:
        """Get-or-create the node ``(pv, sv, !=-child d, =-child e)``.

        Applies the reduction rules of Sec. III-C under the support-chained
        CVO (rule R3: a function's couples chain over its *support*, so no
        level is empty):

        * R2 — identical children collapse to the child;
        * SV-elimination — if the candidate function does not actually
          depend on ``sv`` (both children rooted at ``sv`` and
          ``d|sv=0 == e|sv=1`` and ``e|sv=0 == d|sv=1``), the couple
        re-chains past ``sv`` (iterated in place; rule R4 —
          single-variable degeneration to a literal node — is the
          terminal case of this cascade);
        * ``=``-edge regularity normalization, then unique-table
          resolution (R1 / strong canonical form).

        ``_probed`` marks a call whose normalized key was already probed
        against the unique table (and missed) by the caller — the
        reordering hot loops — so the first-iteration probe is skipped.
        """
        (
            pvl,
            svl,
            botl,
            neql,
            eql,
            refl,
            fl,
            suppl,
            bits,
            raw,
            free,
            dead_set,
            by_pv,
            by_sv,
        ) = self._hot
        unique = self._unique
        chain = self.chain_reduce
        attr = False
        while True:
            if d == e:
                return -e if attr else e  # R2
            if sv == SV_ONE:
                # Boundary: no further support variable; children are
                # constants and the node degenerates to the literal of pv.
                dn = -d if d < 0 else d
                en = -e if e < 0 else e
                if dn != SINK or en != SINK:
                    raise BBDDError("boundary-couple children must be constants")
                lit = self.literal_node(pv)
                return -lit if (e < 0) ^ attr else lit
            if e < 0:
                # Normalize: =-edges are stored regular; complement both
                # children and track a complemented external edge.
                attr = not attr
                d = -d
                e = -e
            # Resolve against the unique table *before* the reduction
            # cascade: a stored key is canonical, hence never reducible,
            # so a hit short-circuits the (comparatively expensive)
            # SV-elimination test — the common case under CVO swaps.
            key = (pv, sv, d, e)
            if _probed:
                _probed = False  # only the caller's first key was probed
            else:
                unique._lookups += 1
                node = raw.get(key)
                if node is not None:
                    unique._hits += 1
                    return -node if attr else node
            # Miss: the candidate may still reduce.
            dn = -d if d < 0 else d
            if dn != SINK and e != SINK and pvl[dn] == sv and pvl[e] == sv:
                # Both children rooted at sv: the candidate may not depend
                # on sv at all, in which case the chain skips it (R3/R4).
                # This is `_shannon_view(d)|0 == _shannon_view(e)|1` (and
                # the cross check) unfolded into field comparisons; with
                # `e` regular only `d`'s fields need complement folding.
                sd = svl[dn]
                if sd == svl[e]:
                    if sd == SV_ONE:
                        # Children are +-lit(sv); d = e was caught above,
                        # so d = -lit, e = +lit: rule R4 proper.
                        lit = self.literal_node(pv)
                        return -lit if attr else lit
                    if d < 0:
                        dneq = -neql[dn]
                        deq = -eql[dn]
                    else:
                        dneq = neql[dn]
                        deq = eql[dn]
                    # Span children must also agree on the chain bottom
                    # (vacuously true for plain couples, bot == sv).
                    if (
                        dneq == eql[e]
                        and deq == neql[e]
                        and botl[dn] == botl[e]
                    ):
                        if botl[dn] != sd:
                            # Span children: the re-chained result keeps
                            # their span, f = dneq ^ x_pv ^ X[sd..bot].
                            node = self._make_span(pv, sd, botl[dn], deq, dneq)
                            return -node if attr else node
                        # Re-chain: f = (pv = t) ? A : B with A/B = d's
                        # children.
                        sv = sd
                        d = deq
                        e = dneq
                        continue
            break
        if chain and d == -e and svl[e] != SV_ONE:
            # Chain merge (Bryant t:b reduction): a linear couple whose
            # =-child is itself linear and sits at the next two order
            # positions collapses into one span node.  Children are
            # canonical (hence maximal), so a single step suffices.
            # (e is regular after normalization, and svl[SINK] == SV_ONE
            # keeps the sink out.)
            en = e
            if neql[en] == -eql[en]:
                position = self._order._position
                p = position[sv]
                if (
                    position[pvl[en]] == p + 1
                    and position[svl[en]] == p + 2
                ):
                    node = self._make_span(
                        pv, sv, botl[en], neql[en], eql[en]
                    )
                    return -node if attr else node
        supp = bits[pv] | bits[sv] | suppl[dn] | suppl[e]
        if free:
            # Recycle a swept slot: no array growth, fresh identity.
            node = free.pop()
            pvl[node] = pv
            svl[node] = sv
            botl[node] = sv
            neql[node] = d
            eql[node] = e
            refl[node] = 0
            suppl[node] = supp
        else:
            node = len(pvl)
            pvl.append(pv)
            svl.append(sv)
            botl.append(sv)
            neql.append(d)
            eql.append(e)
            refl.append(0)
            suppl.append(supp)
            fl.append(0)
        fl[node] = 1
        raw[key] = node
        # Birth acquires both children (floating children resolve in
        # O(1); a once-dead child needs a full revive).
        r = refl[dn]
        if r:
            refl[dn] = r + 1
        elif fl[dn]:
            fl[dn] = 0
            refl[dn] = 1
            dead_set.discard(dn)
        else:
            self._ref_index(dn)
        r = refl[e]
        if r:
            refl[e] = r + 1
        elif fl[e]:
            fl[e] = 0
            refl[e] = 1
            dead_set.discard(e)
        else:
            self._ref_index(e)
        by_pv[pv].add(node)
        by_sv[sv].add(node)
        self._node_count += 1
        dead_set.add(node)
        if self._node_count > self.peak_nodes:
            self.peak_nodes = self._node_count
        return -node if attr else node

    def _make_span(self, pv: int, sv: int, bot: int, d: Edge, e: Edge) -> Edge:
        """Get-or-create the span node ``(pv, sv:bot, d, e)``.

        A span node collapses a maximal linear chain: it denotes
        ``f = e xor x_pv xor X`` with ``X`` the XOR of the variables at
        every order position from ``sv`` down to ``bot`` (an odd count,
        so extensions step by two positions).  Invariants: ``d == -e``
        and the stored ``=``-edge is regular; the unique key carries
        ``bot`` as a fifth component.
        """
        if bot == sv:
            return self._make(pv, sv, d, e)
        (
            pvl,
            svl,
            botl,
            neql,
            eql,
            refl,
            fl,
            suppl,
            bits,
            raw,
            free,
            dead_set,
            by_pv,
            by_sv,
        ) = self._hot
        attr = False
        if e < 0:
            attr = True
            d = -d
            e = -e
        if d != -e:
            raise BBDDError("span node children must be a complement pair")
        position = self._order._position
        order_seq = self._order._order
        # Merge-extension: the =-child may continue the chain right below
        # ``bot``.  Canonical children make a single step sufficient.
        if svl[e] != SV_ONE and neql[e] == -eql[e]:
            p = position[bot]
            if position[pvl[e]] == p + 1 and position[svl[e]] == p + 2:
                bot = botl[e]
                d = neql[e]
                e = eql[e]
        key = (pv, sv, bot, d, e)
        unique = self._unique
        unique._lookups += 1
        node = raw.get(key)
        if node is not None:
            unique._hits += 1
            return -node if attr else node
        dn = -d if d < 0 else d
        supp = bits[pv] | suppl[dn] | suppl[e]
        for p in range(position[sv], position[bot] + 1):
            supp |= bits[order_seq[p]]
        if free:
            node = free.pop()
            pvl[node] = pv
            svl[node] = sv
            botl[node] = bot
            neql[node] = d
            eql[node] = e
            refl[node] = 0
            suppl[node] = supp
        else:
            node = len(pvl)
            pvl.append(pv)
            svl.append(sv)
            botl.append(bot)
            neql.append(d)
            eql.append(e)
            refl.append(0)
            suppl.append(supp)
            fl.append(0)
        fl[node] = 1
        raw[key] = node
        r = refl[dn]
        if r:
            refl[dn] = r + 1
        elif fl[dn]:
            fl[dn] = 0
            refl[dn] = 1
            dead_set.discard(dn)
        else:
            self._ref_index(dn)
        r = refl[e]
        if r:
            refl[e] = r + 1
        elif fl[e]:
            fl[e] = 0
            refl[e] = 1
            dead_set.discard(e)
        else:
            self._ref_index(e)
        by_pv[pv].add(node)
        by_sv[sv].add(node)
        self._node_count += 1
        dead_set.add(node)
        if self._node_count > self.peak_nodes:
            self.peak_nodes = self._node_count
        return -node if attr else node

    def _span_tail(self, node: int) -> Edge:
        """The span node's function below its top couple.

        For a span ``(v, sv:bot, d, e)`` this is
        ``T = e xor X[sv+1 .. bot]`` — the residue once ``x_v xor x_sv``
        is factored out: the node denotes ``(x_v xor x_sv) ? -T : T``.
        """
        position = self._order._position
        order_seq = self._order._order
        p = position[self._sv[node]]
        e = self._eq[node]
        return self._make_span(
            order_seq[p + 1], order_seq[p + 2], self._bot[node], -e, e
        )

    # ------------------------------------------------------------------
    # biconditional cofactors (includes Algorithm 1's chain transform)
    # ------------------------------------------------------------------

    def _cofactors(self, node: int, v: int, w: int):
        """``(f_neq, f_eq)`` of ``node`` (a positive index) w.r.t. ``(v, w)``.

        Four cases (Algorithm 1's chain transform, generalized to the
        support-chained CVO):

        * rooted deeper than ``v`` — independent of ``v``, unchanged;
        * a chain node ``(v, w)`` — its stored children;
        * a chain node ``(v, w2)`` with ``w2`` after ``w`` (the operand's
          own next support variable differs) — the substitution
          ``v <- w'``/``v <- w`` re-roots the function at couple
          ``(w, w2)`` with the children swapped / kept:
          ``f(v <- w') = (w = w2 ? d : e)``, ``f(v <- w) = (w != w2 ? d : e)``;
        * the literal ``lit(v)`` — cofactors ``~lit(w)`` / ``lit(w)``.
        """
        if self._pv[node] != v:
            return node, node
        if self._sv[node] == SV_ONE:
            lw = self.literal_node(w)
            return -lw, lw
        if self._bot[node] != self._sv[node]:
            # Span node (v, sv:bot, -T', T').  ``w`` is the earliest
            # next-visible variable across the operands, and this span's
            # next-visible variable is its sv, so ``w`` is never a span
            # middle: either w == sv (peel the top couple off the span)
            # or w lies above sv (re-root the whole span at w).
            if self._sv[node] == w:
                t = self._span_tail(node)
                return -t, t
            f_eq = self._make_span(
                w, self._sv[node], self._bot[node],
                self._neq[node], self._eq[node],
            )
            return -f_eq, f_eq
        if self._sv[node] == w:
            return self._neq[node], self._eq[node]
        d_edge = self._neq[node]
        e_edge = self._eq[node]
        return (
            self._make(w, self._sv[node], e_edge, d_edge),
            self._make(w, self._sv[node], d_edge, e_edge),
        )

    # ------------------------------------------------------------------
    # Algorithm 1: f (op) g — the iterative engine
    # ------------------------------------------------------------------

    def apply_edges(self, f: Edge, g: Edge, op: int) -> Edge:
        """Compute ``f (op) g`` for edges; ``op`` is a 4-bit operator table.

        Complement attributes on the operands are pushed into the operator
        (the paper's ``updateop``), so the iterative core and the computed
        table always see attribute-free operands.  This is a safe point:
        automatic GC may run after the result is computed (the result
        itself is protected).
        """
        if f < 0:
            op = flip_a(op)
            f = -f
        if g < 0:
            op = flip_b(op)
            g = -g
        self.apply_calls += 1
        traced = self._trace_state.enabled
        if traced:
            start = perf_counter()
        self._in_op += 1
        try:
            result = self._apply(f, g, op)
        finally:
            self._in_op -= 1
        if traced:
            from repro.obs import trace

            trace.record("apply", perf_counter() - start, backend="bbdd")
        self._maybe_gc_protect(result)
        return result

    def apply_named(self, f: Edge, g: Edge, name: str) -> Edge:
        return self.apply_edges(f, g, op_from_name(name))

    def _apply(self, fn: int, gn: int, op: int) -> Edge:
        """Iterative Algorithm 1 over an explicit pending-frame stack.

        Operands and results are attribute-free node indices / signed
        edges.  Frames are ``(_CALL, fn, gn, op, 0)`` (expand an operand
        pair) or ``(_COMBINE, v, w, key, neg)`` (build the node once both
        cofactor results sit on the value stack).  The ``=``-branch frame
        is pushed last so it expands first, matching the recursive
        formulation's evaluation order.

        Operators are normalized by **output polarity** (``op`` and
        ``~op`` share one cache entry and one expansion; the complement
        rides on the sign of the result edge), which halves the work on
        XOR-rich operand pairs where both polarities of a subproblem
        occur — the complement attribute makes the negation free.
        """
        position = self._order._position  # bound dict: hot-path lookups
        # The terminal-substitution fast path inlines the node
        # constructor without the chain-merge rule, so it is plain-mode
        # only.
        identity = self._order.is_identity and not self.chain_reduce
        cache = self._cache
        raw = cache._table if type(cache).__name__ == "DictComputedTable" else None
        if raw is None:
            lookup = cache.lookup
            insert = cache.insert
        else:
            # Dict backend: skip the per-call stats bookkeeping in the hot
            # loop and settle the counters in bulk on exit.
            lookup = raw.get
            insert = raw.__setitem__
        n_lookups = 0
        n_hits = 0
        make = self._make
        pvl = self._pv
        svl = self._sv
        botl = self._bot
        neql = self._neq
        eql = self._eq
        suppl = self._supp
        names_len = len(self._names)
        results: List[Edge] = []
        rpush = results.append
        rpop = results.pop
        tasks: List[tuple] = [(_CALL, fn, gn, op, 0)]
        tpush = tasks.append
        tpop = tasks.pop
        while tasks:
            tag, a, b, c, neg = tpop()
            if tag == _COMBINE:
                d = rpop()
                e = rpop()
                result = make(a, b, d, e)
                insert(c, result)
                rpush(-result if neg else result)
                continue
            fn, gn, op = a, b, c
            # Output-polarity normalization: represent ~op as (op, neg).
            neg = op & 1
            if neg:
                op ^= 0xF
            # -- terminal cases (Alg. 1 alpha) -----------------------------
            survivor = 0  # index 0 is never a node
            if fn == SINK:
                out = _RA1[op]
                survivor = gn
            elif gn == SINK:
                out = _RB1[op]
                survivor = fn
            elif fn == gn:
                out = _DIAG[op]
                survivor = fn
            elif ((op >> 1) & 0b101) == (op & 0b101):  # independent of b
                out = _RB0[op]
                survivor = fn
            elif ((op >> 2) & 0b11) == (op & 0b11):  # independent of a
                out = _RA0[op]
                survivor = gn
            if survivor:
                out ^= neg
                if out == _U_ID:
                    rpush(survivor)
                elif out == _U_NOT:
                    rpush(-survivor)
                elif out == _U_TRUE:
                    rpush(1)
                else:
                    rpush(-1)
                continue

            # -- computed table (Alg. 1 beta) ------------------------------
            if gn < fn and ((op >> 1) & 1) == ((op >> 2) & 1):
                fn, gn = gn, fn
            key = (fn, gn, op)
            n_lookups += 1
            cached = lookup(key)
            if cached is not None:
                n_hits += 1
                rpush(-cached if neg else cached)
                continue

            # -- terminal-substitution fast path ---------------------------
            # When one operand's support lies entirely below the other's
            # (and support masks order like positions, i.e. the CVO is
            # still the identity), the upper operand's terminals select a
            # fixed residue of the lower operand: the result is a single
            # structural pass over the upper diagram, no expansion frames.
            # This is the shape of every incremental chain build
            # (f = f <op> next), e.g. the parity construction.
            if identity:
                fs = suppl[fn]
                gs = suppl[gn]
                if fs.bit_length() < (gs & -gs).bit_length():
                    if svl[fn] != SV_ONE:  # literal roots use the generic path
                        result = self._splice(
                            fn, _RA1[op], _RA0[op], gn, op, True
                        )
                        insert(key, result)
                        rpush(-result if neg else result)
                        continue
                elif gs.bit_length() < (fs & -fs).bit_length() and svl[gn] != SV_ONE:
                    result = self._splice(gn, _RB1[op], _RB0[op], fn, op, False)
                    insert(key, result)
                    rpush(-result if neg else result)
                    continue

            # -- expansion step (Alg. 1 gamma) -----------------------------
            # Expansion couple: PV = earliest root variable; SV = earliest
            # following variable visible in either operand's structure (the
            # operand's own SV if rooted at v, its PV if rooted deeper).
            fpv = pvl[fn]
            gpv = pvl[gn]
            pf = position[fpv]
            pg = position[gpv]
            v = fpv if pf <= pg else gpv
            w = None
            w_pos = names_len + 1
            cand = svl[fn] if fpv == v else fpv
            if cand != SV_ONE:
                w = cand
                w_pos = position[cand]
            cand = svl[gn] if gpv == v else gpv
            if cand != SV_ONE:
                cand_pos = position[cand]
                if cand_pos < w_pos:
                    w, w_pos = cand, cand_pos
            if w is None:
                raise BBDDError("no expansion SV: both operands literal at v")
            # Inlined biconditional cofactors (see _cofactors) for both
            # operands; the subcall operators fold the edge signs.
            if fpv != v:
                f_nq = f_eq = fn
            elif svl[fn] == SV_ONE:
                lw = self.literal_node(w)
                f_nq = -lw
                f_eq = lw
            elif botl[fn] != svl[fn]:
                # Span operand: peel or re-root (see _cofactors).
                if svl[fn] == w:
                    f_eq = self._span_tail(fn)
                else:
                    f_eq = self._make_span(
                        w, svl[fn], botl[fn], neql[fn], eql[fn]
                    )
                f_nq = -f_eq
            elif svl[fn] == w:
                f_nq = neql[fn]
                f_eq = eql[fn]
            else:
                d_edge = neql[fn]
                e_edge = eql[fn]
                f_nq = make(w, svl[fn], e_edge, d_edge)
                f_eq = make(w, svl[fn], d_edge, e_edge)
            if gpv != v:
                g_nq = g_eq = gn
            elif svl[gn] == SV_ONE:
                lw = self.literal_node(w)
                g_nq = -lw
                g_eq = lw
            elif botl[gn] != svl[gn]:
                if svl[gn] == w:
                    g_eq = self._span_tail(gn)
                else:
                    g_eq = self._make_span(
                        w, svl[gn], botl[gn], neql[gn], eql[gn]
                    )
                g_nq = -g_eq
            elif svl[gn] == w:
                g_nq = neql[gn]
                g_eq = eql[gn]
            else:
                d_edge = neql[gn]
                e_edge = eql[gn]
                g_nq = make(w, svl[gn], e_edge, d_edge)
                g_eq = make(w, svl[gn], d_edge, e_edge)
            tpush((_COMBINE, v, w, key, neg))
            sub = op
            if f_nq < 0:
                sub = ((sub & 0b0011) << 2) | ((sub & 0b1100) >> 2)  # flip_a
                f_nq = -f_nq
            if g_nq < 0:
                sub = ((sub & 0b0101) << 1) | ((sub & 0b1010) >> 1)  # flip_b
                g_nq = -g_nq
            tpush((_CALL, f_nq, g_nq, sub, 0))
            sub = op
            if f_eq < 0:
                sub = ((sub & 0b0011) << 2) | ((sub & 0b1100) >> 2)
                f_eq = -f_eq
            if g_eq < 0:
                sub = ((sub & 0b0101) << 1) | ((sub & 0b1010) >> 1)
                g_eq = -g_eq
            tpush((_CALL, f_eq, g_eq, sub, 0))
        if raw is not None:
            cache.lookups += n_lookups
            cache.hits += n_hits
        return results[-1]

    def _splice(
        self,
        root: int,
        out1: int,
        out0: int,
        other: int,
        op: int,
        root_is_a: bool,
    ) -> Edge:
        """Terminal substitution: rebuild ``root`` with its sinks replaced.

        ``out1``/``out0`` are the unary outcome codes for the terminal
        values 1/0 (w.r.t. the surviving operand ``other``, which lies
        entirely below ``root`` in the order).  A single memoized
        bottom-up pass over ``root``'s diagram; literal nodes at the
        bottom of the chain re-enter the generic engine (their couple
        partner comes from ``other``'s structure).

        When the two residues are complements of each other (XOR-shaped
        outcomes) the substitution commutes with complement, so the memo
        collapses to one entry per node and results are shared through
        the sign of the edges.
        """
        if out1 == _U_ID:
            r1: Edge = other
        elif out1 == _U_NOT:
            r1 = -other
        else:
            r1 = -1 if out1 == _U_FALSE else 1
        if out0 == _U_ID:
            r0: Edge = other
        elif out0 == _U_NOT:
            r0 = -other
        else:
            r0 = -1 if out0 == _U_FALSE else 1
        linear = r1 == r0 or r1 == -r0  # complement pair: F(~f) == ~F(f)
        make = self._make
        apply_inner = self._apply
        pvl = self._pv
        svl = self._sv
        botl = self._bot
        neql = self._neq
        eql = self._eq
        refl = self._ref
        fl = self._float
        suppl = self._supp
        memo: Dict = {}
        memo_get = memo.get
        bits = self._var_bits
        raw = self._uniq_raw
        unique = self._unique
        dead_set = self._dead_set
        dead_add = dead_set.add
        dead_discard = dead_set.discard
        by_pv = self._by_pv
        by_sv = self._by_sv
        free = self._free_nodes
        results: List[Edge] = []
        rpush = results.append
        rpop = results.pop
        tasks: List[tuple] = [(_CALL, root, False)]
        tpush = tasks.append
        tpop = tasks.pop
        while tasks:
            tag, node, attr = tpop()
            if tag == _COMBINE:
                d = rpop()
                e = rpop()
                if linear:
                    if neql[node] < 0:
                        d = -d
                    result = make(pvl[node], svl[node], d, e)
                    memo[node] = result
                else:
                    result = make(pvl[node], svl[node], d, e)
                    memo[(node, attr)] = result
                rpush(result)
                continue
            if tag == _UNWIND:
                # ``node`` holds a trail of complement-pair chain nodes
                # (root first); the value stack holds the tail result.
                # The node constructor is inlined for the common case
                # (no SV-elimination) — this loop builds the bulk of
                # every incremental chain step.
                e = rpop()
                for nd in reversed(node):
                    en = -e if e < 0 else e
                    sv = svl[nd]
                    if pvl[en] == sv or neql[nd] > 0:
                        # Possible reduction (or an irregular trail node):
                        # take the full canonical constructor.
                        d = -e if neql[nd] < 0 else e
                        e = make(pvl[nd], sv, d, e)
                        memo[nd] = e
                        continue
                    pv = pvl[nd]
                    # d = -e, e = e; after =-edge normalization the
                    # stored !=-edge is ``-en`` and the external attr
                    # equals e's sign.
                    key = (pv, sv, -en, en)
                    unique._lookups += 1
                    new = raw.get(key)
                    if new is None:
                        supp = bits[pv] | bits[sv] | suppl[en]
                        if free:
                            new = free.pop()
                            pvl[new] = pv
                            svl[new] = sv
                            botl[new] = sv
                            neql[new] = -en
                            eql[new] = en
                            refl[new] = 0
                            suppl[new] = supp
                        else:
                            new = len(pvl)
                            pvl.append(pv)
                            svl.append(sv)
                            botl.append(sv)
                            neql.append(-en)
                            eql.append(en)
                            refl.append(0)
                            suppl.append(supp)
                            fl.append(0)
                        fl[new] = 1
                        raw[key] = new
                        r = refl[en]
                        if r:
                            refl[en] = r + 2
                        elif fl[en]:
                            fl[en] = 0
                            refl[en] = 2
                            dead_discard(en)
                        else:
                            self._ref_index(en)
                            refl[en] += 1
                        by_pv[pv].add(new)
                        by_sv[sv].add(new)
                        nc = self._node_count + 1
                        self._node_count = nc
                        dead_add(new)
                        if nc > self.peak_nodes:
                            self.peak_nodes = nc
                    else:
                        unique._hits += 1
                    e = -new if e < 0 else new
                    memo[nd] = e
                rpush(e)
                continue
            if node == SINK:
                rpush(r0 if attr else r1)
                continue
            if svl[node] == SV_ONE:
                # Bottom-of-chain literal: its couple partner lives in the
                # other operand — delegate to the generic expansion.  An
                # incoming complement flips the terminal *before* the
                # substitution, so it folds into the operator (updateop),
                # never onto the result (that is only sound when the two
                # residues are complements, i.e. the linear case).
                if root_is_a:
                    sub = flip_a(op) if attr else op
                    result = apply_inner(node, other, sub)
                else:
                    sub = flip_b(op) if attr else op
                    result = apply_inner(other, node, sub)
                rpush(result)
                continue
            # In linear mode every frame carries attr == False (the root
            # is a bare operand and all linear pushes below use False);
            # complements are folded at the combine sites instead.
            mk = node if linear else (node, attr)
            hit = memo_get(mk)
            if hit is not None:
                rpush(hit)
                continue
            if linear:
                d_child = neql[node]
                e_child = eql[node]
                if -d_child == e_child:
                    # Complement-pair children (e.g. any XOR chain): one
                    # child visit suffices (the d-branch is its negation),
                    # and because =-edges are regular the whole descent is
                    # attribute-free — collect the run as a frame-free
                    # trail and unwind it bottom-up.
                    trail = [node]
                    tappend = trail.append
                    nd = e_child
                    while True:
                        if nd == SINK or svl[nd] == SV_ONE:
                            break
                        hit = memo_get(nd)
                        if hit is not None:
                            break
                        if -neql[nd] != eql[nd]:
                            break
                        tappend(nd)
                        nd = eql[nd]
                    tpush((_UNWIND, trail, False))
                    tpush((_CALL, nd, False))
                else:
                    tpush((_COMBINE, node, attr))
                    tpush((_CALL, -d_child if d_child < 0 else d_child, False))
                    tpush((_CALL, e_child, False))
            else:
                d_child = neql[node]
                tpush((_COMBINE, node, attr))
                tpush(
                    (
                        _CALL,
                        -d_child if d_child < 0 else d_child,
                        attr ^ (d_child < 0),
                    )
                )
                tpush((_CALL, eql[node], attr))
        return results[-1]

    # Convenience edge-level operations used across the package.

    def and_edges(self, f: Edge, g: Edge) -> Edge:
        return self.apply_edges(f, g, OP_AND)

    def or_edges(self, f: Edge, g: Edge) -> Edge:
        return self.apply_edges(f, g, OP_OR)

    def xor_edges(self, f: Edge, g: Edge) -> Edge:
        return self.apply_edges(f, g, OP_XOR)

    @staticmethod
    def not_edge(f: Edge) -> Edge:
        return -f

    # ------------------------------------------------------------------
    # uniform DD protocol (repro.api) — derived ops and semantics
    # ------------------------------------------------------------------
    #
    # These wrappers bind the native iterative procedures of
    # :mod:`repro.core.apply` / :mod:`repro.core.traversal` to the
    # backend-agnostic :class:`repro.api.base.DDManager` edge protocol,
    # which is what the shared Function wrapper and every protocol
    # client (network builder, harness, io) call.

    def ite_edges(self, f: Edge, g: Edge, h: Edge) -> Edge:
        from repro.core import apply as _ops

        return _ops.ite(self, f, g, h)

    def restrict_edge(self, edge: Edge, var, value: bool) -> Edge:
        from repro.core import apply as _ops

        return _ops.restrict(self, edge, var, value)

    def compose_edge(self, edge: Edge, var, g: Edge) -> Edge:
        from repro.core import apply as _ops

        return _ops.compose(self, edge, var, g)

    def quantify_edge(self, edge: Edge, variables, forall: bool = False) -> Edge:
        from repro.core import apply as _ops

        if forall:
            return _ops.forall(self, edge, variables)
        return _ops.exists(self, edge, variables)

    def support_edge(self, edge: Edge) -> frozenset:
        from repro.core import apply as _ops

        return _ops.support(self, edge)

    def and_exists_edges(self, f: Edge, g: Edge, variables) -> Edge:
        from repro.core import apply as _ops

        return _ops.and_exists(self, f, g, variables)

    def evaluate_edge(self, edge: Edge, values: Dict[int, bool]) -> bool:
        from repro.core import traversal as _trav

        return _trav.evaluate(self, edge, values)

    def batch_stream(self, edge: Edge):
        """Top-down level stream for the batch cohort sweeps (repro.serve)."""
        from repro.core import traversal as _trav

        if edge == 1 or edge == -1:
            return None
        root = -edge if edge < 0 else edge
        return (root, _trav.iter_cohort_items(self, edge))

    def freeze_export(self, named):
        """Flat int64 columns of a named forest (the shared-memory codec).

        Native override of :meth:`repro.api.base.DDManager.freeze_export`:
        one :func:`~repro.core.traversal.levelize` over *all* roots gives
        the global top-down order directly (children live at strictly
        deeper CVO levels), so shared nodes are enumerated once however
        many roots reference them.
        """
        from repro.core import traversal as _trav

        edges = [edge for _name, edge in named if edge != 1 and edge != -1]
        ids: Dict[int, int] = {}
        ordered: List[int] = []
        for _pos, nodes in reversed(_trav.levelize(self, edges)):
            for node in nodes:
                ids[node] = 2 + len(ordered)
                ordered.append(node)
        pv = [0, 0]
        sv = [-1, -1]
        bot = [-1, -1]
        t = [0, 0]
        f = [0, 0]
        has_span = False
        pvl, svl, botl, neql, eql = (
            self._pv, self._sv, self._bot, self._neq, self._eq,
        )
        for node in ordered:
            pv.append(pvl[node])
            d = neql[node]
            neq = -d if d < 0 else d
            neq_ref = 1 if neq == SINK else ids[neq]
            if d < 0:
                neq_ref = -neq_ref
            eq = eql[node]
            eq_ref = 1 if eq == SINK else ids[eq]
            if svl[node] == SV_ONE:
                # Literal (R4) node: the test is the variable itself, so
                # the always-regular ``=``-edge (pv == 1) is the t-branch
                # and the ``!=``-edge the f-branch.
                sv.append(-1)
                bot.append(-1)
                t.append(eq_ref)
                f.append(neq_ref)
            else:
                sv.append(svl[node])
                # bot >= 0 marks a span in the frozen layout; plain
                # couples (bot == sv in the store) stay at -1 so the
                # column is all -1 exactly when the forest has no spans.
                if botl[node] != svl[node]:
                    bot.append(botl[node])
                    has_span = True
                else:
                    bot.append(-1)
                t.append(neq_ref)
                f.append(eq_ref)
        roots: Dict[str, int] = {}
        for name, edge in named:
            if edge == 1 or edge == -1:
                roots[name] = edge
            else:
                node = -edge if edge < 0 else edge
                roots[name] = -ids[node] if edge < 0 else ids[node]
        out = {
            "kind": self.backend,
            "pv": pv,
            "sv": sv,
            "t": t,
            "f": f,
            "roots": roots,
        }
        if has_span:
            # Chain column only when needed: plain freezes stay in the
            # 4-column RPARFRZ1 layout old readers attach.
            out["bot"] = bot
        return out

    def sat_count_edge(self, edge: Edge) -> int:
        from repro.core import traversal as _trav

        return _trav.sat_count(self, edge)

    def sat_one_edge(self, edge: Edge) -> Optional[Dict[int, bool]]:
        """One satisfying assignment ``{var index: bit}``, or None.

        Constraints resolve bottom-up against the couple partner actually
        on the witness path (*not* the global order's partner — under the
        support-chained CVO a node's SV is its function's next *support*
        variable, which may skip order positions).  A partner the path
        never pins absolutely is a free variable and defaults to False.
        """
        from repro.core import traversal as _trav

        path = _trav.find_sat_path(self, edge, want=True)
        if path is None:
            return None
        values: Dict[int, bool] = {}
        # ``path`` is root-to-sink; resolve deepest-first so each couple's
        # partner is already fixed (or known free) when it is needed.
        for pv, sv, rel in reversed(path):
            if rel == "0" or rel == "1":
                values[pv] = rel == "1"
            elif type(sv) is tuple:
                # Span constraint: x_pv xor x_sv xor ... xor x_bot is
                # pinned; unpinned partners default to False and pv
                # absorbs the parity.
                acc = False
                for partner in sv:
                    if partner not in values:
                        values[partner] = False
                    acc ^= values[partner]
                values[pv] = (not acc) if rel == "!=" else acc
            else:
                if sv not in values:
                    values[sv] = False
                values[pv] = (not values[sv]) if rel == "!=" else values[sv]
        return values

    def root_var(self, edge: Edge) -> int:
        """The first support variable (in order) of ``edge``'s function.

        Under the support-chained CVO this is the root couple's PV.
        """
        return self._pv[-edge if edge < 0 else edge]

    def count_nodes(self, edges: Iterable[Edge]) -> int:
        from repro.core import traversal as _trav

        return _trav.count_nodes(self, edges)

    def sift(self, **kwargs):
        """Reorder variables with Rudell's sifting (see repro.core.reorder).

        In chain mode the reordering surgery only understands plain
        couples (and span membership is defined by contiguous *order*
        positions, which the swaps change), so spans are expanded to
        plain chains around the sift and re-merged at the final order.
        """
        from repro.core.reorder import sift as _sift

        if not self.chain_reduce:
            return _sift(self, **kwargs)
        self.expand_chains()
        self.chain_reduce = False
        try:
            result = _sift(self, **kwargs)
        finally:
            self.chain_reduce = True
            self.reduce_chains()
        return result

    def expand_chains(self) -> int:
        """Rewrite every span node in place as a plain linear chain.

        Each span ``(pv, sv:bot, -T', T')`` becomes the plain couple
        ``(pv, sv, -T, T)`` with ``T`` the freshly built tail chain of
        linear couples over the span's inner positions — the same
        function, so parents and computed-table entries stay valid and
        no polarity changes leak out.  Garbage is collected first
        (including floating nodes) so every surviving node is live and
        the child-reference transfer is exact.  Returns the number of
        spans expanded.
        """
        self.gc()
        saved = self.chain_reduce
        self.chain_reduce = False
        position = self._order._position
        order_seq = self._order._order
        pvl = self._pv
        svl = self._sv
        botl = self._bot
        neql = self._neq
        eql = self._eq
        suppl = self._supp
        bits = self._var_bits
        raw = self._uniq_raw
        make = self._make
        expanded = 0
        self._in_op += 1
        try:
            spans = [
                n
                for n in list(raw.values())
                if svl[n] != SV_ONE and botl[n] != svl[n]
            ]
            for n in spans:
                pv = pvl[n]
                sv = svl[n]
                e = eql[n]
                del raw[(pv, sv, botl[n], neql[n], e)]
                p = position[sv]
                pb = position[botl[n]]
                t = e
                for q in range(pb - 1, p, -2):
                    t = make(order_seq[q], order_seq[q + 1], -t, t)
                tn = -t if t < 0 else t
                newkey = (pv, sv, -t, t)
                other = raw.get(newkey)
                if other is not None and other != n:
                    raise BBDDError(
                        f"span expansion key collision: {newkey} -> {other}"
                    )
                # Transfer the two child holds from the old =-child onto
                # the tail root (the tail keeps the old child alive).
                self._ref_index(tn)
                self._ref_index(tn)
                self._deref_index(e)
                self._deref_index(e)
                neql[n] = -t
                eql[n] = t
                botl[n] = sv
                suppl[n] = bits[pv] | bits[sv] | suppl[tn]
                raw[newkey] = n
                self._views.pop(n, None)
                expanded += 1
        finally:
            self._in_op -= 1
            self.chain_reduce = saved
        return expanded

    def reduce_chains(self) -> int:
        """Re-merge linear chains into span nodes in place, deepest first.

        The inverse of :meth:`expand_chains`, applied at the *current*
        order: a linear couple whose ``=``-child is a linear node at the
        next two order positions absorbs that child's span (the child
        itself dies once unreferenced).  Deepest-first processing makes
        children maximal before their parents are examined, so a single
        step per node reaches the canonical chain-reduced form.
        Function-preserving and in place, like the expansion.  Returns
        the number of merges performed.
        """
        self.gc()
        position = self._order._position
        pvl = self._pv
        svl = self._sv
        botl = self._bot
        neql = self._neq
        eql = self._eq
        raw = self._uniq_raw
        merged = 0
        self._in_op += 1
        try:
            nodes = [n for n in raw.values() if svl[n] != SV_ONE]
            nodes.sort(key=lambda n: position[pvl[n]], reverse=True)
            for n in nodes:
                if self._ref[n] <= 0:
                    continue  # died as an absorbed chain link
                if neql[n] != -eql[n]:
                    continue
                child = eql[n]  # regular by storage
                if svl[child] == SV_ONE or neql[child] != -eql[child]:
                    continue
                pb = position[botl[n]]
                if (
                    position[pvl[child]] != pb + 1
                    or position[svl[child]] != pb + 2
                ):
                    continue
                pv = pvl[n]
                sv = svl[n]
                tail = eql[child]
                tn = -tail if tail < 0 else tail
                newbot = botl[child]
                newkey = (pv, sv, newbot, -tail, tail)
                if raw.get(newkey) is not None:
                    raise BBDDError(
                        f"chain reduction key collision: {newkey}"
                    )
                if botl[n] != sv:
                    del raw[(pv, sv, botl[n], neql[n], eql[n])]
                else:
                    del raw[(pv, sv, neql[n], eql[n])]
                self._ref_index(tn)
                self._ref_index(tn)
                self._deref_index(child)
                self._deref_index(child)
                neql[n] = -tail
                eql[n] = tail
                botl[n] = newbot
                raw[newkey] = n
                self._views.pop(n, None)
                merged += 1
        finally:
            self._in_op -= 1
        return merged

    # ------------------------------------------------------------------
    # memory management (Sec. IV-A3)
    # ------------------------------------------------------------------
    #
    # Reference counts are *cascading*: a live node holds one count on
    # each child, a dead node holds none.  ``_ref_index`` therefore
    # revives a dead subgraph (re-acquiring child counts) and
    # ``_deref_index`` releases one (dropping them), keeping ``_dead``
    # exact without any scan.

    def size(self) -> int:
        """Number of nodes currently stored (chain + literal, sink excluded)."""
        return self._node_count

    def dead_count(self) -> int:
        """Number of stored nodes with zero references — O(1)."""
        return len(self._dead_set)

    def _scan_dead(self) -> int:
        """O(n) recount of dead nodes (invariant checking / debugging)."""
        refl = self._ref
        return sum(1 for n in self._uniq_raw.values() if refl[n] == 0)

    def _ref_index(self, node: int) -> None:
        """Acquire one reference on a node index.

        A floating node (fresh, still holding its birth counts on the
        children) resolves in O(1); a node that once died released its
        child counts, so reviving it re-acquires the subgraph (cascade).
        """
        refl = self._ref
        r = refl[node]
        if r < 0:
            raise BBDDError(f"use after sweep: node {node}")
        if r == 0 and node != SINK:
            fl = self._float
            neql = self._neq
            eql = self._eq
            discard = self._dead_set.discard
            discard(node)
            refl[node] = 1
            if fl[node]:
                fl[node] = 0
                return
            d = neql[node]
            stack = [-d if d < 0 else d, eql[node]]
            while stack:
                n = stack.pop()
                if refl[n] == 0 and n != SINK:
                    discard(n)
                    refl[n] = 1
                    if fl[n]:
                        fl[n] = 0
                    else:
                        d = neql[n]
                        stack.append(-d if d < 0 else d)
                        stack.append(eql[n])
                else:
                    refl[n] += 1
        else:
            refl[node] = r + 1

    def _deref_index(self, node: int) -> None:
        """Release one reference; a dying node releases its children."""
        refl = self._ref
        r = refl[node] - 1
        refl[node] = r
        if r == 0 and node != SINK:
            add = self._dead_set.add
            neql = self._neq
            eql = self._eq
            add(node)
            d = neql[node]
            stack = [-d if d < 0 else d, eql[node]]
            while stack:
                n = stack.pop()
                r = refl[n] - 1
                refl[n] = r
                if r == 0 and n != SINK:
                    add(n)
                    d = neql[n]
                    stack.append(-d if d < 0 else d)
                    stack.append(eql[n])

    # Back-compat node-handle hooks: accept an index or a BBDDNode view.

    def _ref_node(self, node) -> None:
        self._ref_index(node if isinstance(node, int) else node.index)

    def _deref_node(self, node) -> None:
        self._deref_index(node if isinstance(node, int) else node.index)

    def inc_ref(self, edge: Edge) -> None:
        self._ref_index(-edge if edge < 0 else edge)

    def dec_ref(self, edge: Edge) -> None:
        self._deref_index(-edge if edge < 0 else edge)
        self._maybe_gc()

    def acquire_ref(self, node) -> None:
        """Function-handle hook: acquire one reference on ``node``."""
        self._ref_index(node if isinstance(node, int) else node.index)

    def release_ref(self, node) -> None:
        """Function-handle hook: drop one reference (mark-only).

        Deliberately does **not** run the collector: handle releases can
        fire at arbitrary points via Python's cyclic collector (e.g.
        while a fresh, still-unreferenced result edge is being wrapped),
        so ``__del__`` only accounts the garbage; the armed collection
        runs at the next operation boundary, where results are protected.
        """
        self._deref_index(node if isinstance(node, int) else node.index)

    def defer_gc(self) -> _GCDeferral:
        """Suspend automatic GC for a block holding bare edges.

        Re-entrant.  An armed collection does not run on exit (the block
        may return bare edges); it happens at the next operation
        boundary instead.  Use around any code that keeps unreferenced
        signed-int edges live across several manager operations.
        """
        return _GCDeferral(self)

    def _gc_armed(self) -> bool:
        return (
            self._node_count >= self.gc_min_nodes
            and len(self._dead_set) >= self._node_count * self.gc_threshold
        )

    def _maybe_gc(self) -> int:
        """Run GC if automatic collection is armed and we are at a safe point."""
        if not self.auto_gc or self._in_op or not self._gc_armed():
            return 0
        self.auto_gc_runs += 1
        return self.gc()

    def _maybe_gc_protect(self, edge: Edge) -> None:
        """Auto-GC check that keeps ``edge`` (a fresh result) alive."""
        if not self.auto_gc or self._in_op or not self._gc_armed():
            return
        node = -edge if edge < 0 else edge
        self._ref_index(node)
        try:
            self.auto_gc_runs += 1
            self.gc()
        finally:
            # Drop the protection without a death cascade: the node still
            # holds its child counts, i.e. it goes back to floating.
            refl = self._ref
            refl[node] -= 1
            if refl[node] == 0 and node != SINK:
                self._float[node] = 1
                self._dead_set.add(node)

    def _checkpoint(self):
        """Snapshot the complete node-store state (O(stored nodes)).

        Everything a CVO swap mutates is captured: the parallel field
        arrays, the unique table, the per-variable indexes, the free
        list, the dead set and the variable order.  Monotone counters
        (peak, gc/apply statistics) and the computed table (cleared on
        every swap anyway) are deliberately left out.  Used by the
        sifting driver to rewind excursions instead of retracing them
        swap by swap; a state may be restored more than once.
        """
        return (
            self._pv[:],
            self._sv[:],
            self._bot[:],
            self._neq[:],
            self._eq[:],
            self._ref[:],
            self._supp[:],
            bytes(self._float),
            dict(self._uniq_raw),
            {v: set(s) for v, s in self._by_pv.items()},
            {v: set(s) for v, s in self._by_sv.items()},
            dict(self._literals),
            list(self._free_nodes),
            set(self._dead_set),
            self._node_count,
            self._order.order,
        )

    def _restore(self, state) -> None:
        """Rewind the node store to a :meth:`_checkpoint` snapshot."""
        (pv, sv, bot, neq, eq, ref, supp, float_, raw, by_pv, by_sv,
         literals, free, dead, node_count, order) = state
        self._pv = list(pv)
        self._sv = list(sv)
        self._bot = list(bot)
        self._neq = list(neq)
        self._eq = list(eq)
        self._ref = list(ref)
        self._supp = list(supp)
        self._float = bytearray(float_)
        # The raw dict is aliased by the unique-table wrapper: refill it
        # in place so ``self._uniq_raw is self._unique._table`` holds.
        self._uniq_raw.clear()
        self._uniq_raw.update(raw)
        self._by_pv = {v: set(s) for v, s in by_pv.items()}
        self._by_sv = {v: set(s) for v, s in by_sv.items()}
        self._literals = dict(literals)
        self._free_nodes = list(free)
        self._dead_set = set(dead)
        self._node_count = node_count
        self._order.set_order(order)
        self._bind_hot()
        # Cached results and interned views may reference slots that only
        # exist on the abandoned timeline.
        self._cache.clear()
        self._views.clear()

    def gc(self) -> int:
        """Sweep dead nodes and clear the computed table.

        Returns the number of reclaimed nodes.  Dead nodes hold no child
        references and are tracked in an explicit set (cascading counts),
        so the sweep touches only the garbage — no unique-table scan.
        Swept slots are pooled for reuse by ``_make`` (array slots cannot
        be returned to the interpreter individually, so the free list is
        what keeps the arrays dense).  The computed table must be cleared
        because its entries hold bare indices that are only valid while
        the pointed nodes stay canonical residents of the unique table.
        """
        self._cache.clear()
        dead = self._dead_set
        raw = self._uniq_raw
        pvl = self._pv
        svl = self._sv
        botl = self._bot
        neql = self._neq
        eql = self._eq
        refl = self._ref
        fl = self._float
        pool = self._free_nodes.append
        views = self._views
        reclaimed = 0
        while dead:
            node = dead.pop()
            refl[node] = -1  # tombstone: catches use-after-sweep
            reclaimed += 1
            pool(node)
            views.pop(node, None)
            if svl[node] == SV_ONE:
                del raw[(pvl[node], SV_ONE)]
                del self._literals[pvl[node]]
                if fl[node]:
                    refl[SINK] -= 2
                fl[node] = 0
                continue
            if botl[node] != svl[node]:
                del raw[
                    (pvl[node], svl[node], botl[node], neql[node], eql[node])
                ]
            else:
                del raw[(pvl[node], svl[node], neql[node], eql[node])]
            self._by_pv[pvl[node]].discard(node)
            self._by_sv[svl[node]].discard(node)
            if fl[node]:
                # Unacquired garbage still holds its birth counts on the
                # children — release them; newly dead children join the
                # set and are reclaimed by this same loop.
                fl[node] = 0
                d = neql[node]
                self._deref_index(-d if d < 0 else d)
                self._deref_index(eql[node])
        self._node_count -= reclaimed
        self.gc_count += 1
        self.gc_reclaimed += reclaimed
        return reclaimed

    def _sweep(self, node: int) -> int:
        """Reclaim the dead subgraph rooted at ``node`` (ref == 0).

        Child references were already dropped when the nodes died, so
        sweeping only removes the dead nodes from the tables (cascading
        into dead children to reclaim whole subgraphs eagerly, which the
        reordering surgery relies on).
        """
        return self._sweep_many((node,))

    def _sweep_many(self, nodes) -> int:
        """Reclaim the dead subgraphs rooted at each of ``nodes``.

        Batch form of :meth:`_sweep` (one call per reordering phase
        instead of one per dead root); entries that were already
        reclaimed by an earlier cascade are skipped.
        """
        pvl = self._pv
        svl = self._sv
        botl = self._bot
        neql = self._neq
        eql = self._eq
        refl = self._ref
        fl = self._float
        raw = self._uniq_raw
        pool = self._free_nodes.append
        views_pop = self._views.pop
        dead_discard = self._dead_set.discard
        by_pv = self._by_pv
        by_sv = self._by_sv
        deref = self._deref_index
        reclaimed = 0
        stack = list(nodes)
        while stack:
            n = stack.pop()
            if n == SINK or refl[n] != 0:
                continue
            refl[n] = -1  # tombstone: prevents double sweep
            dead_discard(n)
            pool(n)
            views_pop(n, None)
            if svl[n] == SV_ONE:
                del raw[(pvl[n], SV_ONE)]
                del self._literals[pvl[n]]
                if fl[n]:
                    refl[SINK] -= 2
                fl[n] = 0
            else:
                if botl[n] != svl[n]:
                    del raw[(pvl[n], svl[n], botl[n], neql[n], eql[n])]
                else:
                    del raw[(pvl[n], svl[n], neql[n], eql[n])]
                by_pv[pvl[n]].discard(n)
                by_sv[svl[n]].discard(n)
                d = neql[n]
                dn = -d if d < 0 else d
                if fl[n]:
                    # Unacquired garbage: release the birth counts first.
                    fl[n] = 0
                    deref(dn)
                    deref(eql[n])
                stack.append(dn)
                stack.append(eql[n])
            reclaimed += 1
        self._node_count -= reclaimed
        return reclaimed

    def _kill_many(self, nodes) -> int:
        """Release-and-reclaim once-live subgraphs in one walk.

        Reordering-phase fast path: each entry carries one *deferred*
        final release (the caller saw its count at 1 and did not
        decrement).  The walk applies the decrement and, when a node
        dies, reclaims its slot immediately and defers one release to
        each child — fusing the :meth:`_deref_index` cascade and the
        :meth:`_sweep_many` reclamation into a single pass with no
        dead-set traffic.  Only valid while collection is deferred and
        every entry is a once-live node (``ref >= 1``, float flag
        clear): nodes re-acquired between the deferral and this walk
        simply survive with the extra count.
        """
        pvl = self._pv
        svl = self._sv
        botl = self._bot
        neql = self._neq
        eql = self._eq
        refl = self._ref
        raw = self._uniq_raw
        pool = self._free_nodes.append
        views_pop = self._views.pop
        by_pv = self._by_pv
        by_sv = self._by_sv
        reclaimed = 0
        stack = list(nodes)
        while stack:
            n = stack.pop()
            r = refl[n] - 1
            if r > 0 or n == SINK:
                refl[n] = r
                continue
            refl[n] = -1  # tombstone: the slot is gone
            pool(n)
            views_pop(n, None)
            if svl[n] == SV_ONE:
                del raw[(pvl[n], SV_ONE)]
                del self._literals[pvl[n]]
                refl[SINK] -= 2  # the fixed sink children
            else:
                if botl[n] != svl[n]:
                    del raw[(pvl[n], svl[n], botl[n], neql[n], eql[n])]
                else:
                    del raw[(pvl[n], svl[n], neql[n], eql[n])]
                by_pv[pvl[n]].discard(n)
                by_sv[svl[n]].discard(n)
                d = neql[n]
                stack.append(-d if d < 0 else d)
                stack.append(eql[n])
            reclaimed += 1
        self._node_count -= reclaimed
        return reclaimed

    def clear_cache(self) -> None:
        self._cache.clear()

    def table_stats(self) -> dict:
        return {
            "unique": self._unique.stats(),
            "computed": self._cache.stats(),
            "nodes": self._node_count,
            "peak_nodes": self.peak_nodes,
            "dead": len(self._dead_set),
            "apply_calls": self.apply_calls,
            "gc_runs": self.gc_count,
            "gc_reclaimed": self.gc_reclaimed,
            "auto_gc_runs": self.auto_gc_runs,
            "auto_gc": self.auto_gc,
            "gc_threshold": self.gc_threshold,
            "gc_min_nodes": self.gc_min_nodes,
        }

    def collect_metrics(self, registry) -> None:
        """Sample this manager's counters into an obs registry.

        Pull-based observability hook (see :mod:`repro.obs`): the hot
        paths keep their native counters and this maps them onto the
        catalogued metric families, labeled ``backend="bbdd"``.
        """
        from repro.obs.catalog import family

        unique = self._unique.stats()
        computed = self._cache.stats()
        label = {"backend": "bbdd"}
        family(registry, "repro_manager_unique_lookups_total").labels(
            **label
        ).inc(unique.get("lookups", 0))
        family(registry, "repro_manager_unique_hits_total").labels(
            **label
        ).inc(unique.get("hits", 0))
        family(registry, "repro_manager_computed_lookups_total").labels(
            **label
        ).inc(computed.get("lookups", 0))
        family(registry, "repro_manager_computed_hits_total").labels(
            **label
        ).inc(computed.get("hits", 0))
        family(registry, "repro_manager_apply_total").labels(**label).inc(
            self.apply_calls
        )
        family(registry, "repro_manager_gc_runs_total").labels(**label).inc(
            self.gc_count
        )
        family(registry, "repro_manager_gc_reclaimed_total").labels(
            **label
        ).inc(self.gc_reclaimed)
        family(registry, "repro_manager_nodes").labels(**label).inc(
            self._node_count
        )
        family(registry, "repro_manager_peak_nodes").labels(**label).inc(
            self.peak_nodes
        )
        family(registry, "repro_manager_dead_nodes").labels(**label).inc(
            len(self._dead_set)
        )

    # ------------------------------------------------------------------
    # persistence (repro.io convenience surface)
    # ------------------------------------------------------------------

    def dump(self, functions, target, compress: bool = False) -> None:
        """Write a forest to ``target`` in the levelized binary format.

        ``functions`` is a ``{name: Function}`` mapping (or a sequence);
        ``target`` a path or binary file object.  ``compress=True``
        writes the v2 ``FLAG_COMPRESSED`` container.  See
        :mod:`repro.io`.
        """
        from repro.io import binary as _binary

        _binary.dump(self, functions, target, compress=compress)

    def load(self, source, rename=None) -> dict:
        """Load a dump *into this manager*; returns ``{name: Function}``.

        The dump's variables (after the optional ``rename`` mapping)
        must all exist here, but this manager may hold a superset of
        them and/or use a different order — nodes are re-reduced on the
        fly.  To load into a fresh manager use :func:`repro.io.load`.
        """
        from repro.io import binary as _binary

        _manager, functions = _binary.load(source, manager=self, rename=rename)
        return functions

    # ------------------------------------------------------------------
    # introspection / debugging
    # ------------------------------------------------------------------

    def nodes_with_pv(self, var: int) -> set:
        """Chain node indices whose primary variable is ``var`` (live or dead)."""
        return self._by_pv[var]

    def nodes_with_sv(self, var: int) -> set:
        """Chain node indices whose secondary variable is ``var``."""
        return self._by_sv[var]

    def iter_nodes(self) -> Iterable[BBDDNode]:
        """Views of every stored node (chain + literal, sink excluded)."""
        return (self.node_view(i) for i in list(self._uniq_raw.values()))

    def check_invariants(self) -> None:
        """Validate the canonical-form invariants; raise on violation.

        Used by the test-suite after every structural operation.  Checks:
        unique-table key consistency, R2 (no identical children), R4 (no
        chain node denoting a literal), ``=``-edge regularity (structural
        by construction, re-checked via key shape), CVO couple consistency,
        strictly increasing child positions, literal node shape,
        non-negative reference counts, cascading-count consistency (a live
        node's children are live), no dangling child indices and the
        exactness of the incremental dead count.
        """
        from repro.core.exceptions import InvariantViolation

        order = self._order
        pvl = self._pv
        svl = self._sv
        botl = self._bot
        neql = self._neq
        eql = self._eq
        refl = self._ref
        fl = self._float
        suppl = self._supp
        raw = self._uniq_raw
        order_seq = self._order._order
        for key, node in list(raw.items()):
            if self._node_key(node) != key:
                raise InvariantViolation(
                    f"key {key} does not map back to node {node}"
                )
            if refl[node] < 0:
                raise InvariantViolation(f"swept node still in table: {node}")
            if svl[node] == SV_ONE:
                if not (neql[node] == -SINK and eql[node] == SINK):
                    raise InvariantViolation(
                        f"malformed literal node {self.node_view(node)!r}"
                    )
                continue
            pos = order.position(pvl[node])
            sv_pos = order.position(svl[node])
            if sv_pos <= pos:
                raise InvariantViolation(
                    f"couple of {self.node_view(node)!r} inconsistent with "
                    f"order {order!r}"
                )
            d = neql[node]
            e = eql[node]
            if e < 0:
                raise InvariantViolation(
                    f"irregular =-edge on {self.node_view(node)!r}"
                )
            if d == e:
                raise InvariantViolation(
                    f"R2 violation (identical children): {self.node_view(node)!r}"
                )
            bot_pos = sv_pos
            if botl[node] != svl[node]:
                # Span node: the chain bottom lies strictly below the SV
                # by an even number of positions (odd span length) and
                # the children are a complement pair.
                bot_pos = order.position(botl[node])
                if bot_pos <= sv_pos or (bot_pos - sv_pos) % 2:
                    raise InvariantViolation(
                        f"malformed span on {self.node_view(node)!r}"
                    )
                if d != -e:
                    raise InvariantViolation(
                        f"span children not a complement pair: "
                        f"{self.node_view(node)!r}"
                    )
            dn = -d if d < 0 else d
            for child in (dn, e):
                if refl[child] < 0 or (child != SINK and child not in (
                    raw.get(self._node_key(child)),
                )):
                    raise InvariantViolation(
                        f"dangling child index: {node} -> {child}"
                    )
                if child != SINK and order.position(pvl[child]) < bot_pos:
                    raise InvariantViolation(
                        f"child order violation: {self.node_view(node)!r} -> "
                        f"{self.node_view(child)!r}"
                    )
                if (
                    (refl[node] > 0 or fl[node])
                    and child != SINK
                    and refl[child] <= 0
                ):
                    raise InvariantViolation(
                        f"held node with dead child: {self.node_view(node)!r} "
                        f"-> {self.node_view(child)!r}"
                    )
            if (
                dn != SINK
                and e != SINK
                and pvl[dn] == svl[node]
                and pvl[e] == svl[node]
            ):
                if self._shannon_view(d, svl[node], 0) == self._shannon_view(
                    e, svl[node], 1
                ) and self._shannon_view(e, svl[node], 0) == self._shannon_view(
                    d, svl[node], 1
                ):
                    raise InvariantViolation(
                        f"R3/R4 violation (SV-independent chain node): "
                        f"{self.node_view(node)!r}"
                    )
            expected_supp = (
                (1 << pvl[node]) | (1 << svl[node]) | suppl[dn] | suppl[e]
            )
            for span_pos in range(sv_pos + 1, bot_pos + 1):
                expected_supp |= 1 << order_seq[span_pos]
            if suppl[node] != expected_supp:
                raise InvariantViolation(
                    f"support mask mismatch: {self.node_view(node)!r}"
                )
        scanned_dead = self._scan_dead()
        if scanned_dead != len(self._dead_set):
            raise InvariantViolation(
                f"incremental dead count {len(self._dead_set)} != scan "
                f"{scanned_dead}"
            )
        for node in self._dead_set:
            if refl[node] != 0:
                raise InvariantViolation(f"non-dead node in dead set: {node}")
        for node in raw.values():
            if fl[node] and refl[node] != 0:
                raise InvariantViolation(
                    f"floating node with refs: {self.node_view(node)!r}"
                )

    def check_ref_counts(self, roots=None) -> None:
        """Validate the reference counters against a full parent scan.

        Every stored *held* chain node (positive count, or a floating
        birth hold) contributes one reference per child occurrence; each
        edge in ``roots`` — the caller's live function handles —
        contributes one reference to its root node.  With ``roots``
        given, the scan must reproduce every stored count exactly;
        without it the scan is a lower bound (the slack is the caller's
        handle count, unknown here).  The sink's count aggregates
        literal birth holds and constant handles and is skipped.
        """
        from repro.core.exceptions import InvariantViolation

        refl = self._ref
        fl = self._float
        svl = self._sv
        neql = self._neq
        eql = self._eq
        holds = [0] * len(refl)
        for node in self._uniq_raw.values():
            if svl[node] == SV_ONE:
                continue  # literal children are sink edges
            if refl[node] > 0 or fl[node]:
                d = neql[node]
                holds[-d if d < 0 else d] += 1
                holds[eql[node]] += 1
        exact = roots is not None
        if exact:
            for edge in roots:
                holds[-edge if edge < 0 else edge] += 1
        for node in self._uniq_raw.values():
            if node == SINK:
                continue
            have = refl[node]
            if have < 0:
                raise InvariantViolation(f"swept node still stored: {node}")
            expected = holds[node]
            if have < expected or (exact and have != expected):
                raise InvariantViolation(
                    f"ref count mismatch on {self.node_view(node)!r}: "
                    f"stored {have}, parent scan "
                    f"{'==' if exact else '>='} {expected}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BBDDManager vars={len(self._names)} nodes={self._node_count} "
            f"order={self.current_order()}>"
        )
