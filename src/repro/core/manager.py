"""The BBDD manager: node construction, Boolean operations, memory management.

This module implements the manipulation core of Sec. IV of the paper:

* ``_make`` — get-or-create a node in strong canonical form, enforcing
  reduction rules R1 (unique table), R2 (identical children), R4 (literal
  degeneration) and the complement-attribute normalization (``=``-edges are
  always regular);
* ``apply_edges`` — Algorithm 1: any two-operand Boolean operation over
  biconditional expansions, with terminal-case short circuits, a computed
  table, operator update for complement attributes (``updateop``) and
  on-the-fly chain transformation of single-variable operands.  The
  expansion is driven by an **explicit pending-frame stack**, not Python
  recursion, so operand depth is limited by memory alone (Adiar-style
  level-by-level manipulation scales where recursion cannot);
* reference-counting memory management with **cascading** counts: a node
  whose count drops to zero immediately releases its children (and a
  revived node re-acquires them), so the number of dead nodes is known
  exactly at all times and :meth:`BBDDManager.dead_count` is O(1).
  Garbage collection triggers automatically (dd/CUDD style) when the
  dead/total ratio crosses a configurable threshold, but only at safe
  points — never while an operation holds intermediate edges.

All hot-path functions work on bare ``(node, attr)`` edge tuples; the
user-facing wrapper lives in :mod:`repro.core.function`.  Code that holds
bare edges across several manager operations must either reference them
(:meth:`BBDDManager.inc_ref`) or suspend collection with
:meth:`BBDDManager.defer_gc` for the duration.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.api.base import DDManager
from repro.core.computed_table import make_computed_table
from repro.core.exceptions import BBDDError, VariableError
from repro.core.node import SV_ONE, BBDDNode, Edge, make_sink
from repro.core.operations import (
    OP_AND,
    OP_OR,
    OP_XOR,
    UNARY_FALSE,
    UNARY_ID,
    UNARY_NOT,
    UNARY_TRUE,
    diagonal,
    flip_a,
    flip_b,
    op_from_name,
    restrict_a,
    restrict_b,
)
from repro.core.order import ChainVariableOrder
from repro.core.unique_table import make_unique_table

#: Pending-frame tags of the iterative apply engine.
_CALL = 0
_COMBINE = 1
_UNWIND = 2

#: Maximum number of swept node shells kept for reuse by ``_make``.
_FREE_POOL_CAP = 1 << 15

# Terminal-case outcome tables, precomputed per 4-bit operator so the hot
# loop replaces the ``restrict_a``/``diagonal`` + ``_UNARY`` dict chain
# with one tuple index.  Outcomes are coded so complementing the operator
# (output-polarity normalization) is ``outcome ^ 1``.
_U_FALSE, _U_TRUE, _U_ID, _U_NOT = 0, 1, 2, 3
_OUTCOME_CODE = {UNARY_FALSE: _U_FALSE, UNARY_TRUE: _U_TRUE, UNARY_ID: _U_ID, UNARY_NOT: _U_NOT}
_RA1 = tuple(_OUTCOME_CODE[restrict_a(op, 1)] for op in range(16))
_RB1 = tuple(_OUTCOME_CODE[restrict_b(op, 1)] for op in range(16))
_RA0 = tuple(_OUTCOME_CODE[restrict_a(op, 0)] for op in range(16))
_RB0 = tuple(_OUTCOME_CODE[restrict_b(op, 0)] for op in range(16))
_DIAG = tuple(_OUTCOME_CODE[diagonal(op)] for op in range(16))


class _GCDeferral:
    """Context manager suspending automatic GC (re-entrant).

    Entering bumps the manager's in-operation counter, which inhibits
    :meth:`BBDDManager._maybe_gc`.  Leaving deliberately does **not**
    collect: code commonly returns bare (unreferenced) edges produced
    inside the block, and ``__exit__`` runs before the caller can
    reference them — an exit-time sweep would reclaim the very results
    the deferral protected.  An armed collection simply happens at the
    next organic safe point (end of an apply/derived op, or an explicit
    ``dec_ref``), where the fresh result is protected.
    """

    __slots__ = ("_manager",)

    def __init__(self, manager: "BBDDManager") -> None:
        self._manager = manager

    def __enter__(self) -> "BBDDManager":
        self._manager._in_op += 1
        return self._manager

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._manager._in_op -= 1
        return False


class BBDDManager(DDManager):
    """Shared manager for a forest of BBDDs over a common variable set.

    Parameters
    ----------
    variables:
        Either the number of variables or a sequence of distinct names.
    unique_backend / computed_backend:
        ``"dict"`` (default, native hashing) or ``"cantor"`` (the paper's
        Cantor-pairing tables); the computed table additionally accepts
        ``"disabled"`` for ablation runs.
    auto_gc:
        Enable automatic garbage collection (default).  When enabled, a
        collection runs at the next safe point after the dead/total node
        ratio exceeds ``gc_threshold`` (and at least ``gc_min_nodes``
        nodes are stored).
    gc_threshold:
        Dead/total ratio that arms the automatic collector.
    gc_min_nodes:
        Minimum stored-node count before automatic GC considers running
        (keeps small working sets collection-free).
    """

    #: Registry name of this backend in the repro.api front end.
    backend = "bbdd"

    def __init__(
        self,
        variables: Union[int, Sequence[str]],
        unique_backend: str = "dict",
        computed_backend: str = "dict",
        auto_gc: bool = True,
        gc_threshold: float = 0.5,
        gc_min_nodes: int = 1024,
    ) -> None:
        if isinstance(variables, int):
            names = [f"x{i}" for i in range(variables)]
        else:
            names = list(variables)
        if len(set(names)) != len(names):
            raise VariableError("variable names must be distinct")
        self._names: List[str] = names
        self._index: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self._order = ChainVariableOrder(range(len(names)))

        self._uid = 0
        self.sink = make_sink(self._next_uid())
        self._unique = make_unique_table(unique_backend)
        # Hot-path accelerators: per-variable support bits (avoids big-int
        # shifts per node), the dict backend's raw table, and a free list
        # of swept node shells for allocation-free rebuilds.
        self._var_bits: List[int] = [1 << i for i in range(len(names))]
        self._uniq_raw = getattr(self._unique, "_table", None)
        self._free_nodes: List[BBDDNode] = []
        self._cache = make_computed_table(computed_backend)
        self._literals: Dict[int, BBDDNode] = {}
        self._by_pv: Dict[int, set] = {i: set() for i in range(len(names))}
        self._by_sv: Dict[int, set] = {i: set() for i in range(len(names))}
        self._node_count = 0
        self.peak_nodes = 0
        self.gc_count = 0
        self.auto_gc_runs = 0
        self.apply_calls = 0
        self.gc_reclaimed = 0

        self.auto_gc = auto_gc
        self.gc_threshold = gc_threshold
        self.gc_min_nodes = gc_min_nodes
        #: The stored nodes with a zero reference count, maintained
        #: incrementally by the ref/deref/make/sweep hooks; GC sweeps this
        #: set directly instead of scanning the unique table.
        self._dead_set: set = set()
        #: Depth of in-flight operations; automatic GC only runs at zero.
        self._in_op = 0

        from repro import obs  # late: repro.__init__ imports core first

        self._trace_state = obs.trace.STATE
        obs.track(self)

    # ------------------------------------------------------------------
    # identifiers and variables
    # ------------------------------------------------------------------

    def _next_uid(self) -> int:
        self._uid += 1
        return self._uid

    @property
    def num_vars(self) -> int:
        return len(self._names)

    @property
    def var_names(self) -> tuple:
        return tuple(self._names)

    def var_index(self, var: Union[int, str]) -> int:
        """Normalize a variable name or index to its index."""
        if isinstance(var, str):
            try:
                return self._index[var]
            except KeyError:
                raise VariableError(f"unknown variable {var!r}") from None
        if not 0 <= var < len(self._names):
            raise VariableError(f"variable index {var} out of range")
        return var

    def var_name(self, index: int) -> str:
        return self._names[index]

    def new_var(self, name: Optional[str] = None) -> int:
        """Append a fresh variable at the bottom of the order."""
        index = len(self._names)
        if name is None:
            name = f"x{index}"
        if name in self._index:
            raise VariableError(f"variable {name!r} already exists")
        self._names.append(name)
        self._index[name] = index
        self._var_bits.append(1 << index)
        self._by_pv[index] = set()
        self._by_sv[index] = set()
        self._order.append(index)
        return index

    # ------------------------------------------------------------------
    # order access
    # ------------------------------------------------------------------

    @property
    def order(self) -> ChainVariableOrder:
        return self._order

    def current_order(self) -> tuple:
        """Current variable order as a tuple of names (root to bottom)."""
        return tuple(self._names[v] for v in self._order.order)

    def cvo_couples(self) -> list:
        """The CVO couples as name pairs, SV of the bottom couple is '1'."""
        out = []
        for pv, sv in self._order.couples():
            out.append((self._names[pv], "1" if sv == SV_ONE else self._names[sv]))
        return out

    def _root_position(self, node: BBDDNode) -> int:
        """Position of a node's root couple; the sink sorts below everything."""
        if node.is_sink:
            return len(self._names)
        return self._order.position(node.pv)

    # ------------------------------------------------------------------
    # terminal edges and literals
    # ------------------------------------------------------------------

    @property
    def true_edge(self) -> Edge:
        return (self.sink, False)

    @property
    def false_edge(self) -> Edge:
        return (self.sink, True)

    def literal_node(self, var: int) -> BBDDNode:
        """The R4 literal node for ``var`` (created on demand).

        Like every node, a fresh literal is born dead (count zero, no
        child references); acquiring it references the sink twice.
        """
        node = self._literals.get(var)
        if node is None:
            node = BBDDNode(var, SV_ONE, self.sink, True, self.sink, self._next_uid())
            node.floating = True
            self.sink.ref += 2  # birth holds both (sink) children
            node.tkey = node.key()
            self._literals[var] = node
            self._unique.insert(node.tkey, node)
            self._node_count += 1
            self._dead_set.add(node)
            if self._node_count > self.peak_nodes:
                self.peak_nodes = self._node_count
        return node

    def literal_edge(self, var: Union[int, str], positive: bool = True) -> Edge:
        index = self.var_index(var)
        return (self.literal_node(index), not positive)

    # ------------------------------------------------------------------
    # canonical node construction (rules R1, R2, R4 + normalization)
    # ------------------------------------------------------------------

    def _shannon_view(self, edge: Edge, w: int, value: int):
        """Constant restriction ``edge|w=value`` as a comparable view.

        Only called for edges rooted at ``w``.  Returns either
        ``("const", bit)`` for a literal root or ``(t, high, low)`` for a
        chain root ``(w, t)`` — ``high``/``low`` are the edges selected at
        ``t = 1`` / ``t = 0``.  Two equal views denote equal functions
        (children are canonical), which is what the reduction test needs.
        """
        node, attr = edge
        if node.sv == SV_ONE:
            return ("const", bool(value) ^ attr)
        neq_edge = (node.neq, node.neq_attr ^ attr)
        eq_edge = (node.eq, attr)
        if value == 0:
            return (node.sv, neq_edge, eq_edge)
        return (node.sv, eq_edge, neq_edge)

    def _make(self, pv: int, sv: int, d: Edge, e: Edge) -> Edge:
        """Get-or-create the node ``(pv, sv, !=-child d, =-child e)``.

        Applies the reduction rules of Sec. III-C under the support-chained
        CVO (rule R3: a function's couples chain over its *support*, so no
        level is empty):

        * R2 — identical children collapse to the child;
        * SV-elimination — if the candidate function does not actually
          depend on ``sv`` (both children rooted at ``sv`` and
          ``d|sv=0 == e|sv=1`` and ``e|sv=0 == d|sv=1``), the couple
          re-chains past ``sv`` (iterated in place; rule R4 —
          single-variable degeneration to a literal node — is the
          terminal case of this cascade);
        * ``=``-edge regularity normalization, then unique-table
          resolution (R1 / strong canonical form).
        """
        while True:
            dn, da = d
            en, ea = e
            if dn is en and da == ea:
                return e  # R2
            if sv == SV_ONE:
                # Boundary: no further support variable; children are
                # constants and the node degenerates to the literal of pv.
                if not (dn.is_sink and en.is_sink):
                    raise BBDDError("boundary-couple children must be constants")
                return (self.literal_node(pv), ea)
            if dn.pv == sv and en.pv == sv and not dn.is_sink and not en.is_sink:
                # Both children rooted at sv: the candidate may not depend
                # on sv at all, in which case the chain skips it (R3/R4).
                if self._shannon_view(d, sv, 0) == self._shannon_view(e, sv, 1) and (
                    self._shannon_view(e, sv, 0) == self._shannon_view(d, sv, 1)
                ):
                    if dn.sv == SV_ONE:
                        # d = lit(sv)^da, e = lit(sv)^~da: rule R4 proper.
                        return (self.literal_node(pv), ea)
                    # Re-chain: f = (pv = t) ? A : B with A/B = d's children.
                    sv = dn.sv
                    d, e = (dn.eq, da), (dn.neq, dn.neq_attr ^ da)
                    continue
            break
        attr = False
        if ea:
            # Normalize: =-edges are stored regular; complement both
            # children and return a complemented external edge.
            attr = True
            da = not da
        key = (pv, sv, dn.uid, da, en.uid)
        unique = self._unique
        raw = self._uniq_raw
        if raw is not None:
            unique._lookups += 1
            node = raw.get(key)
            if node is not None:
                unique._hits += 1
        else:
            node = unique.lookup(key)
        if node is None:
            uid = self._uid + 1
            self._uid = uid
            free = self._free_nodes
            if free:
                # Recycle a swept shell: no allocation, fresh identity.
                node = free.pop()
                node.pv = pv
                node.sv = sv
                node.neq = dn
                node.neq_attr = da
                node.eq = en
                node.ref = 0
                node.uid = uid
            else:
                node = BBDDNode(pv, sv, dn, da, en, uid)
            node.floating = True
            bits = self._var_bits
            node.supp = bits[pv] | bits[sv] | dn.supp | en.supp
            node.tkey = key
            if raw is not None:
                raw[key] = node
            else:
                unique.insert(key, node)
            # Birth acquires both children (floating children resolve in
            # O(1); a once-dead child needs a full revive).
            if dn.ref:
                dn.ref += 1
            elif dn.floating:
                dn.floating = False
                dn.ref = 1
                self._dead_set.discard(dn)
            else:
                self._ref_node(dn)
            if en.ref:
                en.ref += 1
            elif en.floating:
                en.floating = False
                en.ref = 1
                self._dead_set.discard(en)
            else:
                self._ref_node(en)
            self._by_pv[pv].add(node)
            self._by_sv[sv].add(node)
            self._node_count += 1
            self._dead_set.add(node)
            if self._node_count > self.peak_nodes:
                self.peak_nodes = self._node_count
        return (node, attr)

    # ------------------------------------------------------------------
    # biconditional cofactors (includes Algorithm 1's chain transform)
    # ------------------------------------------------------------------

    def _cofactors(self, node: BBDDNode, v: int, w: int) -> Tuple[Edge, Edge]:
        """``(f_neq, f_eq)`` of ``node`` w.r.t. the couple ``(v, w)``.

        Four cases (Algorithm 1's chain transform, generalized to the
        support-chained CVO):

        * rooted deeper than ``v`` — independent of ``v``, unchanged;
        * a chain node ``(v, w)`` — its stored children;
        * a chain node ``(v, w2)`` with ``w2`` after ``w`` (the operand's
          own next support variable differs) — the substitution
          ``v <- w'``/``v <- w`` re-roots the function at couple
          ``(w, w2)`` with the children swapped / kept:
          ``f(v <- w') = (w = w2 ? d : e)``, ``f(v <- w) = (w != w2 ? d : e)``;
        * the literal ``lit(v)`` — cofactors ``~lit(w)`` / ``lit(w)``.
        """
        if node.pv != v:
            return (node, False), (node, False)
        if node.sv == SV_ONE:
            lw = self.literal_node(w)
            return (lw, True), (lw, False)
        if node.sv == w:
            return (node.neq, node.neq_attr), (node.eq, False)
        d_edge = (node.neq, node.neq_attr)
        e_edge = (node.eq, False)
        return (
            self._make(w, node.sv, e_edge, d_edge),
            self._make(w, node.sv, d_edge, e_edge),
        )

    # ------------------------------------------------------------------
    # Algorithm 1: f (op) g — the iterative engine
    # ------------------------------------------------------------------

    def apply_edges(self, f: Edge, g: Edge, op: int) -> Edge:
        """Compute ``f (op) g`` for edges; ``op`` is a 4-bit operator table.

        Complement attributes on the operands are pushed into the operator
        (the paper's ``updateop``), so the iterative core and the computed
        table always see attribute-free operands.  This is a safe point:
        automatic GC may run after the result is computed (the result
        itself is protected).
        """
        fn, fa = f
        if fa:
            op = flip_a(op)
        gn, ga = g
        if ga:
            op = flip_b(op)
        self.apply_calls += 1
        traced = self._trace_state.enabled
        if traced:
            start = perf_counter()
        self._in_op += 1
        try:
            result = self._apply(fn, gn, op)
        finally:
            self._in_op -= 1
        if traced:
            from repro.obs import trace

            trace.record("apply", perf_counter() - start, backend="bbdd")
        self._maybe_gc_protect(result)
        return result

    def apply_named(self, f: Edge, g: Edge, name: str) -> Edge:
        return self.apply_edges(f, g, op_from_name(name))

    def _apply(self, fn: BBDDNode, gn: BBDDNode, op: int) -> Edge:
        """Iterative Algorithm 1 over an explicit pending-frame stack.

        Frames are ``(_CALL, fn, gn, op, 0)`` (expand an operand pair) or
        ``(_COMBINE, v, w, key, neg)`` (build the node once both cofactor
        results sit on the value stack).  The ``=``-branch frame is
        pushed last so it expands first, matching the recursive
        formulation's evaluation order.

        Operators are normalized by **output polarity** (``op`` and
        ``~op`` share one cache entry and one expansion; the complement
        rides on the result edge), which halves the work on XOR-rich
        operand pairs where both polarities of a subproblem occur — the
        complement attribute makes the negation free.
        """
        position = self._order._position  # bound dict: hot-path lookups
        identity = self._order.is_identity
        cache = self._cache
        raw = cache._table if type(cache).__name__ == "DictComputedTable" else None
        if raw is None:
            lookup = cache.lookup
            insert = cache.insert
        else:
            # Dict backend: skip the per-call stats bookkeeping in the hot
            # loop and settle the counters in bulk on exit.
            lookup = raw.get
            insert = raw.__setitem__
        n_lookups = 0
        n_hits = 0
        make = self._make
        sink = self.sink
        true_edge = (sink, False)
        false_edge = (sink, True)
        names_len = len(self._names)
        results: List[Edge] = []
        rpush = results.append
        rpop = results.pop
        tasks: List[tuple] = [(_CALL, fn, gn, op, 0)]
        tpush = tasks.append
        tpop = tasks.pop
        while tasks:
            tag, a, b, c, neg = tpop()
            if tag == _COMBINE:
                d = rpop()
                e = rpop()
                result = make(a, b, d, e)
                insert(c, result)
                if neg:
                    rpush((result[0], not result[1]))
                else:
                    rpush(result)
                continue
            fn, gn, op = a, b, c
            # Output-polarity normalization: represent ~op as (op, neg).
            neg = op & 1
            if neg:
                op ^= 0xF
            # -- terminal cases (Alg. 1 alpha) -----------------------------
            survivor = None
            if fn is sink:
                out = _RA1[op]
                survivor = gn
            elif gn is sink:
                out = _RB1[op]
                survivor = fn
            elif fn is gn:
                out = _DIAG[op]
                survivor = fn
            elif ((op >> 1) & 0b101) == (op & 0b101):  # independent of b
                out = _RB0[op]
                survivor = fn
            elif ((op >> 2) & 0b11) == (op & 0b11):  # independent of a
                out = _RA0[op]
                survivor = gn
            if survivor is not None:
                out ^= neg
                if out == _U_ID:
                    rpush((survivor, False))
                elif out == _U_NOT:
                    rpush((survivor, True))
                elif out == _U_TRUE:
                    rpush(true_edge)
                else:
                    rpush(false_edge)
                continue

            # -- computed table (Alg. 1 beta) ------------------------------
            if gn.uid < fn.uid and ((op >> 1) & 1) == ((op >> 2) & 1):
                fn, gn = gn, fn
            key = (fn.uid, gn.uid, op)
            n_lookups += 1
            cached = lookup(key)
            if cached is not None:
                n_hits += 1
                if neg:
                    rpush((cached[0], not cached[1]))
                else:
                    rpush(cached)
                continue

            # -- terminal-substitution fast path ---------------------------
            # When one operand's support lies entirely below the other's
            # (and support masks order like positions, i.e. the CVO is
            # still the identity), the upper operand's terminals select a
            # fixed residue of the lower operand: the result is a single
            # structural pass over the upper diagram, no expansion frames.
            # This is the shape of every incremental chain build
            # (f = f <op> next), e.g. the parity construction.
            if identity:
                fs = fn.supp
                gs = gn.supp
                if fs.bit_length() < (gs & -gs).bit_length():
                    if fn.sv != SV_ONE:  # literal roots use the generic path
                        result = self._splice(
                            fn, _RA1[op], _RA0[op], gn, op, True
                        )
                        insert(key, result)
                        if neg:
                            rpush((result[0], not result[1]))
                        else:
                            rpush(result)
                        continue
                elif gs.bit_length() < (fs & -fs).bit_length() and gn.sv != SV_ONE:
                    result = self._splice(gn, _RB1[op], _RB0[op], fn, op, False)
                    insert(key, result)
                    if neg:
                        rpush((result[0], not result[1]))
                    else:
                        rpush(result)
                    continue

            # -- expansion step (Alg. 1 gamma) -----------------------------
            # Expansion couple: PV = earliest root variable; SV = earliest
            # following variable visible in either operand's structure (the
            # operand's own SV if rooted at v, its PV if rooted deeper).
            pf = position[fn.pv]
            pg = position[gn.pv]
            v = fn.pv if pf <= pg else gn.pv
            w = None
            w_pos = names_len + 1
            cand = fn.sv if fn.pv == v else fn.pv
            if cand != SV_ONE:
                w = cand
                w_pos = position[cand]
            cand = gn.sv if gn.pv == v else gn.pv
            if cand != SV_ONE:
                cand_pos = position[cand]
                if cand_pos < w_pos:
                    w, w_pos = cand, cand_pos
            if w is None:
                raise BBDDError("no expansion SV: both operands literal at v")
            # Inlined biconditional cofactors (see _cofactors) for both
            # operands; the subcall operators fold the edge attributes.
            if fn.pv != v:
                f_nq_n = f_eq_n = fn
                f_nq_a = f_eq_a = False
            elif fn.sv == SV_ONE:
                lw = self.literal_node(w)
                f_nq_n = f_eq_n = lw
                f_nq_a, f_eq_a = True, False
            elif fn.sv == w:
                f_nq_n, f_nq_a = fn.neq, fn.neq_attr
                f_eq_n, f_eq_a = fn.eq, False
            else:
                d_edge = (fn.neq, fn.neq_attr)
                e_edge = (fn.eq, False)
                f_nq_n, f_nq_a = make(w, fn.sv, e_edge, d_edge)
                f_eq_n, f_eq_a = make(w, fn.sv, d_edge, e_edge)
            if gn.pv != v:
                g_nq_n = g_eq_n = gn
                g_nq_a = g_eq_a = False
            elif gn.sv == SV_ONE:
                lw = self.literal_node(w)
                g_nq_n = g_eq_n = lw
                g_nq_a, g_eq_a = True, False
            elif gn.sv == w:
                g_nq_n, g_nq_a = gn.neq, gn.neq_attr
                g_eq_n, g_eq_a = gn.eq, False
            else:
                d_edge = (gn.neq, gn.neq_attr)
                e_edge = (gn.eq, False)
                g_nq_n, g_nq_a = make(w, gn.sv, e_edge, d_edge)
                g_eq_n, g_eq_a = make(w, gn.sv, d_edge, e_edge)
            tpush((_COMBINE, v, w, key, neg))
            sub = op
            if f_nq_a:
                sub = ((sub & 0b0011) << 2) | ((sub & 0b1100) >> 2)  # flip_a
            if g_nq_a:
                sub = ((sub & 0b0101) << 1) | ((sub & 0b1010) >> 1)  # flip_b
            tpush((_CALL, f_nq_n, g_nq_n, sub, 0))
            sub = op
            if f_eq_a:
                sub = ((sub & 0b0011) << 2) | ((sub & 0b1100) >> 2)
            if g_eq_a:
                sub = ((sub & 0b0101) << 1) | ((sub & 0b1010) >> 1)
            tpush((_CALL, f_eq_n, g_eq_n, sub, 0))
        if raw is not None:
            cache.lookups += n_lookups
            cache.hits += n_hits
        return results[-1]

    def _splice(
        self,
        root: BBDDNode,
        out1: int,
        out0: int,
        other: BBDDNode,
        op: int,
        root_is_a: bool,
    ) -> Edge:
        """Terminal substitution: rebuild ``root`` with its sinks replaced.

        ``out1``/``out0`` are the unary outcome codes for the terminal
        values 1/0 (w.r.t. the surviving operand ``other``, which lies
        entirely below ``root`` in the order).  A single memoized
        bottom-up pass over ``root``'s diagram; literal nodes at the
        bottom of the chain re-enter the generic engine (their couple
        partner comes from ``other``'s structure).

        When the two residues are complements of each other (XOR-shaped
        outcomes) the substitution commutes with complement, so the memo
        collapses to one entry per node and results are shared through
        complement attributes.
        """
        sink = self.sink
        if out1 == _U_ID:
            r1: Edge = (other, False)
        elif out1 == _U_NOT:
            r1 = (other, True)
        else:
            r1 = (sink, out1 == _U_FALSE)
        if out0 == _U_ID:
            r0: Edge = (other, False)
        elif out0 == _U_NOT:
            r0 = (other, True)
        else:
            r0 = (sink, out0 == _U_FALSE)
        linear = r1[0] is r0[0]  # complement pair: F(~f) == ~F(f)
        make = self._make
        apply_inner = self._apply
        memo: Dict = {}
        memo_get = memo.get
        bits = self._var_bits
        raw = self._uniq_raw
        unique = self._unique
        dead_set = self._dead_set
        dead_add = dead_set.add
        dead_discard = dead_set.discard
        by_pv = self._by_pv
        by_sv = self._by_sv
        free = self._free_nodes
        results: List[Edge] = []
        rpush = results.append
        rpop = results.pop
        tasks: List[tuple] = [(_CALL, root, False)]
        tpush = tasks.append
        tpop = tasks.pop
        while tasks:
            tag, node, attr = tpop()
            if tag == _COMBINE:
                d = rpop()
                e = rpop()
                if linear:
                    if node.neq_attr:
                        d = (d[0], not d[1])
                    result = make(node.pv, node.sv, d, e)
                    memo[node.uid] = result
                else:
                    result = make(node.pv, node.sv, d, e)
                    memo[(node.uid, attr)] = result
                rpush(result)
                continue
            if tag == _UNWIND:
                # ``node`` holds a trail of complement-pair chain nodes
                # (root first); the value stack holds the tail result.
                # The node constructor is inlined for the common case
                # (no SV-elimination, dict unique backend) — this loop
                # builds the bulk of every incremental chain step.
                e = rpop()
                for nd in reversed(node):
                    en, ea = e
                    sv = nd.sv
                    if en.pv == sv or not nd.neq_attr or raw is None:
                        # Possible reduction (or non-dict backend): take
                        # the full canonical constructor.
                        e = make(nd.pv, sv, (en, ea ^ nd.neq_attr), e)
                        memo[nd.uid] = e
                        continue
                    pv = nd.pv
                    # d = (en, ~ea), e = (en, ea); after =-edge
                    # normalization the stored neq-attr is always True
                    # and the external attr equals ea.
                    key = (pv, sv, en.uid, True, en.uid)
                    unique._lookups += 1
                    new = raw.get(key)
                    if new is None:
                        uid = self._uid + 1
                        self._uid = uid
                        if free:
                            new = free.pop()
                            new.pv = pv
                            new.sv = sv
                            new.neq = en
                            new.neq_attr = True
                            new.eq = en
                            new.ref = 0
                            new.uid = uid
                        else:
                            new = BBDDNode(pv, sv, en, True, en, uid)
                        new.floating = True
                        new.supp = bits[pv] | bits[sv] | en.supp
                        new.tkey = key
                        raw[key] = new
                        r = en.ref
                        if r:
                            en.ref = r + 2
                        elif en.floating:
                            en.floating = False
                            en.ref = 2
                            dead_discard(en)
                        else:
                            self._ref_node(en)
                            en.ref += 1
                        by_pv[pv].add(new)
                        by_sv[sv].add(new)
                        nc = self._node_count + 1
                        self._node_count = nc
                        dead_add(new)
                        if nc > self.peak_nodes:
                            self.peak_nodes = nc
                    else:
                        unique._hits += 1
                    e = (new, ea)
                    memo[nd.uid] = e
                rpush(e)
                continue
            if node is sink:
                if attr:
                    rpush(r0)
                else:
                    rpush(r1)
                continue
            if node.sv == SV_ONE:
                # Bottom-of-chain literal: its couple partner lives in the
                # other operand — delegate to the generic expansion.  An
                # incoming complement flips the terminal *before* the
                # substitution, so it folds into the operator (updateop),
                # never onto the result (that is only sound when the two
                # residues are complements, i.e. the linear case).
                if root_is_a:
                    sub = flip_a(op) if attr else op
                    result = apply_inner(node, other, sub)
                else:
                    sub = flip_b(op) if attr else op
                    result = apply_inner(other, node, sub)
                rpush(result)
                continue
            # In linear mode every frame carries attr == False (the root
            # is a bare operand and all linear pushes below use False);
            # complements are folded at the combine sites instead.
            mk = node.uid if linear else (node.uid, attr)
            hit = memo.get(mk)
            if hit is not None:
                rpush(hit)
                continue
            if linear:
                if node.neq is node.eq:
                    # Complement-pair children (e.g. any XOR chain): one
                    # child visit suffices (the d-branch is its negation),
                    # and because =-edges are regular the whole descent is
                    # attribute-free — collect the run as a frame-free
                    # trail and unwind it bottom-up.
                    trail = [node]
                    tappend = trail.append
                    memo_get = memo.get
                    nd = node.eq
                    while True:
                        if nd is sink or nd.sv == SV_ONE:
                            break
                        hit = memo_get(nd.uid)
                        if hit is not None:
                            break
                        if nd.neq is not nd.eq:
                            break
                        tappend(nd)
                        nd = nd.eq
                    tpush((_UNWIND, trail, False))
                    tpush((_CALL, nd, False))
                else:
                    tpush((_COMBINE, node, attr))
                    tpush((_CALL, node.neq, False))
                    tpush((_CALL, node.eq, False))
            else:
                tpush((_COMBINE, node, attr))
                tpush((_CALL, node.neq, attr ^ node.neq_attr))
                tpush((_CALL, node.eq, attr))
        return results[-1]

    # Convenience edge-level operations used across the package.

    def and_edges(self, f: Edge, g: Edge) -> Edge:
        return self.apply_edges(f, g, OP_AND)

    def or_edges(self, f: Edge, g: Edge) -> Edge:
        return self.apply_edges(f, g, OP_OR)

    def xor_edges(self, f: Edge, g: Edge) -> Edge:
        return self.apply_edges(f, g, OP_XOR)

    @staticmethod
    def not_edge(f: Edge) -> Edge:
        return (f[0], not f[1])

    # ------------------------------------------------------------------
    # uniform DD protocol (repro.api) — derived ops and semantics
    # ------------------------------------------------------------------
    #
    # These wrappers bind the native iterative procedures of
    # :mod:`repro.core.apply` / :mod:`repro.core.traversal` to the
    # backend-agnostic :class:`repro.api.base.DDManager` edge protocol,
    # which is what the shared Function wrapper and every protocol
    # client (network builder, harness, io) call.

    def ite_edges(self, f: Edge, g: Edge, h: Edge) -> Edge:
        from repro.core import apply as _ops

        return _ops.ite(self, f, g, h)

    def restrict_edge(self, edge: Edge, var, value: bool) -> Edge:
        from repro.core import apply as _ops

        return _ops.restrict(self, edge, var, value)

    def compose_edge(self, edge: Edge, var, g: Edge) -> Edge:
        from repro.core import apply as _ops

        return _ops.compose(self, edge, var, g)

    def quantify_edge(self, edge: Edge, variables, forall: bool = False) -> Edge:
        from repro.core import apply as _ops

        if forall:
            return _ops.forall(self, edge, variables)
        return _ops.exists(self, edge, variables)

    def support_edge(self, edge: Edge) -> frozenset:
        from repro.core import apply as _ops

        return _ops.support(self, edge)

    def evaluate_edge(self, edge: Edge, values: Dict[int, bool]) -> bool:
        from repro.core import traversal as _trav

        return _trav.evaluate(edge, values)

    def batch_stream(self, edge: Edge):
        """Top-down level stream for the batch cohort sweeps (repro.serve)."""
        from repro.core import traversal as _trav

        if edge[0].is_sink:
            return None
        return (edge[0], _trav.iter_cohort_items(self, edge))

    def sat_count_edge(self, edge: Edge) -> int:
        from repro.core import traversal as _trav

        return _trav.sat_count(self, edge)

    def sat_one_edge(self, edge: Edge) -> Optional[Dict[int, bool]]:
        """One satisfying assignment ``{var index: bit}``, or None.

        Constraints resolve bottom-up against the couple partner actually
        on the witness path (*not* the global order's partner — under the
        support-chained CVO a node's SV is its function's next *support*
        variable, which may skip order positions).  A partner the path
        never pins absolutely is a free variable and defaults to False.
        """
        from repro.core import traversal as _trav

        path = _trav.find_sat_path(self, edge, want=True)
        if path is None:
            return None
        values: Dict[int, bool] = {}
        # ``path`` is root-to-sink; resolve deepest-first so each couple's
        # partner is already fixed (or known free) when it is needed.
        for pv, sv, rel in reversed(path):
            if rel == "0" or rel == "1":
                values[pv] = rel == "1"
            else:
                if sv not in values:
                    values[sv] = False
                values[pv] = (not values[sv]) if rel == "!=" else values[sv]
        return values

    def root_var(self, edge: Edge) -> int:
        """The first support variable (in order) of ``edge``'s function.

        Under the support-chained CVO this is the root couple's PV.
        """
        return edge[0].pv

    def count_nodes(self, edges: Iterable[Edge]) -> int:
        from repro.core import traversal as _trav

        return _trav.count_nodes(edges)

    def sift(self, **kwargs):
        """Reorder variables with Rudell's sifting (see repro.core.reorder)."""
        from repro.core.reorder import sift as _sift

        return _sift(self, **kwargs)

    # ------------------------------------------------------------------
    # memory management (Sec. IV-A3)
    # ------------------------------------------------------------------
    #
    # Reference counts are *cascading*: a live node holds one count on
    # each child, a dead node holds none.  ``_ref_node`` therefore
    # revives a dead subgraph (re-acquiring child counts) and
    # ``_deref_node`` releases one (dropping them), keeping ``_dead``
    # exact without any scan.

    def size(self) -> int:
        """Number of nodes currently stored (chain + literal, sink excluded)."""
        return self._node_count

    def dead_count(self) -> int:
        """Number of stored nodes with zero references — O(1)."""
        return len(self._dead_set)

    def _scan_dead(self) -> int:
        """O(n) recount of dead nodes (invariant checking / debugging)."""
        return sum(1 for n in self._unique.values() if n.ref == 0)

    def _ref_node(self, node: BBDDNode) -> None:
        """Acquire one reference.

        A floating node (fresh, still holding its birth counts on the
        children) resolves in O(1); a node that once died released its
        child counts, so reviving it re-acquires the subgraph (cascade).
        """
        if node.ref < 0:
            raise BBDDError(f"use after sweep: {node!r}")
        if node.ref == 0 and node is not self.sink:
            discard = self._dead_set.discard
            discard(node)
            node.ref = 1
            if node.floating:
                node.floating = False
                return
            sink = self.sink
            stack = [node.neq, node.eq]
            while stack:
                n = stack.pop()
                if n.ref == 0 and n is not sink:
                    discard(n)
                    n.ref = 1
                    if n.floating:
                        n.floating = False
                    else:
                        stack.append(n.neq)
                        stack.append(n.eq)
                else:
                    n.ref += 1
        else:
            node.ref += 1

    def _deref_node(self, node: BBDDNode) -> None:
        """Release one reference; a dying node releases its children."""
        node.ref -= 1
        if node.ref == 0 and node is not self.sink:
            add = self._dead_set.add
            sink = self.sink
            add(node)
            stack = [node.neq, node.eq]
            while stack:
                n = stack.pop()
                n.ref -= 1
                if n.ref == 0 and n is not sink:
                    add(n)
                    stack.append(n.neq)
                    stack.append(n.eq)

    def inc_ref(self, edge: Edge) -> None:
        self._ref_node(edge[0])

    def dec_ref(self, edge: Edge) -> None:
        self._deref_node(edge[0])
        self._maybe_gc()

    def acquire_ref(self, node: BBDDNode) -> None:
        """Function-handle hook: acquire one reference on ``node``."""
        self._ref_node(node)

    def release_ref(self, node: BBDDNode) -> None:
        """Function-handle hook: drop one reference (mark-only).

        Deliberately does **not** run the collector: handle releases can
        fire at arbitrary points via Python's cyclic collector (e.g.
        while a fresh, still-unreferenced result edge is being wrapped),
        so ``__del__`` only accounts the garbage; the armed collection
        runs at the next operation boundary, where results are protected.
        """
        self._deref_node(node)

    def defer_gc(self) -> _GCDeferral:
        """Suspend automatic GC for a block holding bare edges.

        Re-entrant.  An armed collection does not run on exit (the block
        may return bare edges); it happens at the next operation
        boundary instead.  Use around any code that keeps unreferenced
        ``(node, attr)`` tuples live across several manager operations.
        """
        return _GCDeferral(self)

    def _gc_armed(self) -> bool:
        return (
            self._node_count >= self.gc_min_nodes
            and len(self._dead_set) >= self._node_count * self.gc_threshold
        )

    def _maybe_gc(self) -> int:
        """Run GC if automatic collection is armed and we are at a safe point."""
        if not self.auto_gc or self._in_op or not self._gc_armed():
            return 0
        self.auto_gc_runs += 1
        return self.gc()

    def _maybe_gc_protect(self, edge: Edge) -> None:
        """Auto-GC check that keeps ``edge`` (a fresh result) alive."""
        if not self.auto_gc or self._in_op or not self._gc_armed():
            return
        node = edge[0]
        self._ref_node(node)
        try:
            self.auto_gc_runs += 1
            self.gc()
        finally:
            # Drop the protection without a death cascade: the node still
            # holds its child counts, i.e. it goes back to floating.
            node.ref -= 1
            if node.ref == 0 and node is not self.sink:
                node.floating = True
                self._dead_set.add(node)

    def gc(self) -> int:
        """Sweep dead nodes and clear the computed table.

        Returns the number of reclaimed nodes.  Dead nodes hold no child
        references and are tracked in an explicit set (cascading counts),
        so the sweep touches only the garbage — no unique-table scan.
        The computed table must be cleared because its entries hold bare
        pointers that are only valid while the pointed nodes stay
        canonical residents of the unique table.
        """
        self._cache.clear()
        dead = self._dead_set
        raw = self._uniq_raw
        delete = raw.__delitem__ if raw is not None else self._unique.delete
        sink = self.sink
        free = self._free_nodes
        pool = free.append
        reclaimed = 0
        while dead:
            node = dead.pop()
            node.ref = -1  # tombstone: catches use-after-sweep
            delete(node.tkey)
            reclaimed += 1
            if node.sv == SV_ONE:
                del self._literals[node.pv]
                if node.floating:
                    sink.ref -= 2
                continue
            self._by_pv[node.pv].discard(node)
            self._by_sv[node.sv].discard(node)
            if node.floating:
                # Unacquired garbage still holds its birth counts on the
                # children — release them; newly dead children join the
                # set and are reclaimed by this same loop.
                self._deref_node(node.neq)
                self._deref_node(node.eq)
            pool(node)
        if len(free) > _FREE_POOL_CAP:
            for node in free:
                node.neq = node.eq = None
                node.supp = 0
                node.tkey = None
            del free[_FREE_POOL_CAP:]
        self._node_count -= reclaimed
        self.gc_count += 1
        self.gc_reclaimed += reclaimed
        return reclaimed

    def _sweep(self, node: BBDDNode) -> int:
        """Reclaim the dead subgraph rooted at ``node`` (ref == 0).

        Child references were already dropped when the nodes died, so
        sweeping only removes the dead nodes from the tables (cascading
        into dead children to reclaim whole subgraphs eagerly, which the
        reordering surgery relies on).
        """
        reclaimed = 0
        stack = [node]
        while stack:
            n = stack.pop()
            if n.ref != 0 or n.is_sink:
                continue
            n.ref = -1  # tombstone: prevents double sweep
            self._unique.delete(n.tkey)
            self._node_count -= 1
            self._dead_set.discard(n)
            if n.is_literal:
                del self._literals[n.pv]
                if n.floating:
                    self.sink.ref -= 2
            else:
                self._by_pv[n.pv].discard(n)
                self._by_sv[n.sv].discard(n)
                if n.floating:
                    # Unacquired garbage: release the birth counts first.
                    self._deref_node(n.neq)
                    self._deref_node(n.eq)
                stack.append(n.neq)
                stack.append(n.eq)
            reclaimed += 1
        return reclaimed

    def clear_cache(self) -> None:
        self._cache.clear()

    def table_stats(self) -> dict:
        return {
            "unique": self._unique.stats(),
            "computed": self._cache.stats(),
            "nodes": self._node_count,
            "peak_nodes": self.peak_nodes,
            "dead": len(self._dead_set),
            "apply_calls": self.apply_calls,
            "gc_runs": self.gc_count,
            "gc_reclaimed": self.gc_reclaimed,
            "auto_gc_runs": self.auto_gc_runs,
            "auto_gc": self.auto_gc,
            "gc_threshold": self.gc_threshold,
            "gc_min_nodes": self.gc_min_nodes,
        }

    def collect_metrics(self, registry) -> None:
        """Sample this manager's counters into an obs registry.

        Pull-based observability hook (see :mod:`repro.obs`): the hot
        paths keep their native counters and this maps them onto the
        catalogued metric families, labeled ``backend="bbdd"``.
        """
        from repro.obs.catalog import family

        unique = self._unique.stats()
        computed = self._cache.stats()
        label = {"backend": "bbdd"}
        family(registry, "repro_manager_unique_lookups_total").labels(
            **label
        ).inc(unique.get("lookups", 0))
        family(registry, "repro_manager_unique_hits_total").labels(
            **label
        ).inc(unique.get("hits", 0))
        family(registry, "repro_manager_computed_lookups_total").labels(
            **label
        ).inc(computed.get("lookups", 0))
        family(registry, "repro_manager_computed_hits_total").labels(
            **label
        ).inc(computed.get("hits", 0))
        family(registry, "repro_manager_apply_total").labels(**label).inc(
            self.apply_calls
        )
        family(registry, "repro_manager_gc_runs_total").labels(**label).inc(
            self.gc_count
        )
        family(registry, "repro_manager_gc_reclaimed_total").labels(
            **label
        ).inc(self.gc_reclaimed)
        family(registry, "repro_manager_nodes").labels(**label).inc(
            self._node_count
        )
        family(registry, "repro_manager_peak_nodes").labels(**label).inc(
            self.peak_nodes
        )
        family(registry, "repro_manager_dead_nodes").labels(**label).inc(
            len(self._dead_set)
        )

    # ------------------------------------------------------------------
    # persistence (repro.io convenience surface)
    # ------------------------------------------------------------------

    def dump(self, functions, target) -> None:
        """Write a forest to ``target`` in the levelized binary format.

        ``functions`` is a ``{name: Function}`` mapping (or a sequence);
        ``target`` a path or binary file object.  See :mod:`repro.io`.
        """
        from repro.io import binary as _binary

        _binary.dump(self, functions, target)

    def load(self, source, rename=None) -> dict:
        """Load a dump *into this manager*; returns ``{name: Function}``.

        The dump's variables (after the optional ``rename`` mapping)
        must all exist here, but this manager may hold a superset of
        them and/or use a different order — nodes are re-reduced on the
        fly.  To load into a fresh manager use :func:`repro.io.load`.
        """
        from repro.io import binary as _binary

        _manager, functions = _binary.load(source, manager=self, rename=rename)
        return functions

    # ------------------------------------------------------------------
    # introspection / debugging
    # ------------------------------------------------------------------

    def nodes_with_pv(self, var: int) -> set:
        """Chain nodes whose primary variable is ``var`` (live or dead)."""
        return self._by_pv[var]

    def nodes_with_sv(self, var: int) -> set:
        """Chain nodes whose secondary variable is ``var``."""
        return self._by_sv[var]

    def iter_nodes(self) -> Iterable[BBDDNode]:
        return self._unique.values()

    def check_invariants(self) -> None:
        """Validate the canonical-form invariants; raise on violation.

        Used by the test-suite after every structural operation.  Checks:
        unique-table key consistency, R2 (no identical children), R4 (no
        chain node denoting a literal), ``=``-edge regularity (structural
        by construction, re-checked via key shape), CVO couple consistency,
        strictly increasing child positions, literal node shape,
        non-negative reference counts, cascading-count consistency (a live
        node's children are live) and the exactness of the incremental
        dead count.
        """
        from repro.core.exceptions import InvariantViolation

        order = self._order
        seen_keys = set()
        for node in list(self._unique.values()):
            key = node.key()
            if key in seen_keys:
                raise InvariantViolation(f"duplicate key {key}")
            seen_keys.add(key)
            if self._unique.lookup(key) is not node:
                raise InvariantViolation(f"key {key} does not map back to its node")
            if node.ref < 0:
                raise InvariantViolation(f"swept node still in table: {node!r}")
            if node.is_literal:
                if not (
                    node.neq is self.sink
                    and node.neq_attr
                    and node.eq is self.sink
                ):
                    raise InvariantViolation(f"malformed literal node {node!r}")
                continue
            pos = order.position(node.pv)
            sv_pos = order.position(node.sv)
            if sv_pos <= pos:
                raise InvariantViolation(
                    f"couple of {node!r} inconsistent with order {order!r}"
                )
            if node.neq is node.eq and not node.neq_attr:
                raise InvariantViolation(f"R2 violation (identical children): {node!r}")
            for child in (node.neq, node.eq):
                if not child.is_sink and self._order.position(child.pv) < sv_pos:
                    raise InvariantViolation(
                        f"child order violation: {node!r} -> {child!r}"
                    )
                if (
                    (node.ref > 0 or node.floating)
                    and not child.is_sink
                    and child.ref <= 0
                ):
                    raise InvariantViolation(
                        f"held node with dead child: {node!r} -> {child!r}"
                    )
            if (
                node.neq.pv == node.sv
                and node.eq.pv == node.sv
                and not node.neq.is_sink
                and not node.eq.is_sink
            ):
                d_edge = (node.neq, node.neq_attr)
                e_edge = (node.eq, False)
                if self._shannon_view(d_edge, node.sv, 0) == self._shannon_view(
                    e_edge, node.sv, 1
                ) and self._shannon_view(e_edge, node.sv, 0) == self._shannon_view(
                    d_edge, node.sv, 1
                ):
                    raise InvariantViolation(
                        f"R3/R4 violation (SV-independent chain node): {node!r}"
                    )
            expected_supp = (
                (1 << node.pv) | (1 << node.sv) | node.neq.supp | node.eq.supp
            )
            if node.supp != expected_supp:
                raise InvariantViolation(f"support mask mismatch: {node!r}")
        scanned_dead = self._scan_dead()
        if scanned_dead != len(self._dead_set):
            raise InvariantViolation(
                f"incremental dead count {len(self._dead_set)} != scan "
                f"{scanned_dead}"
            )
        for node in self._dead_set:
            if node.ref != 0:
                raise InvariantViolation(f"non-dead node in dead set: {node!r}")
        for node in self._unique.values():
            if node.floating and node.ref != 0:
                raise InvariantViolation(f"floating node with refs: {node!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BBDDManager vars={len(self._names)} nodes={self._node_count} "
            f"order={self.current_order()}>"
        )
