"""The BBDD manager: node construction, Boolean operations, memory management.

This module implements the manipulation core of Sec. IV of the paper:

* ``_make`` — get-or-create a node in strong canonical form, enforcing
  reduction rules R1 (unique table), R2 (identical children), R4 (literal
  degeneration) and the complement-attribute normalization (``=``-edges are
  always regular);
* ``apply_edges`` — Algorithm 1: the recursive formulation of any
  two-operand Boolean operation over biconditional expansions, with
  terminal-case short circuits, a computed table, operator update for
  complement attributes (``updateop``) and on-the-fly chain transformation
  of single-variable operands;
* reference-counting garbage collection with cascade sweep.

All hot-path functions work on bare ``(node, attr)`` edge tuples; the
user-facing wrapper lives in :mod:`repro.core.function`.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.computed_table import make_computed_table
from repro.core.exceptions import BBDDError, OrderError, VariableError
from repro.core.node import SV_ONE, BBDDNode, Edge, make_sink
from repro.core.operations import (
    OP_AND,
    OP_OR,
    OP_XOR,
    UNARY_FALSE,
    UNARY_ID,
    UNARY_NOT,
    UNARY_TRUE,
    diagonal,
    flip_a,
    flip_b,
    is_commutative,
    op_from_name,
    restrict_a,
    restrict_b,
)
from repro.core.order import ChainVariableOrder
from repro.core.unique_table import make_unique_table

_RECURSION_HEADROOM = 100_000


class BBDDManager:
    """Shared manager for a forest of BBDDs over a common variable set.

    Parameters
    ----------
    variables:
        Either the number of variables or a sequence of distinct names.
    unique_backend / computed_backend:
        ``"dict"`` (default, native hashing) or ``"cantor"`` (the paper's
        Cantor-pairing tables); the computed table additionally accepts
        ``"disabled"`` for ablation runs.
    """

    def __init__(
        self,
        variables: Union[int, Sequence[str]],
        unique_backend: str = "dict",
        computed_backend: str = "dict",
    ) -> None:
        if isinstance(variables, int):
            names = [f"x{i}" for i in range(variables)]
        else:
            names = list(variables)
        if len(set(names)) != len(names):
            raise VariableError("variable names must be distinct")
        self._names: List[str] = names
        self._index: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self._order = ChainVariableOrder(range(len(names)))

        self._uid = 0
        self.sink = make_sink(self._next_uid())
        self._unique = make_unique_table(unique_backend)
        self._cache = make_computed_table(computed_backend)
        self._literals: Dict[int, BBDDNode] = {}
        self._by_pv: Dict[int, set] = {i: set() for i in range(len(names))}
        self._by_sv: Dict[int, set] = {i: set() for i in range(len(names))}
        self._node_count = 0
        self.gc_count = 0

        if sys.getrecursionlimit() < _RECURSION_HEADROOM:
            sys.setrecursionlimit(_RECURSION_HEADROOM)

    # ------------------------------------------------------------------
    # identifiers and variables
    # ------------------------------------------------------------------

    def _next_uid(self) -> int:
        self._uid += 1
        return self._uid

    @property
    def num_vars(self) -> int:
        return len(self._names)

    @property
    def var_names(self) -> tuple:
        return tuple(self._names)

    def var_index(self, var: Union[int, str]) -> int:
        """Normalize a variable name or index to its index."""
        if isinstance(var, str):
            try:
                return self._index[var]
            except KeyError:
                raise VariableError(f"unknown variable {var!r}") from None
        if not 0 <= var < len(self._names):
            raise VariableError(f"variable index {var} out of range")
        return var

    def var_name(self, index: int) -> str:
        return self._names[index]

    def new_var(self, name: Optional[str] = None) -> int:
        """Append a fresh variable at the bottom of the order."""
        index = len(self._names)
        if name is None:
            name = f"x{index}"
        if name in self._index:
            raise VariableError(f"variable {name!r} already exists")
        self._names.append(name)
        self._index[name] = index
        self._by_pv[index] = set()
        self._by_sv[index] = set()
        self._order.append(index)
        return index

    # ------------------------------------------------------------------
    # order access
    # ------------------------------------------------------------------

    @property
    def order(self) -> ChainVariableOrder:
        return self._order

    def current_order(self) -> tuple:
        """Current variable order as a tuple of names (root to bottom)."""
        return tuple(self._names[v] for v in self._order.order)

    def cvo_couples(self) -> list:
        """The CVO couples as name pairs, SV of the bottom couple is '1'."""
        out = []
        for pv, sv in self._order.couples():
            out.append((self._names[pv], "1" if sv == SV_ONE else self._names[sv]))
        return out

    def _root_position(self, node: BBDDNode) -> int:
        """Position of a node's root couple; the sink sorts below everything."""
        if node.is_sink:
            return len(self._names)
        return self._order.position(node.pv)

    # ------------------------------------------------------------------
    # terminal edges and literals
    # ------------------------------------------------------------------

    @property
    def true_edge(self) -> Edge:
        return (self.sink, False)

    @property
    def false_edge(self) -> Edge:
        return (self.sink, True)

    def literal_node(self, var: int) -> BBDDNode:
        """The R4 literal node for ``var`` (created on demand)."""
        node = self._literals.get(var)
        if node is None:
            node = BBDDNode(var, SV_ONE, self.sink, True, self.sink, self._next_uid())
            self._literals[var] = node
            self._unique.insert(node.key(), node)
            self.sink.ref += 2
            self._node_count += 1
        return node

    def literal_edge(self, var: Union[int, str], positive: bool = True) -> Edge:
        index = self.var_index(var)
        return (self.literal_node(index), not positive)

    # ------------------------------------------------------------------
    # canonical node construction (rules R1, R2, R4 + normalization)
    # ------------------------------------------------------------------

    def _shannon_view(self, edge: Edge, w: int, value: int):
        """Constant restriction ``edge|w=value`` as a comparable view.

        Only called for edges rooted at ``w``.  Returns either
        ``("const", bit)`` for a literal root or ``(t, high, low)`` for a
        chain root ``(w, t)`` — ``high``/``low`` are the edges selected at
        ``t = 1`` / ``t = 0``.  Two equal views denote equal functions
        (children are canonical), which is what the reduction test needs.
        """
        node, attr = edge
        if node.sv == SV_ONE:
            return ("const", bool(value) ^ attr)
        neq_edge = (node.neq, node.neq_attr ^ attr)
        eq_edge = (node.eq, attr)
        if value == 0:
            return (node.sv, neq_edge, eq_edge)
        return (node.sv, eq_edge, neq_edge)

    def _make(self, pv: int, sv: int, d: Edge, e: Edge) -> Edge:
        """Get-or-create the node ``(pv, sv, !=-child d, =-child e)``.

        Applies the reduction rules of Sec. III-C under the support-chained
        CVO (rule R3: a function's couples chain over its *support*, so no
        level is empty):

        * R2 — identical children collapse to the child;
        * SV-elimination — if the candidate function does not actually
          depend on ``sv`` (both children rooted at ``sv`` and
          ``d|sv=0 == e|sv=1`` and ``e|sv=0 == d|sv=1``), the couple
          re-chains past ``sv``; rule R4 (single-variable degeneration to
          a literal node) is the terminal case of this cascade;
        * ``=``-edge regularity normalization, then unique-table
          resolution (R1 / strong canonical form).
        """
        dn, da = d
        en, ea = e
        if dn is en and da == ea:
            return e  # R2
        if sv == SV_ONE:
            # Boundary: no further support variable; children are
            # constants and the node degenerates to the literal of pv.
            if not (dn.is_sink and en.is_sink):
                raise BBDDError("boundary-couple children must be constants")
            return (self.literal_node(pv), ea)
        if dn.pv == sv and en.pv == sv and not dn.is_sink and not en.is_sink:
            # Both children rooted at sv: the candidate may not depend on
            # sv at all, in which case the chain skips it (R3/R4).
            if self._shannon_view(d, sv, 0) == self._shannon_view(e, sv, 1) and (
                self._shannon_view(e, sv, 0) == self._shannon_view(d, sv, 1)
            ):
                if dn.sv == SV_ONE:
                    # d = lit(sv)^da, e = lit(sv)^~da: rule R4 proper.
                    return (self.literal_node(pv), ea)
                # Re-chain: f = (pv = t) ? A : B with A/B = d's children.
                a_edge = (dn.neq, dn.neq_attr ^ da)
                b_edge = (dn.eq, da)
                return self._make(pv, dn.sv, b_edge, a_edge)
        attr = False
        if ea:
            # Normalize: =-edges are stored regular; complement both
            # children and return a complemented external edge.
            attr = True
            da = not da
        key = (pv, sv, dn.uid, da, en.uid)
        node = self._unique.lookup(key)
        if node is None:
            node = BBDDNode(pv, sv, dn, da, en, self._next_uid())
            node.supp = (1 << pv) | (1 << sv) | dn.supp | en.supp
            self._unique.insert(key, node)
            dn.ref += 1
            en.ref += 1
            self._by_pv[pv].add(node)
            self._by_sv[sv].add(node)
            self._node_count += 1
        return (node, attr)

    # ------------------------------------------------------------------
    # biconditional cofactors (includes Algorithm 1's chain transform)
    # ------------------------------------------------------------------

    def _cofactors(self, node: BBDDNode, v: int, w: int) -> Tuple[Edge, Edge]:
        """``(f_neq, f_eq)`` of ``node`` w.r.t. the couple ``(v, w)``.

        Four cases (Algorithm 1's chain transform, generalized to the
        support-chained CVO):

        * rooted deeper than ``v`` — independent of ``v``, unchanged;
        * a chain node ``(v, w)`` — its stored children;
        * a chain node ``(v, w2)`` with ``w2`` after ``w`` (the operand's
          own next support variable differs) — the substitution
          ``v <- w'``/``v <- w`` re-roots the function at couple
          ``(w, w2)`` with the children swapped / kept:
          ``f(v <- w') = (w = w2 ? d : e)``, ``f(v <- w) = (w != w2 ? d : e)``;
        * the literal ``lit(v)`` — cofactors ``~lit(w)`` / ``lit(w)``.
        """
        if node.pv != v:
            return (node, False), (node, False)
        if node.sv == SV_ONE:
            lw = self.literal_node(w)
            return (lw, True), (lw, False)
        if node.sv == w:
            return (node.neq, node.neq_attr), (node.eq, False)
        d_edge = (node.neq, node.neq_attr)
        e_edge = (node.eq, False)
        return (
            self._make(w, node.sv, e_edge, d_edge),
            self._make(w, node.sv, d_edge, e_edge),
        )

    # ------------------------------------------------------------------
    # Algorithm 1: f (op) g
    # ------------------------------------------------------------------

    def apply_edges(self, f: Edge, g: Edge, op: int) -> Edge:
        """Compute ``f (op) g`` for edges; ``op`` is a 4-bit operator table.

        Complement attributes on the operands are pushed into the operator
        (the paper's ``updateop``), so the recursive core and the computed
        table always see attribute-free operands.
        """
        fn, fa = f
        if fa:
            op = flip_a(op)
        gn, ga = g
        if ga:
            op = flip_b(op)
        return self._apply(fn, gn, op)

    def apply_named(self, f: Edge, g: Edge, name: str) -> Edge:
        return self.apply_edges(f, g, op_from_name(name))

    def _unary(self, outcome: str, node: BBDDNode) -> Edge:
        if outcome == UNARY_FALSE:
            return (self.sink, True)
        if outcome == UNARY_TRUE:
            return (self.sink, False)
        if outcome == UNARY_ID:
            return (node, False)
        return (node, True)

    def _apply(self, fn: BBDDNode, gn: BBDDNode, op: int) -> Edge:
        # -- terminal cases (Alg. 1 alpha) --------------------------------
        if fn.is_sink:
            return self._unary(restrict_a(op, 1), gn)
        if gn.is_sink:
            return self._unary(restrict_b(op, 1), fn)
        if fn is gn:
            return self._unary(diagonal(op), fn)
        # Degenerate operators depend on at most one operand.
        if ((op >> 1) & 0b101) == (op & 0b101):  # independent of b
            return self._unary(restrict_b(op, 0), fn)
        if ((op >> 2) & 0b11) == (op & 0b11):  # independent of a
            return self._unary(restrict_a(op, 0), gn)

        # -- computed table (Alg. 1 beta) ----------------------------------
        if is_commutative(op) and gn.uid < fn.uid:
            fn, gn = gn, fn
        key = (fn.uid, gn.uid, op)
        cached = self._cache.lookup(key)
        if cached is not None:
            return cached

        # -- recursive step (Alg. 1 gamma) ----------------------------------
        # Expansion couple: PV = earliest root variable; SV = earliest
        # following variable visible in either operand's structure (the
        # operand's own SV if rooted at v, its PV if rooted deeper).
        position = self._order.position
        pf = position(fn.pv)
        pg = position(gn.pv)
        v = fn.pv if pf <= pg else gn.pv
        w = None
        w_pos = len(self._names) + 1
        for node in (fn, gn):
            if node.pv == v:
                cand = node.sv
                if cand == SV_ONE:
                    continue
            else:
                cand = node.pv
            cand_pos = position(cand)
            if cand_pos < w_pos:
                w, w_pos = cand, cand_pos
        if w is None:
            raise BBDDError("no expansion SV: both operands literal at v")
        f_neq, f_eq = self._cofactors(fn, v, w)
        g_neq, g_eq = self._cofactors(gn, v, w)
        e = self.apply_edges(f_eq, g_eq, op)
        d = self.apply_edges(f_neq, g_neq, op)
        result = self._make(v, w, d, e)
        self._cache.insert(key, result)
        return result

    # Convenience edge-level operations used across the package.

    def and_edges(self, f: Edge, g: Edge) -> Edge:
        return self.apply_edges(f, g, OP_AND)

    def or_edges(self, f: Edge, g: Edge) -> Edge:
        return self.apply_edges(f, g, OP_OR)

    def xor_edges(self, f: Edge, g: Edge) -> Edge:
        return self.apply_edges(f, g, OP_XOR)

    @staticmethod
    def not_edge(f: Edge) -> Edge:
        return (f[0], not f[1])

    # ------------------------------------------------------------------
    # memory management (Sec. IV-A3)
    # ------------------------------------------------------------------

    def size(self) -> int:
        """Number of nodes currently stored (chain + literal, sink excluded)."""
        return self._node_count

    def dead_count(self) -> int:
        return sum(1 for n in self._unique.values() if n.ref == 0)

    def inc_ref(self, edge: Edge) -> None:
        edge[0].ref += 1

    def dec_ref(self, edge: Edge) -> None:
        edge[0].ref -= 1

    def gc(self) -> int:
        """Sweep unreferenced nodes (cascade) and clear the computed table.

        Returns the number of reclaimed nodes.  The computed table must be
        cleared because its entries hold bare pointers that are only valid
        while the pointed nodes stay canonical residents of the unique
        table.
        """
        self._cache.clear()
        dead = [n for n in list(self._unique.values()) if n.ref == 0]
        reclaimed = 0
        for node in dead:
            if node.ref == 0:
                reclaimed += self._sweep(node)
        self.gc_count += 1
        return reclaimed

    def _sweep(self, node: BBDDNode) -> int:
        """Reclaim ``node`` (ref == 0) and cascade into its children."""
        reclaimed = 0
        stack = [node]
        while stack:
            n = stack.pop()
            if n.ref != 0 or n.is_sink:
                continue
            n.ref = -1  # tombstone: prevents double sweep
            self._unique.delete(n.key())
            self._node_count -= 1
            if n.is_literal:
                del self._literals[n.pv]
                self.sink.ref -= 2
            else:
                self._by_pv[n.pv].discard(n)
                self._by_sv[n.sv].discard(n)
                for child in (n.neq, n.eq):
                    child.ref -= 1
                    if child.ref == 0:
                        stack.append(child)
            reclaimed += 1
        return reclaimed

    def clear_cache(self) -> None:
        self._cache.clear()

    def table_stats(self) -> dict:
        return {
            "unique": self._unique.stats(),
            "computed": self._cache.stats(),
            "nodes": self._node_count,
            "gc_runs": self.gc_count,
        }

    # ------------------------------------------------------------------
    # persistence (repro.io convenience surface)
    # ------------------------------------------------------------------

    def dump(self, functions, target) -> None:
        """Write a forest to ``target`` in the levelized binary format.

        ``functions`` is a ``{name: Function}`` mapping (or a sequence);
        ``target`` a path or binary file object.  See :mod:`repro.io`.
        """
        from repro.io import binary as _binary

        _binary.dump(self, functions, target)

    def load(self, source, rename=None) -> dict:
        """Load a dump *into this manager*; returns ``{name: Function}``.

        The dump's variables (after the optional ``rename`` mapping)
        must all exist here, but this manager may hold a superset of
        them and/or use a different order — nodes are re-reduced on the
        fly.  To load into a fresh manager use :func:`repro.io.load`.
        """
        from repro.io import binary as _binary

        _manager, functions = _binary.load(source, manager=self, rename=rename)
        return functions

    # ------------------------------------------------------------------
    # introspection / debugging
    # ------------------------------------------------------------------

    def nodes_with_pv(self, var: int) -> set:
        """Chain nodes whose primary variable is ``var`` (live or dead)."""
        return self._by_pv[var]

    def nodes_with_sv(self, var: int) -> set:
        """Chain nodes whose secondary variable is ``var``."""
        return self._by_sv[var]

    def iter_nodes(self) -> Iterable[BBDDNode]:
        return self._unique.values()

    def check_invariants(self) -> None:
        """Validate the canonical-form invariants; raise on violation.

        Used by the test-suite after every structural operation.  Checks:
        unique-table key consistency, R2 (no identical children), R4 (no
        chain node denoting a literal), ``=``-edge regularity (structural
        by construction, re-checked via key shape), CVO couple consistency,
        strictly increasing child positions, literal node shape, and
        non-negative reference counts.
        """
        from repro.core.exceptions import InvariantViolation

        order = self._order
        seen_keys = set()
        for node in list(self._unique.values()):
            key = node.key()
            if key in seen_keys:
                raise InvariantViolation(f"duplicate key {key}")
            seen_keys.add(key)
            if self._unique.lookup(key) is not node:
                raise InvariantViolation(f"key {key} does not map back to its node")
            if node.ref < 0:
                raise InvariantViolation(f"swept node still in table: {node!r}")
            if node.is_literal:
                if not (
                    node.neq is self.sink
                    and node.neq_attr
                    and node.eq is self.sink
                ):
                    raise InvariantViolation(f"malformed literal node {node!r}")
                continue
            pos = order.position(node.pv)
            sv_pos = order.position(node.sv)
            if sv_pos <= pos:
                raise InvariantViolation(
                    f"couple of {node!r} inconsistent with order {order!r}"
                )
            if node.neq is node.eq and not node.neq_attr:
                raise InvariantViolation(f"R2 violation (identical children): {node!r}")
            for child in (node.neq, node.eq):
                if not child.is_sink and self._order.position(child.pv) < sv_pos:
                    raise InvariantViolation(
                        f"child order violation: {node!r} -> {child!r}"
                    )
            if (
                node.neq.pv == node.sv
                and node.eq.pv == node.sv
                and not node.neq.is_sink
                and not node.eq.is_sink
            ):
                d_edge = (node.neq, node.neq_attr)
                e_edge = (node.eq, False)
                if self._shannon_view(d_edge, node.sv, 0) == self._shannon_view(
                    e_edge, node.sv, 1
                ) and self._shannon_view(e_edge, node.sv, 0) == self._shannon_view(
                    d_edge, node.sv, 1
                ):
                    raise InvariantViolation(
                        f"R3/R4 violation (SV-independent chain node): {node!r}"
                    )
            expected_supp = (
                (1 << node.pv) | (1 << node.sv) | node.neq.supp | node.eq.supp
            )
            if node.supp != expected_supp:
                raise InvariantViolation(f"support mask mismatch: {node!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BBDDManager vars={len(self._names)} nodes={self._node_count} "
            f"order={self.current_order()}>"
        )
