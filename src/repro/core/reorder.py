"""Chain variable re-ordering (Sec. IV-A4): CVO swap theory and sifting.

A variable swap ``i <-> i+1`` exchanges two adjacent variables ``x, y`` in
the order.  Under the support-chained CVO (rule R3), a function's couples
pair *consecutive support variables*, so the swap concerns exactly the
functions that depend on **both** ``x`` and ``y`` — their chains contain
``(a, x) (x, y) (y, z)`` fragments that become ``(a, y) (y, x) (x, z)``.
Concretely the affected nodes are:

* ``B`` — chain nodes with couple ``(x, y)``: overwritten in place at
  couple ``(y, x)`` with children rebuilt below;
* ``A`` — chain nodes with SV ``x`` whose support contains ``y``:
  overwritten in place at couple ``(pv, y)``.

Every other node (including all ``(y, .)``-rooted nodes and any node whose
function involves only one of the two variables) is untouched — the
locality property the paper claims for its pointer-stable swap.  In the
flat store the overwrite is literally index-stable: an affected node
keeps its array slot (so every edge into it — and every interned view of
it — stays valid) and only its field slots are rewritten.  The children
remapping follows Fig. 2 / Eq. 5: with comparison outcomes
``a = [w != x]``, ``b = [x != y]``, ``c = [y != z]`` (True = "!="),

    new(a', b', c') = old(a' ^ b', b', b' ^ c')

applied per root-to-leaf path (each path carries its own deeper partner
``z``).  Soundness of the in-place overwrite rests on the complement
normalization: the canonical attribute of a function equals
``not f(1, 1, .., 1)``, which is order-independent, so a
function-preserving rewrite never flips a node's polarity.

The module also provides Rudell-style sifting extended to BBDDs and a
rebuild-based reordering used as a test oracle.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.core.exceptions import BBDDError, OrderError
from repro.core.node import SINK, SV_ONE, Edge


class SwapStats:
    """Counters accumulated across swap operations (for benches/reports)."""

    __slots__ = ("swaps", "nodes_rewritten", "nodes_created", "nodes_swept")

    def __init__(self) -> None:
        self.swaps = 0
        self.nodes_rewritten = 0
        self.nodes_created = 0
        self.nodes_swept = 0

    def as_dict(self) -> dict:
        return {
            "swaps": self.swaps,
            "nodes_rewritten": self.nodes_rewritten,
            "nodes_created": self.nodes_created,
            "nodes_swept": self.nodes_swept,
        }


def _split(manager, edge: Edge, var: int):
    """Split ``edge`` on its root couple when rooted at ``var``.

    Returns ``(partner, neq_edge, eq_edge)``; ``partner`` is ``None`` when
    the edge does not branch on ``var`` (both cofactors equal the edge),
    and ``SV_ONE`` for the literal of ``var``.
    """
    node = -edge if edge < 0 else edge
    if node == SINK or manager._pv[node] != var:
        return None, edge, edge
    if manager._sv[node] == SV_ONE:
        s = 1 if edge > 0 else -1  # literal children are the sink
        return SV_ONE, -s, s
    d = manager._neq[node]
    e = manager._eq[node]
    if edge < 0:
        return manager._sv[node], -d, -e
    return manager._sv[node], d, e


def swap_adjacent(manager, k: int, stats: Optional[SwapStats] = None) -> None:
    """Swap the variables at order positions ``k`` and ``k + 1`` in place.

    The whole surgery runs with automatic GC deferred: plans hold bare
    edges into the old structure, which a collection would invalidate.
    """
    with manager.defer_gc():
        _swap_adjacent(manager, k, stats)


def _swap_adjacent(manager, k: int, stats: Optional[SwapStats]) -> None:
    order = manager.order
    n = manager.num_vars
    if not 0 <= k < n - 1:
        raise OrderError(f"cannot swap positions {k},{k + 1} of {n}")

    if getattr(manager, "chain_reduce", False):
        # Spans are order-relative (their middle variables are implied
        # by current positions); swapping under them corrupts functions.
        # BBDDManager.sift() expands chains and drops the flag first.
        raise OrderError(
            "cannot swap adjacent variables while chain reduction is "
            "active; call expand_chains() (and clear chain_reduce) first, "
            "or use sift(), which wraps the swap plan in chain expansion"
        )

    x = order.var_at(k)
    y = order.var_at(k + 1)
    y_bit = 1 << y

    pvl = manager._pv
    svl = manager._sv
    botl = manager._bot
    neql = manager._neq
    eql = manager._eq
    refl = manager._ref
    suppl = manager._supp
    raw = manager._uniq_raw

    # The computed table holds bare indices into the forest; swept nodes
    # would otherwise escape through it.
    manager.clear_cache()

    # Reclaim garbage at the concerned levels up front so it is neither
    # planned nor rewritten.  (Batched: a single cascade walk per level
    # set; roots reclaimed by an earlier cascade are skipped inside.)
    sweep_many = manager._sweep_many
    # Once-live dead nodes must go first, and *globally*: they sit in
    # the unique table under keys naming child slots whose counts they
    # already dropped, so the level sweeps below could free and recycle
    # such a slot — after which the stale key would alias a rebuilt
    # node's legitimate key (the flat store's ABA hazard).  Floats are
    # immune (their birth counts pin their children) and stay for
    # revival; this pass is a pure table/slot removal with no cascade.
    fl = manager._float
    stale = [nd for nd in manager._dead_set if not fl[nd]]
    if stale:
        swept = sweep_many(stale)
        if stats:
            stats.nodes_swept += swept
    dead_roots = [nd for nd in manager.nodes_with_pv(x) if refl[nd] == 0]
    if dead_roots:
        swept = sweep_many(dead_roots)
        if stats:
            stats.nodes_swept += swept
    dead_roots = [nd for nd in manager.nodes_with_sv(x) if refl[nd] == 0]
    if dead_roots:
        swept = sweep_many(dead_roots)
        if stats:
            stats.nodes_swept += swept

    b_nodes = [nd for nd in manager.nodes_with_pv(x) if svl[nd] == y]
    a_nodes = [nd for nd in manager.nodes_with_sv(x) if suppl[nd] & y_bit]

    if not b_nodes and not a_nodes:
        order.swap_positions(k)
        if stats:
            stats.swaps += 1
        return

    # Per-swap memo tables.  The planned/rebuilt subtrees repeat heavily
    # across the nodes of one swap (~70% of `_make` arguments recur), so
    # each derived quantity is computed once per distinct input.  All
    # caches die with the swap: plan caches are only valid against the
    # pristine phase-0 structure, build caches only while sweeps are
    # deferred (phase 4 is the first reclamation point).
    split_cache: dict = {}
    cof_cache: dict = {}

    def split_y(edge: Edge):
        # `_split(manager, edge, y)` with the body inlined on the cache
        # miss path (this is called for every planned child edge).
        r = split_cache.get(edge)
        if r is None:
            node = -edge if edge < 0 else edge
            if node == SINK or pvl[node] != y:
                r = (None, edge, edge)
            elif svl[node] == SV_ONE:
                s = 1 if edge > 0 else -1  # literal children are the sink
                r = (SV_ONE, -s, s)
            elif edge < 0:
                r = (svl[node], -neql[node], -eql[node])
            else:
                r = (svl[node], neql[node], eql[node])
            split_cache[edge] = r
        return r

    def split_of_make(s: int, d: Edge, e: Edge):
        """Split triple of the would-be ``_make(y, s, d, e)`` result.

        Computed symbolically — the swap only ever needs the split, so
        the ``(y, .)`` helper node ``_cofactors`` would intern (and the
        next pre-sweep would reclaim) is never allocated.  Mirrors the
        reduction loop of ``_make``.
        """
        attr = False
        while True:
            if d == e:  # R2: no y-root at all
                return split_y(-e if attr else e)
            if e < 0:
                attr = not attr
                d = -d
                e = -e
            dn = -d if d < 0 else d
            if dn != SINK and e != SINK and pvl[dn] == s and pvl[e] == s:
                sd = svl[dn]
                if sd == svl[e]:
                    if sd == SV_ONE:  # R4: collapses to the literal of y
                        sgn = -1 if attr else 1
                        return (SV_ONE, -sgn, sgn)
                    if d < 0:
                        dneq = -neql[dn]
                        deq = -eql[dn]
                    else:
                        dneq = neql[dn]
                        deq = eql[dn]
                    if dneq == eql[e] and deq == neql[e]:
                        s = sd
                        d = deq
                        e = dneq
                        continue
            break
        if attr:
            return (s, -d, -e)
        return (s, d, e)

    def child_splits(child: Edge):
        """Gamma splits of both biconditional cofactors of an alpha child."""
        r = cof_cache.get(child)
        if r is None:
            node_c = -child if child < 0 else child
            if pvl[node_c] != x:
                # Independent of x: both cofactors are the child itself.
                sp = split_y(child)
                r = (sp, sp)
            else:
                sv_c = svl[node_c]
                if sv_c == y or sv_c == SV_ONE:
                    if sv_c == y:
                        # (x, y)-couple child: its stored fields.
                        cof_neq = neql[node_c]
                        cof_eq = eql[node_c]
                    else:
                        cof_neq, cof_eq = manager._cofactors(node_c, x, y)
                    if child < 0:
                        cof_neq = -cof_neq
                        cof_eq = -cof_eq
                    r = (split_y(cof_neq), split_y(cof_eq))
                else:
                    # (x, t != y) chain child: the substitution re-roots
                    # at (y, t) — compute both splits without interning
                    # the helper nodes.
                    d_edge = neql[node_c]
                    e_edge = eql[node_c]
                    sp_neq = split_of_make(sv_c, e_edge, d_edge)
                    sp_eq = split_of_make(sv_c, d_edge, e_edge)
                    if child < 0:
                        sp_neq = (sp_neq[0], -sp_neq[1], -sp_neq[2])
                        sp_eq = (sp_eq[0], -sp_eq[1], -sp_eq[2])
                    r = (sp_neq, sp_eq)
            cof_cache[child] = r
        return r

    # ---- Phase 0: plan extraction against the pristine old structure ----
    # B-plan per node: for each old (x ? y) branch b, the child's gamma
    # split (partner z_b, leaf at gamma=1, leaf at gamma=0).
    b_plans = [(node, split_y(neql[node]), split_y(eql[node])) for node in b_nodes]

    # A-plan per node: alpha branch -> beta branch -> gamma split triple.
    # The beta split is the biconditional cofactoring of the alpha-child
    # w.r.t. the couple (x, y); when the child's own couple is (x, t != y)
    # the manager's cofactoring re-roots the substitution at (y, t) —
    # creating only (y, .)-couple helper nodes, which the swap never
    # touches.
    a_plans = [
        (node, child_splits(neql[node]), child_splits(eql[node]))
        for node in a_nodes
    ]

    # ---- Phase 1: clear stale keys, then commit the new order -----------
    # B- and A-nodes are all chain nodes, so their keys are the raw field
    # tuples (no literal special case).
    for node in b_nodes:
        del raw[(pvl[node], svl[node], neql[node], eql[node])]
    for node in a_nodes:
        del raw[(pvl[node], svl[node], neql[node], eql[node])]
    order.swap_positions(k)

    dead_candidates: List[int] = []
    by_sv = manager._by_sv
    bits = manager._var_bits
    ref_index = manager._ref_index
    make = manager._make
    # Overwrite hoists: B-nodes always move couple (x, y) -> (y, x) and
    # A-nodes (pv, x) -> (pv, y), so the secondary-index sets and the
    # couple's support bits are per-phase constants.  The in-place
    # overwrite itself is inlined in both phase loops below: it is
    # index-stable (incoming edges and interned views keep working), and
    # under cascading reference counts only a *live* node holds counts on
    # its children, so the child hand-over goes through the manager's
    # ref/deref hooks (reviving freshly built subtrees and cascading
    # releases into the orphaned old structure) with the already-live /
    # stays-live cases inlined.
    by_sv_x = by_sv[x]
    by_sv_y = by_sv[y]
    bits_xy = bits[x] | bits[y]
    bit_y = bits[y]
    dead_append = dead_candidates.append
    dead_discard = manager._dead_set.discard

    # Rebuild caches: (z, hi, lo) -> edge of the (x, z) branch node, and
    # (hi, lo) -> edge of a rebuilt (y, x) child.  The cache probes are
    # inlined in the loops below — at ~800k probes per sift these are the
    # hottest lines of the whole reordering pass.  A cache miss first
    # probes the unique table directly with the normalized key (hits skip
    # `_make` entirely); only true allocations/reductions call `_make`.
    branch_cache: dict = {}
    bc_get = branch_cache.get
    yx_cache: dict = {}
    yx_get = yx_cache.get
    raw_get = raw.get

    # ---- Phase 2: B-nodes become (y, x) nodes ---------------------------
    # new(b', c') = old(b', b' ^ c'): the new beta'-child reshuffles the
    # same old branch's leaves; for b' = True the gamma leaves swap
    # (gamma' = not gamma), so the T-leg rebuilds with inverted leaves.
    by_pv_x = manager._by_pv[x]
    by_pv_y = manager._by_pv[y]
    for node, sp_t, sp_f in b_plans:
        z, hi, lo = sp_t
        if z is None:
            d_child = hi  # no gamma split: the child is y-independent
        else:
            bkey = (z, lo, hi)
            d_child = bc_get(bkey)
            if d_child is None:
                r = raw_get((x, z, lo, hi)) if hi > 0 else raw_get((x, z, -lo, -hi))
                if r is None:
                    d_child = make(x, z, lo, hi, True)
                else:
                    d_child = r if hi > 0 else -r
                branch_cache[bkey] = d_child
        z, hi, lo = sp_f
        if z is None:
            e_child = hi
        else:
            bkey = (z, hi, lo)
            e_child = bc_get(bkey)
            if e_child is None:
                r = raw_get((x, z, hi, lo)) if lo > 0 else raw_get((x, z, -hi, -lo))
                if r is None:
                    e_child = make(x, z, hi, lo, True)
                else:
                    e_child = r if lo > 0 else -r
                branch_cache[bkey] = e_child
        by_pv_x.discard(node)
        pvl[node] = y
        by_pv_y.add(node)
        # Inlined overwrite: (x, y) couple becomes (y, x).
        if e_child < 0:
            raise BBDDError("CVO swap produced a complemented =-edge at a root")
        if d_child == e_child:
            raise BBDDError("CVO swap collapsed a chain node (R2)")
        was_live = refl[node] > 0
        old_d = neql[node]
        old_dn = -old_d if old_d < 0 else old_d
        old_e = eql[node]
        by_sv_y.discard(node)
        svl[node] = x
        botl[node] = x
        neql[node] = d_child
        eql[node] = e_child
        dn = -d_child if d_child < 0 else d_child
        suppl[node] = bits_xy | suppl[dn] | suppl[e_child]
        if was_live:
            r = refl[dn]
            if r > 0:
                refl[dn] = r + 1
            elif fl[dn]:
                fl[dn] = 0
                refl[dn] = 1
                dead_discard(dn)
            else:
                ref_index(dn)
            r = refl[e_child]
            if r > 0:
                refl[e_child] = r + 1
            elif fl[e_child]:
                fl[e_child] = 0
                refl[e_child] = 1
                dead_discard(e_child)
            else:
                ref_index(e_child)
        by_sv_x.add(node)
        raw[(y, x, d_child, e_child)] = node
        if was_live:
            # Release the old children.  A count hitting zero is *not*
            # applied here: the node goes on the kill list with the
            # final decrement deferred to the phase-4 walk, so a node
            # re-acquired by a later rebuild simply survives it.
            r = refl[old_dn]
            if r > 1 or old_dn == SINK:
                refl[old_dn] = r - 1
            else:
                dead_append(old_dn)
            r = refl[old_e]
            if r > 1 or old_e == SINK:
                refl[old_e] = r - 1
            else:
                dead_append(old_e)

    # ---- Phase 3: A-nodes re-chain to (pv, y) ----------------------------
    # new(a', b', c') = old(a' ^ b', b', b' ^ c'); each plan entry holds
    # the (neq-cofactor, eq-cofactor) splits for one alpha branch, and the
    # b' = True legs rebuild with inverted gamma leaves as in phase 2.
    for node, sp_a_t, sp_a_f in a_plans:
        z, hi, lo = sp_a_f[0]  # a'=T, b'=T: old alpha = F
        if z is None:
            sub_tt = hi
        else:
            bkey = (z, lo, hi)
            sub_tt = bc_get(bkey)
            if sub_tt is None:
                r = raw_get((x, z, lo, hi)) if hi > 0 else raw_get((x, z, -lo, -hi))
                if r is None:
                    sub_tt = make(x, z, lo, hi, True)
                else:
                    sub_tt = r if hi > 0 else -r
                branch_cache[bkey] = sub_tt
        z, hi, lo = sp_a_t[1]  # a'=T, b'=F: old alpha = T
        if z is None:
            sub_tf = hi
        else:
            bkey = (z, hi, lo)
            sub_tf = bc_get(bkey)
            if sub_tf is None:
                r = raw_get((x, z, hi, lo)) if lo > 0 else raw_get((x, z, -hi, -lo))
                if r is None:
                    sub_tf = make(x, z, hi, lo, True)
                else:
                    sub_tf = r if lo > 0 else -r
                branch_cache[bkey] = sub_tf
        z, hi, lo = sp_a_t[0]  # a'=F, b'=T: old alpha = T
        if z is None:
            sub_ft = hi
        else:
            bkey = (z, lo, hi)
            sub_ft = bc_get(bkey)
            if sub_ft is None:
                r = raw_get((x, z, lo, hi)) if hi > 0 else raw_get((x, z, -lo, -hi))
                if r is None:
                    sub_ft = make(x, z, lo, hi, True)
                else:
                    sub_ft = r if hi > 0 else -r
                branch_cache[bkey] = sub_ft
        z, hi, lo = sp_a_f[1]  # a'=F, b'=F: old alpha = F
        if z is None:
            sub_ff = hi
        else:
            bkey = (z, hi, lo)
            sub_ff = bc_get(bkey)
            if sub_ff is None:
                r = raw_get((x, z, hi, lo)) if lo > 0 else raw_get((x, z, -hi, -lo))
                if r is None:
                    sub_ff = make(x, z, hi, lo, True)
                else:
                    sub_ff = r if lo > 0 else -r
                branch_cache[bkey] = sub_ff
        ykey = (sub_tt, sub_tf)
        d_child = yx_get(ykey)
        if d_child is None:
            if sub_tf > 0:
                r = raw_get((y, x, sub_tt, sub_tf))
            else:
                r = raw_get((y, x, -sub_tt, -sub_tf))
            if r is None:
                d_child = make(y, x, sub_tt, sub_tf, True)
            else:
                d_child = r if sub_tf > 0 else -r
            yx_cache[ykey] = d_child
        ykey = (sub_ft, sub_ff)
        e_child = yx_get(ykey)
        if e_child is None:
            if sub_ff > 0:
                r = raw_get((y, x, sub_ft, sub_ff))
            else:
                r = raw_get((y, x, -sub_ft, -sub_ff))
            if r is None:
                e_child = make(y, x, sub_ft, sub_ff, True)
            else:
                e_child = r if sub_ff > 0 else -r
            yx_cache[ykey] = e_child
        # Inlined overwrite: (pv, x) couple re-chains to (pv, y).
        if e_child < 0:
            raise BBDDError("CVO swap produced a complemented =-edge at a root")
        if d_child == e_child:
            raise BBDDError("CVO swap collapsed a chain node (R2)")
        was_live = refl[node] > 0
        old_d = neql[node]
        old_dn = -old_d if old_d < 0 else old_d
        old_e = eql[node]
        by_sv_x.discard(node)
        svl[node] = y
        botl[node] = y
        neql[node] = d_child
        eql[node] = e_child
        dn = -d_child if d_child < 0 else d_child
        suppl[node] = bits[pvl[node]] | bit_y | suppl[dn] | suppl[e_child]
        if was_live:
            r = refl[dn]
            if r > 0:
                refl[dn] = r + 1
            elif fl[dn]:
                fl[dn] = 0
                refl[dn] = 1
                dead_discard(dn)
            else:
                ref_index(dn)
            r = refl[e_child]
            if r > 0:
                refl[e_child] = r + 1
            elif fl[e_child]:
                fl[e_child] = 0
                refl[e_child] = 1
                dead_discard(e_child)
            else:
                ref_index(e_child)
        by_sv_y.add(node)
        raw[(pvl[node], y, d_child, e_child)] = node
        if was_live:
            # Deferred final release — see the phase-2 comment.
            r = refl[old_dn]
            if r > 1 or old_dn == SINK:
                refl[old_dn] = r - 1
            else:
                dead_append(old_dn)
            r = refl[old_e]
            if r > 1 or old_e == SINK:
                refl[old_e] = r - 1
            else:
                dead_append(old_e)

    # ---- Phase 4: reclaim subgraphs orphaned by the rewiring --------------
    # Single release-and-reclaim walk: each kill-list entry carries one
    # deferred decrement; nodes that died are reclaimed on the spot.
    if dead_candidates:
        swept = manager._kill_many(dead_candidates)
        if stats:
            stats.nodes_swept += swept

    if stats:
        stats.nodes_rewritten += len(b_plans) + len(a_plans)
        stats.swaps += 1


def reorder_to(manager, target_order: Sequence, stats: Optional[SwapStats] = None) -> None:
    """Reorder to ``target_order`` (names or indices) via adjacent swaps."""
    target = [manager.var_index(v) for v in target_order]
    if sorted(target) != sorted(range(manager.num_vars)):
        raise OrderError("target order must be a permutation of all variables")
    # Selection-sort with adjacent transpositions: O(n^2) swaps worst case.
    for pos in range(manager.num_vars):
        want = target[pos]
        current = manager.order.position(want)
        while current > pos:
            swap_adjacent(manager, current - 1, stats)
            current -= 1


class SiftResult:
    """Outcome of a sifting run."""

    __slots__ = ("initial_size", "final_size", "swaps", "duration", "rounds")

    def __init__(self, initial_size, final_size, swaps, duration, rounds) -> None:
        self.initial_size = initial_size
        self.final_size = final_size
        self.swaps = swaps
        self.duration = duration
        self.rounds = rounds

    def as_dict(self) -> dict:
        return {
            "initial_size": self.initial_size,
            "final_size": self.final_size,
            "swaps": self.swaps,
            "duration": self.duration,
            "rounds": self.rounds,
        }


def sift(
    manager,
    max_growth: float = 1.2,
    converge: bool = False,
    max_rounds: int = 4,
    max_swaps: Optional[int] = None,
    swap_fn=None,
) -> SiftResult:
    """Rudell's sifting extended to BBDDs (Sec. IV-A4).

    Each variable in turn is moved through all ``n`` candidate CVO
    positions with adjacent swaps; the position minimizing the stored node
    count is kept.  ``max_growth`` aborts an excursion whose intermediate
    size exceeds the best size by that factor; ``converge`` repeats passes
    until no improvement (bounded by ``max_rounds``); ``max_swaps`` bounds
    total work for benchmark profiles.

    The excursion driver is representation-agnostic: ``swap_fn(manager, k,
    stats)`` defaults to the BBDD CVO swap, and the baseline BDD package
    reuses this driver with its own level swap.
    """
    manager.gc()  # sizes must reflect live nodes only
    if swap_fn is None:
        swap_fn = swap_adjacent
    # Managers exposing state snapshots let the driver rewind excursions
    # instead of retracing them (custom swap_fn implies custom state the
    # snapshot may not cover, so only the default swap uses them).
    checkpoint = (
        getattr(manager, "_checkpoint", None)
        if swap_fn is swap_adjacent
        else None
    )
    stats = SwapStats()
    t0 = time.perf_counter()
    initial = manager.size()
    n = manager.num_vars
    rounds = 0

    def budget_left() -> bool:
        return max_swaps is None or stats.swaps < max_swaps

    improved = True
    while improved and rounds < (max_rounds if converge else 1) and budget_left():
        improved = False
        rounds += 1
        round_start = manager.size()
        by_level_size = sorted(
            range(n), key=lambda v: -len(manager.nodes_with_pv(v))
        )
        for var in by_level_size:
            if not budget_left():
                break
            best_size = manager.size()
            pos = manager.order.position(var)
            best_pos = pos
            # Excursion towards the closer end first, then the other end.
            down_first = (n - 1 - pos) <= pos
            legs = [(1, n - 1), (-1, 0)] if down_first else [(-1, 0), (1, n - 1)]
            if checkpoint is not None:
                # Checkpointing manager: both legs probe from the start
                # state and the excursion ends with a rewind to the best
                # state, skipping every already-measured retrace swap
                # (roughly half of a plain excursion's swaps).  Sizes and
                # final structure are exactly those of the retraced walk —
                # the store is canonical per order, so revisiting a
                # position reproduces the measured size.
                start_pos = pos
                start_state = manager._checkpoint()
                best_state = start_state
                for direction, limit in legs:
                    while pos != limit and budget_left():
                        if direction > 0:
                            swap_fn(manager, pos, stats)
                            pos += 1
                        else:
                            swap_fn(manager, pos - 1, stats)
                            pos -= 1
                        size = manager.size()
                        if size < best_size:
                            best_size, best_pos = size, pos
                            best_state = manager._checkpoint()
                        elif size > best_size * max_growth:
                            break
                    if (direction, limit) != legs[-1]:
                        manager._restore(start_state)
                        pos = start_pos
                manager._restore(best_state)
                continue
            for direction, limit in legs:
                while pos != limit and budget_left():
                    if direction > 0:
                        swap_fn(manager, pos, stats)
                        pos += 1
                    else:
                        swap_fn(manager, pos - 1, stats)
                        pos -= 1
                    size = manager.size()
                    if size < best_size:
                        best_size, best_pos = size, pos
                    elif size > best_size * max_growth:
                        break
            while pos < best_pos:
                swap_fn(manager, pos, stats)
                pos += 1
            while pos > best_pos:
                swap_fn(manager, pos - 1, stats)
                pos -= 1
        if manager.size() < round_start:
            improved = True

    return SiftResult(
        initial_size=initial,
        final_size=manager.size(),
        swaps=stats.swaps,
        duration=time.perf_counter() - t0,
        rounds=rounds,
    )


# ---------------------------------------------------------------------------
# Rebuild-based reordering: the slow, obviously-correct oracle.
# ---------------------------------------------------------------------------


def from_truth_table(manager, mask: int, num_vars: Optional[int] = None) -> Edge:
    """Build the canonical BBDD of a truth-table bitmask.

    Bit ``i`` of ``mask`` is the value of the assignment whose ``j``-th
    *variable-index* bit is bit ``j`` of ``i``.  Exponential in the
    variable count; used by tests, the rebuild oracle and small examples.
    """
    from repro.core.truthtable import TruthTable

    n = num_vars if num_vars is not None else manager.num_vars
    order = manager.order

    def build(table) -> Edge:
        if table.mask == 0:
            return manager.false_edge
        if table.mask == table._full():
            return manager.true_edge
        supp = sorted(table.support(), key=order.position)
        pv = supp[0]
        if len(supp) == 1:
            positive = table.restrict(pv, True).mask != 0
            lit = manager.literal_node(pv)
            return lit if positive else -lit
        sv = supp[1]
        sv_tt = TruthTable.var(n, sv)
        t_neq = table.compose(pv, ~sv_tt)
        t_eq = table.compose(pv, sv_tt)
        d = build(t_neq)
        e = build(t_eq)
        return manager._make(pv, sv, d, e)

    return build(TruthTable(n, mask))


def rebuild_reordered(manager, edges: Sequence[Edge], new_order: Sequence):
    """Oracle: rebuild ``edges`` from scratch in a new manager with
    ``new_order`` (names or indices of the same variables).

    Returns ``(new_manager, new_edges)``.  Exponential (truth tables);
    tests compare the in-place swap result against this ground truth.
    """
    from repro.core.manager import BBDDManager
    from repro.core.traversal import truth_table_mask

    names = [manager.var_name(manager.var_index(v)) for v in new_order]
    if sorted(names) != sorted(manager.var_names):
        raise OrderError("new order must cover exactly the manager variables")
    new_manager = BBDDManager(list(manager.var_names))
    new_manager.order.set_order([new_manager.var_index(nm) for nm in names])
    new_edges = []
    all_vars = list(range(manager.num_vars))
    for edge in edges:
        mask = truth_table_mask(manager, edge, all_vars)
        new_edges.append(from_truth_table(new_manager, mask))
    return new_manager, new_edges
