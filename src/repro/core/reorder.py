"""Chain variable re-ordering (Sec. IV-A4): CVO swap theory and sifting.

A variable swap ``i <-> i+1`` exchanges two adjacent variables ``x, y`` in
the order.  Under the support-chained CVO (rule R3), a function's couples
pair *consecutive support variables*, so the swap concerns exactly the
functions that depend on **both** ``x`` and ``y`` — their chains contain
``(a, x) (x, y) (y, z)`` fragments that become ``(a, y) (y, x) (x, z)``.
Concretely the affected nodes are:

* ``B`` — chain nodes with couple ``(x, y)``: overwritten in place at
  couple ``(y, x)`` with children rebuilt below;
* ``A`` — chain nodes with SV ``x`` whose support contains ``y``:
  overwritten in place at couple ``(pv, y)``.

Every other node (including all ``(y, .)``-rooted nodes and any node whose
function involves only one of the two variables) is untouched — the
locality property the paper claims for its pointer-stable swap.  The
children remapping follows Fig. 2 / Eq. 5: with comparison outcomes
``a = [w != x]``, ``b = [x != y]``, ``c = [y != z]`` (True = "!="),

    new(a', b', c') = old(a' ^ b', b', b' ^ c')

applied per root-to-leaf path (each path carries its own deeper partner
``z``).  Soundness of the in-place overwrite rests on the complement
normalization: the canonical attribute of a function equals
``not f(1, 1, .., 1)``, which is order-independent, so a
function-preserving rewrite never flips a node's polarity.

The module also provides Rudell-style sifting extended to BBDDs and a
rebuild-based reordering used as a test oracle.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.core.exceptions import BBDDError, OrderError
from repro.core.node import SV_ONE, BBDDNode, Edge


class SwapStats:
    """Counters accumulated across swap operations (for benches/reports)."""

    __slots__ = ("swaps", "nodes_rewritten", "nodes_created", "nodes_swept")

    def __init__(self) -> None:
        self.swaps = 0
        self.nodes_rewritten = 0
        self.nodes_created = 0
        self.nodes_swept = 0

    def as_dict(self) -> dict:
        return {
            "swaps": self.swaps,
            "nodes_rewritten": self.nodes_rewritten,
            "nodes_created": self.nodes_created,
            "nodes_swept": self.nodes_swept,
        }


def _split(edge: Edge, var: int):
    """Split ``edge`` on its root couple when rooted at ``var``.

    Returns ``(partner, neq_edge, eq_edge)``; ``partner`` is ``None`` when
    the edge does not branch on ``var`` (both cofactors equal the edge),
    and ``SV_ONE`` for the literal of ``var``.
    """
    node, attr = edge
    if node.is_sink or node.pv != var:
        return None, edge, edge
    if node.sv == SV_ONE:
        sink = node.neq  # literal children are the sink
        return SV_ONE, (sink, not attr), (sink, attr)
    return node.sv, (node.neq, node.neq_attr ^ attr), (node.eq, attr)


def swap_adjacent(manager, k: int, stats: Optional[SwapStats] = None) -> None:
    """Swap the variables at order positions ``k`` and ``k + 1`` in place.

    The whole surgery runs with automatic GC deferred: plans hold bare
    edges into the old structure, which a collection would invalidate.
    """
    with manager.defer_gc():
        _swap_adjacent(manager, k, stats)


def _swap_adjacent(manager, k: int, stats: Optional[SwapStats]) -> None:
    order = manager.order
    n = manager.num_vars
    if not 0 <= k < n - 1:
        raise OrderError(f"cannot swap positions {k},{k + 1} of {n}")

    x = order.var_at(k)
    y = order.var_at(k + 1)
    y_bit = 1 << y

    # The computed table holds bare pointers into the forest; swept nodes
    # would otherwise escape through it.
    manager.clear_cache()

    # Reclaim garbage at the concerned levels up front so it is neither
    # planned nor rewritten.
    for node in [nd for nd in manager.nodes_with_pv(x) if nd.ref == 0]:
        if node.ref == 0:
            swept = manager._sweep(node)
            if stats:
                stats.nodes_swept += swept
    for node in [nd for nd in manager.nodes_with_sv(x) if nd.ref == 0]:
        if node.ref == 0:
            swept = manager._sweep(node)
            if stats:
                stats.nodes_swept += swept

    b_nodes = [nd for nd in manager.nodes_with_pv(x) if nd.sv == y]
    a_nodes = [nd for nd in manager.nodes_with_sv(x) if nd.supp & y_bit]

    if not b_nodes and not a_nodes:
        order.swap_positions(k)
        if stats:
            stats.swaps += 1
        return

    # ---- Phase 0: plan extraction against the pristine old structure ----
    # B-plan per node: for each old (x ? y) branch b, the child's gamma
    # split (partner z_b, leaf at gamma=1, leaf at gamma=0).
    b_plans = []
    for node in b_nodes:
        branch = {}
        for b, child in ((True, (node.neq, node.neq_attr)), (False, (node.eq, False))):
            z, hi, lo = _split(child, y)
            branch[b] = (z, hi, lo)
        b_plans.append((node, branch))

    # A-plan per node: alpha branch -> beta branch -> gamma split triple.
    # The beta split is the biconditional cofactoring of the alpha-child
    # w.r.t. the couple (x, y); when the child's own couple is (x, t != y)
    # the manager's cofactoring re-roots the substitution at (y, t) —
    # creating only (y, .)-couple helper nodes, which the swap never
    # touches.
    a_plans = []
    for node in a_nodes:
        alpha_info = {}
        for a, child in ((True, (node.neq, node.neq_attr)), (False, (node.eq, False))):
            node_c, attr_c = child
            cof_neq, cof_eq = manager._cofactors(node_c, x, y)
            b_hi = (cof_neq[0], cof_neq[1] ^ attr_c)
            b_lo = (cof_eq[0], cof_eq[1] ^ attr_c)
            alpha_info[a] = {
                True: _split(b_hi, y),
                False: _split(b_lo, y),
            }
        a_plans.append((node, alpha_info))

    # ---- Phase 1: clear stale keys, then commit the new order -----------
    for node in b_nodes:
        manager._unique.delete(node.key())
    for node in a_nodes:
        manager._unique.delete(node.key())
    order.swap_positions(k)

    dead_candidates: List[BBDDNode] = []

    def overwrite(node: BBDDNode, sv: int, d: Edge, e: Edge) -> None:
        """Re-point ``node`` at the canonical tuple (node.pv, sv, d, e).

        Under cascading reference counts only a *live* node holds counts
        on its children, so the child hand-over goes through the
        manager's ref/deref hooks (reviving freshly built subtrees and
        cascading releases into the orphaned old structure).
        """
        dn, da = d
        en, ea = e
        if ea:
            raise BBDDError("CVO swap produced a complemented =-edge at a root")
        if dn is en and da == ea:
            raise BBDDError("CVO swap collapsed a chain node (R2)")
        was_live = node.ref > 0
        old_children = (node.neq, node.eq)
        manager._by_sv[node.sv].discard(node)
        node.sv = sv
        node.neq = dn
        node.neq_attr = da
        node.eq = en
        node.supp = (1 << node.pv) | (1 << sv) | dn.supp | en.supp
        if was_live:
            manager._ref_node(dn)
            manager._ref_node(en)
        manager._by_sv[sv].add(node)
        node.tkey = node.key()
        manager._unique.insert(node.tkey, node)
        if was_live:
            for child in old_children:
                manager._deref_node(child)
                if child.ref == 0 and not child.is_sink:
                    dead_candidates.append(child)
        if stats:
            stats.nodes_rewritten += 1

    def rebuild_branch(plan_entry) -> Edge:
        """Child edge at the (x, z) level from a gamma split plan."""
        z, hi, lo = plan_entry
        if z is None:
            return hi  # no gamma split: the child is y-independent
        return manager._make(x, z, hi, lo)

    # ---- Phase 2: B-nodes become (y, x) nodes ---------------------------
    # new(b', c') = old(b', b' ^ c'): the new beta'-child reshuffles the
    # same old branch's leaves; for b' = True the gamma leaves swap.
    for node, branch in b_plans:
        z_t, hi_t, lo_t = branch[True]
        z_f, hi_f, lo_f = branch[False]
        d_child = rebuild_branch((z_t, lo_t, hi_t))  # gamma inverted
        e_child = rebuild_branch((z_f, hi_f, lo_f))
        manager._by_pv[x].discard(node)
        node.pv = y
        manager._by_pv[y].add(node)
        overwrite(node, x, d_child, e_child)

    # ---- Phase 3: A-nodes re-chain to (pv, y) ----------------------------
    # new(a', b', c') = old(a' ^ b', b', b' ^ c').
    for node, alpha_info in a_plans:
        new_children = {}
        for a_new in (True, False):
            subs = {}
            for b_new in (True, False):
                z, hi, lo = alpha_info[a_new != b_new][b_new]
                if b_new:
                    hi, lo = lo, hi  # gamma' = not gamma on the b'=True leg
                subs[b_new] = rebuild_branch((z, hi, lo))
            new_children[a_new] = manager._make(y, x, subs[True], subs[False])
        overwrite(node, y, new_children[True], new_children[False])

    # ---- Phase 4: reclaim nodes orphaned by the rewiring ------------------
    for node in dead_candidates:
        if node.ref == 0:
            swept = manager._sweep(node)
            if stats:
                stats.nodes_swept += swept

    if stats:
        stats.swaps += 1


def reorder_to(manager, target_order: Sequence, stats: Optional[SwapStats] = None) -> None:
    """Reorder to ``target_order`` (names or indices) via adjacent swaps."""
    target = [manager.var_index(v) for v in target_order]
    if sorted(target) != sorted(range(manager.num_vars)):
        raise OrderError("target order must be a permutation of all variables")
    # Selection-sort with adjacent transpositions: O(n^2) swaps worst case.
    for pos in range(manager.num_vars):
        want = target[pos]
        current = manager.order.position(want)
        while current > pos:
            swap_adjacent(manager, current - 1, stats)
            current -= 1


class SiftResult:
    """Outcome of a sifting run."""

    __slots__ = ("initial_size", "final_size", "swaps", "duration", "rounds")

    def __init__(self, initial_size, final_size, swaps, duration, rounds) -> None:
        self.initial_size = initial_size
        self.final_size = final_size
        self.swaps = swaps
        self.duration = duration
        self.rounds = rounds

    def as_dict(self) -> dict:
        return {
            "initial_size": self.initial_size,
            "final_size": self.final_size,
            "swaps": self.swaps,
            "duration": self.duration,
            "rounds": self.rounds,
        }


def sift(
    manager,
    max_growth: float = 1.2,
    converge: bool = False,
    max_rounds: int = 4,
    max_swaps: Optional[int] = None,
    swap_fn=None,
) -> SiftResult:
    """Rudell's sifting extended to BBDDs (Sec. IV-A4).

    Each variable in turn is moved through all ``n`` candidate CVO
    positions with adjacent swaps; the position minimizing the stored node
    count is kept.  ``max_growth`` aborts an excursion whose intermediate
    size exceeds the best size by that factor; ``converge`` repeats passes
    until no improvement (bounded by ``max_rounds``); ``max_swaps`` bounds
    total work for benchmark profiles.

    The excursion driver is representation-agnostic: ``swap_fn(manager, k,
    stats)`` defaults to the BBDD CVO swap, and the baseline BDD package
    reuses this driver with its own level swap.
    """
    manager.gc()  # sizes must reflect live nodes only
    if swap_fn is None:
        swap_fn = swap_adjacent
    stats = SwapStats()
    t0 = time.perf_counter()
    initial = manager.size()
    n = manager.num_vars
    rounds = 0

    def budget_left() -> bool:
        return max_swaps is None or stats.swaps < max_swaps

    improved = True
    while improved and rounds < (max_rounds if converge else 1) and budget_left():
        improved = False
        rounds += 1
        round_start = manager.size()
        by_level_size = sorted(
            range(n), key=lambda v: -len(manager.nodes_with_pv(v))
        )
        for var in by_level_size:
            if not budget_left():
                break
            best_size = manager.size()
            pos = manager.order.position(var)
            best_pos = pos
            # Excursion towards the closer end first, then the other end.
            down_first = (n - 1 - pos) <= pos
            legs = [(1, n - 1), (-1, 0)] if down_first else [(-1, 0), (1, n - 1)]
            for direction, limit in legs:
                while pos != limit and budget_left():
                    if direction > 0:
                        swap_fn(manager, pos, stats)
                        pos += 1
                    else:
                        swap_fn(manager, pos - 1, stats)
                        pos -= 1
                    size = manager.size()
                    if size < best_size:
                        best_size, best_pos = size, pos
                    elif size > best_size * max_growth:
                        break
            while pos < best_pos:
                swap_fn(manager, pos, stats)
                pos += 1
            while pos > best_pos:
                swap_fn(manager, pos - 1, stats)
                pos -= 1
        if manager.size() < round_start:
            improved = True

    return SiftResult(
        initial_size=initial,
        final_size=manager.size(),
        swaps=stats.swaps,
        duration=time.perf_counter() - t0,
        rounds=rounds,
    )


# ---------------------------------------------------------------------------
# Rebuild-based reordering: the slow, obviously-correct oracle.
# ---------------------------------------------------------------------------


def from_truth_table(manager, mask: int, num_vars: Optional[int] = None) -> Edge:
    """Build the canonical BBDD of a truth-table bitmask.

    Bit ``i`` of ``mask`` is the value of the assignment whose ``j``-th
    *variable-index* bit is bit ``j`` of ``i``.  Exponential in the
    variable count; used by tests, the rebuild oracle and small examples.
    """
    from repro.core.truthtable import TruthTable

    n = num_vars if num_vars is not None else manager.num_vars
    order = manager.order

    def build(table) -> Edge:
        if table.mask == 0:
            return manager.false_edge
        if table.mask == table._full():
            return manager.true_edge
        supp = sorted(table.support(), key=order.position)
        pv = supp[0]
        if len(supp) == 1:
            positive = table.restrict(pv, True).mask != 0
            return (manager.literal_node(pv), not positive)
        sv = supp[1]
        sv_tt = TruthTable.var(n, sv)
        t_neq = table.compose(pv, ~sv_tt)
        t_eq = table.compose(pv, sv_tt)
        d = build(t_neq)
        e = build(t_eq)
        return manager._make(pv, sv, d, e)

    return build(TruthTable(n, mask))


def rebuild_reordered(manager, edges: Sequence[Edge], new_order: Sequence):
    """Oracle: rebuild ``edges`` from scratch in a new manager with
    ``new_order`` (names or indices of the same variables).

    Returns ``(new_manager, new_edges)``.  Exponential (truth tables);
    tests compare the in-place swap result against this ground truth.
    """
    from repro.core.manager import BBDDManager
    from repro.core.traversal import truth_table_mask

    names = [manager.var_name(manager.var_index(v)) for v in new_order]
    if sorted(names) != sorted(manager.var_names):
        raise OrderError("new order must cover exactly the manager variables")
    new_manager = BBDDManager(list(manager.var_names))
    new_manager.order.set_order([new_manager.var_index(nm) for nm in names])
    new_edges = []
    all_vars = list(range(manager.num_vars))
    for edge in edges:
        mask = truth_table_mask(manager, edge, all_vars)
        new_edges.append(from_truth_table(new_manager, mask))
    return new_manager, new_edges
