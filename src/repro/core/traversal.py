"""Traversals over BBDD forests: evaluation, counting, sat-count, paths.

All functions operate on bare ``(node, attr)`` edges plus the owning
manager (needed for order positions).  Level skipping is handled
everywhere: an edge from position ``p`` to a node rooted at position ``q``
leaves the variables at positions ``p+1 .. q-1`` unconstrained.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.node import SV_ONE, BBDDNode, Edge


def evaluate(edge: Edge, values: Mapping[int, bool]) -> bool:
    """Evaluate the function at a complete assignment ``{var index: bit}``.

    Follows one root-to-sink path: at a chain node take the ``!=``-edge
    when ``values[pv] != values[sv]``; at a literal node the ``=``-edge
    corresponds to ``pv == 1`` (the paper's fictitious SV).  Complement
    attributes along the path toggle the result.
    """
    node, attr = edge
    while not node.is_sink:
        if node.sv == SV_ONE:
            take_neq = not values[node.pv]
        else:
            take_neq = values[node.pv] != values[node.sv]
        if take_neq:
            attr ^= node.neq_attr
            node = node.neq
        else:
            node = node.eq
    return not attr


def reachable_nodes(edges: Iterable[Edge]) -> Set[BBDDNode]:
    """All internal nodes (chain + literal) reachable from ``edges``."""
    seen: Set[BBDDNode] = set()
    stack: List[BBDDNode] = []
    for node, _attr in edges:
        if not node.is_sink and node not in seen:
            seen.add(node)
            stack.append(node)
    while stack:
        node = stack.pop()
        if node.sv == SV_ONE:
            continue
        for child in (node.neq, node.eq):
            if not child.is_sink and child not in seen:
                seen.add(child)
                stack.append(child)
    return seen


def count_nodes(edges: Iterable[Edge]) -> int:
    """Shared node count of a forest (sink excluded, literals included)."""
    return len(reachable_nodes(edges))


def sat_count(manager, edge: Edge) -> int:
    """Number of satisfying assignments over all manager variables.

    Iterative post-order with memoization, so arbitrarily deep chains
    count without touching the Python recursion limit.
    """
    n = manager.num_vars
    order = manager.order
    memo: Dict[BBDDNode, int] = {}

    def compute(node: BBDDNode) -> int:
        """Count over the variables at positions >= position(node);
        requires both non-sink children to be memoized already."""
        p = order.position(node.pv)
        span = n - p
        if node.sv == SV_ONE:
            result = 1 << (span - 1)
        else:
            # Each branch fixes pv relative to sv; variables strictly
            # between them in the order (skipped by the support chain)
            # are free, as are those between sv and a child's root.
            q_sv = order.position(node.sv)
            result = 0
            for child, attr in ((node.neq, node.neq_attr), (node.eq, False)):
                if child.is_sink:
                    sub = 0 if attr else (1 << (n - q_sv))
                else:
                    q = order.position(child.pv)
                    sub = memo[child]
                    if attr:
                        sub = (1 << (n - q)) - sub
                    sub <<= q - q_sv
                result += sub
            result <<= q_sv - (p + 1)
        return result

    node, attr = edge
    if node.is_sink:
        return 0 if attr else (1 << n)
    stack: List[BBDDNode] = [node]
    while stack:
        top = stack[-1]
        if top in memo:
            stack.pop()
            continue
        pending = [
            c
            for c in (top.neq, top.eq)
            if not c.is_sink and c not in memo
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        memo[top] = compute(top)
    p = order.position(node.pv)
    count = memo[node]
    if attr:
        count = (1 << (n - p)) - count
    return count << p


def iter_paths(
    manager, edge: Edge
) -> Iterator[Tuple[Dict[int, Tuple[str, Optional[int]]], bool]]:
    """Yield ``(constraints, value)`` for every root-to-sink path.

    ``constraints`` maps each couple's PV to ``(rel, sv)``: ``rel`` is
    ``"=="``/``"!="`` for chain nodes (with ``sv`` the couple partner
    *actually on the path* — under the support-chained CVO this is the
    function's next support variable, not necessarily the global order's
    neighbour) or ``"1"``/``"0"`` for literal nodes (``sv`` is None).
    ``value`` is the sink value after complement attributes.  Iterative
    (explicit DFS stack), so arbitrarily deep chains enumerate without
    touching the Python recursion limit.
    """
    stack: List[Tuple[BBDDNode, bool, dict]] = [(edge[0], edge[1], {})]
    while stack:
        node, attr, constraints = stack.pop()
        if node.is_sink:
            yield constraints, not attr
            continue
        if node.sv == SV_ONE:
            branches = (
                (node.neq, attr ^ node.neq_attr, ("0", None)),
                (node.eq, attr, ("1", None)),
            )
        else:
            branches = (
                (node.neq, attr ^ node.neq_attr, ("!=", node.sv)),
                (node.eq, attr, ("==", node.sv)),
            )
        # Push the =-branch first so the !=-branch is explored first,
        # matching the historical (recursive) enumeration order.
        for child, child_attr, label in reversed(branches):
            extended = dict(constraints)
            extended[node.pv] = label
            stack.append((child, child_attr, extended))


def find_sat_path(manager, edge: Edge, want: bool = True) -> Optional[List[tuple]]:
    """One root-to-sink path on which the function evaluates to ``want``.

    Returns the path as ``(pv, sv, rel)`` triples (root first) with
    ``rel`` in ``{"0", "1", "==", "!="}`` and ``sv`` the couple partner on
    the path (None for literal nodes), or None when no such path exists.

    Runs in O(depth): every internal node of a canonical BBDD denotes a
    non-constant function, so descending into *any* non-sink child keeps
    both outcomes reachable; only sink children need their parity checked.
    """
    node, attr = edge
    if node.is_sink:
        return [] if (not attr) == want else None
    path: List[tuple] = []
    while True:
        if node.sv == SV_ONE:
            branches = (
                (node.neq, attr ^ node.neq_attr, "0", None),
                (node.eq, attr, "1", None),
            )
        else:
            branches = (
                (node.neq, attr ^ node.neq_attr, "!=", node.sv),
                (node.eq, attr, "==", node.sv),
            )
        descend = None
        for child, child_attr, rel, sv in branches:
            if child.is_sink:
                if (not child_attr) == want:
                    path.append((node.pv, sv, rel))
                    return path
            elif descend is None:
                descend = (child, child_attr, rel, sv)
        if descend is None:
            # Both children are sinks of the wrong parity — impossible for
            # a canonical (non-constant) node; defensive for corrupt DAGs.
            return None
        child, attr, rel, sv = descend
        path.append((node.pv, sv, rel))
        node = child


def truth_table_mask(manager, edge: Edge, variables: Sequence[int]) -> int:
    """Bitmask truth table of ``edge`` over ``variables``.

    Bit ``i`` of the result is the function value where variable
    ``variables[j]`` takes bit ``j`` of ``i``.  Exponential; intended for
    testing and small-function reporting.
    """
    n = len(variables)
    mask = 0
    values: Dict[int, bool] = {v: False for v in range(manager.num_vars)}
    for i in range(1 << n):
        for j, var in enumerate(variables):
            values[var] = bool((i >> j) & 1)
        if evaluate(edge, values):
            mask |= 1 << i
    return mask


def levelize(manager, edges: Iterable[Edge]) -> List[Tuple[int, List[BBDDNode]]]:
    """Group a forest's nodes by CVO level, deepest level first.

    A node's level is the order position of its primary variable; with
    levels emitted bottom-up, children always precede their parents —
    the write order of the :mod:`repro.io` binary format.  Nodes within
    a level are sorted by uid for deterministic output.
    """
    by_position: Dict[int, List[BBDDNode]] = {}
    position = manager.order.position
    for node in reachable_nodes(edges):
        by_position.setdefault(position(node.pv), []).append(node)
    return [
        (pos, sorted(by_position[pos], key=lambda n: n.uid))
        for pos in sorted(by_position, reverse=True)
    ]


def iter_cohort_items(manager, edge: Edge) -> Iterator[tuple]:
    """Yield ``edge``'s nodes top-down as cohort-sweep items.

    The item shape is documented in :mod:`repro.serve.bulk`:
    ``(key, pv, sv, t_key, t_flip, t_pv, f_key, f_flip, f_pv)`` with
    the *t*-branch taken where the node's test holds (``pv != sv`` on
    chain nodes, ``pv`` on literal nodes, whose ``sv`` slot is
    ``None``).  Built on :func:`levelize` reversed — children live at
    strictly deeper CVO positions, so parents are always emitted first,
    which is the only ordering the sweep needs.
    """
    for _pos, nodes in reversed(levelize(manager, [edge])):
        for node in nodes:
            if node.sv == SV_ONE:
                # Literal (R4) node: test is the variable itself; the
                # ``=``-edge (pv == 1) is the regular sink, the
                # ``!=``-edge the complemented one.
                eq, neq = node.eq, node.neq
                yield (
                    node,
                    node.pv,
                    None,
                    None if eq.is_sink else eq,
                    False,
                    None if eq.is_sink else eq.pv,
                    None if neq.is_sink else neq,
                    node.neq_attr,
                    None if neq.is_sink else neq.pv,
                )
            else:
                neq, eq = node.neq, node.eq
                yield (
                    node,
                    node.pv,
                    node.sv,
                    None if neq.is_sink else neq,
                    node.neq_attr,
                    None if neq.is_sink else neq.pv,
                    None if eq.is_sink else eq,
                    False,
                    None if eq.is_sink else eq.pv,
                )


def structural_profile(manager, edges: Iterable[Edge]) -> Dict[str, int]:
    """Summary statistics of a forest (used by reports and examples)."""
    nodes = reachable_nodes(edges)
    chain = sum(1 for n in nodes if n.sv != SV_ONE)
    literal = len(nodes) - chain
    complemented = sum(1 for n in nodes if n.sv != SV_ONE and n.neq_attr)
    return {
        "nodes": len(nodes),
        "chain_nodes": chain,
        "literal_nodes": literal,
        "complemented_neq_edges": complemented,
    }
