"""Traversals over BBDD forests: evaluation, counting, sat-count, paths.

All functions operate on bare ``(node, attr)`` edges plus the owning
manager (needed for order positions).  Level skipping is handled
everywhere: an edge from position ``p`` to a node rooted at position ``q``
leaves the variables at positions ``p+1 .. q-1`` unconstrained.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple

from repro.core.node import SV_ONE, BBDDNode, Edge


def evaluate(edge: Edge, values: Mapping[int, bool]) -> bool:
    """Evaluate the function at a complete assignment ``{var index: bit}``.

    Follows one root-to-sink path: at a chain node take the ``!=``-edge
    when ``values[pv] != values[sv]``; at a literal node the ``=``-edge
    corresponds to ``pv == 1`` (the paper's fictitious SV).  Complement
    attributes along the path toggle the result.
    """
    node, attr = edge
    while not node.is_sink:
        if node.sv == SV_ONE:
            take_neq = not values[node.pv]
        else:
            take_neq = values[node.pv] != values[node.sv]
        if take_neq:
            attr ^= node.neq_attr
            node = node.neq
        else:
            node = node.eq
    return not attr


def reachable_nodes(edges: Iterable[Edge]) -> Set[BBDDNode]:
    """All internal nodes (chain + literal) reachable from ``edges``."""
    seen: Set[BBDDNode] = set()
    stack: List[BBDDNode] = []
    for node, _attr in edges:
        if not node.is_sink and node not in seen:
            seen.add(node)
            stack.append(node)
    while stack:
        node = stack.pop()
        if node.sv == SV_ONE:
            continue
        for child in (node.neq, node.eq):
            if not child.is_sink and child not in seen:
                seen.add(child)
                stack.append(child)
    return seen


def count_nodes(edges: Iterable[Edge]) -> int:
    """Shared node count of a forest (sink excluded, literals included)."""
    return len(reachable_nodes(edges))


def sat_count(manager, edge: Edge) -> int:
    """Number of satisfying assignments over all manager variables."""
    n = manager.num_vars
    order = manager.order
    memo: Dict[BBDDNode, int] = {}

    def node_count(node: BBDDNode) -> int:
        """Count over the variables at positions >= position(node)."""
        cached = memo.get(node)
        if cached is not None:
            return cached
        p = order.position(node.pv)
        span = n - p
        if node.sv == SV_ONE:
            result = 1 << (span - 1)
        else:
            # Each branch fixes pv relative to sv; variables strictly
            # between them in the order (skipped by the support chain)
            # are free, as are those between sv and a child's root.
            q_sv = order.position(node.sv)
            result = 0
            for child, attr in ((node.neq, node.neq_attr), (node.eq, False)):
                if child.is_sink:
                    sub = 0 if attr else (1 << (n - q_sv))
                else:
                    q = order.position(child.pv)
                    sub = node_count(child)
                    if attr:
                        sub = (1 << (n - q)) - sub
                    sub <<= q - q_sv
                result += sub
            result <<= q_sv - (p + 1)
        memo[node] = result
        return result

    node, attr = edge
    if node.is_sink:
        total = 0 if attr else (1 << n)
        return total
    p = order.position(node.pv)
    count = node_count(node)
    if attr:
        count = (1 << (n - p)) - count
    return count << p


def iter_paths(manager, edge: Edge) -> Iterator[Tuple[Dict[int, str], bool]]:
    """Yield ``(constraints, value)`` for every root-to-sink path.

    ``constraints`` maps each couple's PV to ``"=="``/``"!="`` (chain
    nodes) or ``"1"``/``"0"`` (literal nodes); ``value`` is the sink value
    after complement attributes.  Used by the DOT/report tooling and by
    tests that cross-check path semantics.
    """

    def walk(node: BBDDNode, attr: bool, constraints: Dict[int, str]):
        if node.is_sink:
            yield dict(constraints), not attr
            return
        if node.sv == SV_ONE:
            branches = ((node.neq, attr ^ node.neq_attr, "0"), (node.eq, attr, "1"))
        else:
            branches = ((node.neq, attr ^ node.neq_attr, "!="), (node.eq, attr, "=="))
        for child, child_attr, label in branches:
            constraints[node.pv] = label
            yield from walk(child, child_attr, constraints)
            del constraints[node.pv]

    node, attr = edge
    yield from walk(node, attr, {})


def truth_table_mask(manager, edge: Edge, variables: Sequence[int]) -> int:
    """Bitmask truth table of ``edge`` over ``variables``.

    Bit ``i`` of the result is the function value where variable
    ``variables[j]`` takes bit ``j`` of ``i``.  Exponential; intended for
    testing and small-function reporting.
    """
    n = len(variables)
    mask = 0
    values: Dict[int, bool] = {v: False for v in range(manager.num_vars)}
    for i in range(1 << n):
        for j, var in enumerate(variables):
            values[var] = bool((i >> j) & 1)
        if evaluate(edge, values):
            mask |= 1 << i
    return mask


def levelize(manager, edges: Iterable[Edge]) -> List[Tuple[int, List[BBDDNode]]]:
    """Group a forest's nodes by CVO level, deepest level first.

    A node's level is the order position of its primary variable; with
    levels emitted bottom-up, children always precede their parents —
    the write order of the :mod:`repro.io` binary format.  Nodes within
    a level are sorted by uid for deterministic output.
    """
    by_position: Dict[int, List[BBDDNode]] = {}
    position = manager.order.position
    for node in reachable_nodes(edges):
        by_position.setdefault(position(node.pv), []).append(node)
    return [
        (pos, sorted(by_position[pos], key=lambda n: n.uid))
        for pos in sorted(by_position, reverse=True)
    ]


def structural_profile(manager, edges: Iterable[Edge]) -> Dict[str, int]:
    """Summary statistics of a forest (used by reports and examples)."""
    nodes = reachable_nodes(edges)
    chain = sum(1 for n in nodes if n.sv != SV_ONE)
    literal = len(nodes) - chain
    complemented = sum(1 for n in nodes if n.sv != SV_ONE and n.neq_attr)
    return {
        "nodes": len(nodes),
        "chain_nodes": chain,
        "literal_nodes": literal,
        "complemented_neq_edges": complemented,
    }
