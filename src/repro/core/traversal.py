"""Traversals over BBDD forests: evaluation, counting, sat-count, paths.

All functions operate on the owning manager plus bare signed-int edges
of the flat store (``abs(edge)`` = node index, sign = complement
attribute).  Level skipping is handled everywhere: an edge from position
``p`` to a node rooted at position ``q`` leaves the variables at
positions ``p+1 .. q-1`` unconstrained.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.node import SINK, SV_ONE, Edge


def evaluate(manager, edge: Edge, values: Mapping[int, bool]) -> bool:
    """Evaluate the function at a complete assignment ``{var index: bit}``.

    Follows one root-to-sink path: at a chain node take the ``!=``-edge
    when ``values[pv] != values[sv]``; at a literal node the ``=``-edge
    corresponds to ``pv == 1`` (the paper's fictitious SV).  A chain
    span ``(pv, sv:bot)`` tests the parity of ``pv`` and every span
    variable (``sv`` down to ``bot`` in the order) — odd parity takes
    the ``!=``-edge.  Complement attributes along the path toggle the
    result.
    """
    pvl = manager._pv
    svl = manager._sv
    botl = manager._bot
    neql = manager._neq
    eql = manager._eq
    order = manager.order
    attr = edge < 0
    node = -edge if attr else edge
    while node != SINK:
        sv = svl[node]
        if sv == SV_ONE:
            take_neq = not values[pvl[node]]
        elif botl[node] != sv:
            acc = values[pvl[node]]
            for p in range(order.position(sv), order.position(botl[node]) + 1):
                acc ^= values[order.var_at(p)]
            take_neq = acc
        else:
            take_neq = values[pvl[node]] != values[sv]
        if take_neq:
            child = neql[node]
            if child < 0:
                attr = not attr
                node = -child
            else:
                node = child
        else:
            node = eql[node]
    return not attr


def reachable_nodes(manager, edges: Iterable[Edge]) -> Set[int]:
    """All internal node indices (chain + literal) reachable from ``edges``."""
    svl = manager._sv
    neql = manager._neq
    eql = manager._eq
    seen: Set[int] = set()
    stack: List[int] = []
    for edge in edges:
        node = -edge if edge < 0 else edge
        if node != SINK and node not in seen:
            seen.add(node)
            stack.append(node)
    while stack:
        node = stack.pop()
        if svl[node] == SV_ONE:
            continue
        d = neql[node]
        for child in (-d if d < 0 else d, eql[node]):
            if child != SINK and child not in seen:
                seen.add(child)
                stack.append(child)
    return seen


def count_nodes(manager, edges: Iterable[Edge]) -> int:
    """Shared node count of a forest (sink excluded, literals included)."""
    return len(reachable_nodes(manager, edges))


def sat_count(manager, edge: Edge) -> int:
    """Number of satisfying assignments over all manager variables.

    Iterative post-order with memoization, so arbitrarily deep chains
    count without touching the Python recursion limit.
    """
    n = manager.num_vars
    order = manager.order
    pvl = manager._pv
    svl = manager._sv
    neql = manager._neq
    eql = manager._eq
    memo: Dict[int, int] = {}

    def compute(node: int) -> int:
        """Count over the variables at positions >= position(node);
        requires both non-sink children to be memoized already."""
        p = order.position(pvl[node])
        span = n - p
        if svl[node] == SV_ONE:
            result = 1 << (span - 1)
        else:
            # Each branch fixes pv relative to sv; variables strictly
            # between them in the order (skipped by the support chain)
            # are free, as are those between sv and a child's root.
            q_sv = order.position(svl[node])
            result = 0
            d = neql[node]
            for child, attr in ((-d if d < 0 else d, d < 0), (eql[node], False)):
                if child == SINK:
                    sub = 0 if attr else (1 << (n - q_sv))
                else:
                    q = order.position(pvl[child])
                    sub = memo[child]
                    if attr:
                        sub = (1 << (n - q)) - sub
                    sub <<= q - q_sv
                result += sub
            result <<= q_sv - (p + 1)
        return result

    attr = edge < 0
    node = -edge if attr else edge
    if node == SINK:
        return 0 if attr else (1 << n)
    stack: List[int] = [node]
    while stack:
        top = stack[-1]
        if top in memo:
            stack.pop()
            continue
        d = neql[top]
        pending = [
            c
            for c in (-d if d < 0 else d, eql[top])
            if c != SINK and c not in memo
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        memo[top] = compute(top)
    p = order.position(pvl[node])
    count = memo[node]
    if attr:
        count = (1 << (n - p)) - count
    return count << p


def iter_paths(
    manager, edge: Edge
) -> Iterator[Tuple[Dict[int, Tuple[str, Optional[int]]], bool]]:
    """Yield ``(constraints, value)`` for every root-to-sink path.

    ``constraints`` maps each couple's PV to ``(rel, sv)``: ``rel`` is
    ``"=="``/``"!="`` for chain nodes (with ``sv`` the couple partner
    *actually on the path* — under the support-chained CVO this is the
    function's next support variable, not necessarily the global order's
    neighbour) or ``"1"``/``"0"`` for literal nodes (``sv`` is None).
    A chain span's constraint carries a *tuple* of partner variables
    (``sv`` down to ``bot``): ``"!="`` means odd parity of PV plus the
    partners, ``"=="`` even parity.
    ``value`` is the sink value after complement attributes.  Iterative
    (explicit DFS stack), so arbitrarily deep chains enumerate without
    touching the Python recursion limit.
    """
    pvl = manager._pv
    svl = manager._sv
    botl = manager._bot
    neql = manager._neq
    eql = manager._eq
    order = manager.order
    stack: List[Tuple[int, bool, dict]] = [(-edge if edge < 0 else edge, edge < 0, {})]
    while stack:
        node, attr, constraints = stack.pop()
        if node == SINK:
            yield constraints, not attr
            continue
        d = neql[node]
        dn = -d if d < 0 else d
        sv = svl[node]
        if sv == SV_ONE:
            branches = (
                (dn, attr ^ (d < 0), ("0", None)),
                (eql[node], attr, ("1", None)),
            )
        elif botl[node] != sv:
            partners = tuple(
                order.var_at(p)
                for p in range(
                    order.position(sv), order.position(botl[node]) + 1
                )
            )
            branches = (
                (dn, attr ^ (d < 0), ("!=", partners)),
                (eql[node], attr, ("==", partners)),
            )
        else:
            branches = (
                (dn, attr ^ (d < 0), ("!=", sv)),
                (eql[node], attr, ("==", sv)),
            )
        # Push the =-branch first so the !=-branch is explored first,
        # matching the historical (recursive) enumeration order.
        pv = pvl[node]
        for child, child_attr, label in reversed(branches):
            extended = dict(constraints)
            extended[pv] = label
            stack.append((child, child_attr, extended))


def find_sat_path(manager, edge: Edge, want: bool = True) -> Optional[List[tuple]]:
    """One root-to-sink path on which the function evaluates to ``want``.

    Returns the path as ``(pv, sv, rel)`` triples (root first) with
    ``rel`` in ``{"0", "1", "==", "!="}`` and ``sv`` the couple partner on
    the path (None for literal nodes, a tuple of partner variables for
    chain spans — parity semantics as in :func:`iter_paths`), or None
    when no such path exists.

    Runs in O(depth): every internal node of a canonical BBDD denotes a
    non-constant function, so descending into *any* non-sink child keeps
    both outcomes reachable; only sink children need their parity checked.
    """
    pvl = manager._pv
    svl = manager._sv
    botl = manager._bot
    neql = manager._neq
    eql = manager._eq
    order = manager.order
    attr = edge < 0
    node = -edge if attr else edge
    if node == SINK:
        return [] if (not attr) == want else None
    path: List[tuple] = []
    while True:
        d = neql[node]
        dn = -d if d < 0 else d
        sv = svl[node]
        if sv == SV_ONE:
            branches = (
                (dn, attr ^ (d < 0), "0", None),
                (eql[node], attr, "1", None),
            )
        else:
            if botl[node] != sv:
                sv = tuple(
                    order.var_at(p)
                    for p in range(
                        order.position(sv), order.position(botl[node]) + 1
                    )
                )
            branches = (
                (dn, attr ^ (d < 0), "!=", sv),
                (eql[node], attr, "==", sv),
            )
        descend = None
        for child, child_attr, rel, csv in branches:
            if child == SINK:
                if (not child_attr) == want:
                    path.append((pvl[node], csv, rel))
                    return path
            elif descend is None:
                descend = (child, child_attr, rel, csv)
        if descend is None:
            # Both children are sinks of the wrong parity — impossible for
            # a canonical (non-constant) node; defensive for corrupt DAGs.
            return None
        child, attr, rel, csv = descend
        path.append((pvl[node], csv, rel))
        node = child


def truth_table_mask(manager, edge: Edge, variables: Sequence[int]) -> int:
    """Bitmask truth table of ``edge`` over ``variables``.

    Bit ``i`` of the result is the function value where variable
    ``variables[j]`` takes bit ``j`` of ``i``.  Exponential; intended for
    testing and small-function reporting.
    """
    n = len(variables)
    mask = 0
    values: Dict[int, bool] = {v: False for v in range(manager.num_vars)}
    for i in range(1 << n):
        for j, var in enumerate(variables):
            values[var] = bool((i >> j) & 1)
        if evaluate(manager, edge, values):
            mask |= 1 << i
    return mask


def levelize(manager, edges: Iterable[Edge]) -> List[Tuple[int, List[int]]]:
    """Group a forest's node indices by CVO level, deepest level first.

    A node's level is the order position of its primary variable; with
    levels emitted bottom-up, children always precede their parents —
    the write order of the :mod:`repro.io` binary format.  Nodes within
    a level are sorted by index for deterministic output.
    """
    by_position: Dict[int, List[int]] = {}
    position = manager.order.position
    pvl = manager._pv
    for node in reachable_nodes(manager, edges):
        by_position.setdefault(position(pvl[node]), []).append(node)
    return [
        (pos, sorted(by_position[pos]))
        for pos in sorted(by_position, reverse=True)
    ]


def iter_cohort_items(manager, edge: Edge) -> Iterator[tuple]:
    """Yield ``edge``'s nodes top-down as cohort-sweep items.

    The item shape is documented in :mod:`repro.serve.bulk`:
    ``(key, pv, sv, t_key, t_flip, t_pv, f_key, f_flip, f_pv)`` with
    the *t*-branch taken where the node's test holds (``pv != sv`` on
    chain nodes, ``pv`` on literal nodes, whose ``sv`` slot is
    ``None``; chain spans put a *tuple* of partner variables in the
    ``sv`` slot — the test is odd parity of ``pv`` plus the partners).
    Keys are the flat store's node indices (sink children
    are None).  Built on :func:`levelize` reversed — children live at
    strictly deeper CVO positions, so parents are always emitted first,
    which is the only ordering the sweep needs.
    """
    pvl = manager._pv
    svl = manager._sv
    botl = manager._bot
    neql = manager._neq
    eql = manager._eq
    order = manager.order
    for _pos, nodes in reversed(levelize(manager, [edge])):
        for node in nodes:
            d = neql[node]
            neq = -d if d < 0 else d
            eq = eql[node]
            if svl[node] == SV_ONE:
                # Literal (R4) node: test is the variable itself; the
                # ``=``-edge (pv == 1) is the regular sink, the
                # ``!=``-edge the complemented one.
                yield (
                    node,
                    pvl[node],
                    None,
                    None if eq == SINK else eq,
                    False,
                    None if eq == SINK else pvl[eq],
                    None if neq == SINK else neq,
                    d < 0,
                    None if neq == SINK else pvl[neq],
                )
            else:
                sv = svl[node]
                if botl[node] != sv:
                    sv = tuple(
                        order.var_at(p)
                        for p in range(
                            order.position(sv),
                            order.position(botl[node]) + 1,
                        )
                    )
                yield (
                    node,
                    pvl[node],
                    sv,
                    None if neq == SINK else neq,
                    d < 0,
                    None if neq == SINK else pvl[neq],
                    None if eq == SINK else eq,
                    False,
                    None if eq == SINK else pvl[eq],
                )


def structural_profile(manager, edges: Iterable[Edge]) -> Dict[str, int]:
    """Summary statistics of a forest (used by reports and examples)."""
    svl = manager._sv
    botl = manager._bot
    neql = manager._neq
    nodes = reachable_nodes(manager, edges)
    chain = sum(1 for n in nodes if svl[n] != SV_ONE)
    literal = len(nodes) - chain
    complemented = sum(1 for n in nodes if svl[n] != SV_ONE and neql[n] < 0)
    spans = sum(
        1 for n in nodes if svl[n] != SV_ONE and botl[n] != svl[n]
    )
    return {
        "nodes": len(nodes),
        "chain_nodes": chain,
        "literal_nodes": literal,
        "span_nodes": spans,
        "complemented_neq_edges": complemented,
    }
