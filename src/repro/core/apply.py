"""Extended Boolean operations built on the iterative apply engine.

The two-operand core lives in
:meth:`repro.core.manager.BBDDManager.apply_edges`; this module adds the
derived operations a manipulation package is expected to provide, each as
a **native, memoized, iterative** procedure that hits the manager's
computed table directly with tagged cache keys (instead of the historical
restrict-chain formulations that expanded ``ite`` into three applies and
``exists`` into two full restricts plus an OR per variable):

* :func:`ite` — if-then-else over a three-operand biconditional
  expansion;
* :func:`restrict` — cofactor w.r.t. a variable assignment (the
  biconditional analogue of the Shannon cofactor: restricting either
  member of a couple re-expresses the branching condition over the
  surviving variable);
* :func:`compose` — substitute a function for a variable (two cached
  restricts + one cached ite);
* :func:`exists` / :func:`forall` — Boolean quantification, using that a
  couple's branches are disjoint, so quantifying either couple member
  reduces to ``d <op> e`` on the children;
* :func:`support` — the true functional support (note: in a BBDD the set
  of primary variables of reachable nodes is *not* the support, because a
  secondary variable can cancel along both branches).

Everything here works on the flat store's signed-int edges: ``abs(edge)``
is the node index, the sign the complement attribute, so attribute
algebra is plain integer arithmetic.  All procedures use explicit stacks
(no recursion on diagram depth) and run inside the manager's operation
guard, so automatic GC never reclaims their intermediates; tagged keys
share the computed table with apply and are invalidated with it on
GC/reordering.  With the ``disabled`` computed backend they fall back to
a per-call memo (the ablation switch targets apply, and an unmemoized
restrict would be exponential).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.computed_table import DisabledComputedTable
from repro.core.exceptions import BBDDError
from repro.core.node import SINK, SV_ONE, Edge
from repro.core.operations import OP_AND, OP_OR, OP_XNOR

#: Computed-table tags for the derived operations.  Two-operand apply
#: keys are 3-tuples ``(f, g, op)`` with ``op`` in 0..15; tagged keys use
#: distinct leading ints >= 16 (and different tuple lengths), so the key
#: families can never collide.
TAG_ITE = 16
TAG_RESTRICT = 17
TAG_QUANT = 18
TAG_ANDEX = 19

_CALL = 0
_COMBINE = 1
_COMBINE_ITE = 2
# and_exists lazy-OR frames: the second disjunct is only computed when
# the first one fails to short-circuit the disjunction to TRUE.
_ANDEX_ELSE = 4
_ANDEX_ELSE_SPLIT = 5
_ANDEX_OR = 6


def _memo_fns(manager):
    """(lookup, insert) on the manager's computed table.

    The ``disabled`` ablation backend memoizes nothing, which would make
    the linear-time procedures below exponential — fall back to a
    per-call dict there.
    """
    cache = manager._cache
    if isinstance(cache, DisabledComputedTable):
        local: dict = {}
        return local.get, local.__setitem__
    return cache.lookup, cache.insert


def ite(manager, f: Edge, g: Edge, h: Edge) -> Edge:
    """If-then-else ``f ? g : h`` as a native three-operand expansion.

    Iterative over an explicit pending-frame stack with memoization
    keyed ``(TAG_ITE, f, g, h)`` on signed edges (the complement on
    ``f`` is normalized away by swapping the branches).  Constant and
    degenerate operands collapse to a single two-operand apply.
    """
    manager._in_op += 1
    try:
        result = _ite_iter(manager, f, g, h)
    finally:
        manager._in_op -= 1
    manager._maybe_gc_protect(result)
    return result


def _ite_iter(manager, f: Edge, g: Edge, h: Edge) -> Edge:
    lookup, insert = _memo_fns(manager)
    position = manager._order.position
    cofactors = manager._cofactors
    make = manager._make
    apply_edges = manager.apply_edges
    pvl = manager._pv
    svl = manager._sv
    results: List[Edge] = []
    rpush = results.append
    rpop = results.pop
    tasks: List[tuple] = [(_CALL, f, g, h)]
    tpush = tasks.append
    tpop = tasks.pop
    while tasks:
        tag, a, b, c = tpop()
        if tag == _COMBINE:
            d = rpop()
            e = rpop()
            result = make(a[0], a[1], d, e)
            insert(b, result)
            rpush(result)
            continue
        f, g, h = a, b, c
        if f < 0:
            # ite(~f', g, h) == ite(f', h, g).
            f = -f
            g, h = h, g
        # -- terminal / degenerate cases ----------------------------------
        if f == SINK:  # f == TRUE (complement already folded)
            rpush(g)
            continue
        if g == h:
            rpush(g)
            continue
        if g == -h:
            # ite(f, g, ~g) == f XNOR g.
            rpush(apply_edges(f, g, OP_XNOR))
            continue
        if g == -1:  # g == FALSE: ~f AND h
            rpush(apply_edges(-f, h, OP_AND))
            continue
        if g == 1:  # g == TRUE: f OR h
            rpush(apply_edges(f, h, OP_OR))
            continue
        if h == -1:  # h == FALSE: f AND g
            rpush(apply_edges(f, g, OP_AND))
            continue
        if h == 1:  # h == TRUE: ~f OR g
            rpush(apply_edges(-f, g, OP_OR))
            continue

        key = (TAG_ITE, f, g, h)
        cached = lookup(key)
        if cached is not None:
            rpush(cached)
            continue

        # -- three-operand biconditional expansion ------------------------
        # The couple's branches partition the space, so the expansion
        # distributes over all three operands simultaneously.
        gn = -g if g < 0 else g
        hn = -h if h < 0 else h
        v = pvl[f]
        v_pos = position(v)
        for node in (gn, hn):
            p = position(pvl[node])
            if p < v_pos:
                v, v_pos = pvl[node], p
        w = None
        w_pos = manager.num_vars + 1
        for node in (f, gn, hn):
            cand = svl[node] if pvl[node] == v else pvl[node]
            if cand == SV_ONE:
                continue
            cand_pos = position(cand)
            if cand_pos < w_pos:
                w, w_pos = cand, cand_pos
        if w is None:  # pragma: no cover - ruled out by the terminal cases
            raise BBDDError("no expansion SV: all ITE operands literal at v")
        f_nq, f_eq = cofactors(f, v, w)
        g_nq, g_eq = cofactors(gn, v, w)
        h_nq, h_eq = cofactors(hn, v, w)
        if g < 0:
            g_nq = -g_nq
            g_eq = -g_eq
        if h < 0:
            h_nq = -h_nq
            h_eq = -h_eq
        tpush((_COMBINE, (v, w), key, None))
        tpush((_CALL, f_nq, g_nq, h_nq))
        tpush((_CALL, f_eq, g_eq, h_eq))
    return results[-1]


def restrict(manager, edge: Edge, var, value: bool) -> Edge:
    """Cofactor ``f`` with ``var = value``.

    Three structural cases per node (couple ``(v, w)``):

    * ``v == var`` — the branching condition collapses onto ``w``:
      ``f|v=c = ITE(w, f_eq, f_neq)`` if ``c == 1`` else with the branches
      swapped (for literal nodes the cofactor is the constant);
    * ``w == var`` — both the condition and the children mention ``var``:
      restrict the children, then ``f|w=c = ITE(v, ..)``;
    * otherwise — restrict the children and rebuild the node in place.

    Restriction commutes with complement, so memo entries are keyed on
    the bare node (``(TAG_RESTRICT, index, var, value)``) and the
    incoming sign is re-applied at the end.  Subgraphs whose support mask
    does not contain ``var`` are returned untouched.
    """
    var = manager.var_index(var)
    root = -edge if edge < 0 else edge
    manager._in_op += 1
    try:
        result = _restrict_iter(manager, root, var, bool(value))
    finally:
        manager._in_op -= 1
    if edge < 0:
        result = -result
    manager._maybe_gc_protect(result)
    return result


def _restrict_iter(manager, root: int, var: int, value: bool) -> Edge:
    bit = 1 << var
    suppl = manager._supp
    if not suppl[root] & bit:
        return root
    lookup, insert = _memo_fns(manager)
    make = manager._make
    pvl = manager._pv
    svl = manager._sv
    botl = manager._bot
    neql = manager._neq
    eql = manager._eq
    span_tail = manager._span_tail
    results: List[Edge] = []
    rpush = results.append
    rpop = results.pop
    # _CALL frames carry a node index; combine frames carry the virtual
    # couple ``(pv, sv, d_neg, e_neg)`` instead, so span nodes (whose
    # stored children are not the couple's children) expand uniformly.
    tasks: List[tuple] = [(_CALL, root, None)]
    tpush = tasks.append
    tpop = tasks.pop
    while tasks:
        tag, node, key = tpop()
        if tag == _CALL:
            if not suppl[node] & bit:
                rpush(node)
                continue
            key = (TAG_RESTRICT, node, var, value)
            cached = lookup(key)
            if cached is not None:
                rpush(cached)
                continue
            pv = pvl[node]
            sv = svl[node]
            if sv == SV_ONE:
                # supp == {pv} and var in supp, so this is lit(var).
                result = SINK if value else -SINK
                insert(key, result)
                rpush(result)
                continue
            if botl[node] != sv:
                # Span (pv, sv:bot, -T, T): behave as the virtual couple
                # (pv, sv) over the span tail T.  ``var`` may be pv, sv
                # or any span middle — the middle case recurses into T,
                # which mentions it.
                t = span_tail(node)
                d, e = -t, t
            else:
                d = neql[node]
                e = eql[node]
            if pv == var:
                # Children never mention pv: collapse the condition on sv.
                w_lit = manager.literal_edge(sv)
                result = (
                    ite(manager, w_lit, e, d)
                    if value
                    else ite(manager, w_lit, d, e)
                )
                insert(key, result)
                rpush(result)
                continue
            combine = _COMBINE_ITE if sv == var else _COMBINE
            tpush((combine, (pv, sv, d < 0, e < 0), key))
            tpush((_CALL, -d if d < 0 else d, None))
            tpush((_CALL, -e if e < 0 else e, None))
            continue
        pv, sv, d_neg, e_neg = node
        d2 = rpop()
        e2 = rpop()
        if d_neg:
            d2 = -d2
        if e_neg:
            e2 = -e2
        if tag == _COMBINE_ITE:
            v_lit = manager.literal_edge(pv)
            result = (
                ite(manager, v_lit, e2, d2)
                if value
                else ite(manager, v_lit, d2, e2)
            )
        else:
            result = make(pv, sv, d2, e2)
        insert(key, result)
        rpush(result)
    return results[-1]


def compose(manager, edge: Edge, var, g: Edge) -> Edge:
    """Substitute the function ``g`` for variable ``var`` in ``f``."""
    manager._in_op += 1
    try:
        f1 = restrict(manager, edge, var, True)
        f0 = restrict(manager, edge, var, False)
        result = ite(manager, g, f1, f0)
    finally:
        manager._in_op -= 1
    manager._maybe_gc_protect(result)
    return result


def exists(manager, edge: Edge, variables) -> Edge:
    """Existential quantification over ``variables``."""
    return _quantify(manager, edge, variables, OP_OR)


def forall(manager, edge: Edge, variables) -> Edge:
    """Universal quantification over ``variables``."""
    return _quantify(manager, edge, variables, OP_AND)


def _quantify(manager, edge: Edge, variables, op: int) -> Edge:
    manager._in_op += 1
    try:
        result = edge
        for var in _as_iterable(variables):
            result = _quantify_iter(manager, result, manager.var_index(var), op)
    finally:
        manager._in_op -= 1
    manager._maybe_gc_protect(result)
    return result


def _quantify_iter(manager, edge: Edge, var: int, op: int) -> Edge:
    """Quantify one variable natively over the biconditional expansion.

    At a couple ``(v, w)`` the two branches are disjoint, so for any
    combining operator ``Q f = (f|var=0) <op> (f|var=1)`` distributes
    through the expansion; when ``var`` is either couple member both
    cofactors select the same pair of children and the node reduces to
    ``d <op> e`` directly.  Quantification does *not* commute with
    complement, so memo keys carry the edge sign:
    ``(TAG_QUANT, index, attr, var, op)``.
    """
    bit = 1 << var
    suppl = manager._supp
    root = -edge if edge < 0 else edge
    if not suppl[root] & bit:
        return edge
    lookup, insert = _memo_fns(manager)
    make = manager._make
    apply_edges = manager.apply_edges
    pvl = manager._pv
    svl = manager._sv
    botl = manager._bot
    neql = manager._neq
    eql = manager._eq
    span_tail = manager._span_tail
    results: List[Edge] = []
    rpush = results.append
    rpop = results.pop
    tasks: List[tuple] = [(_CALL, root, edge < 0, None)]
    tpush = tasks.append
    tpop = tasks.pop
    while tasks:
        tag, node, attr, key = tpop()
        if tag == _CALL:
            if not suppl[node] & bit:
                rpush(-node if attr else node)
                continue
            key = (TAG_QUANT, node, attr, var, op)
            cached = lookup(key)
            if cached is not None:
                rpush(cached)
                continue
            if svl[node] != SV_ONE and botl[node] != svl[node]:
                # Span (pv, sv:bot, -T, T): quantify the virtual couple
                # (pv, sv) whose children are -T / T (span middles live
                # inside T, so the generic recursion reaches them).
                t = span_tail(node)
                d0, e0 = -t, t
            else:
                d0, e0 = neql[node], eql[node]
            d = -d0 if attr else d0
            e = -e0 if attr else e0
            if pvl[node] == var:
                # Children never mention the primary variable, and the
                # same surviving condition selects both cofactors:
                # Q f = (sv ? d : e) <op> (sv ? e : d) = d <op> e
                # (for the literal node this is the constant op(0, 1)).
                result = apply_edges(d, e, op)
                insert(key, result)
                rpush(result)
                continue
            if svl[node] == var:
                # The children still depend on the secondary variable, so
                # the cofactors do not collapse — combine two (cached)
                # native restricts.
                signed = -node if attr else node
                f0 = restrict(manager, signed, var, False)
                f1 = restrict(manager, signed, var, True)
                result = apply_edges(f0, f1, op)
                insert(key, result)
                rpush(result)
                continue
            tpush((_COMBINE, node, attr, key))
            tpush((_CALL, -d if d < 0 else d, d < 0, None))
            tpush((_CALL, -e if e < 0 else e, e < 0, None))
            continue
        d2 = rpop()
        e2 = rpop()
        result = make(pvl[node], svl[node], d2, e2)
        insert(key, result)
        rpush(result)
    return results[-1]


def and_exists(manager, f: Edge, g: Edge, variables) -> Edge:
    """Relational product ``exists variables . f & g`` in one fused pass.

    The workhorse of symbolic image computation (:mod:`repro.reach`):
    instead of materializing the conjunction and then quantifying —
    whose intermediate can dwarf both the operands and the result —
    one memoized sweep expands both operands together over the
    biconditional couple ``(v, w)`` and folds the quantifier in at the
    expansion point:

    * ``v`` quantified (``w`` not) — the couple's branches are disjoint
      and neither mentions ``v``, so
      ``E v . f&g = (f_nq & g_nq) | (f_eq & g_eq)`` — recurse on both
      cofactor pairs and OR the results (existentials distribute over
      the disjunction);
    * ``w`` quantified — the branching *condition* itself mentions
      ``w``, which the couple structure cannot absorb: Shannon-split
      both operands on ``w`` (two cached restricts each) and OR the
      recursive halves;
    * neither quantified — rebuild the couple over the recursive
      children (every effective quantified variable lies strictly
      below ``w``: positions between ``v`` and ``w`` are support-free
      by the chained-CVO selection of ``w``).

    Memoized ``(TAG_ANDEX, f, g, vmask)`` with the commutative operands
    in canonical order; subgraphs whose combined support misses the
    quantified set collapse to a plain cached AND.
    """
    indices = sorted({manager.var_index(v) for v in _as_iterable(variables)})
    if not indices:
        return manager.apply_edges(f, g, OP_AND)
    vmask = 0
    for index in indices:
        vmask |= 1 << index
    manager._in_op += 1
    try:
        result = _and_exists_iter(manager, f, g, indices, vmask)
    finally:
        manager._in_op -= 1
    manager._maybe_gc_protect(result)
    return result


def _and_exists_iter(manager, f: Edge, g: Edge, vlist, vmask: int) -> Edge:
    lookup, insert = _memo_fns(manager)
    position = manager._order.position
    cofactors = manager._cofactors
    make = manager._make
    apply_edges = manager.apply_edges
    pvl = manager._pv
    svl = manager._sv
    suppl = manager._supp
    results: List[Edge] = []
    rpush = results.append
    rpop = results.pop
    tasks: List[tuple] = [(_CALL, f, g)]
    tpush = tasks.append
    tpop = tasks.pop
    while tasks:
        tag, a, b = tpop()
        if tag == _COMBINE:
            d = rpop()
            e = rpop()
            result = make(a[0], a[1], d, e)
            insert(b, result)
            rpush(result)
            continue
        if tag == _ANDEX_ELSE:
            first = rpop()
            if first == SINK:
                # E x . anything | TRUE: the second disjunct is moot.
                insert(b, SINK)
                rpush(SINK)
                continue
            tpush((_ANDEX_OR, first, b))
            tpush((_CALL, a[0], a[1]))
            continue
        if tag == _ANDEX_ELSE_SPLIT:
            first = rpop()
            if first == SINK:
                # Short-circuit before even restricting the other half.
                insert(b, SINK)
                rpush(SINK)
                continue
            tpush((_ANDEX_OR, first, b))
            tpush((
                _CALL,
                restrict(manager, a[0], a[2], False),
                restrict(manager, a[1], a[2], False),
            ))
            continue
        if tag == _ANDEX_OR:
            second = rpop()
            result = apply_edges(a, second, OP_OR)
            insert(b, result)
            rpush(result)
            continue
        f, g = a, b
        if f > g:  # AND commutes: canonical operand order for the memo.
            f, g = g, f
        # -- terminal cases -----------------------------------------------
        if f == -SINK or g == -SINK or f == -g:
            rpush(-SINK)
            continue
        if f == g:
            rpush(exists(manager, f, vlist))
            continue
        if f == SINK:
            rpush(exists(manager, g, vlist))
            continue
        if g == SINK:
            rpush(exists(manager, f, vlist))
            continue
        fn = -f if f < 0 else f
        gn = -g if g < 0 else g
        if not (suppl[fn] | suppl[gn]) & vmask:
            rpush(apply_edges(f, g, OP_AND))
            continue

        key = (TAG_ANDEX, f, g, vmask)
        cached = lookup(key)
        if cached is not None:
            rpush(cached)
            continue

        # -- fused biconditional expansion (top couple as in _ite_iter) ---
        v = pvl[fn]
        v_pos = position(v)
        p = position(pvl[gn])
        if p < v_pos:
            v, v_pos = pvl[gn], p
        w = None
        w_pos = manager.num_vars + 1
        for node in (fn, gn):
            cand = svl[node] if pvl[node] == v else pvl[node]
            if cand == SV_ONE:
                continue
            cand_pos = position(cand)
            if cand_pos < w_pos:
                w, w_pos = cand, cand_pos
        if w is None:  # pragma: no cover - both-literal cases hit f == +-g
            raise BBDDError("no expansion SV: both operands literal at v")
        if vmask >> w & 1 and not vmask >> v & 1:
            # Only the surviving condition variable is quantified: the
            # couple structure cannot absorb a quantifier on its own
            # condition, so Shannon-split both operands on w with cached
            # restricts and OR the halves — lazily, so a TRUE first half
            # skips the second half's restricts and recursion entirely.
            # (With v quantified too the couple expansion below already
            # covers w — E v alone makes both branches reachable for
            # every w value.)
            tpush((_ANDEX_ELSE_SPLIT, (f, g, w), key))
            tpush((
                _CALL,
                restrict(manager, f, w, True),
                restrict(manager, g, w, True),
            ))
            continue
        f_nq, f_eq = cofactors(fn, v, w)
        g_nq, g_eq = cofactors(gn, v, w)
        if f < 0:
            f_nq = -f_nq
            f_eq = -f_eq
        if g < 0:
            g_nq = -g_nq
            g_eq = -g_eq
        if vmask >> v & 1:
            # Disjoint branches, neither mentioning v: E v collapses to
            # the OR of the branch conjunctions (w, quantified or not,
            # stays free in the cofactors and recurses on) — again
            # lazily: a TRUE ==-half short-circuits the !=-half.
            tpush((_ANDEX_ELSE, (f_nq, g_nq), key))
            tpush((_CALL, f_eq, g_eq))
        else:
            tpush((_COMBINE, (v, w), key))
            tpush((_CALL, f_nq, g_nq))
            tpush((_CALL, f_eq, g_eq))
    return results[-1]


def support(manager, edge: Edge) -> frozenset:
    """Variables ``f`` truly depends on (as indices).

    Under the support-chained canonical form every node carries an exact
    support mask (couples pair consecutive support variables, so no
    cancellation survives reduction); the mask is read off the root.
    """
    result = set()
    mask = manager._supp[-edge if edge < 0 else edge]
    var = 0
    while mask:
        if mask & 1:
            result.add(var)
        mask >>= 1
        var += 1
    return frozenset(result)


def _as_iterable(variables) -> Iterable:
    if isinstance(variables, (int, str)):
        return (variables,)
    return tuple(variables)
