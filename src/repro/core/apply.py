"""Extended Boolean operations built on Algorithm 1.

The recursive two-operand core lives in
:meth:`repro.core.manager.BBDDManager.apply_edges`; this module adds the
derived operations a manipulation package is expected to provide:

* :func:`ite` — if-then-else;
* :func:`restrict` — cofactor w.r.t. a variable assignment (the
  biconditional analogue of the Shannon cofactor: restricting either
  member of a couple re-expresses the branching condition over the
  surviving variable);
* :func:`compose` — substitute a function for a variable;
* :func:`exists` / :func:`forall` — Boolean quantification;
* :func:`support` — the true functional support (note: in a BBDD the set
  of primary variables of reachable nodes is *not* the support, because a
  secondary variable can cancel along both branches).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.core.node import SV_ONE, BBDDNode, Edge
from repro.core.operations import OP_AND, OP_OR


def ite(manager, f: Edge, g: Edge, h: Edge) -> Edge:
    """If-then-else: ``f ? g : h`` == (f AND g) OR (NOT f AND h)."""
    fg = manager.apply_edges(f, g, OP_AND)
    fh = manager.apply_edges((f[0], not f[1]), h, OP_AND)
    return manager.apply_edges(fg, fh, OP_OR)


def restrict(manager, edge: Edge, var, value: bool) -> Edge:
    """Cofactor ``f`` with ``var = value``.

    Three structural cases per node (couple ``(v, w)`` at position ``p``):

    * ``v == var`` — the branching condition collapses onto ``w``:
      ``f|v=c = ITE(w, f_eq, f_neq)`` if ``c == 1`` else with the branches
      swapped (for literal nodes the cofactor is the constant).
    * ``w == var`` — both the condition and the children mention ``var``:
      restrict the children, then ``f|w=c = ITE(v, ..)``.
    * otherwise — restrict the children and rebuild the node in place.
    """
    var = manager.var_index(var)
    var_pos = manager.order.position(var)
    order = manager.order
    memo: Dict[Tuple[int, bool], Edge] = {}

    def rec(node: BBDDNode, attr: bool) -> Edge:
        if node.is_sink or order.position(node.pv) > var_pos:
            return (node, attr)
        key = (node.uid, attr)
        cached = memo.get(key)
        if cached is not None:
            return cached
        pv = node.pv
        if node.sv == SV_ONE:
            if pv == var:
                result = (manager.sink, attr ^ (not value))
            else:
                result = (node, attr)
            memo[key] = result
            return result
        d: Edge = (node.neq, attr ^ node.neq_attr)
        e: Edge = (node.eq, attr)
        sv = node.sv
        if pv == var:
            w_lit = manager.literal_edge(sv)
            result = ite(manager, w_lit, e, d) if value else ite(manager, w_lit, d, e)
        elif sv == var:
            d2 = rec(d[0], d[1])
            e2 = rec(e[0], e[1])
            v_lit = manager.literal_edge(pv)
            result = ite(manager, v_lit, e2, d2) if value else ite(manager, v_lit, d2, e2)
        else:
            d2 = rec(d[0], d[1])
            e2 = rec(e[0], e[1])
            result = manager._make(pv, node.sv, d2, e2)
        memo[key] = result
        return result

    return rec(edge[0], edge[1])


def compose(manager, edge: Edge, var, g: Edge) -> Edge:
    """Substitute the function ``g`` for variable ``var`` in ``f``."""
    f1 = restrict(manager, edge, var, True)
    f0 = restrict(manager, edge, var, False)
    return ite(manager, g, f1, f0)


def exists(manager, edge: Edge, variables) -> Edge:
    """Existential quantification over ``variables``."""
    result = edge
    for var in _as_iterable(variables):
        f1 = restrict(manager, result, var, True)
        f0 = restrict(manager, result, var, False)
        result = manager.apply_edges(f1, f0, OP_OR)
    return result


def forall(manager, edge: Edge, variables) -> Edge:
    """Universal quantification over ``variables``."""
    result = edge
    for var in _as_iterable(variables):
        f1 = restrict(manager, result, var, True)
        f0 = restrict(manager, result, var, False)
        result = manager.apply_edges(f1, f0, OP_AND)
    return result


def support(manager, edge: Edge) -> frozenset:
    """Variables ``f`` truly depends on (as indices).

    Under the support-chained canonical form every node carries an exact
    support mask (couples pair consecutive support variables, so no
    cancellation survives reduction); the mask is read off the root.
    """
    node, _attr = edge
    result = set()
    mask = node.supp
    var = 0
    while mask:
        if mask & 1:
            result.add(var)
        mask >>= 1
        var += 1
    return frozenset(result)


def _as_iterable(variables) -> Iterable:
    if isinstance(variables, (int, str)):
        return (variables,)
    return tuple(variables)
