"""Cantor-pairing hash machinery (Sec. IV-A3 of the paper).

The core hashing function of all BBDD tables is the Cantor pairing
function between two natural numbers (paper Eq. 4)::

    C(i, j) = (i + j) * (i + j + 1) / 2 + i

a bijection N0 x N0 -> N0 and hence a perfect hash.  Tuples are hashed by
*nested* Cantor pairings, a first modulo with a large prime ``m`` keeps the
integers machine-sized while limiting collision frequency, and a second
modulo resizes the result to the current table size.

The :class:`AdaptiveHashController` implements the paper's dynamic policy:
the data-structure size and the hash function are changed on the basis of a
``{size x access-time}`` quality metric — when garbage collection and table
resizing no longer keep the average probe length acceptable, the hash
function itself is modified (re-ordering the nested pairings and re-sizing
the prime ``m``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: The paper's example large prime for the first modulo reduction.
DEFAULT_PRIME = 15485863

#: Alternative primes the adaptive policy may re-size ``m`` to.  All are
#: genuinely prime (they bracket DEFAULT_PRIME at various magnitudes).
PRIME_LADDER = (
    999983,
    1999993,
    4999999,
    7999993,
    15485863,
    32452843,
    49979687,
    67867967,
    86028121,
)


def cantor(i: int, j: int) -> int:
    """Cantor pairing C(i, j): a bijection from N0 x N0 to N0."""
    s = i + j
    return (s * (s + 1)) // 2 + i


def cantor_unpair(z: int) -> tuple[int, int]:
    """Inverse of :func:`cantor` (used by tests to certify bijectivity)."""
    # Largest w with w (w + 1) / 2 <= z, via integer square root.
    w = (_isqrt(8 * z + 1) - 1) // 2
    t = (w * (w + 1)) // 2
    i = z - t
    j = w - i
    return i, j


def _isqrt(n: int) -> int:
    import math

    return math.isqrt(n)


def cantor_tuple(values: Sequence[int], prime: int = DEFAULT_PRIME) -> int:
    """Hash a tuple by left-nested Cantor pairings with modulo reduction.

    ``C(...C(C(v0, v1) % m, v2) % m..., vk) % m`` — the modulo after every
    pairing keeps intermediates machine-sized, as the paper prescribes.
    """
    it = iter(values)
    try:
        acc = next(it)
    except StopIteration:
        return 0
    for v in it:
        acc = cantor(acc, v) % prime
    return acc % prime


def cantor_tuple_reversed(values: Sequence[int], prime: int = DEFAULT_PRIME) -> int:
    """Right-nested variant: the adaptive policy's re-ordered pairing."""
    return cantor_tuple(tuple(reversed(values)), prime)


_PAIRING_VARIANTS = (cantor_tuple, cantor_tuple_reversed)


class AdaptiveHashController:
    """Dynamic hash-quality policy driven by a ``size x access-time`` metric.

    The controller observes every table access (with its probe length, i.e.
    the number of bucket entries inspected) and periodically evaluates the
    quality metric ``table_size * mean_probe_length``.  Its decisions, in
    escalating order, mirror the paper:

    1. *grow* — the table should be resized (load factor too high);
    2. *rehash* — growing has stopped helping: modify the hash function by
       re-ordering the nested Cantor pairings and moving to the next prime
       ``m`` on the ladder, then re-arrange the stored elements.
    """

    #: Accesses between policy evaluations.
    EVALUATION_PERIOD = 4096
    #: Target mean probe length; above this the policy intervenes.
    PROBE_TARGET = 2.0
    #: Load factor above which growth is always the first response.
    LOAD_TARGET = 0.75

    def __init__(self, prime: int = DEFAULT_PRIME) -> None:
        self.prime = prime
        self.variant = 0
        self.accesses = 0
        self.total_probes = 0
        self._window_accesses = 0
        self._window_probes = 0
        self._last_metric = float("inf")
        self.rehash_count = 0
        self.grow_count = 0

    # -- observation -------------------------------------------------------

    def record_access(self, probe_length: int) -> None:
        """Record one lookup/insert that inspected ``probe_length`` entries."""
        self.accesses += 1
        self.total_probes += probe_length
        self._window_accesses += 1
        self._window_probes += probe_length

    def should_evaluate(self) -> bool:
        return self._window_accesses >= self.EVALUATION_PERIOD

    # -- decisions ----------------------------------------------------------

    def decide(self, table_size: int, entry_count: int) -> str:
        """Return one of ``"ok"``, ``"grow"``, ``"rehash"``.

        Called when :meth:`should_evaluate` is true.  Resets the window.
        """
        mean_probe = (
            self._window_probes / self._window_accesses if self._window_accesses else 0.0
        )
        metric = table_size * mean_probe
        improving = metric < self._last_metric
        self._last_metric = metric
        self._window_accesses = 0
        self._window_probes = 0

        load = entry_count / table_size if table_size else 0.0
        if mean_probe <= self.PROBE_TARGET and load <= self.LOAD_TARGET:
            return "ok"
        if load > self.LOAD_TARGET:
            self.grow_count += 1
            return "grow"
        if not improving:
            # Growth no longer pays off: modify the hash function itself.
            self.rehash_count += 1
            return "rehash"
        self.grow_count += 1
        return "grow"

    def next_hash_function(self) -> None:
        """Rotate the pairing order and step the prime ladder (paper's
        'standard modifications of the hash-function')."""
        self.variant = (self.variant + 1) % len(_PAIRING_VARIANTS)
        try:
            idx = PRIME_LADDER.index(self.prime)
        except ValueError:
            idx = -1
        self.prime = PRIME_LADDER[(idx + 1) % len(PRIME_LADDER)]

    # -- hashing ------------------------------------------------------------

    def hash_tuple(self, values: Sequence[int], table_size: int) -> int:
        """Hash ``values`` into ``[0, table_size)`` with the current policy."""
        pairing = _PAIRING_VARIANTS[self.variant]
        return pairing(values, self.prime) % table_size

    # -- reporting ----------------------------------------------------------

    @property
    def mean_probe_length(self) -> float:
        return self.total_probes / self.accesses if self.accesses else 0.0

    def stats(self) -> dict:
        return {
            "accesses": self.accesses,
            "mean_probe_length": self.mean_probe_length,
            "prime": self.prime,
            "variant": self.variant,
            "rehash_count": self.rehash_count,
            "grow_count": self.grow_count,
        }


def next_table_size(current: int) -> int:
    """Growth schedule for dynamically resized tables (doubling)."""
    return max(current * 2, 16)


def fold_key(values: Iterable[int], prime: int = DEFAULT_PRIME) -> int:
    """Convenience: nested-Cantor fold of an arbitrary int iterable."""
    return cantor_tuple(tuple(values), prime)
