"""Mapped-netlist metrics: area, critical-path delay, gate count.

A mapped netlist is a :class:`~repro.network.network.LogicNetwork` whose
gates are restricted to library cells (CONST/BUF allowed as zero-cost
wiring artifacts).  Delay is the longest cell-delay path from any input to
any output (load-independent model); area is the cell-area sum.
"""

from __future__ import annotations

from typing import Dict

from repro.network.network import LogicNetwork
from repro.synth.library import CellLibrary

_FREE_OPS = {"BUF", "CONST0", "CONST1"}


class MappedNetlist:
    """A library-mapped network with its quality-of-result metrics."""

    def __init__(self, network: LogicNetwork, library: CellLibrary) -> None:
        for signal, gate in network.gates.items():
            if gate.op not in _FREE_OPS and not library.has(gate.op):
                raise ValueError(
                    f"gate {signal!r} op {gate.op} is not in library {library.name}"
                )
        self.network = network
        self.library = library

    # -- metrics -----------------------------------------------------------

    def gate_count(self) -> int:
        return sum(
            1 for gate in self.network.gates.values() if gate.op not in _FREE_OPS
        )

    def area(self) -> float:
        return sum(
            self.library.area_of(gate.op)
            for gate in self.network.gates.values()
            if gate.op not in _FREE_OPS
        )

    def delay_ps(self) -> float:
        """Critical path in picoseconds (topological longest path)."""
        arrival: Dict[str, float] = {name: 0.0 for name in self.network.inputs}
        worst = 0.0
        for signal in self.network.topological_order():
            gate = self.network.gates[signal]
            fanin_arrival = max(
                (arrival.get(f, 0.0) for f in gate.fanins), default=0.0
            )
            cell_delay = 0.0 if gate.op in _FREE_OPS else self.library.delay_of(gate.op)
            arrival[signal] = fanin_arrival + cell_delay
        for _name, sig in self.network.outputs:
            worst = max(worst, arrival.get(sig, 0.0))
        return worst

    def delay_ns(self) -> float:
        return self.delay_ps() / 1000.0

    def histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for gate in self.network.gates.values():
            if gate.op not in _FREE_OPS:
                hist[gate.op] = hist.get(gate.op, 0) + 1
        return hist

    def report(self) -> dict:
        return {
            "area_um2": round(self.area(), 2),
            "delay_ns": round(self.delay_ns(), 3),
            "gates": self.gate_count(),
            "histogram": self.histogram(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MappedNetlist {self.network.name!r} gates={self.gate_count()} "
            f"area={self.area():.2f}um2 delay={self.delay_ns():.3f}ns>"
        )
