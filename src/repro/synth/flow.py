"""The two end-to-end synthesis flows compared in Table II.

* :func:`baseline_flow` — "Commercial Synthesis Flow" substitute: RTL ->
  technology-independent optimization -> generic cone-matching mapping.
* :func:`bbdd_flow` — "BBDD Package + Commercial Synthesis Flow": RTL ->
  BBDD construction (datapath-interleaved front-end order, optional
  sifting) -> comparator/majority rewriting -> the same downstream
  optimization and mapping machinery, structure-preserving.

Every flow asserts functional equivalence of its mapped netlist against
the source RTL by simulation (exhaustive on narrow datapaths, random
vectors on wide ones).
"""

from __future__ import annotations

import re
import time
from typing import Dict, List, Optional

from repro.network.build import build
from repro.network.network import LogicNetwork
from repro.network.simulate import networks_equivalent
from repro.synth.bbdd_rewrite import rewrite_functions
from repro.synth.library import CellLibrary, default_library
from repro.synth.mapper import map_generic, map_preserving
from repro.synth.netlist import MappedNetlist


class FlowResult:
    """Outcome of a synthesis flow run."""

    __slots__ = ("name", "netlist", "runtime", "equivalent", "bbdd_nodes", "forest")

    def __init__(
        self, name, netlist, runtime, equivalent, bbdd_nodes=None, forest=None
    ) -> None:
        self.name = name
        self.netlist = netlist
        self.runtime = runtime
        self.equivalent = equivalent
        self.bbdd_nodes = bbdd_nodes
        #: ``(manager, {output: Function})`` of the front-end BBDDs when
        #: the flow was asked to keep them (harness checkpointing).
        self.forest = forest

    @property
    def area(self) -> float:
        return self.netlist.area()

    @property
    def delay_ns(self) -> float:
        return self.netlist.delay_ns()

    @property
    def gate_count(self) -> int:
        return self.netlist.gate_count()

    def report(self) -> dict:
        data = self.netlist.report()
        data.update(
            {
                "flow": self.name,
                "runtime_s": round(self.runtime, 3),
                "equivalent": self.equivalent,
            }
        )
        if self.bbdd_nodes is not None:
            data["bbdd_nodes"] = self.bbdd_nodes
        return data


def baseline_flow(
    rtl: LogicNetwork,
    library: Optional[CellLibrary] = None,
    check_equivalence: bool = True,
) -> FlowResult:
    """The conventional flow: optimize + generic technology mapping."""
    library = library or default_library()
    t0 = time.perf_counter()
    mapped_net = map_generic(rtl, library)
    runtime = time.perf_counter() - t0
    mapped = MappedNetlist(mapped_net, library)
    equivalent = (
        networks_equivalent(rtl, mapped_net) if check_equivalence else None
    )
    return FlowResult("commercial-substitute", mapped, runtime, equivalent)


def datapath_order(inputs: List[str]) -> List[str]:
    """The BBDD front-end's static order heuristic.

    Buses are recognized by name prefix (``a31..a0``), then ordered:

    * narrow buses and scalar controls first (selects/enables on top keeps
      mux-structured functions shared);
    * equally sized buses interleaved bit by bit, most significant bit
      first (``a31 b31 a30 b30 ..``) — with MSB on top, ripple-carry and
      comparator chains place each slice's tail *below* the slice, which
      is exactly the shape the rewriter folds into MAJ3 cells.
    """
    groups: Dict[str, List[str]] = {}
    for name in inputs:
        match = re.match(r"^(.*?)(\d+)$", name)
        prefix = match.group(1) if match else name
        groups.setdefault(prefix, []).append(name)

    def key(name: str):
        match = re.match(r"^(.*?)(\d+)$", name)
        if match is None:
            return (1, 0, name)  # scalar control
        prefix, suffix = match.group(1), int(match.group(2))
        return (len(groups[prefix]), -suffix, prefix)

    return sorted(inputs, key=key)


def bbdd_flow(
    rtl: LogicNetwork,
    library: Optional[CellLibrary] = None,
    check_equivalence: bool = True,
    sift: bool = False,
    selective: bool = True,
    keep_forest: bool = False,
    backend: str = "bbdd",
) -> FlowResult:
    """The paper's flow: BBDD restructuring ahead of the synthesis tool.

    The RTL is rebuilt as a decision-diagram forest under the
    datapath-interleaved front-end order (optionally sifted), rewritten
    into comparator/majority structure, and mapped structure-preservingly
    with the same library and cleanup passes as the baseline.

    The front end is driven through the :mod:`repro.api` protocol, so
    ``backend`` may name any registered package; the comparator/majority
    rewriting is a BBDD structural pass, so for other backends the flow
    reports the forest metrics and falls back to the designer's original
    structure for mapping (the selective pass-through below).

    ``selective`` models a sane front-end: when the BBDD restructuring of
    a circuit is *worse* than the structure the designer already wrote
    (mux-dominated datapaths such as barrel shifters, where a canonical
    DAG trades shared shift stages for per-output decision trees), the
    front-end passes the original structure through instead — Table II's
    near-tie on the Barrel rows shows the paper's flow behaving exactly
    this way.  Arithmetic circuits keep the BBDD restructuring.
    """
    library = library or default_library()
    t0 = time.perf_counter()

    ordered = rtl.copy()
    ordered.inputs = datapath_order(rtl.inputs)
    manager, functions = build(ordered, backend=backend)
    if sift:
        manager.sift()
    bbdd_nodes = manager.node_count(list(functions.values()))
    if manager.backend == "bbdd":
        rewritten = rewrite_functions(manager, functions)
        rewritten.name = rtl.name
    else:
        rewritten = rtl
    mapped_net = map_preserving(rewritten, library)
    if selective:
        passthrough = map_preserving(rtl, library)
        if _cost(passthrough, library) < _cost(mapped_net, library):
            mapped_net = passthrough
    runtime = time.perf_counter() - t0
    mapped = MappedNetlist(mapped_net, library)
    equivalent = (
        networks_equivalent(rtl, mapped_net) if check_equivalence else None
    )
    return FlowResult(
        f"{manager.backend}+commercial",
        mapped,
        runtime,
        equivalent,
        bbdd_nodes,
        forest=(manager, functions) if keep_forest else None,
    )


def _cost(network: LogicNetwork, library: CellLibrary) -> float:
    """Selection metric for the selective front-end (area)."""
    return MappedNetlist(network, library).area()
