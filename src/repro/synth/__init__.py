"""Datapath synthesis case study (Sec. V of the paper).

* :mod:`repro.synth.library` — the paper's 22 nm cell set {MAJ3, XOR2,
  XNOR2, NAND2, NOR2, INV} with a synthetic area/delay characterization;
* :mod:`repro.synth.optimize` — netlist optimization passes (constant
  propagation, structural hashing, AIG lowering, cleanup);
* :mod:`repro.synth.mapper` — technology mapping: a generic cone-matching
  mapper (the commercial-flow substitute) and a structure-preserving
  mapper used after BBDD rewriting;
* :mod:`repro.synth.bbdd_rewrite` — BBDD-to-netlist rewriting with
  comparator/majority extraction (the paper's front-end);
* :mod:`repro.synth.flow` — the two end-to-end flows compared in Table II.
"""

from repro.synth.library import CellLibrary, default_library
from repro.synth.flow import baseline_flow, bbdd_flow, FlowResult

__all__ = [
    "CellLibrary",
    "default_library",
    "baseline_flow",
    "bbdd_flow",
    "FlowResult",
]
