"""BBDD-to-netlist rewriting (Sec. V-A): the datapath front-end.

Every BBDD node is a two-variable comparator selecting between its
children, so a node maps naturally onto an XNOR-selected 2:1 mux — and
three special shapes collapse further:

* both children constant            ->  one XNOR2 cell;
* ``=``-child is ``literal(SV)``    ->  one MAJ3 cell
  (``f = (v=w) ? w : c  ==  MAJ(v, w, c)`` — the carry shape);
* ``!=``-child is ``literal(SV)``   ->  MAJ3 with one inverted input
  (``f = (v!=w) ? w : e  ==  MAJ(~v, w, e)`` — the comparator shape);
* a constant child                  ->  AND/OR with the XOR/XNOR of the
  couple (the equality-chain shape).

This is how "the comparator function inherently embedded in a BBDD node"
becomes MAJ/XNOR-rich structure that the downstream mapper keeps.  The
rewriter shares per-couple XOR/XNOR select signals and per-signal
inverters across the whole multi-output forest.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.node import SV_ONE, BBDDNode, Edge
from repro.network.network import LogicNetwork


class BBDDRewriter:
    """Rewrites a forest of BBDD edges into a LogicNetwork."""

    def __init__(self, manager, network: LogicNetwork) -> None:
        self.manager = manager
        self.net = network
        self._node_signal: Dict[BBDDNode, str] = {}
        self._inv_cache: Dict[str, str] = {}
        self._xnor_cache: Dict[Tuple[int, int], str] = {}
        self._const_cache: Dict[bool, str] = {}

    # -- shared sub-structures ------------------------------------------------

    def _const(self, value: bool) -> str:
        if value not in self._const_cache:
            self._const_cache[value] = self.net.const(value)
        return self._const_cache[value]

    def _inv(self, signal: str) -> str:
        cached = self._inv_cache.get(signal)
        if cached is None:
            cached = self.net.inv(signal)
            self._inv_cache[signal] = cached
            self._inv_cache[cached] = signal
        return cached

    def _var_signal(self, var: int) -> str:
        return self.manager.var_name(var)

    def _xnor_of_couple(self, pv: int, sv: int) -> str:
        key = (pv, sv)
        cached = self._xnor_cache.get(key)
        if cached is None:
            cached = self.net.xnor(self._var_signal(pv), self._var_signal(sv))
            self._xnor_cache[key] = cached
        return cached

    def _xor_of_couple(self, pv: int, sv: int) -> str:
        return self._inv(self._xnor_of_couple(pv, sv))

    # -- edges and nodes ---------------------------------------------------------

    def signal_of_edge(self, edge) -> str:
        if isinstance(edge, int):
            # Flat-store boundary: manager edges are signed ints; the
            # rewriter itself walks interned (view, attr) pairs.
            node = self.manager.node_view(-edge if edge < 0 else edge)
            attr = edge < 0
        else:
            node, attr = edge
        if node.is_sink:
            return self._const(not attr)
        signal = self._signal_of_node(node)
        return self._inv(signal) if attr else signal

    def _signal_of_node(self, node: BBDDNode) -> str:
        cached = self._node_signal.get(node)
        if cached is not None:
            return cached
        if node.sv == SV_ONE:
            signal = self._var_signal(node.pv)
        elif getattr(node, "is_span", False):
            signal = self._rewrite_span(node)
        else:
            signal = self._rewrite_chain(node)
        self._node_signal[node] = signal
        return signal

    def _rewrite_span(self, node: BBDDNode) -> str:
        """Chain-reduced span ``(pv, sv:bot, -T, T)``.

        The node denotes ``f = eq XOR pv XOR sv XOR ... XOR bot`` (the
        parity over the span's variables), which maps onto an XNOR chain
        — exactly the structure the downstream mapper keeps.
        """
        order = self.manager.order
        parity = self._var_signal(node.pv)
        for p in range(order.position(node.sv), order.position(node.bot) + 1):
            parity = self._inv(
                self.net.xnor(parity, self._var_signal(order.var_at(p)))
            )
        e_sig = self.signal_of_edge((node.eq, False))
        # f = e XOR parity == e XNOR ~parity.
        return self.net.xnor(e_sig, self._inv(parity))

    def _rewrite_chain(self, node: BBDDNode) -> str:
        net = self.net
        pv, sv = node.pv, node.sv
        neq, neq_attr = node.neq, node.neq_attr
        eq = node.eq  # always a regular edge
        v_sig = self._var_signal(pv)
        w_sig = self._var_signal(sv)
        eq_is_w = eq.is_literal and eq.pv == sv
        neq_is_w = neq.is_literal and neq.pv == sv

        # Both children constant: the node is the biconditional itself.
        if neq.is_sink and eq.is_sink:
            # Reduced form guarantees neq_attr is set here (else R2).
            return self._xnor_of_couple(pv, sv)

        # Two-variable shapes: one child literal(SV), the other constant.
        if eq_is_w and neq.is_sink:
            if neq_attr:  # f = (v=w) ? w : 0  ==  v & w
                return net.and_(v_sig, w_sig)
            return net.or_(v_sig, w_sig)  # f = (v=w) ? w : 1  ==  v | w
        if neq_is_w and eq.is_sink:
            if neq_attr:  # f = (v!=w) ? ~w : 1  ==  v | ~w
                return net.or_(v_sig, self._inv(w_sig))
            return net.or_(self._inv(v_sig), w_sig)  # (v!=w) ? w : 1

        # MAJ shapes: a literal(SV) child turns the mux into a majority.
        if eq_is_w:
            c = self.signal_of_edge((neq, neq_attr))
            return net.maj(v_sig, w_sig, c)  # f = (v=w) ? w : c
        if neq_is_w:
            e_sig = self.signal_of_edge((eq, False))
            if neq_attr:
                # f = (v!=w) ? ~w : e == MAJ(v, ~w, e)
                return net.maj(v_sig, self._inv(w_sig), e_sig)
            # f = (v!=w) ? w : e == MAJ(~v, w, e)
            return net.maj(self._inv(v_sig), w_sig, e_sig)

        # Three-input XOR shape: both branches are the same function in
        # opposite polarity, so f = (v XNOR w) XNOR e.
        if neq is eq and neq_attr:
            e_sig = self.signal_of_edge((eq, False))
            return net.xnor(self._xnor_of_couple(pv, sv), e_sig)

        # Constant-child shapes: AND/OR with the couple comparator.
        if neq.is_sink:
            e_sig = self.signal_of_edge((eq, False))
            if neq_attr:  # != branch is 0: f = (v=w) & eq
                return net.and_(self._xnor_of_couple(pv, sv), e_sig)
            # != branch is 1: f = (v!=w) | eq
            return net.or_(self._xor_of_couple(pv, sv), e_sig)
        if eq.is_sink:
            d_sig = self.signal_of_edge((neq, neq_attr))
            # = branch is 1 (eq edges are regular): f = (v=w) | neq
            return net.or_(self._xnor_of_couple(pv, sv), d_sig)

        # General node: XNOR-selected 2:1 mux.
        select = self._xnor_of_couple(pv, sv)
        e_sig = self.signal_of_edge((eq, False))
        d_sig = self.signal_of_edge((neq, neq_attr))
        return net.mux(select, e_sig, d_sig)


def rewrite_functions(manager, functions: Dict[str, object]) -> LogicNetwork:
    """Rewrite ``{output name: Function}`` into a comparator-rich network.

    Input names follow the manager's variable names; the resulting network
    is functionally equivalent to the BBDD forest (asserted by the flow).
    """
    net = LogicNetwork("bbdd_rewrite")
    net.add_inputs(list(manager.var_names))
    rewriter = BBDDRewriter(manager, net)
    for name, fn in functions.items():
        edge = fn.edge if hasattr(fn, "edge") else fn
        signal = rewriter.signal_of_edge(edge)
        if net.is_input(signal):
            signal = net.add_gate("BUF", [signal])
        net.set_output(name, signal)
    return net
