"""Standard-cell library for the Table II case study.

The paper characterizes MAJ-3, XOR-2, XNOR-2, NAND-2, NOR-2 and INV gates
in a 22 nm CMOS technology (PTM-based).  The real characterization is not
reproducible offline, so the numbers below are a synthetic but
proportionate 22 nm-flavoured model (documented substitution, DESIGN.md
§3): areas scale with transistor count at a 22 nm track pitch, delays with
logical effort.  Both Table II flows share this library, so the reported
area/delay *ratios* isolate the representation change, which is the
paper's claim.

Cell functions are expressed as network gate ops so a mapped netlist is
just a :class:`~repro.network.network.LogicNetwork` restricted to library
ops; metrics live in :class:`MappedNetlist` (:mod:`repro.synth.netlist`).
"""

from __future__ import annotations

from typing import Dict, Optional


class Cell:
    """One library cell: network op, arity, area (um^2) and delay (ps)."""

    __slots__ = ("name", "op", "arity", "area", "delay")

    def __init__(self, name: str, op: str, arity: int, area: float, delay: float) -> None:
        self.name = name
        self.op = op
        self.arity = arity
        self.area = area
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell({self.name}, area={self.area}, delay={self.delay}ps)"


class CellLibrary:
    """A set of cells indexed by network gate op."""

    def __init__(self, cells: Dict[str, Cell], name: str = "lib") -> None:
        self.name = name
        self.cells = cells  # op -> Cell

    def cell_for(self, op: str) -> Optional[Cell]:
        return self.cells.get(op)

    def has(self, op: str) -> bool:
        return op in self.cells

    def area_of(self, op: str) -> float:
        cell = self.cells.get(op)
        return cell.area if cell else 0.0

    def delay_of(self, op: str) -> float:
        cell = self.cells.get(op)
        return cell.delay if cell else 0.0

    @property
    def ops(self) -> tuple:
        return tuple(self.cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CellLibrary {self.name} cells={sorted(self.cells)}>"


def default_library() -> CellLibrary:
    """The paper's cell set with the synthetic 22 nm characterization.

    Delay calibration anchors: a 32-stage MAJ3 ripple chain lands near the
    paper's 2.17 ns BBDD Adder-32 delay (32 x ~65 ps); NAND/NOR/INV sit at
    typical 22 nm logical-effort ratios below that.
    """
    cells = {
        "INV": Cell("INV_X1", "INV", 1, 0.098, 22.0),
        "NAND": Cell("NAND2_X1", "NAND", 2, 0.163, 32.0),
        "NOR": Cell("NOR2_X1", "NOR", 2, 0.163, 36.0),
        "XOR": Cell("XOR2_X1", "XOR", 2, 0.294, 60.0),
        "XNOR": Cell("XNOR2_X1", "XNOR", 2, 0.294, 60.0),
        "MAJ": Cell("MAJ3_X1", "MAJ", 3, 0.326, 65.0),
    }
    return CellLibrary(cells, name="ptm22_substitute")
