"""Netlist optimization passes shared by both synthesis flows.

Rebuilding passes over :class:`~repro.network.network.LogicNetwork`:
constant propagation, buffer collapsing, structural hashing (CSE with
sorted fanins for symmetric ops), inverter-pair elimination, dead-logic
removal, and lowering to an AND/INV graph (the generic mapper's internal
representation — the substitute for a commercial tool's technology-
independent optimization form).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.network.network import LogicNetwork

_SYMMETRIC = {"AND", "OR", "XOR", "XNOR", "NAND", "NOR", "MAJ"}


def _rebuild(network: LogicNetwork, transform) -> LogicNetwork:
    """Topological rebuild: ``transform(new_net, op, fanins) -> signal``.

    ``fanins`` arrive already remapped into the new network.  The
    transform returns the signal representing the gate's function.
    """
    out = LogicNetwork(network.name)
    out.add_inputs(network.inputs)
    mapping: Dict[str, str] = {name: name for name in network.inputs}
    for signal in network.topological_order():
        gate = network.gates[signal]
        new_fanins = [mapping[f] for f in gate.fanins]
        mapping[signal] = transform(out, gate.op, new_fanins)
    for name, sig in network.outputs:
        out.set_output(name, mapping[sig])
    return out


def propagate_constants(network: LogicNetwork) -> LogicNetwork:
    """Fold constants through every gate; collapses controlled muxes etc."""
    const_of: Dict[str, bool] = {}

    def transform(out: LogicNetwork, op: str, fanins: List[str]) -> str:
        values = [const_of.get(f) for f in fanins]

        def emit_const(value: bool) -> str:
            sig = out.const(value)
            const_of[sig] = value
            return sig

        if op == "CONST0":
            return emit_const(False)
        if op == "CONST1":
            return emit_const(True)
        if op == "BUF":
            return fanins[0]
        if op == "INV":
            if values[0] is not None:
                return emit_const(not values[0])
            return out.inv(fanins[0])
        if op == "MUX":
            s, a, b = fanins
            sv, av, bv = values
            if sv is not None:
                return a if sv else b
            if av is not None and bv is not None:
                if av and not bv:
                    return s
                if bv and not av:
                    return out.inv(s)
                return emit_const(av)
            if a == b:
                return a
            if av is True:
                return out.or_(s, b)
            if av is False:
                return out.and_(out.inv(s), b)
            if bv is True:
                return out.or_(out.inv(s), a)
            if bv is False:
                return out.and_(s, a)
            return out.mux(s, a, b)
        if op == "MAJ":
            a, b, c = fanins
            known = [v for v in values if v is not None]
            unknown = [f for v, f in zip(values, fanins) if v is None]
            if len(known) == 3:
                return emit_const(sum(known) >= 2)
            if len(known) == 2:
                if known[0] == known[1]:
                    return emit_const(known[0])
                return unknown[0]  # one 0 and one 1: majority is the third
            if len(known) == 1:
                if known[0]:
                    return out.or_(unknown[0], unknown[1])
                return out.and_(unknown[0], unknown[1])
            if a == b or a == c:
                return a
            if b == c:
                return b
            return out.maj(a, b, c)

        # Variadic / two-input logic ops: fold constants but keep the
        # original (library-relevant) op when at least two fanins remain.
        if op in ("AND", "NAND"):
            if any(v is False for v in values):
                return emit_const(op == "NAND")
            live = [f for f, v in zip(fanins, values) if v is not True]
            if not live:
                return emit_const(op == "AND")
            if len(live) == 1:
                return out.inv(live[0]) if op == "NAND" else live[0]
            return out.add_gate(op, live)
        if op in ("OR", "NOR"):
            if any(v is True for v in values):
                return emit_const(op == "NOR")
            live = [f for f, v in zip(fanins, values) if v is not False]
            if not live:
                return emit_const(op == "NOR")
            if len(live) == 1:
                return out.inv(live[0]) if op == "NOR" else live[0]
            return out.add_gate(op, live)
        if op in ("XOR", "XNOR"):
            inverted = op == "XNOR"
            live = []
            for f, v in zip(fanins, values):
                if v is None:
                    live.append(f)
                elif v:
                    inverted = not inverted
            if not live:
                return emit_const(inverted)
            if len(live) == 1:
                return out.inv(live[0]) if inverted else live[0]
            return out.add_gate("XNOR" if inverted else "XOR", live)
        raise ValueError(f"unknown op {op}")

    return _rebuild(network, transform)


def structural_hash(network: LogicNetwork) -> LogicNetwork:
    """CSE: one gate per (op, canonical fanins); INV pairs collapse."""
    cache: Dict[Tuple, str] = {}
    inv_of: Dict[str, str] = {}

    def transform(out: LogicNetwork, op: str, fanins: List[str]) -> str:
        if op == "BUF":
            return fanins[0]
        if op == "INV":
            src = fanins[0]
            if src in inv_of:
                return inv_of[src]
            key = ("INV", src)
            if key not in cache:
                sig = out.inv(src)
                cache[key] = sig
                inv_of[src] = sig
                inv_of[sig] = src
            return cache[key]
        canon = tuple(sorted(fanins)) if op in _SYMMETRIC else tuple(fanins)
        key = (op, canon)
        if key not in cache:
            cache[key] = out.add_gate(op, list(canon) if op in _SYMMETRIC else fanins)
        return cache[key]

    return _rebuild(network, transform)


def remove_dead_logic(network: LogicNetwork) -> LogicNetwork:
    """Drop gates outside every output cone."""
    live = network.cone_of(network.output_signals())
    out = LogicNetwork(network.name)
    out.add_inputs(network.inputs)
    for signal in network.topological_order():
        if signal in live:
            gate = network.gates[signal]
            out.add_gate(gate.op, gate.fanins, name=signal)
    for name, sig in network.outputs:
        out.set_output(name, sig)
    return out


def lower_to_aig(network: LogicNetwork) -> LogicNetwork:
    """Lower every gate to 2-input AND + INV (+ CONST).

    This deliberately dissolves XOR/XNOR/MAJ/MUX structure — it models the
    technology-independent representation a generic synthesis tool
    optimizes in, from which the mapper must *re-discover* special gates.
    """

    def transform(out: LogicNetwork, op: str, fanins: List[str]) -> str:
        def and2(a: str, b: str) -> str:
            return out.add_gate("AND", [a, b])

        def or2(a: str, b: str) -> str:
            return out.inv(and2(out.inv(a), out.inv(b)))

        def xor2(a: str, b: str) -> str:
            return and2(out.inv(and2(a, b)), out.inv(and2(out.inv(a), out.inv(b))))

        def reduce2(fn, items: List[str]) -> str:
            acc = items[0]
            for item in items[1:]:
                acc = fn(acc, item)
            return acc

        if op in ("CONST0", "CONST1"):
            return out.const(op == "CONST1")
        if op == "BUF":
            return fanins[0]
        if op == "INV":
            return out.inv(fanins[0])
        if op == "AND":
            return reduce2(and2, fanins)
        if op == "NAND":
            return out.inv(reduce2(and2, fanins))
        if op == "OR":
            return reduce2(or2, fanins)
        if op == "NOR":
            return out.inv(reduce2(or2, fanins))
        if op == "XOR":
            return reduce2(xor2, fanins)
        if op == "XNOR":
            return out.inv(reduce2(xor2, fanins))
        if op == "MUX":
            s, a, b = fanins
            return or2(and2(s, a), and2(out.inv(s), b))
        if op == "MAJ":
            a, b, c = fanins
            return or2(and2(a, b), and2(c, or2(a, b)))
        raise ValueError(f"unknown op {op}")

    return _rebuild(network, transform)


def flatten_associative(network: LogicNetwork) -> LogicNetwork:
    """Merge single-fanout same-op AND/OR/XOR chains into variadic gates.

    Linear chains (e.g. the AND chain a BBDD equality rewrite produces)
    become one wide gate that the mappers reduce as a balanced tree,
    turning O(n) depth into O(log n).
    """
    assoc = {"AND", "OR", "XOR"}
    fanout: Dict[str, int] = {}
    for gate in network.gates.values():
        for fanin in gate.fanins:
            fanout[fanin] = fanout.get(fanin, 0) + 1
    for _name, sig in network.outputs:
        fanout[sig] = fanout.get(sig, 0) + 1

    absorbed: set = set()

    def leaves_of(signal: str, op: str) -> List[str]:
        gate = network.gates.get(signal)
        if (
            gate is not None
            and gate.op == op
            and fanout.get(signal, 0) == 1
        ):
            absorbed.add(signal)
            out: List[str] = []
            for fanin in gate.fanins:
                out.extend(leaves_of(fanin, op))
            return out
        return [signal]

    out = LogicNetwork(network.name)
    out.add_inputs(network.inputs)
    mapping: Dict[str, str] = {name: name for name in network.inputs}
    order = network.topological_order()
    # Determine absorption sets root-first so inner chain gates are marked.
    roots: Dict[str, List[str]] = {}
    for signal in reversed(order):
        if signal in absorbed:
            continue
        gate = network.gates[signal]
        if gate.op in assoc:
            collected: List[str] = []
            for fanin in gate.fanins:
                collected.extend(leaves_of(fanin, gate.op))
            roots[signal] = collected
    for signal in order:
        if signal in absorbed:
            continue
        gate = network.gates[signal]
        if signal in roots:
            fanins = [mapping[f] for f in roots[signal]]
            mapping[signal] = (
                out.add_gate(gate.op, fanins)
                if len(fanins) > 1
                else out.add_gate("BUF", fanins)
            )
        else:
            mapping[signal] = out.add_gate(
                gate.op, [mapping[f] for f in gate.fanins]
            )
    for name, sig in network.outputs:
        out.set_output(name, mapping[sig])
    return out


def optimize(network: LogicNetwork) -> LogicNetwork:
    """The shared cleanup pipeline both flows run before mapping."""
    net = propagate_constants(network)
    net = structural_hash(net)
    net = remove_dead_logic(net)
    return net
