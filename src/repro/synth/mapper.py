"""Technology mapping onto the paper's cell set.

Two mappers model the two sides of Table II:

* :func:`map_generic` — the commercial-flow substitute: the network is
  lowered to an AND/INV graph (dissolving all special structure, like a
  generic tool's technology-independent form), then covered by
  cone-matching: bounded cones are truth-table matched against the library
  (XOR/XNOR re-discovery is on by default, MAJ3 discovery off — generic
  mappers routinely extract XORs but rarely majorities, which is exactly
  the gap the paper's BBDD front-end exploits).

* :func:`map_preserving` — the mapper used after BBDD rewriting: it keeps
  XOR2/XNOR2/MAJ3 cells that the rewriter emitted, decomposes the
  remaining ops (MUX, wide gates) locally into NAND2/NOR2/INV, and cleans
  up inverter pairs.

Both emit plain :class:`~repro.network.network.LogicNetwork` objects
restricted to library ops, wrapped in
:class:`~repro.synth.netlist.MappedNetlist` by the flows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.network import LogicNetwork
from repro.synth.library import CellLibrary
from repro.synth.optimize import (
    lower_to_aig,
    optimize,
    propagate_constants,
    remove_dead_logic,
    structural_hash,
)

# ---------------------------------------------------------------------------
# Generic cone-matching mapper (commercial-flow substitute)
# ---------------------------------------------------------------------------

#: Truth tables over 2 ordered leaves (bit (a<<1)|b) -> cell plan.
#: A plan is a list of ("CELL", ...) steps; "LEAF<i>" refers to leaf i.
_MATCH2 = {
    0b0110: ("XOR",),
    0b1001: ("XNOR",),
    0b0111: ("NAND",),
    0b0001: ("NOR",),
    0b1000: ("NAND", "INV"),
    0b1110: ("NOR", "INV"),
}

#: Truth tables over 3 leaves (bit (a<<2)|(b<<1)|c) -> cell plan.
_MATCH3 = {
    0b11101000: ("MAJ",),
    0b00010111: ("MAJ", "INV"),
}


def _cone_leaves(network: LogicNetwork, root: str, depth: int, max_leaves: int) -> Optional[List[str]]:
    """Leaves of the depth-bounded cone under ``root`` (None if too wide)."""
    leaves: List[str] = []

    def visit(signal: str, remaining: int) -> bool:
        gate = network.gates.get(signal)
        if gate is None or remaining == 0 or gate.op in ("CONST0", "CONST1"):
            if signal not in leaves:
                if len(leaves) >= max_leaves and signal not in leaves:
                    return False
                leaves.append(signal)
            return True
        for fanin in gate.fanins:
            if not visit(fanin, remaining - 1):
                return False
        return True

    if not visit(root, depth):
        return None
    if len(leaves) > max_leaves:
        return None
    return leaves


def _cone_truth(network: LogicNetwork, root: str, leaves: List[str]) -> Optional[int]:
    """Truth table of ``root`` over ``leaves`` (bit i: leaf j = bit j of i)."""
    from repro.network.network import gate_eval

    n = len(leaves)
    width = 1 << n
    width_mask = (1 << width) - 1
    values: Dict[str, int] = {}
    for j, leaf in enumerate(leaves):
        mask = 0
        for i in range(width):
            if (i >> j) & 1:
                mask |= 1 << i
        values[leaf] = mask

    def eval_signal(signal: str) -> int:
        if signal in values:
            return values[signal]
        gate = network.gates[signal]
        result = gate_eval(gate.op, [eval_signal(f) for f in gate.fanins], width_mask)
        values[signal] = result
        return result

    return eval_signal(root)


def _ordered_tt(tt: int, n: int, order: Tuple[int, ...]) -> int:
    """Re-index a truth table's variables by ``order`` (new j = old order[j])."""
    width = 1 << n
    out = 0
    for i in range(width):
        j = 0
        for new_bit in range(n):
            if (i >> new_bit) & 1:
                j |= 1 << order[new_bit]
        if (tt >> j) & 1:
            out |= 1 << i
    return out


def map_generic(
    network: LogicNetwork,
    library: CellLibrary,
    xor_matching: bool = True,
    maj_matching: bool = False,
    max_depth: int = 4,
) -> LogicNetwork:
    """Generic mapper: AIG lowering + greedy deepest-cone matching."""
    aig = optimize(lower_to_aig(optimize(network)))
    out = LogicNetwork(network.name)
    out.add_inputs(aig.inputs)
    mapped: Dict[str, str] = {name: name for name in aig.inputs}
    inv_cache: Dict[str, str] = {}

    def inv_of(signal: str) -> str:
        if signal not in inv_cache:
            sig = out.add_gate("INV", [signal])
            inv_cache[signal] = sig
            inv_cache[sig] = signal
        return inv_cache[signal]

    def emit_plan(plan: tuple, leaf_signals: List[str]) -> str:
        cell = plan[0]
        sig = out.add_gate(cell, leaf_signals)
        for extra in plan[1:]:
            if extra == "INV":
                sig = inv_of(sig)
            else:  # pragma: no cover - no other plan steps defined
                raise ValueError(f"unknown plan step {extra}")
        return sig

    def map_signal(signal: str) -> str:
        if signal in mapped:
            return mapped[signal]
        gate = aig.gates[signal]
        if gate.op in ("CONST0", "CONST1"):
            result = out.const(gate.op == "CONST1")
            mapped[signal] = result
            return result
        if gate.op == "BUF":
            result = map_signal(gate.fanins[0])
            mapped[signal] = result
            return result

        # Try cones from deepest to shallowest; largest match wins.
        for depth in range(max_depth, 0, -1):
            for max_leaves, table, enabled in (
                (3, _MATCH3, maj_matching),
                (2, _MATCH2, xor_matching or depth == 1),
            ):
                if not enabled:
                    continue
                leaves = _cone_leaves(aig, signal, depth, max_leaves)
                if leaves is None or len(leaves) < 2:
                    continue
                if len(leaves) != max_leaves:
                    continue
                tt = _cone_truth(aig, signal, leaves)
                plan = table.get(tt)
                if plan is not None:
                    leaf_signals = [map_signal(leaf) for leaf in leaves]
                    result = emit_plan(plan, leaf_signals)
                    mapped[signal] = result
                    return result

        # Base cover: INV absorbs into nothing; AND -> NAND + INV.
        if gate.op == "INV":
            src_gate = aig.gates.get(gate.fanins[0])
            if src_gate is not None and src_gate.op == "AND":
                fanins = [map_signal(f) for f in src_gate.fanins]
                result = out.add_gate("NAND", fanins)
            else:
                result = inv_of(map_signal(gate.fanins[0]))
        elif gate.op == "AND":
            fanins = [map_signal(f) for f in gate.fanins]
            result = inv_of(out.add_gate("NAND", fanins))
        else:  # pragma: no cover - AIG contains only AND/INV/CONST/BUF
            raise ValueError(f"unexpected AIG op {gate.op}")
        mapped[signal] = result
        return result

    for name, sig in aig.outputs:
        out.set_output(name, map_signal(sig))
    return remove_dead_logic(structural_hash(propagate_constants(out)))


# ---------------------------------------------------------------------------
# Structure-preserving mapper (used after BBDD rewriting)
# ---------------------------------------------------------------------------


def map_preserving(network: LogicNetwork, library: CellLibrary) -> LogicNetwork:
    """Decompose non-library ops locally, keep XOR/XNOR/MAJ cells intact.

    Phase-aware: every source signal can be realized in positive or
    negative polarity, and complements are absorbed wherever the library
    offers a free dual — NAND/NOR for AND/OR trees (De Morgan
    alternation), XOR <-> XNOR swaps, and MAJ's self-duality
    (``~MAJ(a,b,c) == MAJ(~a,~b,~c)``).  Inverter cells are materialized
    only when no dual absorbs the complement.
    """
    from repro.synth.optimize import flatten_associative

    net = flatten_associative(optimize(network))
    out = LogicNetwork(net.name)
    out.add_inputs(net.inputs)
    phase_map: Dict[Tuple[str, bool], str] = {
        (name, False): name for name in net.inputs
    }
    inv_cache: Dict[str, str] = {}

    def inv_of(signal: str) -> str:
        if signal not in inv_cache:
            sig = out.add_gate("INV", [signal])
            inv_cache[signal] = sig
            inv_cache[sig] = signal
        return inv_cache[signal]

    def reduce_tree(items: List[Tuple[str, bool]], conj: bool, inverted: bool) -> str:
        """Balanced NAND/NOR tree computing (AND if conj else OR) of the
        source terms, returned in the requested polarity.

        ``items`` are (source signal, source complemented) pairs; leaf
        polarities are resolved through ``get``.
        """
        if len(items) == 1:
            sig, neg = items[0]
            return get(sig, neg != inverted)
        mid = (len(items) + 1) // 2
        if inverted:
            # ~(AND) = NAND of positive halves when 2 leaves; in general
            # ~(A & B) = NAND(A, B) with halves positive.
            op = "NAND" if conj else "NOR"
            left = reduce_tree(items[:mid], conj, False)
            right = reduce_tree(items[mid:], conj, False)
            return out.add_gate(op, [left, right])
        # Positive AND = NOR of the complemented halves; positive OR =
        # NAND of the complemented halves (De Morgan alternation).
        op = "NOR" if conj else "NAND"
        left = reduce_tree(items[:mid], conj, True)
        right = reduce_tree(items[mid:], conj, True)
        return out.add_gate(op, [left, right])

    def get(signal: str, inverted: bool) -> str:
        """Mapped-network signal realizing ``signal`` (or its complement)."""
        key = (signal, inverted)
        cached = phase_map.get(key)
        if cached is not None:
            return cached
        gate = net.gates.get(signal)
        if gate is None:  # primary input, negative phase
            result = inv_of(signal)
            phase_map[key] = result
            return result
        op = gate.op
        fanins = gate.fanins
        if op in ("CONST0", "CONST1"):
            result = out.const((op == "CONST1") != inverted)
        elif op == "BUF":
            result = get(fanins[0], inverted)
        elif op == "INV":
            result = get(fanins[0], not inverted)
        elif op in ("XOR", "XNOR"):
            # Fold pairwise with XOR cells; absorb the overall polarity
            # (including XNOR's) into the final cell's choice.
            want_xnor = (op == "XNOR") != inverted
            acc = get(fanins[0], False)
            for nxt in fanins[1:-1]:
                acc = out.add_gate("XOR", [acc, get(nxt, False)])
            final_op = "XNOR" if want_xnor else "XOR"
            result = out.add_gate(final_op, [acc, get(fanins[-1], False)])
        elif op == "MAJ":
            # Self-dual: complement by complementing all inputs.
            result = out.add_gate("MAJ", [get(f, inverted) for f in fanins])
        elif op == "MUX":
            s, a, b = fanins
            # s ? a : b = NAND(NAND(s, a), NAND(~s, b)); the complement
            # re-uses the same shape with complemented data inputs.
            na = out.add_gate("NAND", [get(s, False), get(a, inverted)])
            nb = out.add_gate("NAND", [get(s, True), get(b, inverted)])
            result = out.add_gate("NAND", [na, nb])
        elif op in ("AND", "NAND", "OR", "NOR"):
            conj = op in ("AND", "NAND")
            flip = (op in ("NAND", "NOR")) != inverted
            result = reduce_tree([(f, False) for f in fanins], conj, flip)
        else:  # pragma: no cover
            raise ValueError(f"unexpected op {op}")
        phase_map[key] = result
        return result

    for name, sig in net.outputs:
        out.set_output(name, get(sig, False))
    return remove_dead_logic(structural_hash(propagate_constants(out)))
