"""repro — reproduction of "An Efficient Manipulation Package for
Biconditional Binary Decision Diagrams" (Amaru, Gaillardon, De Micheli,
DATE 2014).

Public entry points:

* :class:`repro.core.BBDDManager` / :class:`repro.core.Function` — the
  BBDD manipulation package (the paper's contribution).
* :class:`repro.bdd.BDDManager` — the baseline ROBDD package (the paper's
  CUDD comparator substitute).
* :mod:`repro.network` — combinational logic networks with BLIF/Verilog
  frontends.
* :mod:`repro.circuits` — MCNC/ISCAS/datapath benchmark generators.
* :mod:`repro.synth` — the datapath synthesis case study (Table II).
* :mod:`repro.harness` — experiment drivers reproducing the paper's
  tables and figures.
"""

from repro.core import BBDDManager, Function

__version__ = "1.0.0"

__all__ = ["BBDDManager", "Function", "__version__"]
