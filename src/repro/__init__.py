"""repro — reproduction of "An Efficient Manipulation Package for
Biconditional Binary Decision Diagrams" (Amaru, Gaillardon, De Micheli,
DATE 2014).

Public entry points:

* :func:`repro.open` — the unified, backend-agnostic front end:
  ``repro.open(backend="bbdd", vars=["a", "b"])`` returns a manager
  implementing the :class:`repro.api.DDManager` protocol
  (``add_expr``, ``let``, ``ite``/``restrict``/``compose``/
  quantification, ``dump``/``load``) on any registered backend.
* :class:`repro.core.BBDDManager` / :class:`repro.core.Function` — the
  BBDD manipulation package (the paper's contribution).
* :class:`repro.bdd.BDDManager` — the baseline ROBDD package (the paper's
  CUDD comparator substitute), at full API parity through the protocol.
* :mod:`repro.serve` — the batched query service: vectorized bulk
  evaluation (``Function.evaluate_batch``), a multi-process forest
  pool, and an asyncio server coalescing single queries into levelized
  sweeps (``python -m repro.serve``).
* :mod:`repro.par` — shared-memory parallelism: freeze a forest into a
  zero-copy :class:`repro.par.ShmForest` segment, sweep batches across
  a persistent multi-process :class:`repro.par.ParallelPool`, or pass
  ``workers=`` to ``evaluate_batch``/``satisfiable_batch``.
* :mod:`repro.network` — combinational logic networks with BLIF/Verilog
  frontends.
* :mod:`repro.circuits` — MCNC/ISCAS/datapath benchmark generators.
* :mod:`repro.synth` — the datapath synthesis case study (Table II).
* :mod:`repro.harness` — experiment drivers reproducing the paper's
  tables and figures (``--backend`` selects the package under test).
"""

# repro.core must initialize before repro.api: the api's shared base is
# imported by core.function, so the parent package loads core first and
# the api package then finds it fully initialized.
from repro.core import BBDDManager, Function
from repro.api import open, register_backend, backends

__version__ = "1.3.0"

__all__ = [
    "BBDDManager",
    "Function",
    "open",
    "register_backend",
    "backends",
    "__version__",
]
