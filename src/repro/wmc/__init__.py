"""Weighted model counting and probabilistic inference (`repro.wmc`).

Treats a decision diagram as the arithmetic circuit of its Boolean
function (the "BDDs are a subset of Bayesian nets" view): per-variable
weights flow through the same top-down levelized sweep batch
evaluation uses, giving the weighted count, the probability
``p(f = 1)`` under independent inputs, and per-variable posterior
marginals — each in one ``O(nodes)`` pass per query, with exact
:class:`fractions.Fraction` arithmetic by default.

The conveniences here take :class:`repro.api.base.FunctionBase`
handles; the same queries are methods on functions
(``f.p_one(...)``, ``f.weighted_count(...)``, ``f.marginals(...)``),
on managers (``manager.weighted_count(f, ...)``) and on frozen
shared-memory forests (:class:`repro.par.shm.ShmForest` answers them
zero-copy straight off the segment arrays).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.wmc.sweep import (
    WmcError,
    mass_sweep,
    resolve_weights,
    shannon_count,
    total_mass,
)

__all__ = [
    "WmcError",
    "mass_sweep",
    "marginals",
    "p_one",
    "resolve_weights",
    "shannon_count",
    "total_mass",
    "weighted_count",
]


def _count_sweeps(count: int = 1) -> None:
    """Bump the ``repro_wmc_sweeps_total`` observability counter."""
    from repro import obs
    from repro.obs.catalog import family

    family(obs.REGISTRY, "repro_wmc_sweeps_total").inc(count)


def weighted_count(f, weights: Optional[Mapping] = None, *, exact: bool = True):
    """The weighted model count of ``f`` over all manager variables.

    :param f: a function handle of any backend.
    :param weights: mapping of variable to a ``(w1, w0)`` pair or a
        single number ``p`` (shorthand for ``(p, 1 - p)``); unmentioned
        variables weigh ``(1, 1)``, so with uniform ``1/2`` weights on
        the support this equals ``sat_count / 2^|support|`` and with no
        weights at all it is exactly ``sat_count``.
    :param exact: exact Fraction arithmetic (default) or floats.
    """
    manager = f.manager
    w1, w0, one, zero = resolve_weights(
        manager, weights, probabilities=False, exact=exact
    )
    _count_sweeps()
    return manager.weighted_count_edge(f.edge, w1, w0, one, zero)


def p_one(f, weights: Optional[Mapping] = None, *, exact: bool = True):
    """``p(f = 1)`` under independent per-variable probabilities.

    :param f: a function handle of any backend.
    :param weights: mapping of variable to ``p(v = 1)`` in ``[0, 1]``;
        unmentioned variables default to ``1/2``.
    :param exact: exact Fraction arithmetic (default) or floats.
    """
    manager = f.manager
    w1, w0, one, zero = resolve_weights(
        manager, weights, probabilities=True, exact=exact
    )
    _count_sweeps()
    return manager.weighted_count_edge(f.edge, w1, w0, one, zero)


def marginals(
    f,
    weights: Optional[Mapping] = None,
    variables=None,
    *,
    exact: bool = True,
) -> dict:
    """Posterior marginals ``p(v = 1 | f = 1)`` per support variable.

    Implemented as one conditioning re-sweep per variable: pinning
    ``w0[v] = 0`` yields the joint ``p(f = 1, v = 1)``, divided by
    ``p(f = 1)``.  :param variables: restricts/extends the queried set
    (default: the support, in name order).

    :raises WmcError: when ``p(f = 1)`` is zero — the posterior is
        undefined.
    """
    manager = f.manager
    w1, w0, one, zero = resolve_weights(
        manager, weights, probabilities=True, exact=exact
    )
    denominator = manager.weighted_count_edge(f.edge, w1, w0, one, zero)
    if not denominator:
        raise WmcError(
            "marginals are undefined: p(f = 1) is 0 under these weights"
        )
    if variables is None:
        names = sorted(f.support())
    elif isinstance(variables, (str, int)):
        names = [variables]
    else:
        names = list(variables)
    result = {}
    sweeps = 1
    for var in names:
        index = manager.var_index(var)
        held = w0[index]
        w0[index] = zero
        joint = manager.weighted_count_edge(f.edge, w1, w0, one, zero)
        w0[index] = held
        sweeps += 1
        result[manager.var_name(index)] = joint / denominator
    _count_sweeps(sweeps)
    return result
