"""The weighted-counting mass sweep and its protocol-pure fallback.

Weighted model counting assigns every variable ``v`` a pair of weights
``(w1(v), w0(v))`` and asks for the total weight of the on-set,

.. math:: WMC(f) = \\sum_{a : f(a)=1} \\; \\prod_v w_{a_v}(v),

which specializes to probabilistic inference (``w1 + w0 = 1`` makes it
``p(f = 1)`` for independent inputs) and to plain ``sat_count``
(``w1 = w0 = 1``).  :func:`mass_sweep` computes it in **one top-down
levelized pass** over the same 9-tuple item streams the batch
evaluator uses (:meth:`repro.api.base.DDManager.batch_stream`):
instead of query bitsets, each node accumulates *mass* — the summed
weight of all root paths reaching it — keyed by the path's complement
parity and by the value the path fixed for the node's primary
variable.  The primary-value key is what makes the sweep exact on
BBDDs: a couple ``(v, w)`` branches on ``v = w`` / ``v != w``, so the
``=``-branch of independent inputs carries ``p·q + (1−p)(1−q)`` — the
mass that arrived with ``v = 1`` pairs with ``w = 1`` and the ``v = 0``
mass with ``w = 0``.  Variables skipped between levels (sparse
supports, chain gaps) contribute their weight *sum* as a free factor,
handled with prefix products in O(1) per edge; chain-reduced span
nodes fold their partner run with an even/odd parity convolution.

Arithmetic is generic over the scalar type: exact mode runs on
:class:`fractions.Fraction` (bit-exact results, the differential-oracle
contract), float mode on machine doubles.  For backends without a
levelized stream, :func:`shannon_count` computes the same quantity
through the public protocol (``root_var`` / ``restrict_edge``) with a
per-node memo — linear in the diagram, correct for any backend.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import BBDDError


class WmcError(BBDDError):
    """Raised for malformed weights or undefined conditional queries."""


def _scalar(value, exact: bool):
    """One weight as a :class:`~fractions.Fraction` or a float."""
    try:
        return Fraction(value) if exact else float(value)
    except (TypeError, ValueError) as exc:
        raise WmcError(f"weight {value!r} is not a number") from exc


def resolve_weights(
    manager,
    weights,
    *,
    probabilities: bool,
    exact: bool = True,
) -> Tuple[list, list, object, object]:
    """Per-variable weight columns from a user mapping.

    :param manager: anything with ``num_vars`` and ``var_index`` —
        a manager, or a frozen :class:`repro.par.shm.ShmForest`.
    :param weights: mapping of variable (name or index) to either a
        single number ``p`` (meaning ``(p, 1 - p)``) or, when
        ``probabilities`` is false, a ``(w1, w0)`` pair.  ``None``
        means all defaults.
    :param probabilities: probability mode — values must be single
        numbers in ``[0, 1]`` and unmentioned variables default to
        ``1/2``; in plain weighted-count mode unmentioned variables
        default to ``(1, 1)`` (they sum out), and weights may be any
        numbers, including negative.
    :param exact: exact :class:`~fractions.Fraction` arithmetic
        (default) or floats.
    :returns: ``(w1, w0, one, zero)`` — two columns indexed by
        variable index plus the scalar constants of the chosen
        arithmetic.
    :raises WmcError: for non-numeric weights, pairs in probability
        mode, or probabilities outside ``[0, 1]``.
    """
    one = Fraction(1) if exact else 1.0
    zero = one - one
    n = manager.num_vars
    if probabilities:
        half = one / 2
        w1 = [half] * n
        w0 = [one - half] * n
    else:
        w1 = [one] * n
        w0 = [one] * n
    if weights:
        for var, value in weights.items():
            index = manager.var_index(var)
            if isinstance(value, (tuple, list)):
                if probabilities:
                    raise WmcError(
                        "probability weights are single numbers in [0, 1]; "
                        f"got the pair {value!r} for {var!r} "
                        "(pairs are for weighted_count)"
                    )
                if len(value) != 2:
                    raise WmcError(
                        f"weight pair for {var!r} must have exactly two "
                        f"entries (w1, w0); got {value!r}"
                    )
                hi = _scalar(value[0], exact)
                lo = _scalar(value[1], exact)
            else:
                hi = _scalar(value, exact)
                lo = one - hi
                if probabilities and not zero <= hi <= one:
                    raise WmcError(
                        f"probability for {var!r} must lie in [0, 1]; "
                        f"got {value!r}"
                    )
            w1[index] = hi
            w0[index] = lo
    return w1, w0, one, zero


def total_mass(w1: Sequence, w0: Sequence, one):
    """``prod(w1[v] + w0[v])`` — the weighted count of ``TRUE``."""
    total = one
    for hi, lo in zip(w1, w0):
        total = total * (hi + lo)
    return total


def mass_sweep(
    root_key,
    root_attr: bool,
    items,
    *,
    order: Sequence[int],
    positions: Sequence[int],
    w1: Sequence,
    w0: Sequence,
    one,
    zero,
):
    """Weighted count of one diagram from its levelized item stream.

    :param root_key: the node key the stream names as the root (mass is
        seeded when its item appears, so shared multi-root stores can
        stream every stored node and non-reachable ones stay massless).
    :param root_attr: complement attribute of the root edge.
    :param items: parents-first 9-tuple items as produced by
        ``batch_stream`` / :meth:`repro.par.shm.ShmForest._items`.
    :param order: variable indices by order position.
    :param positions: order position by variable index.
    :param w1: weight of assigning 1, indexed by variable.
    :param w0: weight of assigning 0, indexed by variable.
    :param one: multiplicative unit of the arithmetic in use.
    :param zero: additive unit of the arithmetic in use.
    :returns: the weighted count, in the same scalar type as ``one``.

    Per node the sweep keeps masses keyed ``(parity, pv_value)``;
    skipped order positions multiply in their weight sum via prefix
    products.  Any variable whose weights sum to the exact zero makes
    every full-assignment product zero, so the sweep short-circuits.
    """
    n = len(order)
    sums = []
    for var in order:
        s = w1[var] + w0[var]
        if s == zero:
            return zero
        sums.append(s)
    prefix = [one]
    for s in sums:
        prefix.append(prefix[-1] * s)
    total = prefix[n]
    root_attr = bool(root_attr)
    masses: Dict[object, dict] = {}
    acc = zero

    def route(branch_key, branch_pv, flip, parity, mass, from_pos):
        """Push ``mass`` (integrated above ``from_pos``) down one edge."""
        nonlocal acc
        if not mass:
            return
        parity ^= flip
        if branch_key is None:
            if not parity:
                acc += mass * (total / prefix[from_pos])
            return
        q = positions[branch_pv]
        mass = mass * (prefix[q] / prefix[from_pos])
        slots = masses.get(branch_key)
        if slots is None:
            slots = masses[branch_key] = {}
        hi_key = (parity, True)
        lo_key = (parity, False)
        slots[hi_key] = slots.get(hi_key, zero) + mass * w1[branch_pv]
        slots[lo_key] = slots.get(lo_key, zero) + mass * w0[branch_pv]

    for key, pv, sv, t_key, t_flip, t_pv, f_key, f_flip, f_pv in items:
        if key == root_key:
            # Seed at the root's own item: gap factors above it are
            # free, and its pv weight splits the initial mass.
            base = prefix[positions[pv]]
            slots = masses.setdefault(key, {})
            hi_key = (root_attr, True)
            lo_key = (root_attr, False)
            slots[hi_key] = slots.get(hi_key, zero) + base * w1[pv]
            slots[lo_key] = slots.get(lo_key, zero) + base * w0[pv]
        m = masses.pop(key, None)
        if m is None:
            # Stored but unreachable from this root (shared stores
            # stream every slot): no mass, nothing to do.
            continue
        p = positions[pv]
        if sv is None:
            # Single-variable test (literal / Shannon): value 1 -> t.
            for parity in (False, True):
                hi = m.get((parity, True))
                lo = m.get((parity, False))
                if hi:
                    route(t_key, t_pv, t_flip, parity, hi, p + 1)
                if lo:
                    route(f_key, f_pv, f_flip, parity, lo, p + 1)
        elif type(sv) is tuple:
            # Span: odd parity of pv + partners -> t.  Fold the partner
            # run into even/odd weight masses, then route from below
            # the chain bottom.
            ps = positions[sv[0]]
            pb = positions[sv[-1]]
            even, odd = one, zero
            for partner in sv:
                even, odd = (
                    even * w0[partner] + odd * w1[partner],
                    even * w1[partner] + odd * w0[partner],
                )
            gap = prefix[ps] / prefix[p + 1]
            for parity in (False, True):
                hi = m.get((parity, True), zero)
                lo = m.get((parity, False), zero)
                if not hi and not lo:
                    continue
                t_mass = (hi * even + lo * odd) * gap
                f_mass = (lo * even + hi * odd) * gap
                route(t_key, t_pv, t_flip, parity, t_mass, pb + 1)
                route(f_key, f_pv, f_flip, parity, f_mass, pb + 1)
        else:
            # Couple (pv, sv): pv != sv -> t.  The =-branch pairs the
            # pv=1 mass with sv=1 and pv=0 with sv=0 (p*q + (1-p)(1-q)
            # for probabilities); the !=-branch crosses them.  A child
            # rooted *at* sv keeps the per-value split; deeper children
            # integrate sv out.
            s = sv
            ps = positions[s]
            gap = prefix[ps] / prefix[p + 1]
            ws1 = w1[s]
            ws0 = w0[s]
            for parity in (False, True):
                hi = m.get((parity, True), zero)
                lo = m.get((parity, False), zero)
                if not hi and not lo:
                    continue
                for branch_key, branch_pv, flip, m_s1, m_s0 in (
                    (t_key, t_pv, t_flip, lo * ws1, hi * ws0),
                    (f_key, f_pv, f_flip, hi * ws1, lo * ws0),
                ):
                    m_s1 = m_s1 * gap
                    m_s0 = m_s0 * gap
                    out = parity ^ flip
                    if branch_key is None:
                        if not out:
                            acc += (m_s1 + m_s0) * (total / prefix[ps + 1])
                        continue
                    slots = masses.get(branch_key)
                    if slots is None:
                        slots = masses[branch_key] = {}
                    if branch_pv == s:
                        hi_key = (out, True)
                        lo_key = (out, False)
                        slots[hi_key] = slots.get(hi_key, zero) + m_s1
                        slots[lo_key] = slots.get(lo_key, zero) + m_s0
                    else:
                        q = positions[branch_pv]
                        mm = (m_s1 + m_s0) * (prefix[q] / prefix[ps + 1])
                        hi_key = (out, True)
                        lo_key = (out, False)
                        slots[hi_key] = (
                            slots.get(hi_key, zero) + mm * w1[branch_pv]
                        )
                        slots[lo_key] = (
                            slots.get(lo_key, zero) + mm * w0[branch_pv]
                        )
    return acc


def shannon_count(manager, edge, w1: Sequence, w0: Sequence, one, zero):
    """Weighted count through the public protocol, one memo per node.

    The per-node fallback for backends without ``batch_stream``: a
    memoized Shannon recursion over ``root_var`` / ``restrict_edge``
    (iterative, like :func:`repro.api.base.rebuild_function`'s
    protocol path).  Each node computes the *normalized* mass
    ``(w1(v)·p(f|v=1) + w0(v)·p(f|v=0)) / (w1(v) + w0(v))`` so skipped
    variables need no position bookkeeping; the total weight
    ``prod(w1 + w0)`` multiplies back in at the end.
    """
    sums: Dict[int, object] = {}
    total = one
    for var, (hi, lo) in enumerate(zip(w1, w0)):
        s = hi + lo
        if s == zero:
            return zero
        sums[var] = s
        total = total * s
    memo: Dict[object, object] = {}
    pending: Dict[object, tuple] = {}
    edge_uid = manager.edge_uid
    with manager.defer_gc():
        stack = [edge]
        while stack:
            e = stack[-1]
            uid = edge_uid(e)
            if uid in memo:
                stack.pop()
                continue
            entry = pending.pop(uid, None)
            if entry is not None:
                var, hi_e, lo_e = entry
                memo[uid] = (
                    w1[var] * memo[edge_uid(hi_e)]
                    + w0[var] * memo[edge_uid(lo_e)]
                ) / sums[var]
                stack.pop()
                continue
            if manager.edge_is_sink(e):
                memo[uid] = zero if manager.edge_is_false(e) else one
                stack.pop()
                continue
            var = manager.root_var(e)
            hi_e = manager.restrict_edge(e, var, True)
            lo_e = manager.restrict_edge(e, var, False)
            pending[uid] = (var, hi_e, lo_e)
            stack.append(lo_e)
            stack.append(hi_e)
    return memo[edge_uid(edge)] * total
