"""Combinational logic networks and the BLIF/Verilog frontends.

The paper's packages consume gate-level descriptions: CUDD reads BLIF, the
BBDD package reads structural Verilog flattened onto primitive Boolean
operations (XOR, AND, OR, INV, BUF).  This subpackage provides the shared
network IR, both frontends, bit-parallel simulation and the
network-to-decision-diagram builders used by every experiment harness.
"""

from repro.network.network import Gate, LogicNetwork
from repro.network.build import build, build_bbdd, build_bdd
from repro.network.simulate import simulate, exhaustive_masks

__all__ = [
    "Gate",
    "LogicNetwork",
    "build",
    "build_bbdd",
    "build_bdd",
    "simulate",
    "exhaustive_masks",
]
