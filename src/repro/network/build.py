"""Network-to-decision-diagram builders.

Both packages are driven identically (the Table I pipeline): variables are
created in the network's input order (the paper's "initial order provided
in the file"), gates are translated bottom-up with the package's recursive
apply, and the outputs are returned as function handles on a shared
manager.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.operations import OP_AND, OP_OR, OP_XNOR, OP_XOR, flip_output

_GATE_TO_OP = {
    "AND": OP_AND,
    "OR": OP_OR,
    "XOR": OP_XOR,
    "XNOR": OP_XNOR,
    "NAND": flip_output(OP_AND),
    "NOR": flip_output(OP_OR),
}


def _build(manager, network, make_manager_edge) -> Dict[str, object]:
    """Shared builder core: fold every gate through ``apply_edges``.

    Signal edges are held bare across the whole bottom-up pass, so
    automatic GC is deferred until the outputs are wrapped in handles.
    """
    with manager.defer_gc():
        return _build_deferred(manager, network, make_manager_edge)


def _build_deferred(manager, network, make_manager_edge) -> Dict[str, object]:
    from repro.core.exceptions import BBDDError

    edges: Dict[str, tuple] = {}
    for j, name in enumerate(network.inputs):
        # Bind inputs by *name* when the manager knows them — a supplied
        # manager may order its variables differently (or hold extras,
        # e.g. the next-state variables of a transition-system order);
        # managers with anonymous positional variables fall back to the
        # input's position.
        try:
            edges[name] = manager.literal_edge(name)
        except BBDDError:
            edges[name] = manager.literal_edge(j)

    for signal in network.topological_order():
        gate = network.gates[signal]
        op = gate.op
        if op == "CONST0":
            edges[signal] = manager.false_edge
            continue
        if op == "CONST1":
            edges[signal] = manager.true_edge
            continue
        fanins = [edges[f] for f in gate.fanins]
        if op == "BUF":
            edges[signal] = fanins[0]
        elif op == "INV":
            edges[signal] = manager.negate_edge(fanins[0])
        elif op == "MUX":
            s, a, b = fanins
            sa = manager.apply_edges(s, a, OP_AND)
            sb = manager.apply_edges(manager.negate_edge(s), b, OP_AND)
            edges[signal] = manager.apply_edges(sa, sb, OP_OR)
        elif op == "MAJ":
            a, b, c = fanins
            ab = manager.apply_edges(a, b, OP_AND)
            ac = manager.apply_edges(a, c, OP_AND)
            bc = manager.apply_edges(b, c, OP_AND)
            edges[signal] = manager.apply_edges(
                manager.apply_edges(ab, ac, OP_OR), bc, OP_OR
            )
        else:
            table = _GATE_TO_OP[op]
            if op in ("NAND", "NOR"):
                # Fold as the positive op, complement the final edge.
                positive = OP_AND if op == "NAND" else OP_OR
                acc = fanins[0]
                for nxt in fanins[1:]:
                    acc = manager.apply_edges(acc, nxt, positive)
                edges[signal] = manager.negate_edge(acc)
            else:
                acc = fanins[0]
                for nxt in fanins[1:]:
                    acc = manager.apply_edges(acc, nxt, table)
                edges[signal] = acc

    return {name: make_manager_edge(edges[sig]) for name, sig in network.outputs}


def build(
    network,
    backend: str = "bbdd",
    manager=None,
    unique_backend: Optional[str] = None,
    computed_backend: Optional[str] = None,
    **manager_kwargs,
) -> Tuple[object, Dict[str, object]]:
    """Build decision diagrams for all outputs of ``network``.

    The one backend-agnostic entry point: ``backend`` names any
    registered :mod:`repro.api` backend (``"bbdd"``, ``"bdd"``,
    ``"xmem"``, ...) and the returned manager/handles implement the
    uniform protocol, so every client drives all packages through the
    identical code path.  Returns ``(manager, {output name: function})``;
    a fresh manager with the network's input order is created unless one
    is supplied.  Extra keyword arguments go to the backend factory
    (``unique_backend``/``computed_backend`` for the table-backed
    packages, ``node_budget`` for xmem, ...); the table-backend
    arguments are only forwarded when set, since not every backend has
    hash tables to configure.
    """
    if manager is None:
        from repro.api import open as _open

        kwargs = dict(manager_kwargs)
        if unique_backend is not None:
            kwargs["unique_backend"] = unique_backend
        if computed_backend is not None:
            kwargs["computed_backend"] = computed_backend
        manager = _open(backend, vars=list(network.inputs), **kwargs)
    functions = _build(manager, network, manager.function)
    return manager, functions


def build_bbdd(
    network,
    manager=None,
    unique_backend: str = "dict",
    computed_backend: str = "dict",
) -> Tuple[object, Dict[str, object]]:
    """Build BBDDs for all outputs of ``network``.

    Deprecated backend-specific spelling of :func:`build`; prefer
    ``build(network, backend="bbdd")``.
    """
    return build(
        network,
        backend="bbdd",
        manager=manager,
        unique_backend=unique_backend,
        computed_backend=computed_backend,
    )


def build_bdd(
    network,
    manager=None,
    unique_backend: str = "dict",
    computed_backend: str = "dict",
) -> Tuple[object, Dict[str, object]]:
    """Build baseline-package BDDs for all outputs of ``network``.

    Deprecated backend-specific spelling of :func:`build`; prefer
    ``build(network, backend="bdd")``.
    """
    return build(
        network,
        backend="bdd",
        manager=manager,
        unique_backend=unique_backend,
        computed_backend=computed_backend,
    )
