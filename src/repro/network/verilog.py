"""Structural Verilog frontend (the BBDD package's input format, Sec. IV-B).

Reads a single flattened module over primitive Boolean operations: gate
instantiations (``and``, ``or``, ``xor``, ``xnor``, ``nand``, ``nor``,
``not``, ``buf``) and continuous assignments (``assign y = expr;``) with
the operators ``~ & | ^ ~^ ^~`` and parentheses, plus the constants
``1'b0``/``1'b1``.  The writer emits assign-style netlists.  Vectors are
not supported — benchmarks are bit-blasted, as the paper's flow requires
("flattened onto primitive Boolean operations").
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.network.network import LogicNetwork

_GATE_KEYWORDS = {
    "and": "AND",
    "or": "OR",
    "xor": "XOR",
    "xnor": "XNOR",
    "nand": "NAND",
    "nor": "NOR",
    "not": "INV",
    "buf": "BUF",
}

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<id>[A-Za-z_\\][A-Za-z0-9_$\[\]\.]*)|(?P<const>1'b[01])"
    r"|(?P<op>~\^|\^~|[~&|^()])|(?P<other>.))"
)


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


class _ExprParser:
    """Recursive-descent parser for assign right-hand sides.

    Precedence (tightest first): ``~``, ``&``, ``^``/``~^``, ``|``.
    """

    def __init__(self, tokens: List[str], net: LogicNetwork, defined: set) -> None:
        self.tokens = tokens
        self.pos = 0
        self.net = net
        self.defined = defined

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise ValueError(f"expected {token!r}, got {got!r}")

    def parse(self) -> str:
        result = self.parse_or()
        if self.peek() is not None:
            raise ValueError(f"trailing tokens: {self.tokens[self.pos:]}")
        return result

    def parse_or(self) -> str:
        terms = [self.parse_xor()]
        while self.peek() == "|":
            self.take()
            terms.append(self.parse_xor())
        return terms[0] if len(terms) == 1 else self.net.or_(*terms)

    def parse_xor(self) -> str:
        terms = [self.parse_and()]
        ops: List[str] = []
        while self.peek() in ("^", "~^", "^~"):
            ops.append(self.take())
            terms.append(self.parse_and())
        result = terms[0]
        for op, term in zip(ops, terms[1:]):
            if op == "^":
                result = self.net.xor(result, term)
            else:
                result = self.net.xnor(result, term)
        return result

    def parse_and(self) -> str:
        terms = [self.parse_unary()]
        while self.peek() == "&":
            self.take()
            terms.append(self.parse_unary())
        return terms[0] if len(terms) == 1 else self.net.and_(*terms)

    def parse_unary(self) -> str:
        token = self.peek()
        if token == "~":
            self.take()
            return self.net.inv(self.parse_unary())
        if token == "(":
            self.take()
            inner = self.parse_or()
            self.expect(")")
            return inner
        token = self.take()
        if token in ("1'b0", "1'b1"):
            return self.net.const(token == "1'b1")
        if token is None:
            raise ValueError("unexpected end of expression")
        if token not in self.defined:
            raise ValueError(f"expression references undefined signal {token!r}")
        return token


def _tokenize_expr(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            break
        pos = match.end()
        token = match.group("id") or match.group("const") or match.group("op")
        if token is None:
            bad = match.group("other")
            if bad and bad.strip():
                raise ValueError(f"unexpected character {bad!r} in expression")
            continue
        tokens.append(token)
    return tokens


def parse_verilog(text: str) -> LogicNetwork:
    """Parse one flattened structural module into a network."""
    text = _strip_comments(text)
    module = re.search(r"\bmodule\b\s+([A-Za-z_][A-Za-z0-9_$]*)", text)
    name = module.group(1) if module else "verilog"
    body_match = re.search(r"\bmodule\b.*?;(.*)\bendmodule\b", text, flags=re.S)
    if body_match is None:
        raise ValueError("no module body found")
    body = body_match.group(1)

    net = LogicNetwork(name)
    inputs: List[str] = []
    outputs: List[str] = []
    wires: List[str] = []
    assigns: List[Tuple[str, str]] = []
    instances: List[Tuple[str, List[str]]] = []

    for statement in [s.strip() for s in body.split(";")]:
        if not statement:
            continue
        keyword = statement.split(None, 1)[0]
        if keyword in ("input", "output", "wire"):
            decl = statement[len(keyword):]
            if "[" in decl:
                raise ValueError("vector declarations are not supported (bit-blast first)")
            names = [n.strip() for n in decl.split(",") if n.strip()]
            {"input": inputs, "output": outputs, "wire": wires}[keyword].extend(names)
        elif keyword == "assign":
            lhs, rhs = statement[len("assign"):].split("=", 1)
            assigns.append((lhs.strip(), rhs.strip()))
        elif keyword in _GATE_KEYWORDS:
            rest = statement[len(keyword):].strip()
            port_match = re.search(r"\((.*)\)$", rest, flags=re.S)
            if port_match is None:
                raise ValueError(f"malformed gate instance: {statement!r}")
            ports = [p.strip() for p in port_match.group(1).split(",")]
            instances.append((keyword, ports))
        else:
            raise ValueError(f"unsupported Verilog statement: {statement!r}")

    net.add_inputs(inputs)
    net.reserve_names(outputs)
    net.reserve_names(wires)
    net.reserve_names(lhs for lhs, _rhs in assigns)
    net.reserve_names(ports[0] for _kw, ports in instances)
    defined = set(inputs)

    # Gate instances and assigns may be listed in any order: iterate to a
    # fixed point (netlists are DAGs, so this converges).
    pending_assigns = list(assigns)
    pending_instances = list(instances)
    while pending_assigns or pending_instances:
        progressed = False
        next_assigns = []
        for lhs, rhs in pending_assigns:
            tokens = _tokenize_expr(rhs)
            refs = [t for t in tokens if t not in ("~", "&", "|", "^", "~^", "^~", "(", ")", "1'b0", "1'b1")]
            if all(r in defined for r in refs):
                parser = _ExprParser(tokens, net, defined)
                result = parser.parse()
                net.add_gate("BUF", [result], name=lhs)
                defined.add(lhs)
                progressed = True
            else:
                next_assigns.append((lhs, rhs))
        pending_assigns = next_assigns

        next_instances = []
        for keyword, ports in pending_instances:
            target, fanins = _instance_ports(keyword, ports)
            if all(f in defined for f in fanins):
                net.add_gate(_GATE_KEYWORDS[keyword], fanins, name=target)
                defined.add(target)
                progressed = True
            else:
                next_instances.append((keyword, ports))
        pending_instances = next_instances

        if not progressed:
            raise ValueError("could not resolve all Verilog statements (cycle or undefined signal)")

    for out in outputs:
        if out not in defined:
            raise ValueError(f"output {out!r} has no driver")
        net.set_output(out, out)
    net.validate()
    return net


def _instance_ports(keyword: str, ports: List[str]) -> Tuple[str, List[str]]:
    """Split an instance port list into (output, fanins).

    Both named instances (``and g1(y, a, b)``) and anonymous ones
    (``and (y, a, b)``) arrive here as a bare port list: the first port is
    the output, per Verilog primitive-gate convention.
    """
    if len(ports) < 2:
        raise ValueError(f"{keyword} instance needs at least 2 ports")
    return ports[0], ports[1:]


def read_verilog(path: str) -> LogicNetwork:
    with open(path) as handle:
        return parse_verilog(handle.read())


_OP_FORMATS = {
    "AND": (" & ", None),
    "OR": (" | ", None),
    "XOR": (" ^ ", None),
    "XNOR": (" ^ ", "~"),
    "NAND": (" & ", "~"),
    "NOR": (" | ", "~"),
}


def write_verilog(network: LogicNetwork, module_name: Optional[str] = None) -> str:
    """Serialize a network as a flattened assign-style Verilog module."""
    name = module_name or network.name or "top"
    out_names = [n for n, _sig in network.outputs]
    ports = network.inputs + out_names
    lines = [f"module {name} (" + ", ".join(ports) + ");"]
    if network.inputs:
        lines.append("  input " + ", ".join(network.inputs) + ";")
    if out_names:
        lines.append("  output " + ", ".join(out_names) + ";")
    wires = [s for s in network.gates if s not in set(out_names)]
    if wires:
        for i in range(0, len(wires), 12):
            lines.append("  wire " + ", ".join(wires[i : i + 12]) + ";")

    for signal in network.topological_order():
        gate = network.gates[signal]
        lines.append(f"  assign {signal} = {_gate_expr(gate)};")
    for out, sig in network.outputs:
        if out != sig and out not in network.gates:
            lines.append(f"  assign {out} = {sig};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _gate_expr(gate) -> str:
    op = gate.op
    fanins = list(gate.fanins)
    if op == "INV":
        return f"~{fanins[0]}"
    if op == "BUF":
        return fanins[0]
    if op == "CONST0":
        return "1'b0"
    if op == "CONST1":
        return "1'b1"
    if op == "MUX":
        s, a, b = fanins
        return f"({s} & {a}) | (~{s} & {b})"
    if op == "MAJ":
        a, b, c = fanins
        return f"({a} & {b}) | ({a} & {c}) | ({b} & {c})"
    joiner, prefix = _OP_FORMATS[op]
    body = joiner.join(fanins)
    if op == "XNOR":
        return f"~({body})"
    if prefix:
        return f"~({body})"
    return body
