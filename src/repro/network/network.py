"""Gate-level combinational network IR.

A :class:`LogicNetwork` is a DAG of named signals: primary inputs, gates
over primitive Boolean operations, and named primary outputs.  It is the
common substrate for the benchmark generators, the BLIF/Verilog frontends,
the decision-diagram builders and the synthesis flows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Supported primitive operations and their arities (None = variadic >= 2).
GATE_ARITY = {
    "AND": None,
    "OR": None,
    "XOR": None,
    "XNOR": None,
    "NAND": None,
    "NOR": None,
    "INV": 1,
    "BUF": 1,
    "MUX": 3,  # MUX(s, a, b) = s ? a : b
    "MAJ": 3,  # majority of three
    "CONST0": 0,
    "CONST1": 0,
}


class Gate:
    """A single gate: ``op`` over ordered fanin signal names."""

    __slots__ = ("op", "fanins")

    def __init__(self, op: str, fanins: Sequence[str]) -> None:
        op = op.upper()
        if op == "NOT":
            op = "INV"
        if op not in GATE_ARITY:
            raise ValueError(f"unsupported gate op {op!r}")
        arity = GATE_ARITY[op]
        if arity is None:
            if len(fanins) < 2:
                raise ValueError(f"{op} gate needs >= 2 fanins, got {len(fanins)}")
        elif len(fanins) != arity:
            raise ValueError(f"{op} gate needs {arity} fanins, got {len(fanins)}")
        self.op = op
        self.fanins = tuple(fanins)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gate({self.op}, {self.fanins})"


def gate_eval(op: str, values: Sequence[int], width_mask: int) -> int:
    """Evaluate a gate over bit-parallel integer words."""
    if op == "AND":
        out = width_mask
        for v in values:
            out &= v
        return out
    if op == "OR":
        out = 0
        for v in values:
            out |= v
        return out
    if op == "XOR":
        out = 0
        for v in values:
            out ^= v
        return out
    if op == "XNOR":
        out = 0
        for v in values:
            out ^= v
        return ~out & width_mask
    if op == "NAND":
        out = width_mask
        for v in values:
            out &= v
        return ~out & width_mask
    if op == "NOR":
        out = 0
        for v in values:
            out |= v
        return ~out & width_mask
    if op == "INV":
        return ~values[0] & width_mask
    if op == "BUF":
        return values[0]
    if op == "MUX":
        s, a, b = values
        return (s & a) | (~s & b & width_mask)
    if op == "MAJ":
        a, b, c = values
        return (a & b) | (a & c) | (b & c)
    if op == "CONST0":
        return 0
    if op == "CONST1":
        return width_mask
    raise ValueError(f"unsupported gate op {op!r}")


class LogicNetwork:
    """A named combinational network over primitive gates."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self.inputs: List[str] = []
        self._input_set: set = set()
        self.gates: Dict[str, Gate] = {}
        self.outputs: List[Tuple[str, str]] = []  # (output name, signal)
        self.latches: List[Tuple[str, str, int]] = []  # (data, state, init)
        self._auto = 0
        self._reserved: set = set()

    def reserve_names(self, names: Iterable[str]) -> None:
        """Keep :meth:`fresh_name` from generating any of ``names``.

        Frontends reserve every file-declared signal before expanding
        compound constructs into intermediate gates.
        """
        self._reserved.update(names)

    # -- construction -------------------------------------------------------

    def add_input(self, name: str) -> str:
        if name in self._input_set or name in self.gates:
            raise ValueError(f"signal {name!r} already defined")
        self.inputs.append(name)
        self._input_set.add(name)
        return name

    def add_inputs(self, names: Iterable[str]) -> List[str]:
        return [self.add_input(n) for n in names]

    def fresh_name(self, prefix: str = "n") -> str:
        self._auto += 1
        name = f"{prefix}{self._auto}"
        while name in self.gates or name in self._input_set or name in self._reserved:
            self._auto += 1
            name = f"{prefix}{self._auto}"
        return name

    def add_gate(self, op: str, fanins: Sequence[str], name: Optional[str] = None) -> str:
        """Add a gate and return its output signal name."""
        if name is None:
            name = self.fresh_name()
        if name in self.gates or name in self._input_set:
            raise ValueError(f"signal {name!r} already defined")
        self.gates[name] = Gate(op, fanins)
        return name

    def set_output(self, name: str, signal: str) -> None:
        if signal not in self.gates and signal not in self._input_set:
            raise ValueError(f"output {name!r} references unknown signal {signal!r}")
        self.outputs.append((name, signal))

    def add_latch(self, data: str, state: str, init: int = 0) -> str:
        """Register a state element: ``state`` holds last cycle's ``data``.

        The latch output ``state`` becomes an input of the combinational
        core (next-state logic reads it like a primary input), while the
        latch itself records the ``data -> state`` next-state pairing and
        the reset value ``init`` (0, 1, or 2/3 for don't-care, per BLIF).
        ``data`` may be defined later; :meth:`validate` checks it.
        """
        if init not in (0, 1, 2, 3):
            raise ValueError(f"latch init value must be 0..3, got {init!r}")
        self.add_input(state)
        self.latches.append((data, state, init))
        return state

    # Convenience operator helpers used heavily by the generators.

    def and_(self, *signals: str) -> str:
        return self._fold("AND", signals)

    def or_(self, *signals: str) -> str:
        return self._fold("OR", signals)

    def xor(self, *signals: str) -> str:
        return self._fold("XOR", signals)

    def xnor(self, a: str, b: str) -> str:
        return self.add_gate("XNOR", [a, b])

    def inv(self, a: str) -> str:
        return self.add_gate("INV", [a])

    def mux(self, s: str, a: str, b: str) -> str:
        """``s ? a : b``."""
        return self.add_gate("MUX", [s, a, b])

    def maj(self, a: str, b: str, c: str) -> str:
        return self.add_gate("MAJ", [a, b, c])

    def const(self, value: bool) -> str:
        return self.add_gate("CONST1" if value else "CONST0", [])

    def _fold(self, op: str, signals: Sequence[str]) -> str:
        if len(signals) == 1:
            return self.add_gate("BUF", [signals[0]])
        return self.add_gate(op, list(signals))

    # -- structure ------------------------------------------------------------

    def is_input(self, signal: str) -> bool:
        return signal in self._input_set

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def output_signals(self) -> List[str]:
        return [sig for _name, sig in self.outputs]

    def topological_order(self) -> List[str]:
        """Gate signals in topological (fanin-first) order.

        Raises ``ValueError`` on combinational cycles or undefined fanins.
        """
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done
        order: List[str] = []

        for root in self.gates:
            if state.get(root) == 1:
                continue
            stack: List[Tuple[str, int]] = [(root, 0)]
            while stack:
                signal, phase = stack.pop()
                if phase == 0:
                    if signal in self._input_set:
                        continue
                    st = state.get(signal)
                    if st == 1:
                        continue
                    if st == 0:
                        raise ValueError(f"combinational cycle through {signal!r}")
                    gate = self.gates.get(signal)
                    if gate is None:
                        raise ValueError(f"undefined signal {signal!r}")
                    state[signal] = 0
                    stack.append((signal, 1))
                    for fanin in gate.fanins:
                        if fanin not in self._input_set and state.get(fanin) != 1:
                            stack.append((fanin, 0))
                else:
                    state[signal] = 1
                    order.append(signal)
        return order

    def validate(self) -> None:
        """Check structural well-formedness (acyclic, defined signals)."""
        self.topological_order()
        for name, sig in self.outputs:
            if sig not in self.gates and sig not in self._input_set:
                raise ValueError(f"output {name!r} references unknown {sig!r}")
        for data, state, _init in self.latches:
            if data not in self.gates and data not in self._input_set:
                raise ValueError(
                    f"latch {state!r} references unknown data signal {data!r}"
                )

    def gate_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for gate in self.gates.values():
            hist[gate.op] = hist.get(gate.op, 0) + 1
        return hist

    def stats(self) -> dict:
        return {
            "name": self.name,
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "gates": self.num_gates,
            "histogram": self.gate_histogram(),
        }

    # -- transformation helpers --------------------------------------------------

    def cone_of(self, signals: Sequence[str]) -> set:
        """All signals in the transitive fanin of ``signals`` (inclusive)."""
        seen: set = set()
        stack = list(signals)
        while stack:
            s = stack.pop()
            if s in seen:
                continue
            seen.add(s)
            gate = self.gates.get(s)
            if gate is not None:
                stack.extend(gate.fanins)
        return seen

    def copy(self, name: Optional[str] = None) -> "LogicNetwork":
        net = LogicNetwork(name or self.name)
        net.inputs = list(self.inputs)
        net._input_set = set(self._input_set)
        net.gates = {s: Gate(g.op, g.fanins) for s, g in self.gates.items()}
        net.outputs = list(self.outputs)
        net.latches = list(self.latches)
        net._auto = self._auto
        return net

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LogicNetwork {self.name!r} in={self.num_inputs} "
            f"out={self.num_outputs} gates={self.num_gates}>"
        )
