"""BLIF reader/writer (the CUDD-side input format of Sec. IV-B).

Supports the combinational subset used by the MCNC suite: ``.model``,
``.inputs``, ``.outputs``, ``.names`` with PLA-style single-output covers
(including the constant covers), line continuations with ``\\`` and
comments with ``#`` — plus the sequential ``.latch`` directive
(``.latch data state [type control] [init]``): each latch's state
signal joins the combinational core as an input and the
``data -> state`` pairing is recorded on
:attr:`repro.network.network.LogicNetwork.latches`, which is what the
transition-relation builder of :mod:`repro.reach` consumes.  Covers
are expanded into AND/OR/INV primitives on read; the writer emits one
``.names`` block per gate and one ``.latch`` line per state element.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.network import LogicNetwork


def _logical_lines(text: str) -> List[str]:
    lines: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        lines.append((pending + line).strip())
        pending = ""
    if pending.strip():
        lines.append(pending.strip())
    return lines


def parse_blif(text: str) -> LogicNetwork:
    """Parse a single-model combinational BLIF description."""
    lines = _logical_lines(text)
    name = "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    latches: List[Tuple[str, str, int]] = []  # (data, state, init)
    names_blocks: List[Tuple[List[str], List[str]]] = []  # (signals, cover rows)
    current: Optional[Tuple[List[str], List[str]]] = None

    for line in lines:
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            current = None
            if directive == ".model":
                name = parts[1] if len(parts) > 1 else name
            elif directive == ".inputs":
                inputs.extend(parts[1:])
            elif directive == ".outputs":
                outputs.extend(parts[1:])
            elif directive == ".names":
                current = (parts[1:], [])
                names_blocks.append(current)
            elif directive == ".latch":
                # .latch data state [type control] [init]; a trailing
                # digit is the reset value (missing defaults to 0 so
                # reachability always has a concrete initial state).
                if len(parts) < 3:
                    raise ValueError(f"malformed .latch line: {line!r}")
                init = 0
                if len(parts) > 3 and parts[-1] in ("0", "1", "2", "3"):
                    init = int(parts[-1])
                latches.append((parts[1], parts[2], init))
            elif directive == ".end":
                break
            elif directive in (".subckt", ".gate"):
                raise ValueError(f"unsupported BLIF directive for flat flow: {directive}")
            # Silently ignore housekeeping directives (.default_input_arrival etc.)
        else:
            if current is None:
                raise ValueError(f"cover row outside .names block: {line!r}")
            current[1].append(line)

    net = LogicNetwork(name)
    net.add_inputs(inputs)
    for data, state, init in latches:
        net.add_latch(data, state, init)
    net.reserve_names(outputs)
    for signals, _rows in names_blocks:
        net.reserve_names(signals)

    # .names blocks may reference each other in any order; define topologically
    # by deferring until fanins exist.
    pending = list(names_blocks)
    defined = set(inputs) | {state for _data, state, _init in latches}
    guard = 0
    while pending:
        progressed = False
        remaining = []
        for block in pending:
            signals, rows = block
            *fanins, target = signals
            if all(f in defined for f in fanins):
                _expand_cover(net, target, fanins, rows)
                defined.add(target)
                progressed = True
            else:
                remaining.append(block)
        pending = remaining
        guard += 1
        if not progressed and pending:
            missing = {f for sigs, _r in pending for f in sigs[:-1] if f not in defined}
            raise ValueError(f"BLIF references undefined signals: {sorted(missing)}")
        if guard > len(names_blocks) + 2:
            raise ValueError("BLIF dependency resolution did not converge")

    for out in outputs:
        if out not in defined:
            raise ValueError(f"output {out!r} has no driver")
        net.set_output(out, out)
    net.validate()
    return net


def _expand_cover(net: LogicNetwork, target: str, fanins: List[str], rows: List[str]) -> None:
    """Expand a single-output PLA cover into AND/OR/INV primitives."""
    if not fanins:
        # Constant: a single "1" row means const 1, empty cover means const 0.
        value = any(row.strip() == "1" for row in rows)
        net.add_gate("CONST1" if value else "CONST0", [], name=target)
        return

    on_rows: List[str] = []
    polarity_one = True
    for row in rows:
        parts = row.split()
        if len(parts) == 1 and len(fanins) == 0:
            continue
        if len(parts) != 2:
            raise ValueError(f"malformed cover row {row!r}")
        cube, value = parts
        if len(cube) != len(fanins):
            raise ValueError(f"cube width mismatch in {row!r}")
        if value == "0":
            polarity_one = False
        on_rows.append(cube)
    if not on_rows:
        net.add_gate("CONST0", [], name=target)
        return

    products: List[str] = []
    for cube in on_rows:
        literals: List[str] = []
        for bit, fanin in zip(cube, fanins):
            if bit == "1":
                literals.append(fanin)
            elif bit == "0":
                literals.append(net.inv(fanin))
            elif bit != "-":
                raise ValueError(f"bad cube character {bit!r}")
        if not literals:
            products.append(net.const(True))
        elif len(literals) == 1:
            products.append(literals[0])
        else:
            products.append(net.and_(*literals))

    if len(products) == 1:
        result = products[0]
    else:
        result = net.or_(*products)
    if not polarity_one:
        # Off-set cover: the rows describe when the output is 0.
        result = net.inv(result)
    net.add_gate("BUF", [result], name=target)


def read_blif(path: str) -> LogicNetwork:
    with open(path) as handle:
        return parse_blif(handle.read())


_COVERS = {
    "AND": lambda k: [("1" * k, "1")],
    "NAND": lambda k: [("1" * k, "0")],
    "OR": lambda k: [
        ("-" * i + "1" + "-" * (k - i - 1), "1") for i in range(k)
    ],
    "NOR": lambda k: [("0" * k, "1")],
    "INV": lambda k: [("0", "1")],
    "BUF": lambda k: [("1", "1")],
}


def write_blif(network: LogicNetwork) -> str:
    """Serialize a network to BLIF text (gates as .names covers)."""
    out: List[str] = [f".model {network.name}"]
    latch_states = {state for _data, state, _init in network.latches}
    out.append(
        ".inputs "
        + " ".join(n for n in network.inputs if n not in latch_states)
    )
    out.append(".outputs " + " ".join(name for name, _sig in network.outputs))
    for data, state, init in network.latches:
        out.append(f".latch {data} {state} {init}")

    alias: Dict[str, str] = {}
    for name, sig in network.outputs:
        if name != sig:
            alias[name] = sig

    for signal in network.topological_order():
        gate = network.gates[signal]
        out.extend(_gate_to_names(signal, gate))
    for name, sig in network.outputs:
        if name != sig and name not in network.gates:
            out.append(f".names {sig} {name}")
            out.append("1 1")
    out.append(".end")
    return "\n".join(out) + "\n"


def _gate_to_names(signal: str, gate) -> List[str]:
    op = gate.op
    fanins = list(gate.fanins)
    header = ".names " + " ".join(fanins + [signal])
    k = len(fanins)
    if op in _COVERS:
        rows = _COVERS[op](k)
        return [header] + [f"{cube} {value}" for cube, value in rows]
    if op == "CONST1":
        return [f".names {signal}", "1"]
    if op == "CONST0":
        return [f".names {signal}"]
    if op in ("XOR", "XNOR"):
        rows = []
        for i in range(1 << k):
            ones = bin(i).count("1")
            parity = ones & 1
            want = 1 if op == "XOR" else 0
            if parity == want:
                cube = "".join("1" if (i >> j) & 1 else "0" for j in range(k))
                rows.append(f"{cube} 1")
        return [header] + rows
    if op == "MUX":
        return [header, "11- 1", "0-1 1"]
    if op == "MAJ":
        return [header, "11- 1", "1-1 1", "-11 1"]
    raise ValueError(f"cannot serialize gate op {op!r} to BLIF")
