"""Bit-parallel simulation of logic networks.

Signals are simulated as arbitrary-precision integers whose bit ``i`` is
the signal value under the ``i``-th stimulus pattern.  With
:func:`exhaustive_masks` the patterns enumerate all ``2**n`` assignments,
which turns simulation into exact truth-table computation (the oracle used
to verify the decision-diagram builders and the synthesis flows).
"""

from __future__ import annotations

import random
from typing import Dict, Mapping


def exhaustive_masks(num_inputs: int) -> Dict[int, int]:
    """Pattern masks assigning input ``j`` its truth-table column.

    Returns ``{input position j: mask}`` where bit ``i`` of the mask is
    bit ``j`` of pattern index ``i`` — the same convention as
    :class:`repro.core.truthtable.TruthTable`.
    """
    from repro.core.truthtable import _var_pattern

    return {j: _var_pattern(j, num_inputs) for j in range(num_inputs)}


def random_masks(num_inputs: int, width: int = 256, seed: int = 2014) -> Dict[int, int]:
    """Random stimulus masks of ``width`` patterns per input."""
    rng = random.Random(seed)
    return {j: rng.getrandbits(width) for j in range(num_inputs)}


def simulate(
    network,
    input_masks: Mapping[str, int],
    width: int,
) -> Dict[str, int]:
    """Simulate every signal; returns ``{signal: mask}`` over ``width`` bits.

    ``input_masks`` maps input *names* to pattern masks.
    """
    from repro.network.network import gate_eval

    width_mask = (1 << width) - 1
    values: Dict[str, int] = {}
    for name in network.inputs:
        values[name] = input_masks[name] & width_mask
    for signal in network.topological_order():
        gate = network.gates[signal]
        fanin_values = [values[f] for f in gate.fanins]
        values[signal] = gate_eval(gate.op, fanin_values, width_mask)
    return values


def simulate_outputs(network, input_masks: Mapping[str, int], width: int) -> Dict[str, int]:
    """Like :func:`simulate` but returns only the primary outputs."""
    values = simulate(network, input_masks, width)
    return {name: values[sig] for name, sig in network.outputs}


def output_truth_masks(network) -> Dict[str, int]:
    """Exhaustive truth-table masks of every output (inputs in list order)."""
    n = network.num_inputs
    masks = exhaustive_masks(n)
    named = {name: masks[j] for j, name in enumerate(network.inputs)}
    return simulate_outputs(network, named, 1 << n)


def apply_vector(network, assignment: Mapping[str, int]) -> Dict[str, int]:
    """Single-pattern evaluation; returns ``{output name: 0/1}``."""
    masks = {name: (1 if assignment[name] else 0) for name in network.inputs}
    out = simulate_outputs(network, masks, 1)
    return {k: v & 1 for k, v in out.items()}


def networks_equivalent(
    net_a,
    net_b,
    exhaustive_limit: int = 14,
    random_width: int = 4096,
    seed: int = 2014,
) -> bool:
    """Check functional equivalence of two networks on matching I/O names.

    Exhaustive when the input count is small; random-vector otherwise
    (sound only as a falsifier, like any simulation-based check — the
    harness uses BBDD canonicity for the definitive answer on small cones).
    """
    if sorted(net_a.inputs) != sorted(net_b.inputs):
        raise ValueError("networks have different input names")
    outs_a = {name for name, _ in net_a.outputs}
    outs_b = {name for name, _ in net_b.outputs}
    if outs_a != outs_b:
        raise ValueError("networks have different output names")
    n = net_a.num_inputs
    if n <= exhaustive_limit:
        width = 1 << n
        base = exhaustive_masks(n)
        masks_a = {name: base[j] for j, name in enumerate(net_a.inputs)}
        masks_b = {name: masks_a[name] for name in net_b.inputs}
    else:
        width = random_width
        rng = random.Random(seed)
        masks_a = {name: rng.getrandbits(width) for name in net_a.inputs}
        masks_b = {name: masks_a[name] for name in net_b.inputs}
    out_a = simulate_outputs(net_a, masks_a, width)
    out_b = simulate_outputs(net_b, masks_b, width)
    return all(out_a[name] == out_b[name] for name in out_a)
