"""Dump/load of BBDD forests in the levelized binary format.

``dump`` writes a shared forest of named root edges through
:class:`~repro.io.stream.LevelStreamWriter` (layout: header with
variable names, CVO order and per-level node counts; varint node
records level by level, bottom-up; roots trailer — the full byte-level
spec lives in :mod:`repro.io.format`).  ``load`` replays the records
through :class:`~repro.io.migrate.ForestRebuilder`, so a dump can be
imported into a fresh manager, a manager with a *different* variable
order, or one with a superset of variables — re-reduction (R1/R2/R4,
complement normalization) happens on the fly via ``BBDDManager._make``.
"""

from __future__ import annotations

import io as _io
import os
from typing import Dict, List, Mapping, Tuple

from repro.core.exceptions import BBDDError
from repro.core.function import Function
from repro.core.node import SINK, SV_ONE, Edge
from repro.core.traversal import levelize

from repro.io.format import (
    FLAG_BDD,
    FLAG_CHAIN,
    FLAG_COMPRESSED,
    Header,
    SINK_ID,
    pack_ref,
    version_for_flags,
)
from repro.io.migrate import Rename
from repro.io.stream import LevelStreamReader, LevelStreamWriter


def check_dump_args(functions, target) -> None:
    """Validate the ``dump(functions, target)`` argument order up front.

    The classic slip is ``dump(path, [functions])`` — without this check
    it dies deep inside ``open()`` with a bare ``TypeError``.  Raise a
    :class:`~repro.core.exceptions.BBDDError` that names the expected
    order instead.  Shared by the BBDD, BDD and xmem dump entry points.
    """
    if isinstance(functions, (str, bytes, os.PathLike)) or hasattr(
        functions, "write"
    ):
        raise BBDDError(
            "dump() arguments look swapped: got a path/file object in the "
            "functions slot; the order is dump(functions, target) with the "
            "forest first and the path (or binary file object) second"
        )
    if not (
        hasattr(target, "write")
        or isinstance(target, (str, bytes, os.PathLike))
    ):
        raise BBDDError(
            f"dump() target must be a path or a writable binary file "
            f"object, got {type(target).__name__}; the order is "
            f"dump(functions, target) with the forest first"
        )


def check_load_source(source) -> None:
    """Validate the ``load(source, ...)`` source argument up front.

    Mirrors :func:`check_dump_args`: passing a forest (or a manager)
    where the path belongs raises :class:`BBDDError` naming the expected
    order instead of an opaque ``TypeError`` from ``open()``.
    """
    if hasattr(source, "read") or isinstance(source, (str, bytes, os.PathLike)):
        return
    raise BBDDError(
        f"load() source must be a path or a readable binary file object, "
        f"got {type(source).__name__}; the order is load(source, "
        f"manager=...) with the path first"
    )


def _named_edges(functions) -> List[Tuple[str, Edge]]:
    """Normalize the accepted forest shapes to ``[(name, edge)]``.

    Accepts a single Function/edge, a sequence of them, or a name-keyed
    mapping; anonymous roots are named ``f0``, ``f1``, ...
    """
    if isinstance(functions, Function):
        return [("f0", functions.edge)]
    if isinstance(functions, int):
        return [("f0", functions)]  # a bare signed-int edge
    if isinstance(functions, Mapping):
        return [
            (name, f.edge if isinstance(f, Function) else f)
            for name, f in functions.items()
        ]
    return [
        (f"f{i}", f.edge if isinstance(f, Function) else f)
        for i, f in enumerate(functions)
    ]


def forest_records(manager, named: List[Tuple[str, Edge]]):
    """Enumerate a forest as serializable records — the one canonical
    record shape both codecs (binary and JSON) emit.

    Returns ``(records, ids)``: ``ids`` maps each node index (and the
    sink, id 0) to its dense bottom-up file id; ``records`` is a list of
    ``(position, sv_position, span_delta, node, neq, eq)`` in id order,
    grouped by level deepest-first, where ``node`` is the flat-store
    index, ``neq``/``eq`` are ``(child_id, attr)`` pairs,
    ``span_delta`` is ``position(bot) - position(sv)`` (0 for plain
    couples) and ``sv_position``/``neq``/``eq`` are ``None`` for
    literal (R4) records.
    """
    order = manager.order
    ids = {SINK: SINK_ID}
    records = []
    for position, nodes in levelize(manager, [edge for _name, edge in named]):
        for node in nodes:
            ids[node] = len(records) + 1
            pv, sv, bot, neq, eq = manager.node_fields(node)
            if sv == SV_ONE:
                records.append((position, None, 0, node, None, None))
            else:
                sv_position = order.position(sv)
                span_delta = (
                    order.position(bot) - sv_position if bot != sv else 0
                )
                records.append(
                    (
                        position,
                        sv_position,
                        span_delta,
                        node,
                        (ids[-neq if neq < 0 else neq], neq < 0),
                        (ids[eq], False),
                    )
                )
    return records, ids


def dump(manager, functions, target, compress: bool = False) -> None:
    """Write a forest to ``target`` (a path or binary file object).

    ``functions``: a Function, an edge, a sequence of either, or a
    ``{name: Function}`` mapping (names are stored and restored).
    ``compress=True`` writes a v2 ``FLAG_COMPRESSED`` container
    (delta-coded refs + shared deflate stream); chain spans in the
    forest switch the record grammar (``FLAG_CHAIN``) automatically.
    """
    check_dump_args(functions, target)
    named = _named_edges(functions)
    if hasattr(target, "write"):
        _dump_file(manager, named, target, compress=compress)
        return
    with open(target, "wb") as fileobj:
        _dump_file(manager, named, fileobj, compress=compress)


def dumps(manager, functions, compress: bool = False) -> bytes:
    """Serialize a forest to bytes (see :func:`dump`)."""
    buffer = _io.BytesIO()
    dump(manager, functions, buffer, compress=compress)
    return buffer.getvalue()


def _dump_file(
    manager, named: List[Tuple[str, Edge]], fileobj, compress: bool = False
) -> None:
    records, ids = forest_records(manager, named)
    level_counts: List[Tuple[int, int]] = []
    has_span = False
    for position, _sv, span_delta, _node, _neq, _eq in records:
        if span_delta:
            has_span = True
        if level_counts and level_counts[-1][0] == position:
            level_counts[-1] = (position, level_counts[-1][1] + 1)
        else:
            level_counts.append((position, 1))
    flags = 0
    if has_span:
        flags |= FLAG_CHAIN
    if compress:
        flags |= FLAG_COMPRESSED
    header = Header(
        names=list(manager.var_names),
        order=list(manager.order.order),
        num_roots=len(named),
        levels=level_counts,
        version=version_for_flags(flags),
        flags=flags,
    )
    writer = LevelStreamWriter(fileobj, header)
    block = None
    for position, sv_position, span_delta, _node, neq, eq in records:
        if block is None or block.position != position:
            if block is not None:
                block.close()
            block = writer.begin_level(position)
        if sv_position is None:
            block.write_literal()
        elif span_delta:
            block.write_span(
                sv_position - position,
                span_delta,
                pack_ref(*neq),
                pack_ref(*eq),
            )
        else:
            block.write_chain(
                sv_position - position, pack_ref(*neq), pack_ref(*eq)
            )
    if block is not None:
        block.close()
    writer.write_roots(
        [
            (pack_ref(ids[-edge if edge < 0 else edge], edge < 0), name)
            for name, edge in named
        ]
    )


def load(
    source,
    manager=None,
    rename: Rename = None,
) -> Tuple[object, Dict[str, Function]]:
    """Load a dump; returns ``(manager, {name: Function})``.

    With ``manager=None`` a fresh :class:`BBDDManager` is created with
    the dump's variable names and order.  An explicit manager may use a
    different order or a superset of variables; ``rename`` remaps dump
    variable names to target names first.
    """
    check_load_source(source)
    if hasattr(source, "read"):
        return _load_file(source, manager, rename)
    with open(source, "rb") as fileobj:
        return _load_file(fileobj, manager, rename)


def loads(data: bytes, manager=None, rename: Rename = None):
    """Load a dump from bytes (see :func:`load`)."""
    return load(_io.BytesIO(data), manager=manager, rename=rename)


def open_forest(path) -> Tuple[object, Dict[str, object]]:
    """Load any dump container by sniffing its header flags.

    The serving warm-start path (:class:`repro.serve.pool.ForestPool`
    workers): a ``.bbdd`` container holds either BBDD records (flags 0
    — the in-core loader) or baseline-BDD Shannon records
    (``FLAG_BDD`` — the :mod:`repro.io.bdd_binary` loader); callers who
    just want "the forest in this file, served from core" need not know
    which.  Returns ``(manager, {name: function})`` with a fresh
    manager of the matching in-core backend.
    """
    from repro.io.stream import scan

    info = scan(path)
    if info.header.flags & FLAG_BDD:
        from repro.io import bdd_binary

        return bdd_binary.load(path)
    return load(path)


def _load_file(fileobj, manager, rename: Rename):
    reader = LevelStreamReader(fileobj)
    if reader.header.flags & FLAG_BDD:
        from repro.io.format import FormatError

        raise FormatError(
            "this is a baseline-BDD dump; use repro.io.bdd_binary.load / "
            "BDDManager.load"
        )
    if manager is None:
        from repro.core.manager import BBDDManager
        from repro.io.migrate import _resolve_rename

        # A fresh manager takes the dump's names *after* renaming, so
        # the rebuilder (which resolves renamed names) finds them.
        rename_fn = _resolve_rename(rename)
        header = reader.header
        manager = BBDDManager([rename_fn(name) for name in header.names])
        manager.order.set_order(list(header.order))
    # Replay and root wrapping share one GC deferral: replayed nodes are
    # held as bare edges until the Function handles reference them.
    with manager.defer_gc():
        _rebuilder, roots = reader.load_into(manager, rename=rename)
        return manager, {name: Function(manager, edge) for edge, name in roots}
