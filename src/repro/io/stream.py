"""Streaming writer/reader for the levelized binary format.

Both halves work one CVO level at a time over the layout defined in
:mod:`repro.io.format` (header / level blocks / roots trailer):

* :class:`LevelStreamWriter` buffers exactly one level's records before
  flushing its block (each block carries its payload byte length), so
  writing a forest never holds more than a level of encoded bytes.
* :class:`LevelStreamReader` exposes :meth:`iter_levels` for sequential
  record iteration and :meth:`load_into` for incremental reconstruction
  through a :class:`~repro.io.migrate.ForestRebuilder` — nodes enter the
  target manager as their records stream in, with on-the-fly R1/R2/R4
  re-reduction.
* :func:`scan` reads only the header and the per-block lengths (seeking
  past record payloads), returning a :class:`FileInfo` — the cheap
  "what's in this file" primitive the level directory exists for.

The v2 extensions are handled transparently from the header flags:
under ``FLAG_CHAIN`` the buffers accept :meth:`_LevelBuffer.write_span`
and :meth:`iter_levels` yields 4-tuples carrying the span delta; under
``FLAG_COMPRESSED`` the writer delta-codes child refs and deflates each
block through one shared zlib stream, and the reader undoes both, so
record consumers always see plain packed refs.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.io.format import (
    FLAG_CHAIN,
    FLAG_COMPRESSED,
    LITERAL_TAG,
    FormatError,
    Header,
    PayloadCompressor,
    PayloadDecompressor,
    decode_name,
    decode_records,
    decode_records_v2,
    delta_ref,
    encode_chain,
    encode_chain_v2,
    encode_literal,
    encode_varint,
    read_header,
    read_varint,
    undelta_ref,
)
from repro.io.migrate import ForestRebuilder, Rename


class LevelStreamWriter:
    """Writes a dump level by level; one level buffered at a time."""

    def __init__(self, fileobj, header: Header) -> None:
        self._file = fileobj
        self._header = header
        self._pending = dict(header.levels)  # position -> expected count
        self.chain = bool(header.flags & FLAG_CHAIN)
        self.compressed = bool(header.flags & FLAG_COMPRESSED)
        # One deflate stream shared by every level block (dictionary
        # carries over; blocks stay decodable in file order).
        self._compressor = PayloadCompressor() if self.compressed else None
        fileobj.write(header.encode())
        self._next_id = 1
        self._roots_written = False

    def begin_level(self, position: int) -> "_LevelBuffer":
        """Open the block for ``position`` (declared in the header)."""
        if position not in self._pending:
            raise FormatError(f"level {position} not declared in the header")
        return _LevelBuffer(self, position, self._pending.pop(position))

    def write_roots(self, roots: List[Tuple[int, str]]) -> None:
        """Write the trailer: ``(edge ref, name)`` per root."""
        if self._roots_written:
            raise FormatError("roots trailer already written")
        if self._pending:
            raise FormatError(
                f"levels {sorted(self._pending)} declared but never written"
            )
        if len(roots) != self._header.num_roots:
            raise FormatError(
                f"header declares {self._header.num_roots} roots, got {len(roots)}"
            )
        out = bytearray()
        for ref, name in roots:
            encode_varint(ref, out)
            raw = name.encode("utf-8")
            encode_varint(len(raw), out)
            out.extend(raw)
        self._file.write(bytes(out))
        self._roots_written = True

    def allocate_id(self) -> int:
        """Reserve the next dense node id (children before parents)."""
        node_id = self._next_id
        self._next_id += 1
        return node_id


class _LevelBuffer:
    """One open level block: records accumulate, then flush as a unit."""

    def __init__(self, writer: LevelStreamWriter, position: int, count: int) -> None:
        self._writer = writer
        self.position = position
        self._expected = count
        self._written = 0
        self._payload = bytearray()

    def write_literal(self) -> int:
        """Append a literal record; returns the node's file id."""
        node_id = self._allocate()
        encode_literal(self._payload)
        return node_id

    def write_chain(self, sv_delta: int, neq_ref: int, eq_ref: int) -> int:
        """Append a plain chain record; returns the node's file id."""
        writer = self._writer
        node_id = self._allocate()
        if writer.compressed:
            neq_ref = delta_ref(neq_ref, node_id)
            eq_ref = delta_ref(eq_ref, node_id)
        if writer.chain:
            encode_chain_v2(sv_delta, 0, neq_ref, eq_ref, self._payload)
        else:
            encode_chain(sv_delta, neq_ref, eq_ref, self._payload)
        return node_id

    def write_span(
        self, sv_delta: int, span_delta: int, neq_ref: int, eq_ref: int
    ) -> int:
        """Append a chain-span record (requires ``FLAG_CHAIN``)."""
        writer = self._writer
        if not writer.chain:
            raise FormatError(
                "span records need FLAG_CHAIN set on the header"
            )
        node_id = self._allocate()
        if writer.compressed:
            neq_ref = delta_ref(neq_ref, node_id)
            eq_ref = delta_ref(eq_ref, node_id)
        encode_chain_v2(sv_delta, span_delta, neq_ref, eq_ref, self._payload)
        return node_id

    def _allocate(self) -> int:
        self._written += 1
        if self._written > self._expected:
            raise FormatError(
                f"level {self.position} overflows its declared count"
            )
        return self._writer.allocate_id()

    def close(self) -> None:
        """Flush the block (header + payload); counts must match."""
        if self._written != self._expected:
            raise FormatError(
                f"level {self.position} wrote {self._written} of "
                f"{self._expected} declared records"
            )
        payload = bytes(self._payload)
        compressor = self._writer._compressor
        if compressor is not None:
            payload = compressor.compress(payload)
        head = bytearray()
        encode_varint(self.position, head)
        encode_varint(self._written, head)
        encode_varint(len(payload), head)
        self._writer._file.write(bytes(head))
        self._writer._file.write(payload)


class LevelStreamReader:
    """Sequential reader over a dump's level blocks and roots trailer."""

    def __init__(self, fileobj) -> None:
        self._file = fileobj
        self.header = read_header(fileobj)
        self.chain = bool(self.header.flags & FLAG_CHAIN)
        self.compressed = bool(self.header.flags & FLAG_COMPRESSED)
        self._decompressor = PayloadDecompressor() if self.compressed else None
        self._levels_read = 0
        self._next_id = 1

    def iter_levels(self) -> Iterator[Tuple[int, list]]:
        """Yield ``(position, records)`` per level block, file order.

        For plain-grammar files records are raw ``(sv_delta, neq_ref,
        eq_ref)`` tuples (see :func:`repro.io.format.decode_records`);
        ``FLAG_CHAIN`` files yield ``(sv_delta, span_delta, neq_ref,
        eq_ref)`` instead.  Compressed payloads are inflated and their
        delta-coded refs rewritten back to plain packed refs here, so
        consumers never see the wire transforms.
        """
        while self._levels_read < len(self.header.levels):
            position = read_varint(self._file)
            count = read_varint(self._file)
            nbytes = read_varint(self._file)
            payload = self._file.read(nbytes)
            if len(payload) != nbytes:
                raise FormatError(f"truncated level block at position {position}")
            declared_pos, declared_count = self.header.levels[self._levels_read]
            if (position, count) != (declared_pos, declared_count):
                raise FormatError(
                    f"level block ({position}, {count}) disagrees with the "
                    f"header directory ({declared_pos}, {declared_count})"
                )
            self._levels_read += 1
            if self._decompressor is not None:
                payload = self._decompressor.decompress(payload)
            if self.chain:
                records = decode_records_v2(payload, count)
            else:
                records = decode_records(payload, count)
            if self.compressed:
                records = self._undelta(records)
            yield position, records

    def _undelta(self, records: list) -> list:
        """Rewrite a level's delta-coded refs to plain packed refs."""
        out = []
        if self.chain:
            for sv_delta, span_delta, neq_ref, eq_ref in records:
                node_id = self._next_id
                self._next_id += 1
                if sv_delta == LITERAL_TAG:
                    out.append((LITERAL_TAG, 0, 0, 0))
                    continue
                eq_ref = undelta_ref(eq_ref, node_id)
                if span_delta:
                    out.append((sv_delta, span_delta, eq_ref | 1, eq_ref))
                else:
                    out.append(
                        (sv_delta, 0, undelta_ref(neq_ref, node_id), eq_ref)
                    )
        else:
            for sv_delta, neq_ref, eq_ref in records:
                node_id = self._next_id
                self._next_id += 1
                if sv_delta == LITERAL_TAG:
                    out.append((LITERAL_TAG, 0, 0))
                    continue
                out.append(
                    (
                        sv_delta,
                        undelta_ref(neq_ref, node_id),
                        undelta_ref(eq_ref, node_id),
                    )
                )
        return out

    def read_roots(self) -> List[Tuple[int, str]]:
        """Read the roots trailer (after all levels have been iterated)."""
        if self._levels_read < len(self.header.levels):
            # Drain any remaining level blocks first.
            for _ in self.iter_levels():
                pass
        roots = []
        for _ in range(self.header.num_roots):
            ref = read_varint(self._file)
            length = read_varint(self._file)
            raw = self._file.read(length)
            if len(raw) != length:
                raise FormatError("truncated root name")
            roots.append((ref, decode_name(raw)))
        return roots

    def load_into(self, manager, rename: Rename = None):
        """Incrementally rebuild the forest inside ``manager``.

        Returns ``(rebuilder, roots)`` where ``roots`` is the list of
        ``(edge, name)`` pairs resolved in the target manager.
        """
        rebuilder = ForestRebuilder(
            manager, self.header.ordered_names(), rename=rename
        )
        # The rebuilder's replay table holds bare edges; defer automatic
        # GC until the caller has wrapped (or referenced) the roots.
        with manager.defer_gc():
            if self.chain:
                for position, records in self.iter_levels():
                    for sv_delta, span_delta, neq_ref, eq_ref in records:
                        rebuilder.add_record(
                            position,
                            sv_delta,
                            neq_ref,
                            eq_ref,
                            span_delta=span_delta,
                        )
            else:
                for position, records in self.iter_levels():
                    for sv_delta, neq_ref, eq_ref in records:
                        rebuilder.add_record(position, sv_delta, neq_ref, eq_ref)
            roots = [
                (rebuilder.edge_for(ref), name) for ref, name in self.read_roots()
            ]
        return rebuilder, roots


class FileInfo:
    """Header-level summary of a dump (no node records decoded)."""

    __slots__ = ("header", "level_bytes", "file_bytes")

    def __init__(self, header: Header, level_bytes: List[int], file_bytes: int) -> None:
        self.header = header
        self.level_bytes = level_bytes  # payload bytes per level, file order
        self.file_bytes = file_bytes

    @property
    def node_count(self) -> int:
        """Total stored node records (from the header)."""
        return self.header.node_count

    @property
    def payload_bytes(self) -> int:
        """Bytes of node-record payload across all level blocks."""
        return sum(self.level_bytes)

    @property
    def bytes_per_node(self) -> float:
        """File bytes divided by node records (compactness metric)."""
        count = self.node_count
        return self.file_bytes / count if count else float(self.file_bytes)

    def summary(self) -> dict:
        """The headline numbers as a plain dict (for reports/CLIs)."""
        return {
            "variables": len(self.header.names),
            "roots": self.header.num_roots,
            "levels": len(self.header.levels),
            "nodes": self.node_count,
            "file_bytes": self.file_bytes,
            "payload_bytes": self.payload_bytes,
            "bytes_per_node": round(self.bytes_per_node, 2),
        }


def scan(source) -> FileInfo:
    """Scan a dump without decoding node records.

    ``source`` is a path or a seekable binary file object.  Reads the
    header and each level block's small prefix, seeking past payloads
    (compressed blocks skip the same way — the ``nbytes`` prefix always
    counts stored bytes).
    """
    if hasattr(source, "read"):
        return _scan_file(source)
    with open(source, "rb") as fileobj:
        return _scan_file(fileobj)


def _scan_file(fileobj) -> FileInfo:
    header = read_header(fileobj)
    level_bytes = []
    for declared_pos, declared_count in header.levels:
        position = read_varint(fileobj)
        count = read_varint(fileobj)
        nbytes = read_varint(fileobj)
        if (position, count) != (declared_pos, declared_count):
            raise FormatError(
                f"level block ({position}, {count}) disagrees with the "
                f"header directory ({declared_pos}, {declared_count})"
            )
        level_bytes.append(nbytes)
        fileobj.seek(nbytes, 1)
    trailer_start = fileobj.tell()
    fileobj.seek(0, 2)
    file_bytes = fileobj.tell()
    if file_bytes < trailer_start:
        raise FormatError("file shorter than its level directory claims")
    return FileInfo(header, level_bytes, file_bytes)
