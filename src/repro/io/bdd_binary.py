"""Dump/load of baseline-BDD forests in the levelized binary format.

Shares the container layout of the BBDD format (:mod:`repro.io.format`:
varint header with names/order/per-level counts, level blocks bottom-up,
roots trailer) but stores Shannon node records instead of biconditional
couples — the header's ``flags`` field carries :data:`FLAG_BDD` so the
two dump kinds can never be confused::

    NodeRecord = then_ref varint   -- edge ref (then-edges are regular,
                                   -- so the ref's attr bit is always 0)
                 else_ref varint   -- edge ref

Edge refs pack ``(id << 1) | attr`` with the 1-sink at id 0 and nodes
numbered in file order (level blocks deepest first), so every reference
points strictly backwards and a sequential reader always sees a node's
children before the node itself.

Version 2 containers extend the grammar (see :mod:`repro.io.format`):
with ``FLAG_CHAIN`` every record is prefixed by a ``span_delta`` varint
(0 for plain Shannon records); a span record (``span_delta >= 1``)
denotes the parity span ``X(top..top+span_delta) XNOR then`` and stores
only ``then_ref`` (the else-edge is its complement by construction).
With ``FLAG_COMPRESSED`` child refs are delta-coded against the
record's own file id and level payloads pass through one shared
deflate stream (sync-flushed per level, so block sizes stay exact).

``load`` re-reduces on the fly: when the target manager preserves the
dump's relative variable order each record is a single
``BDDManager._make`` call; otherwise the node is rebuilt semantically as
``ite(var, then, else)`` under the target order.
"""

from __future__ import annotations

import io as _io
from typing import Dict, List, Mapping, Tuple

from repro.bdd.function import BDDFunction
from repro.bdd.node import BDDEdge, BDDNode
from repro.core.exceptions import VariableError
from repro.core.operations import OP_XNOR
from repro.io.format import (
    FLAG_BDD,
    FLAG_CHAIN,
    FLAG_COMPRESSED,
    FormatError,
    Header,
    PayloadCompressor,
    PayloadDecompressor,
    SINK_ID,
    decode_name,
    decode_varint,
    delta_ref,
    encode_varint,
    pack_ref,
    read_header,
    read_varint,
    undelta_ref,
    unpack_ref,
    version_for_flags,
)
from repro.io.migrate import Rename, _resolve_rename


def _named_edges(manager, functions) -> List[Tuple[str, BDDEdge]]:
    """Normalize the accepted forest shapes to ``[(name, edge)]``."""
    if isinstance(functions, BDDFunction):
        return [("f0", functions.edge)]
    if (
        isinstance(functions, tuple)
        and len(functions) == 2
        and isinstance(functions[0], BDDNode)
    ):
        return [("f0", functions)]  # a bare (node, attr) edge
    if isinstance(functions, Mapping):
        return [
            (name, f.edge if isinstance(f, BDDFunction) else f)
            for name, f in functions.items()
        ]
    return [
        (f"f{i}", f.edge if isinstance(f, BDDFunction) else f)
        for i, f in enumerate(functions)
    ]


def _levelized(manager, edges) -> List[Tuple[int, List[BDDNode]]]:
    """Reachable nodes grouped by order position, deepest level first."""
    position = manager.order.position
    seen = set()
    stack: List[BDDNode] = []
    for node, _attr in edges:
        if not node.is_sink and node not in seen:
            seen.add(node)
            stack.append(node)
    while stack:
        node = stack.pop()
        for child in (node.then, node.else_):
            if not child.is_sink and child not in seen:
                seen.add(child)
                stack.append(child)
    by_position: Dict[int, List[BDDNode]] = {}
    for node in seen:
        by_position.setdefault(position(node.var), []).append(node)
    return [
        (pos, sorted(by_position[pos], key=lambda n: n.uid))
        for pos in sorted(by_position, reverse=True)
    ]


def dump(manager, functions, target, compress: bool = False) -> None:
    """Write a BDD forest to ``target`` (a path or binary file object).

    ``compress=True`` writes a v2 ``FLAG_COMPRESSED`` container
    (delta-coded refs + shared deflate stream); parity spans in the
    forest switch the record grammar (``FLAG_CHAIN``) automatically.
    """
    from repro.io.binary import check_dump_args

    check_dump_args(functions, target)
    named = _named_edges(manager, functions)
    if hasattr(target, "write"):
        _dump_file(manager, named, target, compress=compress)
        return
    with open(target, "wb") as fileobj:
        _dump_file(manager, named, fileobj, compress=compress)


def dumps(manager, functions, compress: bool = False) -> bytes:
    """Serialize a BDD forest to bytes (see :func:`dump`)."""
    buffer = _io.BytesIO()
    dump(manager, functions, buffer, compress=compress)
    return buffer.getvalue()


def _dump_file(
    manager, named: List[Tuple[str, BDDEdge]], fileobj, compress: bool = False
) -> None:
    levels = _levelized(manager, [edge for _name, edge in named])
    position = manager.order.position
    has_span = any(
        node.bot != node.var for _pos, nodes in levels for node in nodes
    )
    flags = FLAG_BDD
    if has_span:
        flags |= FLAG_CHAIN
    if compress:
        flags |= FLAG_COMPRESSED
    header = Header(
        names=list(manager.var_names),
        order=list(manager.order.order),
        num_roots=len(named),
        levels=[(pos, len(nodes)) for pos, nodes in levels],
        version=version_for_flags(flags),
        flags=flags,
    )
    fileobj.write(header.encode())
    compressor = PayloadCompressor() if compress else None
    ids: Dict[BDDNode, int] = {manager.sink: SINK_ID}
    next_id = SINK_ID + 1
    for pos, nodes in levels:
        payload = bytearray()
        for node in nodes:
            ids[node] = next_id
            then_ref = pack_ref(ids[node.then], False)
            else_ref = pack_ref(ids[node.else_], node.else_attr)
            if compress:
                then_ref = delta_ref(then_ref, next_id)
                else_ref = delta_ref(else_ref, next_id)
            next_id += 1
            if has_span:
                span_delta = (
                    position(node.bot) - pos if node.bot != node.var else 0
                )
                encode_varint(span_delta, payload)
                encode_varint(then_ref, payload)
                if span_delta == 0:
                    encode_varint(else_ref, payload)
                # Span records imply else = ~then: no else_ref stored.
            else:
                encode_varint(then_ref, payload)
                encode_varint(else_ref, payload)
        data = bytes(payload)
        if compressor is not None:
            data = compressor.compress(data)
        block = bytearray()
        encode_varint(pos, block)
        encode_varint(len(nodes), block)
        encode_varint(len(data), block)
        fileobj.write(bytes(block))
        fileobj.write(data)
    trailer = bytearray()
    for name, (node, attr) in named:
        encode_varint(pack_ref(ids[node], attr), trailer)
        raw = name.encode("utf-8")
        encode_varint(len(raw), trailer)
        trailer.extend(raw)
    fileobj.write(bytes(trailer))


def load(
    source,
    manager=None,
    rename: Rename = None,
) -> Tuple[object, Dict[str, BDDFunction]]:
    """Load a BDD dump; returns ``(manager, {name: BDDFunction})``.

    With ``manager=None`` a fresh :class:`~repro.bdd.manager.BDDManager`
    is created with the dump's variable names and order.  An explicit
    manager may use a different order or a superset of variables;
    ``rename`` remaps dump variable names to target names first.
    """
    from repro.io.binary import check_load_source

    check_load_source(source)
    if hasattr(source, "read"):
        return _load_file(source, manager, rename)
    with open(source, "rb") as fileobj:
        return _load_file(fileobj, manager, rename)


def loads(data: bytes, manager=None, rename: Rename = None):
    """Load a BDD dump from bytes (see :func:`load`)."""
    return load(_io.BytesIO(data), manager=manager, rename=rename)


def _load_file(fileobj, manager, rename: Rename):
    header = read_header(fileobj)
    if not header.flags & FLAG_BDD:
        raise FormatError(
            "this is a BBDD dump; use repro.io.load / BBDDManager.load"
        )
    rename_fn = _resolve_rename(rename)
    if manager is None:
        from repro.bdd.manager import BDDManager

        manager = BDDManager([rename_fn(name) for name in header.names])
        manager.order.set_order(list(header.order))
    try:
        var_at = [
            manager.var_index(rename_fn(name)) for name in header.ordered_names()
        ]
    except VariableError as exc:
        raise VariableError(
            f"dump variable missing from target manager: {exc}"
        ) from None
    positions = [manager.order.position(v) for v in var_at]
    order_preserved = all(a < b for a, b in zip(positions, positions[1:]))

    edges: List[BDDEdge] = [(manager.sink, False)]

    def edge_for(ref: int) -> BDDEdge:
        node_id, attr = unpack_ref(ref)
        if not 0 <= node_id < len(edges):
            raise FormatError(f"edge ref to unwritten node id {node_id}")
        node, base_attr = edges[node_id]
        return (node, base_attr ^ attr)

    n = len(var_at)
    expected = header.node_count
    chain = bool(header.flags & FLAG_CHAIN)
    decompressor = (
        PayloadDecompressor() if header.flags & FLAG_COMPRESSED else None
    )
    next_id = SINK_ID + 1
    for _ in header.levels:
        position = read_varint(fileobj)
        if not 0 <= position < n:
            raise FormatError(f"record position {position} out of range 0..{n - 1}")
        level_count = read_varint(fileobj)
        nbytes = read_varint(fileobj)
        payload = fileobj.read(nbytes)
        if len(payload) != nbytes:
            raise FormatError("truncated level payload")
        if decompressor is not None:
            payload = decompressor.decompress(payload)
        var = var_at[position]
        offset = 0
        for _ in range(level_count):
            span_delta = 0
            if chain:
                span_delta, offset = decode_varint(payload, offset)
            then_ref, offset = decode_varint(payload, offset)
            if decompressor is not None:
                then_ref = undelta_ref(then_ref, next_id)
            if span_delta:
                if not position + span_delta < n:
                    raise FormatError(
                        f"span bottom position {position + span_delta} "
                        f"out of range 0..{n - 1}"
                    )
                then_edge = edge_for(then_ref)
                # Replay the span semantically: f = X(top..bot) XNOR
                # then.  Re-canonicalizes under the target manager (a
                # chain manager re-merges the span; a plain one expands
                # it) and under any target order.
                parity = manager.literal_edge(var_at[position])
                for p in range(position + 1, position + span_delta + 1):
                    parity = manager.xor_edges(
                        parity, manager.literal_edge(var_at[p])
                    )
                edge = manager.apply_edges(parity, then_edge, OP_XNOR)
            else:
                else_ref, offset = decode_varint(payload, offset)
                if decompressor is not None:
                    else_ref = undelta_ref(else_ref, next_id)
                then_edge = edge_for(then_ref)
                else_edge = edge_for(else_ref)
                if order_preserved:
                    edge = manager._make(var, then_edge, else_edge)
                else:
                    edge = manager.ite_edges(
                        manager.literal_edge(var), then_edge, else_edge
                    )
            next_id += 1
            edges.append(edge)
        if offset != len(payload):
            raise FormatError("level payload has trailing bytes")
    if len(edges) - 1 != expected:
        raise FormatError(
            f"dump header promises {expected} nodes, read {len(edges) - 1}"
        )
    functions: Dict[str, BDDFunction] = {}
    for _ in range(header.num_roots):
        ref = read_varint(fileobj)
        length = read_varint(fileobj)
        raw = fileobj.read(length)
        if len(raw) != length:
            raise FormatError("truncated root name")
        functions[decode_name(raw)] = BDDFunction(manager, edge_for(ref))
    return manager, functions
