"""Harness checkpointing: persist per-benchmark results and DD forests.

A :class:`CheckpointStore` owns a directory with two artifact kinds per
checkpoint key:

* ``<key>.json`` — a result row (any JSON-serializable dict), written
  atomically (tmp file + rename) so an interrupted run never leaves a
  half-written checkpoint behind;
* ``<key>.bbdd`` — a levelized binary forest dump (see
  :mod:`repro.io.format`) of the benchmark's decision diagrams.  Saving
  goes through the owning manager's ``dump`` protocol method, so any
  :mod:`repro.api` backend's forest checkpoints (the header flag records
  which codec wrote it); reloading dispatches on that flag.

The Table I/II drivers (:mod:`repro.harness.table1`,
:mod:`repro.harness.table2`) use it for ``--checkpoint DIR`` resume:
rows with a stored result are reused instead of re-run.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, Optional

from repro.core.exceptions import BBDDError
from repro.io import binary


def _slug(key: str) -> str:
    """Filesystem-safe checkpoint key."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", key)


class CheckpointStore:
    """Directory-backed store for harness results and forest dumps."""

    def __init__(self, directory) -> None:
        self.directory = str(directory)
        if os.path.exists(self.directory) and not os.path.isdir(self.directory):
            raise BBDDError(
                f"checkpoint path {self.directory!r} exists and is not a directory"
            )
        os.makedirs(self.directory, exist_ok=True)

    def result_path(self, key: str) -> str:
        """Path of the result-row JSON stored under ``key``."""
        return os.path.join(self.directory, _slug(key) + ".json")

    def forest_path(self, key: str) -> str:
        """Path of the forest dump stored under ``key``."""
        return os.path.join(self.directory, _slug(key) + ".bbdd")

    # -- result rows ------------------------------------------------------

    def has_result(self, key: str) -> bool:
        """Whether a result row is stored under ``key``."""
        return os.path.exists(self.result_path(key))

    def save_result(self, key: str, record: Dict) -> None:
        """Atomically persist one JSON-serializable result row."""
        path = self.result_path(key)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fileobj:
            json.dump(record, fileobj, indent=2, sort_keys=True)
        os.replace(tmp, path)

    def load_result(self, key: str) -> Optional[Dict]:
        """The stored result row, or None when ``key`` has none."""
        path = self.result_path(key)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as fileobj:
            return json.load(fileobj)

    # -- forests ----------------------------------------------------------

    def has_forest(self, key: str) -> bool:
        """Whether a forest dump is stored under ``key``."""
        return os.path.exists(self.forest_path(key))

    def save_forest(self, key: str, manager, functions) -> None:
        """Atomically persist a forest through the manager's dump codec.

        Checkpoints are written compressed (the v2 ``FLAG_COMPRESSED``
        container): they are write-once/read-rarely artifacts, so the
        smaller footprint wins over the deflate cost.
        """
        path = self.forest_path(key)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fileobj:
            # Protocol dispatch: each backend writes its own record kind
            # into the shared container (BBDD couples / BDD Shannon).
            manager.dump(functions, fileobj, compress=True)
        os.replace(tmp, path)

    def load_forest(self, key: str, manager=None):
        """Reload a forest dump; returns ``(manager, {name: function})``.

        Returns ``None`` when no forest is stored under ``key``.  The
        dump's header flag selects the codec (BBDD or baseline BDD).
        """
        path = self.forest_path(key)
        if not os.path.exists(path):
            return None
        from repro.io.format import FLAG_BDD, read_header

        with open(path, "rb") as fileobj:
            flags = read_header(fileobj).flags
        if flags & FLAG_BDD:
            from repro.io import bdd_binary

            return bdd_binary.load(path, manager=manager)
        return binary.load(path, manager=manager)

    # -- maintenance -------------------------------------------------------

    def keys(self) -> list:
        """All keys with a stored result row."""
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.directory)
            if name.endswith(".json")
        )

    def clear(self) -> None:
        """Delete every stored result row and forest dump."""
        for name in os.listdir(self.directory):
            if name.endswith((".json", ".bbdd")):
                os.remove(os.path.join(self.directory, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CheckpointStore {self.directory!r} keys={len(self.keys())}>"
