"""The levelized BBDD binary format: layout constants and codecs.

A ``.bbdd`` file stores a shared forest of root edges level-by-level in
CVO order, bottom level first, so a sequential reader always sees a
node's children before the node itself.  All integers are unsigned
LEB128 varints (7 payload bits per byte, high bit = continuation).

Layout::

    File       = Header LevelBlock* RootsBlock
    Header     = magic "BBDD" (4 bytes)
                 version   varint          -- FORMAT_VERSION
                 flags     varint          -- reserved, 0
                 nvars     varint
                 names     nvars x (varint len, utf-8 bytes)
                 order     nvars x varint  -- variable indices, root
                                           -- position 0 to bottom
                 nroots    varint
                 nlevels   varint          -- non-empty levels only
                 directory nlevels x (varint position, varint count)
    LevelBlock = position  varint          -- CVO position of the level's PV
                 count     varint
                 nbytes    varint          -- byte length of the records
                                           -- payload (enables skipping)
                 records   count x NodeRecord
    NodeRecord = svtag     varint          -- 0: literal (R4) node with the
                                           -- fixed sink children; else
                                           -- position(SV) - position(PV)
                 [neq      varint]         -- chain nodes only: edge ref
                 [eq       varint]         -- chain nodes only: edge ref
    RootsBlock = nroots x (varint edge ref, varint name len, utf-8 name)

An *edge ref* packs a node id and its complement attribute as
``(id << 1) | attr``.  Node id 0 is the 1-sink; nodes written to the
file take ids 1, 2, ... in file order, so every reference points
strictly backwards.  Level blocks are written deepest CVO position
first.  The header's level directory carries per-level node counts, so
a file can be size-estimated from the header alone; each level block
additionally records its payload byte length, so a scanner can skip
from block to block without decoding node records.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.exceptions import BBDDError

MAGIC = b"BBDD"
FORMAT_VERSION = 1

#: Header flag bit: the dump holds baseline-BDD (Shannon) node records
#: (see :mod:`repro.io.bdd_binary`) instead of BBDD couple records.
FLAG_BDD = 1

#: Node id of the 1-sink in every file.
SINK_ID = 0

#: svtag value marking a literal (R4) node record.
LITERAL_TAG = 0


class FormatError(BBDDError):
    """A dump is malformed, truncated, or of an unsupported version."""


# ----------------------------------------------------------------------
# varints (unsigned LEB128)
# ----------------------------------------------------------------------


def encode_varint(value: int, out: bytearray) -> None:
    """Append ``value`` to ``out`` as an unsigned LEB128 varint."""
    if value < 0:
        raise FormatError(f"varints are unsigned, got {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def decode_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode the varint at ``data[pos:]``; return ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        try:
            byte = data[pos]
        except IndexError:
            raise FormatError("truncated varint") from None
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def read_varint(fileobj) -> int:
    """Read one varint from a binary file object."""
    result = 0
    shift = 0
    while True:
        byte = fileobj.read(1)
        if not byte:
            raise FormatError("truncated varint")
        b = byte[0]
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result
        shift += 7


def pack_ref(node_id: int, attr: bool) -> int:
    """Pack a node id and complement attribute into an edge ref."""
    return (node_id << 1) | bool(attr)


def unpack_ref(ref: int) -> Tuple[int, bool]:
    """Split an edge ref back into ``(node id, complement attribute)``."""
    return ref >> 1, bool(ref & 1)


# ----------------------------------------------------------------------
# header
# ----------------------------------------------------------------------


class Header:
    """Decoded file header: variables, order, root count, level directory."""

    __slots__ = ("version", "flags", "names", "order", "num_roots", "levels")

    def __init__(
        self,
        names: List[str],
        order: List[int],
        num_roots: int,
        levels: List[Tuple[int, int]],
        version: int = FORMAT_VERSION,
        flags: int = 0,
    ) -> None:
        self.version = version
        self.flags = flags
        self.names = list(names)
        self.order = list(order)
        self.num_roots = num_roots
        self.levels = list(levels)  # (position, node count), deepest first

    @property
    def node_count(self) -> int:
        """Total node records declared by the per-level counts."""
        return sum(count for _pos, count in self.levels)

    def ordered_names(self) -> List[str]:
        """Variable names root to bottom (the dump's CVO)."""
        return [self.names[v] for v in self.order]

    def encode(self) -> bytes:
        """Serialize the header (magic, version, flags, names, order)."""
        out = bytearray(MAGIC)
        encode_varint(self.version, out)
        encode_varint(self.flags, out)
        encode_varint(len(self.names), out)
        for name in self.names:
            raw = name.encode("utf-8")
            encode_varint(len(raw), out)
            out.extend(raw)
        if sorted(self.order) != list(range(len(self.names))):
            raise FormatError("order must be a permutation of the variables")
        for var in self.order:
            encode_varint(var, out)
        encode_varint(self.num_roots, out)
        encode_varint(len(self.levels), out)
        for position, count in self.levels:
            encode_varint(position, out)
            encode_varint(count, out)
        return bytes(out)


def read_header(fileobj) -> Header:
    """Read and validate the header at the current position of ``fileobj``."""
    magic = fileobj.read(len(MAGIC))
    if magic != MAGIC:
        raise FormatError(f"bad magic {magic!r}; not a BBDD dump")
    version = read_varint(fileobj)
    if version != FORMAT_VERSION:
        raise FormatError(f"unsupported format version {version}")
    flags = read_varint(fileobj)
    nvars = read_varint(fileobj)
    names = []
    for _ in range(nvars):
        length = read_varint(fileobj)
        raw = fileobj.read(length)
        if len(raw) != length:
            raise FormatError("truncated variable name")
        names.append(raw.decode("utf-8"))
    order = [read_varint(fileobj) for _ in range(nvars)]
    if sorted(order) != list(range(nvars)):
        raise FormatError("order is not a permutation of the variables")
    num_roots = read_varint(fileobj)
    nlevels = read_varint(fileobj)
    levels = []
    for _ in range(nlevels):
        position = read_varint(fileobj)
        count = read_varint(fileobj)
        levels.append((position, count))
    return Header(names, order, num_roots, levels, version=version, flags=flags)


# ----------------------------------------------------------------------
# node records
# ----------------------------------------------------------------------


def encode_literal(out: bytearray) -> None:
    """Append a literal (R4) node record: svtag 0, fixed children."""
    encode_varint(LITERAL_TAG, out)


def encode_chain(sv_delta: int, neq_ref: int, eq_ref: int, out: bytearray) -> None:
    """Append a chain node record (``sv_delta`` = position(SV) - position(PV))."""
    if sv_delta < 1:
        raise FormatError(f"chain SV must lie below PV (delta {sv_delta})")
    encode_varint(sv_delta, out)
    encode_varint(neq_ref, out)
    encode_varint(eq_ref, out)


def decode_records(payload: bytes, count: int) -> List[Tuple[int, int, int]]:
    """Decode ``count`` node records from a level payload.

    Returns ``(sv_delta, neq_ref, eq_ref)`` tuples; literal records come
    back as ``(LITERAL_TAG, 0, 0)``.
    """
    records = []
    pos = 0
    for _ in range(count):
        sv_delta, pos = decode_varint(payload, pos)
        if sv_delta == LITERAL_TAG:
            records.append((LITERAL_TAG, 0, 0))
            continue
        neq_ref, pos = decode_varint(payload, pos)
        eq_ref, pos = decode_varint(payload, pos)
        records.append((sv_delta, neq_ref, eq_ref))
    if pos != len(payload):
        raise FormatError(
            f"level payload has {len(payload) - pos} trailing bytes"
        )
    return records
