"""The levelized BBDD binary format: layout constants and codecs.

A ``.bbdd`` file stores a shared forest of root edges level-by-level in
CVO order, bottom level first, so a sequential reader always sees a
node's children before the node itself.  All integers are unsigned
LEB128 varints (7 payload bits per byte, high bit = continuation).

Layout::

    File       = Header LevelBlock* RootsBlock
    Header     = magic "BBDD" (4 bytes)
                 version   varint          -- 1, or 2 when any v2 flag set
                 flags     varint          -- FLAG_* bits below
                 nvars     varint
                 names     nvars x (varint len, utf-8 bytes)
                 order     nvars x varint  -- variable indices, root
                                           -- position 0 to bottom
                 nroots    varint
                 nlevels   varint          -- non-empty levels only
                 directory nlevels x (varint position, varint count)
    LevelBlock = position  varint          -- CVO position of the level's PV
                 count     varint
                 nbytes    varint          -- byte length of the records
                                           -- payload (enables skipping)
                 records   count x NodeRecord
    NodeRecord = svtag     varint          -- 0: literal (R4) node with the
                                           -- fixed sink children; else
                                           -- position(SV) - position(PV)
                 [neq      varint]         -- chain nodes only: edge ref
                 [eq       varint]         -- chain nodes only: edge ref
    RootsBlock = nroots x (varint edge ref, varint name len, utf-8 name)

An *edge ref* packs a node id and its complement attribute as
``(id << 1) | attr``.  Node id 0 is the 1-sink; nodes written to the
file take ids 1, 2, ... in file order, so every reference points
strictly backwards.  Level blocks are written deepest CVO position
first.  The header's level directory carries per-level node counts, so
a file can be size-estimated from the header alone; each level block
additionally records its payload byte length, so a scanner can skip
from block to block without decoding node records.

Version 2 (chain spans, compression)
------------------------------------
Version 2 is version 1 plus two optional, independently flagged
extensions; a v2 file with neither flag set is byte-identical to v1
and writers keep emitting ``version = 1`` in that case.

``FLAG_CHAIN`` changes the node record grammar so chain-reduced span
nodes (``(pv, sv:bot)``, see :meth:`BBDDNode.is_span`) can be stored::

    NodeRecord = tag varint                -- 0: literal; else
                                           -- (sv_delta << 1) | span_flag
    plain span_flag=0:
                 neq       varint          -- edge ref
                 eq        varint          -- edge ref
    span  span_flag=1:
                 span_delta varint         -- position(bot) - position(SV),
                                           -- even, >= 2
                 eq        varint          -- edge ref, regular (attr 0);
                                           -- the != edge is implied:
                                           -- same node, complemented

``FLAG_COMPRESSED`` keeps the block structure (positions, counts and
the skippable ``nbytes`` prefix stay plain varints) but transforms the
record payloads two ways, after Hansen, Rao & Tiedemann:

* child refs are **delta-coded** against the record's own sequential
  file id: ``delta = id - child_id`` (always >= 1; the sink's delta is
  the full id), packed as ``(delta << 1) | attr``, which keeps local
  references to one or two varint bytes regardless of file size;
* each level payload runs through one **shared** zlib deflate stream
  (``Z_SYNC_FLUSH`` at block boundaries), so the compression dictionary
  persists across levels while blocks stay individually decodable in
  file order.

The roots trailer and the header are never compressed.
"""

from __future__ import annotations

import zlib

from typing import List, Tuple

from repro.core.exceptions import BBDDError

MAGIC = b"BBDD"
FORMAT_VERSION = 1

#: Highest format version this codec can emit (used only when a v2
#: feature flag is set; flagless dumps stay at :data:`FORMAT_VERSION`).
FORMAT_VERSION_CHAIN = 2

#: Format versions :func:`read_header` accepts.
SUPPORTED_VERSIONS = frozenset({1, 2})

#: Header flag bit: the dump holds baseline-BDD (Shannon) node records
#: (see :mod:`repro.io.bdd_binary`) instead of BBDD couple records.
FLAG_BDD = 1

#: Header flag bit (v2): node records use the chain-span grammar.
FLAG_CHAIN = 2

#: Header flag bit (v2): level payloads are delta-coded and deflated
#: through a shared zlib stream.
FLAG_COMPRESSED = 4

#: Flags that force the header version up to :data:`FORMAT_VERSION_CHAIN`.
V2_FLAGS = FLAG_CHAIN | FLAG_COMPRESSED

#: Node id of the 1-sink in every file.
SINK_ID = 0

#: svtag value marking a literal (R4) node record.
LITERAL_TAG = 0


def version_for_flags(flags: int) -> int:
    """The lowest header version able to express ``flags``."""
    return FORMAT_VERSION_CHAIN if flags & V2_FLAGS else FORMAT_VERSION


class FormatError(BBDDError):
    """A dump is malformed, truncated, or of an unsupported version."""


# ----------------------------------------------------------------------
# varints (unsigned LEB128)
# ----------------------------------------------------------------------


def encode_varint(value: int, out: bytearray) -> None:
    """Append ``value`` to ``out`` as an unsigned LEB128 varint."""
    if value < 0:
        raise FormatError(f"varints are unsigned, got {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def decode_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode the varint at ``data[pos:]``; return ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        try:
            byte = data[pos]
        except IndexError:
            raise FormatError("truncated varint") from None
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def read_varint(fileobj) -> int:
    """Read one varint from a binary file object."""
    result = 0
    shift = 0
    while True:
        byte = fileobj.read(1)
        if not byte:
            raise FormatError("truncated varint")
        b = byte[0]
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result
        shift += 7


def decode_name(raw: bytes) -> str:
    """Decode a stored name, surfacing bad bytes as :class:`FormatError`."""
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FormatError(f"stored name is not valid UTF-8: {exc}") from None


def pack_ref(node_id: int, attr: bool) -> int:
    """Pack a node id and complement attribute into an edge ref."""
    return (node_id << 1) | bool(attr)


def unpack_ref(ref: int) -> Tuple[int, bool]:
    """Split an edge ref back into ``(node id, complement attribute)``."""
    return ref >> 1, bool(ref & 1)


# ----------------------------------------------------------------------
# header
# ----------------------------------------------------------------------


class Header:
    """Decoded file header: variables, order, root count, level directory."""

    __slots__ = ("version", "flags", "names", "order", "num_roots", "levels")

    def __init__(
        self,
        names: List[str],
        order: List[int],
        num_roots: int,
        levels: List[Tuple[int, int]],
        version: int = FORMAT_VERSION,
        flags: int = 0,
    ) -> None:
        self.version = version
        self.flags = flags
        self.names = list(names)
        self.order = list(order)
        self.num_roots = num_roots
        self.levels = list(levels)  # (position, node count), deepest first

    @property
    def node_count(self) -> int:
        """Total node records declared by the per-level counts."""
        return sum(count for _pos, count in self.levels)

    def ordered_names(self) -> List[str]:
        """Variable names root to bottom (the dump's CVO)."""
        return [self.names[v] for v in self.order]

    def encode(self) -> bytes:
        """Serialize the header (magic, version, flags, names, order)."""
        out = bytearray(MAGIC)
        encode_varint(self.version, out)
        encode_varint(self.flags, out)
        encode_varint(len(self.names), out)
        for name in self.names:
            raw = name.encode("utf-8")
            encode_varint(len(raw), out)
            out.extend(raw)
        if sorted(self.order) != list(range(len(self.names))):
            raise FormatError("order must be a permutation of the variables")
        for var in self.order:
            encode_varint(var, out)
        encode_varint(self.num_roots, out)
        encode_varint(len(self.levels), out)
        for position, count in self.levels:
            encode_varint(position, out)
            encode_varint(count, out)
        return bytes(out)


def read_header(fileobj) -> Header:
    """Read and validate the header at the current position of ``fileobj``."""
    source = getattr(fileobj, "name", None)
    shown = f"{source}: " if isinstance(source, str) else ""
    magic = fileobj.read(len(MAGIC))
    if magic != MAGIC:
        raise FormatError(f"{shown}bad magic {magic!r}; not a BBDD dump")
    version = read_varint(fileobj)
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in sorted(SUPPORTED_VERSIONS))
        raise FormatError(
            f"{shown}unsupported format version {version} "
            f"(this reader supports versions {supported})"
        )
    flags = read_varint(fileobj)
    if version < FORMAT_VERSION_CHAIN and flags & V2_FLAGS:
        raise FormatError(
            f"{shown}version {version} header carries v2 flags {flags:#x}"
        )
    nvars = read_varint(fileobj)
    names = []
    for _ in range(nvars):
        length = read_varint(fileobj)
        raw = fileobj.read(length)
        if len(raw) != length:
            raise FormatError("truncated variable name")
        names.append(decode_name(raw))
    order = [read_varint(fileobj) for _ in range(nvars)]
    if sorted(order) != list(range(nvars)):
        raise FormatError("order is not a permutation of the variables")
    num_roots = read_varint(fileobj)
    nlevels = read_varint(fileobj)
    levels = []
    for _ in range(nlevels):
        position = read_varint(fileobj)
        count = read_varint(fileobj)
        levels.append((position, count))
    return Header(names, order, num_roots, levels, version=version, flags=flags)


# ----------------------------------------------------------------------
# node records
# ----------------------------------------------------------------------


def encode_literal(out: bytearray) -> None:
    """Append a literal (R4) node record: svtag 0, fixed children."""
    encode_varint(LITERAL_TAG, out)


def encode_chain(sv_delta: int, neq_ref: int, eq_ref: int, out: bytearray) -> None:
    """Append a chain node record (``sv_delta`` = position(SV) - position(PV))."""
    if sv_delta < 1:
        raise FormatError(f"chain SV must lie below PV (delta {sv_delta})")
    encode_varint(sv_delta, out)
    encode_varint(neq_ref, out)
    encode_varint(eq_ref, out)


def decode_records(payload: bytes, count: int) -> List[Tuple[int, int, int]]:
    """Decode ``count`` node records from a level payload.

    Returns ``(sv_delta, neq_ref, eq_ref)`` tuples; literal records come
    back as ``(LITERAL_TAG, 0, 0)``.
    """
    records = []
    pos = 0
    for _ in range(count):
        sv_delta, pos = decode_varint(payload, pos)
        if sv_delta == LITERAL_TAG:
            records.append((LITERAL_TAG, 0, 0))
            continue
        neq_ref, pos = decode_varint(payload, pos)
        eq_ref, pos = decode_varint(payload, pos)
        records.append((sv_delta, neq_ref, eq_ref))
    if pos != len(payload):
        raise FormatError(
            f"level payload has {len(payload) - pos} trailing bytes"
        )
    return records


# ----------------------------------------------------------------------
# v2 chain-span node records (FLAG_CHAIN grammar)
# ----------------------------------------------------------------------


def encode_chain_v2(
    sv_delta: int, span_delta: int, neq_ref: int, eq_ref: int, out: bytearray
) -> None:
    """Append a v2 (FLAG_CHAIN grammar) chain or span node record.

    ``span_delta`` is ``position(bot) - position(SV)`` — 0 for a plain
    couple, else even and >= 2.  Span records store only the regular
    ``=``-edge ref; the ``!=`` edge is the same node complemented, so
    ``neq_ref`` is validated and dropped.
    """
    if sv_delta < 1:
        raise FormatError(f"chain SV must lie below PV (delta {sv_delta})")
    if not span_delta:
        encode_varint(sv_delta << 1, out)
        encode_varint(neq_ref, out)
        encode_varint(eq_ref, out)
        return
    if span_delta < 2 or span_delta % 2:
        raise FormatError(
            f"span bottom delta must be even and >= 2, got {span_delta}"
        )
    if eq_ref & 1:
        raise FormatError("span = edge must be regular")
    if neq_ref != (eq_ref | 1):
        raise FormatError("span != edge must complement the = edge")
    encode_varint((sv_delta << 1) | 1, out)
    encode_varint(span_delta, out)
    encode_varint(eq_ref, out)


def decode_records_v2(payload: bytes, count: int) -> List[Tuple[int, int, int, int]]:
    """Decode ``count`` FLAG_CHAIN-grammar records from a level payload.

    Returns ``(sv_delta, span_delta, neq_ref, eq_ref)`` tuples; literal
    records come back as ``(LITERAL_TAG, 0, 0, 0)`` and plain couples
    carry ``span_delta = 0``.
    """
    records = []
    pos = 0
    for _ in range(count):
        tag, pos = decode_varint(payload, pos)
        if tag == LITERAL_TAG:
            records.append((LITERAL_TAG, 0, 0, 0))
            continue
        sv_delta = tag >> 1
        if not sv_delta:
            raise FormatError(f"malformed node record tag {tag}")
        if not tag & 1:
            neq_ref, pos = decode_varint(payload, pos)
            eq_ref, pos = decode_varint(payload, pos)
            records.append((sv_delta, 0, neq_ref, eq_ref))
            continue
        span_delta, pos = decode_varint(payload, pos)
        if span_delta < 2 or span_delta % 2:
            raise FormatError(
                f"span bottom delta must be even and >= 2, got {span_delta}"
            )
        eq_ref, pos = decode_varint(payload, pos)
        if eq_ref & 1:
            raise FormatError("span = edge ref must be regular")
        records.append((sv_delta, span_delta, eq_ref | 1, eq_ref))
    if pos != len(payload):
        raise FormatError(
            f"level payload has {len(payload) - pos} trailing bytes"
        )
    return records


# ----------------------------------------------------------------------
# compressed payloads (FLAG_COMPRESSED)
# ----------------------------------------------------------------------


def delta_ref(ref: int, node_id: int) -> int:
    """Delta-code an edge ref against the referencing record's file id."""
    child_id = ref >> 1
    delta = node_id - child_id
    if delta < 1:
        raise FormatError(
            f"edge ref from node {node_id} does not point backwards"
        )
    return (delta << 1) | (ref & 1)


def undelta_ref(dref: int, node_id: int) -> int:
    """Invert :func:`delta_ref`; validates the ref points backwards."""
    delta = dref >> 1
    if not 1 <= delta <= node_id:
        raise FormatError(
            f"delta ref {delta} out of range at node {node_id}"
        )
    return ((node_id - delta) << 1) | (dref & 1)


class PayloadCompressor:
    """One shared deflate stream for all of a file's level payloads.

    ``Z_SYNC_FLUSH`` at block boundaries keeps each block decodable
    as soon as it is read (in file order) while the dictionary built
    on earlier levels keeps compressing later ones.
    """

    __slots__ = ("_stream",)

    def __init__(self, level: int = 9) -> None:
        self._stream = zlib.compressobj(level)

    def compress(self, payload: bytes) -> bytes:
        stream = self._stream
        return stream.compress(payload) + stream.flush(zlib.Z_SYNC_FLUSH)


class PayloadDecompressor:
    """Inverse of :class:`PayloadCompressor` — feed blocks in file order."""

    __slots__ = ("_stream",)

    def __init__(self) -> None:
        self._stream = zlib.decompressobj()

    def decompress(self, blob: bytes) -> bytes:
        try:
            return self._stream.decompress(blob)
        except zlib.error as exc:
            raise FormatError(f"corrupt compressed payload: {exc}") from None
