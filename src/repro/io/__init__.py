"""repro.io — persistence & interchange for BBDD forests.

The subsystem makes BBDDs durable and portable:

* :mod:`repro.io.format` — the levelized binary format (varint node
  records, header with names/order/per-level counts);
* :mod:`repro.io.binary` — ``dump``/``load`` (+ ``dumps``/``loads``) of
  shared forests with on-the-fly re-reduction on import, and
  :func:`~repro.io.binary.open_forest`, which sniffs a container's
  header flags and loads it with the right decoder (the serving
  warm-start path);
* :mod:`repro.io.stream` — one-level-at-a-time writer/reader and the
  header-only :func:`~repro.io.stream.scan`;
* :mod:`repro.io.bdd_binary` — the same container for baseline-BDD
  forests (Shannon node records, header flag bit 0 set);
* :mod:`repro.io.jsondump` — JSON/dict interchange for debugging;
* :mod:`repro.io.migrate` — cross-manager (and cross-backend) copy with
  variable remapping (:func:`~repro.io.migrate.migrate_forest`,
  :class:`~repro.io.migrate.Migrator`,
  :class:`~repro.io.migrate.ProtocolMigrator`);
* :mod:`repro.io.checkpoint` — harness checkpoint store (``--checkpoint``).

Note: the convenience function is exported as :func:`migrate_forest`.
The historical name ``migrate`` is *not* re-bound here — doing so used
to shadow the :mod:`repro.io.migrate` submodule, so
``repro.io.migrate.ProtocolMigrator`` raised ``AttributeError``.
``repro.io.migrate`` is the module again (and stays callable as a
deprecated alias of :func:`migrate_forest`).
"""

from repro.io.bdd_binary import dump as dump_bdd
from repro.io.bdd_binary import dumps as dumps_bdd
from repro.io.bdd_binary import load as load_bdd
from repro.io.bdd_binary import loads as loads_bdd
from repro.io.binary import dump, dumps, load, loads, open_forest
from repro.io.checkpoint import CheckpointStore
from repro.io.format import FormatError
from repro.io.jsondump import dump_json, from_dict, load_json, to_dict
from repro.io.migrate import ForestRebuilder, Migrator, ProtocolMigrator, migrate_forest
from repro.io.stream import FileInfo, LevelStreamReader, LevelStreamWriter, scan

__all__ = [
    "dump",
    "dumps",
    "load",
    "loads",
    "open_forest",
    "dump_bdd",
    "dumps_bdd",
    "load_bdd",
    "loads_bdd",
    "dump_json",
    "load_json",
    "to_dict",
    "from_dict",
    "migrate_forest",
    "Migrator",
    "ProtocolMigrator",
    "ForestRebuilder",
    "scan",
    "FileInfo",
    "LevelStreamReader",
    "LevelStreamWriter",
    "CheckpointStore",
    "FormatError",
]
