"""JSON/dict interchange codec for BBDD forests (debuggability format).

The dict form mirrors the binary layout (see :mod:`repro.io.format`)
but names everything explicitly, so a dump is greppable and diffable:

.. code-block:: python

    {
      "format": "bbdd-json",
      "version": 1,
      "variables": ["a", "b", "c"],        # manager namespace
      "order": ["a", "b", "c"],            # CVO, root to bottom
      "nodes": [                           # bottom-up; id = index + 1
        {"id": 1, "var": "c"},                            # literal (R4)
        {"id": 2, "pv": "a", "sv": "b",                   # chain node
         "neq": [1, true], "eq": [1, false]},             # [id, attr]
      ],
      "roots": {"f": [2, false]}           # name -> [id, attr]; id 0 = sink
    }

Loading replays the node list through the same
:class:`~repro.io.migrate.ForestRebuilder` as the binary reader, so all
the cross-order / superset-variable migration semantics apply here too.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple

from repro.core.function import Function

from repro.io.binary import _named_edges, forest_records
from repro.io.format import FormatError
from repro.io.migrate import ForestRebuilder, Rename

JSON_FORMAT = "bbdd-json"
JSON_VERSION = 1


def to_dict(manager, functions) -> dict:
    """Encode a forest as the documented dict form."""
    named = _named_edges(functions)
    records, ids = forest_records(manager, named)
    nodes = []
    for _position, sv_position, span_delta, node, neq, eq in records:
        pv, sv, bot, _d, _e = manager.node_fields(node)
        if sv_position is None:
            nodes.append({"id": ids[node], "var": manager.var_name(pv)})
        else:
            entry = {
                "id": ids[node],
                "pv": manager.var_name(pv),
                "sv": manager.var_name(sv),
                "neq": [neq[0], neq[1]],
                "eq": [eq[0], eq[1]],
            }
            if span_delta:
                entry["bot"] = manager.var_name(bot)
            nodes.append(entry)
    return {
        "format": JSON_FORMAT,
        "version": JSON_VERSION,
        "variables": list(manager.var_names),
        "order": [manager.var_name(v) for v in manager.order.order],
        "nodes": nodes,
        "roots": {
            name: [ids[-edge if edge < 0 else edge], edge < 0]
            for name, edge in named
        },
    }


def from_dict(
    data: dict,
    manager=None,
    rename: Rename = None,
) -> Tuple[object, Dict[str, Function]]:
    """Rebuild a forest from its dict form; see :func:`repro.io.binary.load`."""
    if data.get("format") != JSON_FORMAT:
        raise FormatError(f"not a {JSON_FORMAT} document")
    if data.get("version") != JSON_VERSION:
        raise FormatError(f"unsupported {JSON_FORMAT} version {data.get('version')}")
    ordered_names = list(data["order"])
    if sorted(ordered_names) != sorted(data["variables"]):
        raise FormatError("order is not a permutation of the variables")
    if manager is None:
        from repro.core.manager import BBDDManager
        from repro.io.migrate import _resolve_rename

        # Fresh manager: take the dump's order *after* renaming (the
        # rebuilder resolves renamed names against the manager).
        rename_fn = _resolve_rename(rename)
        manager = BBDDManager([rename_fn(name) for name in ordered_names])
    rebuilder = ForestRebuilder(manager, ordered_names, rename=rename)
    position_of = {name: pos for pos, name in enumerate(ordered_names)}
    with manager.defer_gc():
        return _replay(rebuilder, manager, data, position_of)


def _replay(rebuilder, manager, data, position_of):

    def position_for(name):
        try:
            return position_of[name]
        except KeyError:
            raise FormatError(f"unknown variable {name!r} in dump") from None

    for expected_id, record in enumerate(data["nodes"], start=1):
        if record["id"] != expected_id:
            raise FormatError(
                f"node ids must be dense and bottom-up; expected {expected_id}, "
                f"got {record['id']}"
            )
        if "var" in record:
            rebuilder.add_record(position_for(record["var"]), 0, 0, 0)
            continue
        position = position_for(record["pv"])
        sv_position = position_for(record["sv"])
        if sv_position <= position:
            raise FormatError(
                f"chain SV {record['sv']!r} does not lie below PV {record['pv']!r}"
            )
        neq_id, neq_attr = record["neq"]
        eq_id, eq_attr = record["eq"]
        span_delta = 0
        if "bot" in record:
            bot_position = position_for(record["bot"])
            span_delta = bot_position - sv_position
            if span_delta < 2 or span_delta % 2:
                raise FormatError(
                    f"span bottom {record['bot']!r} must lie an even number "
                    f"of positions (>= 2) below SV {record['sv']!r}"
                )
        rebuilder.add_record(
            position,
            sv_position - position,
            (neq_id << 1) | bool(neq_attr),
            (eq_id << 1) | bool(eq_attr),
            span_delta=span_delta,
        )
    functions = {}
    for name, (node_id, attr) in data["roots"].items():
        edge = rebuilder.edge_for((node_id << 1) | bool(attr))
        functions[name] = Function(manager, edge)
    return manager, functions


def dump_json(manager, functions, target, indent=2) -> None:
    """Write the dict form as JSON to a path or text file object."""
    data = to_dict(manager, functions)
    if hasattr(target, "write"):
        json.dump(data, target, indent=indent)
        return
    with open(target, "w", encoding="utf-8") as fileobj:
        json.dump(data, fileobj, indent=indent)


def load_json(source, manager=None, rename: Rename = None):
    """Load a JSON dump from a path or text file object."""
    if hasattr(source, "read"):
        data = json.load(source)
    else:
        with open(source, "r", encoding="utf-8") as fileobj:
            data = json.load(fileobj)
    return from_dict(data, manager=manager, rename=rename)
