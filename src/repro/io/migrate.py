"""Cross-manager migration: rebuild decision diagrams in another manager.

Three entry points share the rebuild machinery:

* :class:`ForestRebuilder` — drives the codecs (:mod:`repro.io.binary`,
  :mod:`repro.io.jsondump`): given a dump's variable order it replays
  serialized node records inside a target manager, re-reducing on the
  fly (see `Rebuild semantics` below).
* :class:`Migrator` — copies *live* BBDD functions into another BBDD
  manager without a serialization round trip, with optional variable
  renaming.
* :class:`ProtocolMigrator` / :func:`migrate_forest` — the
  backend-agnostic path: copies live functions between *any* pair of
  :class:`repro.api.base.DDManager` backends (BBDD -> BDD,
  BDD -> BBDD, BDD -> BDD, ...) by replaying each source node through
  the target's protocol operations (a Shannon node becomes
  ``ite(v, t, e)``, a biconditional couple ``ite(v <-> w, eq, neq)``).
  :func:`migrate_forest` picks a structural fast path automatically
  when both managers share a record layout (BBDD pairs, and any pair
  involving the external-memory ``xmem`` backend, whose levelized
  representation is this format's record shape).

``migrate_forest`` used to be exported as ``migrate``, which shadowed
this very module in the ``repro.io`` namespace (``import
repro.io.migrate`` yielded the *function*, so
``repro.io.migrate.ProtocolMigrator`` raised ``AttributeError``).  The
function was renamed; calling this **module** still works as a
deprecated alias and forwards to :func:`migrate_forest`.

Rebuild semantics
-----------------
When the target manager's order preserves the relative order of the
dump's variables (extra target variables may interleave freely — couples
chain over *support*, so they never appear in the rebuilt nodes), every
record maps to a single :meth:`BBDDManager._make` call, which re-applies
rules R1/R2/R4 and the complement normalization.  Otherwise each chain
node ``(v, w)`` is rebuilt semantically from the biconditional expansion
``f = (v = w) ? f_eq : f_neq`` — one XNOR node plus an ITE — which
re-canonicalizes the function under the target order.
"""

from __future__ import annotations

import sys as _sys
from typing import Callable, Dict, List, Mapping, Sequence, Union

from repro.api.base import FunctionBase, rebuild_function
from repro.core import apply as _ops
from repro.core.exceptions import BBDDError, VariableError
from repro.core.function import Function
from repro.core.node import SINK, SV_ONE, Edge
from repro.core.operations import OP_XNOR, OP_XOR

from repro.io.format import FormatError, LITERAL_TAG, SINK_ID, unpack_ref

Rename = Union[None, Mapping[str, str], Callable[[str], str]]


def _resolve_rename(rename: Rename) -> Callable[[str], str]:
    if rename is None:
        return lambda name: name
    if callable(rename):
        return rename
    mapping = dict(rename)
    return lambda name: mapping.get(name, name)


class ForestRebuilder:
    """Replays a serialized forest inside a target manager.

    Parameters
    ----------
    manager:
        The target :class:`~repro.core.manager.BBDDManager`.
    ordered_names:
        The dump's variable names, root to bottom (its CVO).
    rename:
        Optional variable renaming applied before resolving names in the
        target manager (a mapping or a callable; unknown names raise
        :class:`~repro.core.exceptions.VariableError`).
    """

    def __init__(
        self,
        manager,
        ordered_names: Sequence[str],
        rename: Rename = None,
    ) -> None:
        self.manager = manager
        rename_fn = _resolve_rename(rename)
        try:
            self._var_at = [
                manager.var_index(rename_fn(name)) for name in ordered_names
            ]
        except VariableError as exc:
            raise VariableError(
                f"dump variable missing from target manager: {exc}"
            ) from None
        positions = [manager.order.position(v) for v in self._var_at]
        #: Whether the dump's relative variable order survives in the
        #: target — the precondition for the structural `_make` fast path.
        self.order_preserved = all(
            a < b for a, b in zip(positions, positions[1:])
        )
        #: Replayed edges by file id; id 0 is the sink (+1 in the flat
        #: store's signed-int edge coding).
        self._edges: List[Edge] = [SINK]
        self._xnor_cache: Dict[tuple, Edge] = {}

    # -- structural primitives (shared with the live Migrator) ----------

    def make_literal(self, position: int) -> Edge:
        """Rebuild a literal (R4) node for the variable at ``position``."""
        var = self._var_at[position]
        return self.manager.literal_node(var)

    def make_chain(self, position: int, sv_position: int, d: Edge, e: Edge) -> Edge:
        """Rebuild a chain node ``(PV, SV)`` with children ``d`` / ``e``."""
        mgr = self.manager
        pv = self._var_at[position]
        sv = self._var_at[sv_position]
        if self.order_preserved:
            return mgr._make(pv, sv, d, e)
        biq = self._xnor_cache.get((pv, sv))
        if biq is None:
            biq = mgr.apply_edges(
                mgr.literal_edge(pv), mgr.literal_edge(sv), OP_XNOR
            )
            self._xnor_cache[(pv, sv)] = biq
        return _ops.ite(mgr, biq, e, d)

    def make_span(
        self, position: int, sv_position: int, bot_position: int, e: Edge
    ) -> Edge:
        """Rebuild a chain-span record ``(PV, SV:bot)`` semantically.

        A span denotes ``f = e xor x_pv xor x_sv xor ... xor x_bot``
        (every dump position from ``sv`` down to ``bot``), so replaying
        the XOR re-canonicalizes under the target order — a
        chain-reducing target re-forms the span, a plain one expands it
        to the couple chain.
        """
        mgr = self.manager
        x = mgr.literal_edge(self._var_at[position])
        for p in range(sv_position, bot_position + 1):
            x = mgr.apply_edges(x, mgr.literal_edge(self._var_at[p]), OP_XOR)
        return mgr.apply_edges(e, x, OP_XOR)

    # -- record replay (used by the codecs) ------------------------------

    def add_record(
        self,
        position: int,
        sv_delta: int,
        neq_ref: int,
        eq_ref: int,
        span_delta: int = 0,
    ) -> Edge:
        """Replay one serialized node record; returns its rebuilt edge.

        Node ids are assigned in replay order (the file's id space);
        refs must point at already-replayed ids.  Positions come from
        the (untrusted) dump, so they are bounds-checked here — every
        malformed-record failure surfaces as :class:`FormatError`.
        """
        n = len(self._var_at)
        if not 0 <= position < n:
            raise FormatError(f"record position {position} out of range 0..{n - 1}")
        if sv_delta and not position + sv_delta + span_delta < n:
            raise FormatError(
                f"record SV/bot position {position + sv_delta + span_delta} out "
                f"of range (PV at {position}, {n} variables)"
            )
        if sv_delta == LITERAL_TAG:
            if span_delta:
                raise FormatError("literal record cannot carry a span")
            edge = self.make_literal(position)
        elif span_delta:
            edge = self.make_span(
                position,
                position + sv_delta,
                position + sv_delta + span_delta,
                self.edge_for(eq_ref),
            )
        else:
            edge = self.make_chain(
                position,
                position + sv_delta,
                self.edge_for(neq_ref),
                self.edge_for(eq_ref),
            )
        self._edges.append(edge)
        return edge

    def edge_for(self, ref: int) -> Edge:
        """Resolve a packed edge ref against the replayed id table."""
        node_id, attr = unpack_ref(ref)
        if not 0 <= node_id < len(self._edges):
            raise FormatError(f"edge ref to unwritten node id {node_id}")
        edge = self._edges[node_id]
        return -edge if attr else edge

    @property
    def replayed(self) -> int:
        """Number of node records replayed so far (sink excluded)."""
        return len(self._edges) - 1 - SINK_ID


class Migrator:
    """Copies live functions from ``src`` into ``dst`` (memoized)."""

    def __init__(self, src, dst, rename: Rename = None) -> None:
        if src is dst:
            raise BBDDError("source and target managers must differ")
        self.src = src
        self.dst = dst
        ordered_names = [src.var_name(v) for v in src.order.order]
        self._rebuilder = ForestRebuilder(dst, ordered_names, rename=rename)
        #: Source node index -> rebuilt signed edge in ``dst``.
        self._memo: Dict[int, Edge] = {}

    def edge(self, edge: Edge) -> Edge:
        """Copy a bare edge into the target manager (memoized)."""
        # The memo and the copies are bare edges in ``dst``; keep its
        # automatic GC out of the way while the copy is in flight.
        with self.dst.defer_gc():
            copied = self._copy(-edge if edge < 0 else edge)
        return -copied if edge < 0 else copied

    def function(self, f: Function) -> Function:
        """Copy a source function; repeated calls keep the sharing."""
        if f.manager is not self.src:
            raise BBDDError("function does not belong to the source manager")
        with self.dst.defer_gc():
            return Function(self.dst, self.edge(f.edge))

    def _copy(self, node: int) -> Edge:
        """Copy node ``node`` into ``dst`` (iterative post-order, deep-safe)."""
        if node == SINK:
            return SINK
        src = self.src
        pvl = src._pv
        svl = src._sv
        botl = src._bot
        neql = src._neq
        eql = src._eq
        memo = self._memo
        position = src.order.position
        stack: List[int] = [node]
        while stack:
            top = stack[-1]
            if top in memo:
                stack.pop()
                continue
            if svl[top] == SV_ONE:
                memo[top] = self._rebuilder.make_literal(position(pvl[top]))
                stack.pop()
                continue
            d = neql[top]
            dn = -d if d < 0 else d
            pending = [
                c for c in (dn, eql[top]) if c != SINK and c not in memo
            ]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            eq = eql[top]
            e_copy = SINK if eq == SINK else memo[eq]
            if botl[top] != svl[top]:
                # Chain span: d is the complemented = edge, so only the
                # regular child matters; replay the XOR semantics.
                memo[top] = self._rebuilder.make_span(
                    position(pvl[top]),
                    position(svl[top]),
                    position(botl[top]),
                    e_copy,
                )
                continue
            d_copy = SINK if dn == SINK else memo[dn]
            if d < 0:
                d_copy = -d_copy
            memo[top] = self._rebuilder.make_chain(
                position(pvl[top]),
                position(svl[top]),
                d_copy,
                e_copy,
            )
        return memo[node]


class ProtocolMigrator:
    """Copies live functions between any two protocol backends.

    Works node by node through the target's :class:`repro.api.base.DDManager`
    protocol operations, so the source and target representations may
    differ: each Shannon node is rebuilt as ``ite(v, then, else)``, each
    biconditional couple as ``ite(v <-> w, eq, neq)`` and each literal
    as the target's projection function.  Copies are memoized per source
    node (complements ride on the handles), and the walk is iterative —
    deep diagrams migrate without touching the recursion limit.
    """

    def __init__(self, src, dst, rename: Rename = None) -> None:
        if src is dst:
            raise BBDDError("source and target managers must differ")
        self.src = src
        self.dst = dst
        self._rename = _resolve_rename(rename)
        self._memo: Dict[object, FunctionBase] = {}
        self._vars: Dict[int, FunctionBase] = {}

    def _dst_var(self, index: int) -> FunctionBase:
        f = self._vars.get(index)
        if f is None:
            name = self._rename(self.src.var_name(index))
            try:
                f = self.dst.function(self.dst.literal_edge(name))
            except VariableError:
                raise VariableError(
                    f"source variable missing from target manager: {name!r}"
                ) from None
            self._vars[index] = f
        return f

    def function(self, f: FunctionBase) -> FunctionBase:
        """Rebuild a source function in the target through the protocol."""
        if f.manager is not self.src:
            raise BBDDError("function does not belong to the source manager")
        copied = rebuild_function(
            self.src, f.node, self._dst_var, self.dst, memo=self._memo
        )
        return ~copied if f.attr else copied


def _migrator_for(src, dst, rename: Rename):
    """Pick the cheapest migrator for a backend pair.

    Structural fast paths (record replay, no protocol ``ite`` chains)
    exist for BBDD -> BBDD and for every pair involving the levelized
    ``xmem`` backend; everything else takes the generic
    :class:`ProtocolMigrator`.
    """
    src_backend = getattr(src, "backend", None)
    dst_backend = getattr(dst, "backend", None)
    if src_backend == "bbdd" and dst_backend == "bbdd":
        return Migrator(src, dst, rename=rename)
    if dst_backend == "xmem" and src_backend in ("bbdd", "xmem"):
        from repro.xmem.convert import ToXmemMigrator

        return ToXmemMigrator(src, dst, rename=rename)
    if src_backend == "xmem" and dst_backend == "bbdd":
        from repro.xmem.convert import XmemToBBDDMigrator

        return XmemToBBDDMigrator(src, dst, rename=rename)
    return ProtocolMigrator(src, dst, rename=rename)


def migrate_forest(functions, dst, rename: Rename = None):
    """Copy functions into the manager ``dst``, remapping variables by name.

    ``functions`` may be a single function handle, a sequence, or a
    name-keyed mapping; the result mirrors the input shape.  All inputs
    must share one source manager.  Source and target may use different
    backends — a BBDD forest migrates into a BDD manager and vice versa
    (re-canonicalized through the target's protocol operations).
    """
    if isinstance(functions, FunctionBase):
        return _migrator_for(functions.manager, dst, rename).function(functions)
    if isinstance(functions, Mapping):
        items = list(functions.items())
        if not items:
            return {}
        mig = _migrator_for(items[0][1].manager, dst, rename)
        return {name: mig.function(f) for name, f in items}
    items = list(functions)
    if not items:
        return []
    mig = _migrator_for(items[0].manager, dst, rename)
    return [mig.function(f) for f in items]


def migrate(functions, dst, rename: Rename = None):
    """Deprecated alias of :func:`migrate_forest`.

    The old name shadowed the ``repro.io.migrate`` module when
    re-exported from ``repro.io``; use :func:`migrate_forest` (calling
    the module object also forwards here for backward compatibility).
    """
    import warnings

    warnings.warn(
        "repro.io.migrate.migrate() is deprecated; use migrate_forest()",
        DeprecationWarning,
        stacklevel=2,
    )
    return migrate_forest(functions, dst, rename=rename)


class _CallableModule(_sys.modules[__name__].__class__):
    """Module type that keeps the legacy ``repro.io.migrate(...)`` call
    working (deprecated) now that the name is bound to the module again."""

    def __call__(self, functions, dst, rename: Rename = None):
        """Deprecated alias of :func:`migrate_forest`."""
        import warnings

        warnings.warn(
            "calling repro.io.migrate(...) is deprecated; use "
            "repro.io.migrate_forest(...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return migrate_forest(functions, dst, rename=rename)


_sys.modules[__name__].__class__ = _CallableModule
