"""Command-line inspection of ``.bbdd`` dumps: ``python -m repro.io``.

Currently one subcommand::

    python -m repro.io scan FILE.bbdd [FILE.bbdd ...]

prints a header-level summary of each dump — format version, flags,
backend kind, variable count, per-level node counts and the on-disk
compactness (bytes per node) — without decoding a single node record
(see :func:`repro.io.stream.scan`).  Works on every readable container:
v1, v2 chain-span and v2 compressed, both BBDD and baseline-BDD record
kinds.  Exits non-zero (with the error on stderr) when a file is
missing, truncated or not a ``.bbdd`` container at all.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.exceptions import BBDDError
from repro.io.format import FLAG_BDD, FLAG_CHAIN, FLAG_COMPRESSED
from repro.io.stream import FileInfo, scan

#: Flag bit -> human label, in print order.
_FLAG_NAMES = (
    (FLAG_BDD, "bdd"),
    (FLAG_CHAIN, "chain"),
    (FLAG_COMPRESSED, "compressed"),
)


def _flag_text(flags: int) -> str:
    names = [name for bit, name in _FLAG_NAMES if flags & bit]
    known = 0
    for bit, _name in _FLAG_NAMES:
        known |= bit
    unknown = flags & ~known
    if unknown:
        names.append(f"unknown(0x{unknown:x})")
    return f"0x{flags:x}" + (f" ({', '.join(names)})" if names else " (none)")


def _render_scan(path: str, info: FileInfo, out) -> None:
    header = info.header
    kind = "bdd" if header.flags & FLAG_BDD else "bbdd"
    print(f"{path}:", file=out)
    print(f"  version:        {header.version}", file=out)
    print(f"  flags:          {_flag_text(header.flags)}", file=out)
    print(f"  backend kind:   {kind}", file=out)
    print(f"  variables:      {len(header.names)}", file=out)
    print(f"  roots:          {header.num_roots}", file=out)
    print(f"  nodes:          {info.node_count}", file=out)
    print(f"  file bytes:     {info.file_bytes}", file=out)
    print(f"  payload bytes:  {info.payload_bytes}", file=out)
    print(f"  bytes per node: {info.bytes_per_node:.2f}", file=out)
    print(
        f"  levels:         {len(header.levels)} (position: nodes, payload bytes)",
        file=out,
    )
    # header.levels and the stored blocks share one file order, so the
    # scanned per-level payload sizes line up index by index.
    for (position, count), nbytes in zip(header.levels, info.level_bytes):
        print(f"    {position:>5}: {count} nodes, {nbytes} B", file=out)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = sys.stdout if out is None else out
    parser = argparse.ArgumentParser(
        prog="python -m repro.io",
        description="Inspect .bbdd forest dumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    scan_parser = sub.add_parser(
        "scan",
        help="print a header-level summary of each dump (no records decoded)",
    )
    scan_parser.add_argument("files", nargs="+", metavar="FILE.bbdd")
    args = parser.parse_args(argv)

    status = 0
    for path in args.files:
        try:
            info = scan(path)
        except (OSError, BBDDError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 1
            continue
        _render_scan(path, info, out)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
