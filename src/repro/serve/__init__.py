"""repro.serve — the concurrent batched query service.

Three layers, each usable on its own:

* :mod:`repro.serve.bulk` — vectorized batch queries: one top-down
  levelized sweep pushes bitset "cohorts" of assignments through the
  diagram, so evaluating a batch costs ``O(nodes + queries)`` instead
  of one root-to-sink walk per query.  Surfaced as
  :meth:`Function.evaluate_batch
  <repro.api.base.FunctionBase.evaluate_batch>` /
  :meth:`manager.evaluate_batch
  <repro.api.base.DDManager.evaluate_batch>` on every backend (bbdd,
  bdd, xmem — the external-memory backend streams level blocks and
  drops them behind the sweep, so huge batches respect the residency
  budget), plus batched cube satisfiability
  (:func:`~repro.serve.bulk.satisfiable_batch`).
* :mod:`repro.serve.pool` — a multi-process worker pool
  (:class:`~repro.serve.pool.ForestPool`): each worker hosts an LRU
  cache of forests loaded from ``.bbdd`` dumps, oversized batches
  shard across workers, and a cross-request result cache answers
  repeats without dispatching.
* :mod:`repro.serve.server` — an asyncio front end
  (:class:`~repro.serve.server.BatchingServer`) that coalesces single
  queries into batches under a latency budget, with a
  newline-delimited-JSON TCP transport behind ``python -m repro.serve``.
"""

from repro.serve.bulk import (
    ColumnBatch,
    ServeError,
    evaluate_batch,
    satisfiable_batch,
)
from repro.serve.pool import ForestHost, ForestPool
from repro.serve.server import BatchingServer, serve_tcp

__all__ = [
    "ColumnBatch",
    "ServeError",
    "evaluate_batch",
    "satisfiable_batch",
    "ForestHost",
    "ForestPool",
    "BatchingServer",
    "serve_tcp",
]
