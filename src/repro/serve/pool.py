"""Multi-process forest serving: workers, sharding, result caching.

A :class:`ForestPool` answers batch queries against forests stored as
``.bbdd`` dump containers (the :mod:`repro.io` format doubles as the
pool's wire/warm-start format):

* each **worker** is a separate process hosting an LRU cache of loaded
  forests (:class:`ForestHost`), so the Python-level evaluation
  parallelism is real — one GIL per worker;
* oversized batches are **sharded** across the workers and reassembled
  in order;
* a **cross-request result cache** in the dispatcher answers repeated
  single queries (the common shape of coalesced interactive traffic)
  without touching a worker at all.

``workers=0`` runs the same code path inline (no subprocesses) — the
right choice for tests, small deployments, and platforms where
spawning is expensive; it still provides the forest cache, sharding
and result cache.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.api.base import check_assignment_bit
from repro.serve.bulk import ServeError

#: Default shard size: batches above this split across workers.
DEFAULT_SHARD = 4096


class ForestHost:
    """An LRU cache of forests loaded from dump containers.

    One instance lives in every worker process (and one inline in a
    ``workers=0`` pool).  Forests load through
    :func:`repro.io.open_forest`, so both BBDD and baseline-BDD
    containers serve transparently.
    """

    def __init__(self, max_forests: int = 8) -> None:
        if max_forests < 1:
            raise ServeError("max_forests must be positive")
        self.max_forests = max_forests
        self._forests: "OrderedDict[str, tuple]" = OrderedDict()
        # An inline (workers=0) pool shares this host across the
        # batching server's executor threads; serialize access so the
        # LRU bookkeeping and the underlying manager stay consistent.
        self._lock = threading.Lock()
        self.loads = 0
        self.hits = 0

        from repro import obs

        obs.track(self)

    def get(self, path: str) -> tuple:
        """The ``(manager, {name: function})`` pair for ``path``."""
        with self._lock:
            return self._get_locked(path)

    def _get_locked(self, path: str) -> tuple:
        entry = self._forests.get(path)
        if entry is None:
            from repro.io import open_forest

            entry = open_forest(path)
            self._forests[path] = entry
            self.loads += 1
            while len(self._forests) > self.max_forests:
                self._forests.popitem(last=False)
        else:
            self._forests.move_to_end(path)
            self.hits += 1
        return entry

    def names(self, path: str) -> List[str]:
        """The function names stored in ``path`` (loads it if needed)."""
        return sorted(self.get(path)[1])

    def evaluate(self, path: str, name: str, assignments) -> List[bool]:
        """Batch-evaluate one named function of the forest at ``path``."""
        with self._lock:
            _manager, functions = self._get_locked(path)
            f = functions.get(name)
            if f is None:
                raise ServeError(
                    f"no function {name!r} in {path!r}; "
                    f"stored: {', '.join(sorted(functions))}"
                )
            # The sweep runs under the lock too: concurrent inline
            # callers share one manager, whose memo tables are not
            # thread-safe (worker processes are the parallelism axis).
            return f.evaluate_batch(assignments)

    def collect_metrics(self, registry) -> None:
        """Sample forest-cache counters into an obs registry.

        Runs in whatever process hosts this cache: inline pools feed
        the dispatcher's snapshot directly, worker processes feed the
        snapshot they ship back for the ``"metrics"`` op — so both
        modes land in the same ``repro_serve_forest_*`` families.
        """
        from repro.obs.catalog import family

        family(registry, "repro_serve_forest_loads_total").inc(self.loads)
        family(registry, "repro_serve_forest_hits_total").inc(self.hits)


def _worker_main(in_queue, out_queue, max_forests: int) -> None:
    """Worker-process loop: serve ``(task_id, op, payload)`` requests."""
    from repro import obs

    # A forked worker inherits the parent's registry values and tracked
    # managers; drop them so this worker's "metrics" snapshots cover
    # only its own work (the dispatcher merges them with its own).
    obs.reset()
    host = ForestHost(max_forests)
    while True:
        message = in_queue.get()
        if message is None:
            return
        task_id, op, payload = message
        try:
            if op == "eval":
                path, name, assignments = payload
                result = host.evaluate(path, name, assignments)
            elif op == "warm":
                result = host.names(payload)
            elif op == "stats":
                result = {"loads": host.loads, "forest_hits": host.hits}
            elif op == "metrics":
                from repro import obs

                result = obs.snapshot()
            else:  # pragma: no cover - protocol misuse
                raise ServeError(f"unknown worker op {op!r}")
            out_queue.put((task_id, True, result))
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            out_queue.put((task_id, False, f"{type(exc).__name__}: {exc}"))


def _normalize_assignment(assignment: Mapping, where: str) -> tuple:
    """A hashable, order-insensitive key for one assignment mapping.

    Values are validated *before* normalization (the shared strictness
    contract), so a malformed assignment raises identically whether the
    result would have come from the cache or from a worker.
    """
    items = []
    for key, bit in assignment.items():
        check_assignment_bit(bit, key, where)
        items.append(((isinstance(key, str), str(key)), bool(bit)))
    return tuple(sorted(items))


class ForestPool:
    """A pool of forest-serving workers with sharding and result caching.

    Parameters
    ----------
    workers:
        Worker process count; ``0`` serves inline in this process
        (default: ``min(4, cpu_count)``).
    max_forests:
        Per-worker LRU capacity of loaded forests.
    cache_size:
        Dispatcher-level result-cache entries (``0`` disables); keys
        are ``(forest, function, assignment)``, so repeated queries are
        answered without dispatching.
    shard_size:
        Batches larger than this split into shards spread round-robin
        across the workers.
    timeout:
        Seconds to wait for a worker reply before declaring it dead.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        max_forests: int = 8,
        cache_size: int = 4096,
        shard_size: int = DEFAULT_SHARD,
        timeout: float = 120.0,
    ) -> None:
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 0:
            raise ServeError("workers must be >= 0")
        if shard_size < 1:
            raise ServeError("shard_size must be positive")
        self.shard_size = shard_size
        self.timeout = timeout
        self._cache: "OrderedDict[tuple, bool]" = OrderedDict()
        self._cache_size = cache_size
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches_dispatched = 0
        self.shards_dispatched = 0
        self._task_seq = 0
        self._results: Dict[int, tuple] = {}
        self._abandoned: Set[int] = set()
        # One lock/condition guards task ids, worker rotation and the
        # result demux: several threads may wait concurrently (the
        # batching server's flush gathers groups in executor threads),
        # and only one of them may block on the shared result queue at
        # a time — it parks other threads' replies in ``_results`` and
        # wakes them through the condition.
        self._cond = threading.Condition()
        self._draining = False
        self._host: Optional[ForestHost] = None
        self._processes: List = []
        self._queues: List = []
        self._out_queue = None
        self._next_worker = 0
        from repro import obs

        obs.track(self)
        if workers == 0:
            self._host = ForestHost(max_forests)
        else:
            import multiprocessing as mp

            context = mp.get_context()
            self._out_queue = context.Queue()
            for _ in range(workers):
                in_queue = context.Queue()
                process = context.Process(
                    target=_worker_main,
                    args=(in_queue, self._out_queue, max_forests),
                    daemon=True,
                )
                process.start()
                self._queues.append(in_queue)
                self._processes.append(process)

    # -- lifecycle ------------------------------------------------------

    @property
    def workers(self) -> int:
        """Worker process count (0 when serving inline)."""
        return len(self._processes)

    def close(self) -> None:
        """Stop the workers (idempotent)."""
        for queue in self._queues:
            try:
                queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - teardown
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
        self._processes = []
        self._queues = []

    def __enter__(self) -> "ForestPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch -------------------------------------------------------

    def _submit_to(self, index: int, op: str, payload) -> int:
        with self._cond:
            self._task_seq += 1
            task_id = self._task_seq
        self._queues[index].put((task_id, op, payload))
        return task_id

    def _submit(self, op: str, payload) -> int:
        with self._cond:
            self._task_seq += 1
            task_id = self._task_seq
            index = self._next_worker
            self._next_worker = (index + 1) % len(self._queues)
        self._queues[index].put((task_id, op, payload))
        return task_id

    def _collect(self, task_id: int):
        """Wait for one task's worker reply (thread-safe demux).

        Exactly one thread at a time drains the shared result queue;
        replies for other waiters are parked in ``_results`` and their
        threads woken through the condition, so concurrent callers
        never steal each other's wakeups.  A timed-out task id is
        remembered so its late reply is discarded instead of leaking.
        """
        import queue as queue_mod

        deadline = time.monotonic() + self.timeout
        with self._cond:
            while task_id not in self._results:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._abandoned.add(task_id)
                    raise ServeError(
                        f"pool worker did not answer within {self.timeout}s"
                    )
                if self._draining:
                    # Someone else is on the queue; they will park our
                    # reply and notify.  Wake periodically to re-check
                    # the deadline.
                    self._cond.wait(timeout=min(remaining, 1.0))
                    continue
                self._draining = True
                self._cond.release()
                item = None
                try:
                    try:
                        item = self._out_queue.get(timeout=min(remaining, 1.0))
                    except queue_mod.Empty:
                        item = None
                finally:
                    self._cond.acquire()
                    self._draining = False
                    if item is not None:
                        done_id, ok, payload = item
                        if done_id in self._abandoned:
                            self._abandoned.discard(done_id)
                        else:
                            self._results[done_id] = (ok, payload)
                    self._cond.notify_all()
                if item is None and not any(
                    p.is_alive() for p in self._processes
                ):
                    raise ServeError("all pool workers died")
            ok, payload = self._results.pop(task_id)
        if not ok:
            raise ServeError(f"pool worker failed: {payload}")
        return payload

    def _collect_all(self, task_ids: List[int]) -> List:
        """Collect several task replies; on failure, abandon the rest.

        Without the cleanup, a timed-out multi-shard batch would leave
        its sibling shards' late replies accumulating in ``_results``
        forever.
        """
        payloads = []
        for position, task_id in enumerate(task_ids):
            try:
                payloads.append(self._collect(task_id))
            except ServeError:
                with self._cond:
                    for stale_id in task_ids[position + 1 :]:
                        if self._results.pop(stale_id, None) is None:
                            self._abandoned.add(stale_id)
                raise
        return payloads

    def warm(self, path) -> List[str]:
        """Pre-load ``path`` into every worker; returns the root names.

        Warm-starting moves the dump decode off the first request's
        latency path (every worker pays it once, concurrently).
        """
        path = os.fspath(path)
        if self._host is not None:
            return self._host.names(path)
        task_ids = [
            self._submit_to(index, "warm", path)
            for index in range(len(self._queues))
        ]
        return self._collect_all(task_ids)[-1]

    def evaluate_batch(self, path, name: str, assignments: Iterable[Mapping]) -> List[bool]:
        """Evaluate many assignments of one stored function.

        Cached results are answered locally; the remaining (deduplicated)
        misses are sharded across the workers and evaluated there with
        the levelized sweep.  Results come back in input order.
        """
        path = os.fspath(path)
        batch = assignments if isinstance(assignments, list) else list(assignments)
        if not batch:
            return []
        results: List[Optional[bool]] = [None] * len(batch)
        pending: "OrderedDict[tuple, List[int]]" = OrderedDict()
        misses: List[Mapping] = []
        use_cache = self._cache_size > 0
        # Cache lookups and eviction run under the pool lock: the
        # batching server calls evaluate_batch from several executor
        # threads at once, and an unsynchronized get/move_to_end pair
        # races against another thread's eviction.
        with self._cond:
            for index, assignment in enumerate(batch):
                key = (
                    path,
                    name,
                    _normalize_assignment(assignment, f"assignment {index}"),
                )
                if use_cache:
                    cached = self._cache.get(key)
                    if cached is not None:
                        self._cache.move_to_end(key)
                        self.cache_hits += 1
                        results[index] = cached
                        continue
                    self.cache_misses += 1
                positions = pending.get(key)
                if positions is None:
                    pending[key] = [index]
                    misses.append(assignment)
                else:
                    positions.append(index)
        if misses:
            # Dispatch outside the lock (it blocks on the workers).
            values = self._evaluate_misses(path, name, misses)
            with self._cond:
                self.batches_dispatched += 1
                for (key, positions), value in zip(pending.items(), values):
                    value = bool(value)
                    for index in positions:
                        results[index] = value
                    if use_cache:
                        self._cache[key] = value
                        while len(self._cache) > self._cache_size:
                            self._cache.popitem(last=False)
        return results  # type: ignore[return-value]

    def _evaluate_misses(self, path: str, name: str, misses: List[Mapping]) -> List[bool]:
        if self._host is not None:
            with self._cond:
                self.shards_dispatched += 1
            return self._host.evaluate(path, name, misses)
        shard = self.shard_size
        task_ids = []
        for start in range(0, len(misses), shard):
            task_ids.append(
                self._submit("eval", (path, name, misses[start : start + shard]))
            )
        with self._cond:
            self.shards_dispatched += len(task_ids)
        values: List[bool] = []
        for shard_values in self._collect_all(task_ids):
            values.extend(shard_values)
        return values

    def evaluate(self, path, name: str, assignment: Mapping) -> bool:
        """Evaluate one assignment (a batch of one, through the cache)."""
        return self.evaluate_batch(path, name, [assignment])[0]

    def _forest_counters(self) -> tuple:
        """``(loads, hits)`` of the forest caches, both pool modes.

        Inline pools read the host directly; worker pools ask every
        worker (best effort — a dead pool reports zeros rather than
        failing a stats call).
        """
        if self._host is not None:
            return (self._host.loads, self._host.hits)
        if not self._queues:
            return (0, 0)
        try:
            task_ids = [
                self._submit_to(index, "stats", None)
                for index in range(len(self._queues))
            ]
            replies = self._collect_all(task_ids)
        except ServeError:
            return (0, 0)
        loads = sum(reply["loads"] for reply in replies)
        hits = sum(reply["forest_hits"] for reply in replies)
        return (loads, hits)

    def metric_snapshots(self) -> List[dict]:
        """Metrics snapshots of every worker process (empty inline).

        Worker snapshots travel over the ordinary result channel; the
        inline host is tracked in this process, so it is already part
        of the local :func:`repro.obs.snapshot` and returns nothing
        here (no double counting).
        """
        if self._host is not None or not self._queues:
            return []
        try:
            task_ids = [
                self._submit_to(index, "metrics", None)
                for index in range(len(self._queues))
            ]
            return self._collect_all(task_ids)
        except ServeError:
            return []

    def collect_metrics(self, registry) -> None:
        """Sample dispatcher counters into an obs registry.

        Covers the result cache and dispatch volume of this process;
        worker-side counters arrive via :meth:`metric_snapshots`.
        """
        from repro.obs.catalog import family

        family(registry, "repro_serve_result_cache_hits_total").inc(
            self.cache_hits
        )
        family(registry, "repro_serve_result_cache_misses_total").inc(
            self.cache_misses
        )
        family(registry, "repro_serve_result_cache_entries").inc(
            len(self._cache)
        )
        family(registry, "repro_serve_batches_dispatched_total").inc(
            self.batches_dispatched
        )
        family(registry, "repro_serve_shards_dispatched_total").inc(
            self.shards_dispatched
        )

    def stats(self) -> dict:
        """Dispatcher counters (cache effectiveness, dispatch volume)."""
        forest_loads, forest_hits = self._forest_counters()
        return {
            "workers": self.workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_entries": len(self._cache),
            "batches_dispatched": self.batches_dispatched,
            "shards_dispatched": self.shards_dispatched,
            "forest_loads": forest_loads,
            "forest_hits": forest_hits,
        }
