"""Multi-process forest serving: workers, sharding, result caching.

A :class:`ForestPool` answers batch queries against forests stored as
``.bbdd`` dump containers (the :mod:`repro.io` format doubles as the
pool's wire/warm-start format):

* each **worker** is a separate process hosting an LRU cache of loaded
  forests (:class:`ForestHost`), so the Python-level evaluation
  parallelism is real — one GIL per worker;
* oversized batches are **sharded** across the workers and reassembled
  in order;
* a **cross-request result cache** in the dispatcher answers repeated
  single queries (the common shape of coalesced interactive traffic)
  without touching a worker at all.

``workers=0`` runs the same code path inline (no subprocesses) — the
right choice for tests, small deployments, and platforms where
spawning is expensive; it still provides the forest cache, sharding
and result cache.

With **shared memory** on (the default wherever
``multiprocessing.shared_memory`` works), the dispatcher loads each
dump once, freezes it into a :class:`repro.par.shm.ShmForest` segment
and the workers *attach* instead of holding private copies — memory
per added worker is O(1) in the forest size.  A dump file that changes
on disk is re-frozen under a bumped generation number and the old
segment retired, so serving hot-reloads without a restart.  Worker
processes that die mid-batch are detected, respawned (re-attaching
lazily) and the in-flight batch retried once
(:class:`repro.par.dispatch.WorkerCrew`).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional

from repro.api.base import check_assignment_bit
from repro.par.dispatch import CrewError, WorkerCrew, WorkerRestarted
from repro.serve.bulk import ServeError

#: Default shard size: batches above this split across workers.
DEFAULT_SHARD = 4096


class ForestHost:
    """An LRU cache of forests loaded from dump containers.

    One instance lives in every worker process (and one inline in a
    ``workers=0`` pool).  Forests load through
    :func:`repro.io.open_forest`, so both BBDD and baseline-BDD
    containers serve transparently.
    """

    def __init__(self, max_forests: int = 8) -> None:
        if max_forests < 1:
            raise ServeError("max_forests must be positive")
        self.max_forests = max_forests
        self._forests: "OrderedDict[str, tuple]" = OrderedDict()
        self._segments: "OrderedDict[str, object]" = OrderedDict()
        # An inline (workers=0) pool shares this host across the
        # batching server's executor threads; serialize access so the
        # LRU bookkeeping and the underlying manager stay consistent.
        self._lock = threading.Lock()
        self.loads = 0
        self.hits = 0
        self.shm_attaches = 0

        from repro import obs

        obs.track(self)

    def get(self, path: str) -> tuple:
        """The ``(manager, {name: function})`` pair for ``path``."""
        with self._lock:
            return self._get_locked(path)

    def _get_locked(self, path: str) -> tuple:
        entry = self._forests.get(path)
        if entry is None:
            from repro.io import open_forest

            entry = open_forest(path)
            self._forests[path] = entry
            self.loads += 1
            while len(self._forests) > self.max_forests:
                self._forests.popitem(last=False)
        else:
            self._forests.move_to_end(path)
            self.hits += 1
        return entry

    def names(self, path: str) -> List[str]:
        """The function names stored in ``path`` (loads it if needed)."""
        return sorted(self.get(path)[1])

    def evaluate(self, path: str, name: str, assignments) -> List[bool]:
        """Batch-evaluate one named function of the forest at ``path``."""
        with self._lock:
            _manager, functions = self._get_locked(path)
            f = functions.get(name)
            if f is None:
                raise ServeError(
                    f"no function {name!r} in {path!r}; "
                    f"stored: {', '.join(sorted(functions))}"
                )
            # The sweep runs under the lock too: concurrent inline
            # callers share one manager, whose memo tables are not
            # thread-safe (worker processes are the parallelism axis).
            return f.evaluate_batch(assignments)

    def p_one(self, path: str, name: str, weights: Optional[Mapping]) -> float:
        """``P[f = 1]`` of one stored function under independent weights.

        Float mode (``exact=False``) — the serving surface is JSON, so
        probabilities travel as floats in both directions.
        """
        with self._lock:
            _manager, functions = self._get_locked(path)
            f = functions.get(name)
            if f is None:
                raise ServeError(
                    f"no function {name!r} in {path!r}; "
                    f"stored: {', '.join(sorted(functions))}"
                )
            return f.p_one(weights, exact=False)

    def marginals(
        self,
        path: str,
        name: str,
        weights: Optional[Mapping],
        variables: Optional[List] = None,
    ) -> Dict[str, float]:
        """Posterior marginals of one stored function (float mode)."""
        with self._lock:
            _manager, functions = self._get_locked(path)
            f = functions.get(name)
            if f is None:
                raise ServeError(
                    f"no function {name!r} in {path!r}; "
                    f"stored: {', '.join(sorted(functions))}"
                )
            return f.marginals(weights, variables, exact=False)

    def attach_segment(self, segment: str):
        """The attached :class:`~repro.par.shm.ShmForest` for ``segment``.

        Attachments share the host's LRU budget semantics (a separate
        table, same capacity): an evicted segment is closed, and
        re-attaching later is cheap — the kernel mapping is the only
        cost, the arrays are never copied.
        """
        with self._lock:
            forest = self._segments.get(segment)
            if forest is None:
                from repro.par.shm import ShmForest

                forest = ShmForest.attach(segment)
                self._segments[segment] = forest
                self.shm_attaches += 1
                while len(self._segments) > self.max_forests:
                    _, evicted = self._segments.popitem(last=False)
                    evicted.close()
            else:
                self._segments.move_to_end(segment)
            return forest

    def evaluate_segment(self, segment: str, name: str, assignments) -> List[bool]:
        """Batch-evaluate one named function of an attached segment."""
        forest = self.attach_segment(segment)
        return forest.evaluate_batch(name, assignments)

    def detach_segment(self, segment: str) -> None:
        """Drop (and close) one segment attachment, if present."""
        with self._lock:
            forest = self._segments.pop(segment, None)
        if forest is not None:
            forest.close()

    def close_segments(self) -> None:
        """Close every segment attachment (worker exit)."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
        for forest in segments:
            forest.close()

    def collect_metrics(self, registry) -> None:
        """Sample forest-cache counters into an obs registry.

        Runs in whatever process hosts this cache: inline pools feed
        the dispatcher's snapshot directly, worker processes feed the
        snapshot they ship back for the ``"metrics"`` op — so both
        modes land in the same ``repro_serve_forest_*`` families.
        """
        from repro.obs.catalog import family

        family(registry, "repro_serve_forest_loads_total").inc(self.loads)
        family(registry, "repro_serve_forest_hits_total").inc(self.hits)
        family(registry, "repro_serve_shm_attaches_total").inc(self.shm_attaches)


def _worker_main(in_queue, reply, max_forests: int) -> None:
    """Worker-process loop: serve ``(task_id, op, payload)`` requests."""
    from repro import obs

    # A forked worker inherits the parent's registry values and tracked
    # managers; drop them so this worker's "metrics" snapshots cover
    # only its own work (the dispatcher merges them with its own).
    obs.reset()
    host = ForestHost(max_forests)
    try:
        while True:
            message = in_queue.get()
            if message is None:
                return
            task_id, op, payload = message
            try:
                if op == "eval":
                    path, name, assignments = payload
                    result = host.evaluate(path, name, assignments)
                elif op == "eval_shm":
                    segment, name, assignments = payload
                    result = host.evaluate_segment(segment, name, assignments)
                elif op == "p_one":
                    path, name, weights = payload
                    result = host.p_one(path, name, weights)
                elif op == "p_one_shm":
                    segment, name, weights = payload
                    result = host.attach_segment(segment).p_one(
                        name, weights, exact=False
                    )
                elif op == "marginals":
                    path, name, weights, variables = payload
                    result = host.marginals(path, name, weights, variables)
                elif op == "marginals_shm":
                    segment, name, weights, variables = payload
                    result = host.attach_segment(segment).marginals(
                        name, weights, variables, exact=False
                    )
                elif op == "warm":
                    result = host.names(payload)
                elif op == "attach_shm":
                    result = sorted(host.attach_segment(payload).functions)
                elif op == "detach_shm":
                    host.detach_segment(payload)
                    result = None
                elif op == "stats":
                    result = {
                        "loads": host.loads,
                        "forest_hits": host.hits,
                        "shm_attaches": host.shm_attaches,
                    }
                elif op == "metrics":
                    result = obs.snapshot()
                else:  # pragma: no cover - protocol misuse
                    raise ServeError(f"unknown worker op {op!r}")
                reply.send((task_id, True, result))
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                reply.send((task_id, False, f"{type(exc).__name__}: {exc}"))
    finally:
        host.close_segments()


def _normalize_assignment(assignment: Mapping, where: str) -> tuple:
    """A hashable, order-insensitive key for one assignment mapping.

    Values are validated *before* normalization (the shared strictness
    contract), so a malformed assignment raises identically whether the
    result would have come from the cache or from a worker.
    """
    items = []
    for key, bit in assignment.items():
        check_assignment_bit(bit, key, where)
        items.append(((isinstance(key, str), str(key)), bool(bit)))
    return tuple(sorted(items))


class ForestPool:
    """A pool of forest-serving workers with sharding and result caching.

    Parameters
    ----------
    workers:
        Worker process count; ``0`` serves inline in this process
        (default: ``min(4, cpu_count)``).
    max_forests:
        Per-worker LRU capacity of loaded forests.
    cache_size:
        Dispatcher-level result-cache entries (``0`` disables); keys
        are ``(forest, function, assignment)``, so repeated queries are
        answered without dispatching.
    shard_size:
        Batches larger than this split into shards spread round-robin
        across the workers.
    timeout:
        Seconds to wait for a worker reply before declaring it dead.
    shared_memory:
        ``True`` freezes each dump into a shared-memory segment the
        workers attach zero-copy; ``False`` keeps private per-worker
        copies; ``None`` (default) enables sharing whenever the
        platform supports it and the pool has workers.  Forests whose
        backend cannot freeze fall back to private copies per path.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        max_forests: int = 8,
        cache_size: int = 4096,
        shard_size: int = DEFAULT_SHARD,
        timeout: float = 120.0,
        shared_memory: Optional[bool] = None,
    ) -> None:
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 0:
            raise ServeError("workers must be >= 0")
        if shard_size < 1:
            raise ServeError("shard_size must be positive")
        self.shard_size = shard_size
        self.timeout = timeout
        self._cache: "OrderedDict[tuple, bool]" = OrderedDict()
        self._cache_size = cache_size
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches_dispatched = 0
        self.shards_dispatched = 0
        self.batch_retries = 0
        self.shm_freezes = 0
        # Guards the result cache and dispatcher counters: the batching
        # server calls in from several executor threads at once.
        self._cond = threading.Condition()
        self._host: Optional[ForestHost] = None
        self._crew: Optional[WorkerCrew] = None
        if shared_memory is None:
            from repro.par.shm import shm_available

            shared_memory = workers > 0 and shm_available()
        self.shared_memory = bool(shared_memory) and workers > 0
        # path -> {"forest": ShmForest, "sig": (mtime_ns, size),
        #          "generation": int}.  The dispatcher owns the frozen
        # segments; workers attach them by name on demand.
        self._shared_lock = threading.Lock()
        self._shared: Dict[str, dict] = {}
        self._shm_failed: set = set()
        from repro import obs

        obs.track(self)
        if workers == 0:
            self._host = ForestHost(max_forests)
        else:
            self._crew = WorkerCrew(
                workers,
                _worker_main,
                args=(max_forests,),
                timeout=timeout,
                name="repro-serve",
            )

    # -- lifecycle ------------------------------------------------------

    @property
    def workers(self) -> int:
        """Worker process count (0 when serving inline)."""
        return self._crew.workers if self._crew is not None else 0

    @property
    def worker_restarts(self) -> int:
        """Workers that died mid-task and were respawned (0 inline)."""
        return self._crew.worker_restarts if self._crew is not None else 0

    def close(self) -> None:
        """Stop the workers and unlink owned segments (idempotent)."""
        if self._crew is not None:
            self._crew.close()
        with self._shared_lock:
            entries = list(self._shared.values())
            self._shared.clear()
        for entry in entries:
            forest = entry["forest"]
            try:
                forest.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass
            forest.close()

    def __enter__(self) -> "ForestPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch -------------------------------------------------------

    def _crewed(self, attempt):
        """Run ``attempt()`` against the crew; retry once after a respawn.

        A worker death mid-batch surfaces as
        :class:`~repro.par.dispatch.WorkerRestarted`; since every pool
        op is idempotent (pure reads over immutable forests), the whole
        attempt is re-submitted once against the respawned crew.  Any
        other crew failure surfaces as :class:`ServeError`, keeping one
        exception surface across inline and worker modes.
        """
        try:
            try:
                return attempt()
            except WorkerRestarted:
                with self._cond:
                    self.batch_retries += 1
                return attempt()
        except CrewError as exc:
            raise ServeError(str(exc)) from exc

    # -- shared segments ------------------------------------------------

    def _segment_for(self, path: str) -> Optional[str]:
        """The live shared-segment name serving ``path`` (or ``None``).

        Freezes the dump on first use.  A dump whose on-disk signature
        (mtime, size) changed since the freeze is re-frozen under a
        bumped generation and the stale segment retired, so serving
        hot-reloads edited dumps without a pool restart.  A backend
        that cannot freeze is remembered per path and served through
        the private-copy ``eval`` path from then on.
        """
        if not self.shared_memory or path in self._shm_failed:
            return None
        try:
            info = os.stat(path)
            signature: Optional[tuple] = (info.st_mtime_ns, info.st_size)
        except OSError:
            signature = None
        retired = None
        with self._shared_lock:
            entry = self._shared.get(path)
            if entry is not None and entry["sig"] == signature:
                return entry["forest"].name
            generation = entry["generation"] + 1 if entry is not None else 0
            try:
                from repro.io import open_forest
                from repro.par.shm import ShmForest

                manager, functions = open_forest(path)
                forest = ShmForest.freeze(
                    manager, functions, generation=generation
                )
            except Exception:
                self._shm_failed.add(path)
                return None
            self._shared[path] = {
                "forest": forest,
                "sig": signature,
                "generation": generation,
            }
            self.shm_freezes += 1
            if entry is not None:
                retired = entry["forest"]
        if retired is not None:
            self._retire_segment(retired)
        return forest.name

    def _retire_segment(self, forest) -> None:
        """Unlink a superseded segment after detaching the workers."""
        if self._crew is not None:
            try:
                self._crew.abandon(
                    self._crew.broadcast("detach_shm", forest.name)
                )
            except CrewError:  # pragma: no cover - closed crew
                pass
        try:
            forest.unlink()
        except Exception:  # pragma: no cover - already unlinked
            pass
        forest.close()

    def warm(self, path) -> List[str]:
        """Pre-load ``path`` into every worker; returns the root names.

        Warm-starting moves the dump decode off the first request's
        latency path.  In shared-memory mode the dispatcher freezes the
        dump once and the workers merely attach (one map each); in
        private-copy mode every worker decodes the dump concurrently.
        """
        path = os.fspath(path)
        if self._host is not None:
            return self._host.names(path)
        segment = self._segment_for(path)
        if segment is not None:
            return self._crewed(
                lambda: self._crew.collect_all(
                    self._crew.broadcast("attach_shm", segment)
                )[-1]
            )
        return self._crewed(
            lambda: self._crew.collect_all(
                self._crew.broadcast("warm", path)
            )[-1]
        )

    def evaluate_batch(self, path, name: str, assignments: Iterable[Mapping]) -> List[bool]:
        """Evaluate many assignments of one stored function.

        Cached results are answered locally; the remaining (deduplicated)
        misses are sharded across the workers and evaluated there with
        the levelized sweep.  Results come back in input order.
        """
        path = os.fspath(path)
        batch = assignments if isinstance(assignments, list) else list(assignments)
        if not batch:
            return []
        results: List[Optional[bool]] = [None] * len(batch)
        pending: "OrderedDict[tuple, List[int]]" = OrderedDict()
        misses: List[Mapping] = []
        use_cache = self._cache_size > 0
        # Cache lookups and eviction run under the pool lock: the
        # batching server calls evaluate_batch from several executor
        # threads at once, and an unsynchronized get/move_to_end pair
        # races against another thread's eviction.
        with self._cond:
            for index, assignment in enumerate(batch):
                key = (
                    path,
                    name,
                    _normalize_assignment(assignment, f"assignment {index}"),
                )
                if use_cache:
                    cached = self._cache.get(key)
                    if cached is not None:
                        self._cache.move_to_end(key)
                        self.cache_hits += 1
                        results[index] = cached
                        continue
                    self.cache_misses += 1
                positions = pending.get(key)
                if positions is None:
                    pending[key] = [index]
                    misses.append(assignment)
                else:
                    positions.append(index)
        if misses:
            # Dispatch outside the lock (it blocks on the workers).
            values = self._evaluate_misses(path, name, misses)
            with self._cond:
                self.batches_dispatched += 1
                for (key, positions), value in zip(pending.items(), values):
                    value = bool(value)
                    for index in positions:
                        results[index] = value
                    if use_cache:
                        self._cache[key] = value
                        while len(self._cache) > self._cache_size:
                            self._cache.popitem(last=False)
        return results  # type: ignore[return-value]

    def _evaluate_misses(self, path: str, name: str, misses: List[Mapping]) -> List[bool]:
        if self._host is not None:
            with self._cond:
                self.shards_dispatched += 1
            return self._host.evaluate(path, name, misses)
        segment = self._segment_for(path)
        op = "eval" if segment is None else "eval_shm"
        target = path if segment is None else segment
        shard = self.shard_size

        def attempt() -> List[bool]:
            task_ids = [
                self._crew.submit(op, (target, name, misses[start : start + shard]))
                for start in range(0, len(misses), shard)
            ]
            with self._cond:
                self.shards_dispatched += len(task_ids)
            values: List[bool] = []
            for shard_values in self._crew.collect_all(task_ids):
                values.extend(shard_values)
            return values

        return self._crewed(attempt)

    def evaluate(self, path, name: str, assignment: Mapping) -> bool:
        """Evaluate one assignment (a batch of one, through the cache)."""
        return self.evaluate_batch(path, name, [assignment])[0]

    def _weighted(self, op: str, path, name: str, payload_tail: tuple):
        """Dispatch one weighted-counting op to a worker (or inline).

        In shared-memory mode the query runs zero-copy against the
        frozen segment (``<op>_shm``); otherwise the worker's private
        forest copy answers.  Inline pools call the host directly.
        """
        path = os.fspath(path)
        if self._host is not None:
            method = getattr(self._host, op)
            return method(path, name, *payload_tail)
        segment = self._segment_for(path)
        worker_op = op if segment is None else op + "_shm"
        target = path if segment is None else segment

        def attempt():
            task_id = self._crew.submit(worker_op, (target, name) + payload_tail)
            return self._crew.collect_all([task_id])[0]

        return self._crewed(attempt)

    def p_one(self, path, name: str, weights: Optional[Mapping] = None) -> float:
        """``P[f = 1]`` of one stored function under independent weights.

        ``weights`` maps variable names (or indices) to marginal
        probabilities ``P[x = 1]``; unlisted variables default to 1/2.
        Float mode — this is the JSON serving surface of
        :func:`repro.wmc.p_one`.
        """
        return self._weighted("p_one", path, name, (weights,))

    def marginals(
        self,
        path,
        name: str,
        weights: Optional[Mapping] = None,
        variables: Optional[List] = None,
    ) -> Dict[str, float]:
        """Posterior marginals ``P[x = 1 | f = 1]`` of one stored function.

        ``variables`` restricts the query (default: the function's
        support).  Float mode, keyed by variable name — the JSON serving
        surface of :func:`repro.wmc.marginals`.
        """
        return self._weighted("marginals", path, name, (weights, variables))

    def _forest_counters(self) -> tuple:
        """``(loads, hits, shm_attaches)`` of the forest caches.

        Inline pools read the host directly; worker pools ask every
        worker (best effort — a dead pool reports zeros rather than
        failing a stats call).
        """
        if self._host is not None:
            return (self._host.loads, self._host.hits, self._host.shm_attaches)
        if self._crew is None:
            return (0, 0, 0)
        try:
            replies = self._crew.collect_all(
                self._crew.broadcast("stats", None)
            )
        except CrewError:
            return (0, 0, 0)
        loads = sum(reply["loads"] for reply in replies)
        hits = sum(reply["forest_hits"] for reply in replies)
        attaches = sum(reply.get("shm_attaches", 0) for reply in replies)
        return (loads, hits, attaches)

    def metric_snapshots(self) -> List[dict]:
        """Metrics snapshots of every worker process (empty inline).

        Worker snapshots travel over the ordinary result channel; the
        inline host is tracked in this process, so it is already part
        of the local :func:`repro.obs.snapshot` and returns nothing
        here (no double counting).
        """
        if self._host is not None or self._crew is None:
            return []
        try:
            return self._crew.collect_all(
                self._crew.broadcast("metrics", None)
            )
        except CrewError:
            return []

    def collect_metrics(self, registry) -> None:
        """Sample dispatcher counters into an obs registry.

        Covers the result cache and dispatch volume of this process;
        worker-side counters arrive via :meth:`metric_snapshots`.
        """
        from repro.obs.catalog import family

        family(registry, "repro_serve_result_cache_hits_total").inc(
            self.cache_hits
        )
        family(registry, "repro_serve_result_cache_misses_total").inc(
            self.cache_misses
        )
        family(registry, "repro_serve_result_cache_entries").inc(
            len(self._cache)
        )
        family(registry, "repro_serve_batches_dispatched_total").inc(
            self.batches_dispatched
        )
        family(registry, "repro_serve_shards_dispatched_total").inc(
            self.shards_dispatched
        )
        family(registry, "repro_serve_worker_restarts_total").inc(
            self.worker_restarts
        )
        family(registry, "repro_serve_batch_retries_total").inc(
            self.batch_retries
        )
        family(registry, "repro_serve_shm_freezes_total").inc(self.shm_freezes)
        with self._shared_lock:
            segment_bytes = sum(
                entry["forest"].nbytes for entry in self._shared.values()
            )
        family(registry, "repro_serve_shm_segment_bytes").inc(segment_bytes)

    def stats(self) -> dict:
        """Dispatcher counters (cache effectiveness, dispatch volume)."""
        forest_loads, forest_hits, shm_attaches = self._forest_counters()
        with self._shared_lock:
            shared_segments = len(self._shared)
            segment_bytes = sum(
                entry["forest"].nbytes for entry in self._shared.values()
            )
        return {
            "workers": self.workers,
            "shared_memory": self.shared_memory,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_entries": len(self._cache),
            "batches_dispatched": self.batches_dispatched,
            "shards_dispatched": self.shards_dispatched,
            "batch_retries": self.batch_retries,
            "worker_restarts": self.worker_restarts,
            "forest_loads": forest_loads,
            "forest_hits": forest_hits,
            "shm_freezes": self.shm_freezes,
            "shm_attaches": shm_attaches,
            "shared_segments": shared_segments,
            "shm_segment_bytes": segment_bytes,
        }
