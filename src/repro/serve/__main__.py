"""``python -m repro.serve`` — serve a forest container over TCP.

Speaks newline-delimited JSON (one request per line)::

    {"f": "f0", "assignment": {"a": 1, "b": 0}, "id": 7}
    {"op": "stats"}

and answers ``{"id": ..., "result": ...}`` / ``{"id": ..., "error":
...}`` per line.  Single queries arriving within ``--batch-window``
seconds coalesce into one levelized sweep per function.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Optional, Sequence

from repro.serve.pool import ForestPool
from repro.serve.server import BatchingServer, serve_tcp


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve batched queries against a .bbdd forest dump over TCP.",
    )
    parser.add_argument("forest", help="path to a .bbdd forest container")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8642, help="TCP port (0 picks a free one)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = serve inline in this process)",
    )
    parser.add_argument(
        "--max-forests", type=int, default=8, help="per-worker forest LRU size"
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="seconds a query may wait to coalesce into a batch",
    )
    parser.add_argument(
        "--max-batch", type=int, default=1024, help="flush threshold in queries"
    )
    parser.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="exit after answering this many requests (smoke tests)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help=(
            "also serve Prometheus text on GET /metrics at this port "
            "(0 picks a free one; off by default)"
        ),
    )
    parser.add_argument(
        "--no-shared-memory",
        action="store_true",
        help=(
            "give each worker a private forest copy instead of attaching "
            "one shared frozen segment (shared memory is the default "
            "with workers > 0 where the platform supports it)"
        ),
    )
    return parser


async def _serve(args: argparse.Namespace) -> None:
    pool = ForestPool(
        workers=args.workers,
        max_forests=args.max_forests,
        shared_memory=False if args.no_shared_memory else None,
    )
    server = BatchingServer(
        pool,
        args.forest,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
    )
    names = server.warm()
    done = asyncio.Event()
    answered = 0

    def on_request() -> None:
        nonlocal answered
        answered += 1
        if args.max_requests is not None and answered >= args.max_requests:
            done.set()

    exporter = None
    if args.metrics_port is not None:
        from repro.obs import MetricsHTTPServer

        exporter = MetricsHTTPServer(
            port=args.metrics_port,
            snapshot_fn=server.metrics_snapshot,
            host=args.host,
        ).start()
    # SIGTERM/SIGINT trigger the same graceful path as --max-requests:
    # the finally block below closes the pool, which unlinks every
    # shared-memory segment — an orchestrator's stop must not leak
    # /dev/shm space.  (Unsupported on some platforms/loops.)
    import signal

    loop = asyncio.get_running_loop()
    handled_signals = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, done.set)
            handled_signals.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    tcp = await serve_tcp(server, args.host, args.port, on_request=on_request)
    address = tcp.sockets[0].getsockname()
    print(
        f"serving {args.forest} on {address[0]}:{address[1]} "
        f"(functions: {', '.join(names)})",
        flush=True,
    )
    if exporter is not None:
        print(
            f"metrics on http://{args.host}:{exporter.port}/metrics",
            flush=True,
        )
    try:
        await done.wait()
    finally:
        for signum in handled_signals:
            loop.remove_signal_handler(signum)
        tcp.close()
        await tcp.wait_closed()
        if exporter is not None:
            exporter.close()
        pool.close()
        stats = server.stats()
        print(
            f"served {stats['queries']} queries in {stats['batches_flushed']} "
            f"batches (p50 {stats['p50_latency_s'] * 1000:.2f} ms)",
            flush=True,
        )


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass


if __name__ == "__main__":
    main()
