"""Vectorized batch evaluation: the levelized cohort sweep.

The looped alternative — one root-to-sink walk per assignment — costs
``O(nodes_on_path)`` *per query*.  This module instead pushes the whole
batch through the diagram **top-down, one level at a time**: every node
carries a *cohort*, a pair of big-integer bitsets recording which
queries currently sit on that node with even/odd complement parity.
One node is then processed exactly once per batch — its branching
condition is computed for **all** queries at once with a couple of
word-parallel integer operations — so bulk evaluation is
``O(nodes + queries)`` instead of ``O(nodes × queries)``.

Two input forms are supported:

* an iterable of assignment *mappings* (the :meth:`FunctionBase.evaluate
  <repro.api.base.FunctionBase.evaluate>` format) — transposed into bit
  columns at C speed, eight bits per query (a "byte lane", which is
  what :func:`bytes` and :func:`int.from_bytes` produce natively);
* a :class:`ColumnBatch` — assignments already stored *columnar* (one
  bitmask per variable, bit ``i`` = query ``i``), the natural format of
  a vectorized query service.  Packing cost disappears entirely and
  cohorts are eight times denser.

The sweep itself is stride-agnostic: it only needs every bitset to use
the same lane layout and a ``full`` mask with one set bit per query.

Backends plug in through :meth:`DDManager.batch_stream
<repro.api.base.DDManager.batch_stream>`, which yields the diagram's
nodes top-down (parents strictly before children) as *items*::

    (key, pv, sv, t_key, t_flip, t_pv, f_key, f_flip, f_pv)

``key`` is any hashable node identity; ``sv`` is ``None`` for
single-variable tests (literal/Shannon nodes), a variable index for
chain couples, or a *tuple* of partner variables for chain-reduced
parity spans; the *t*-branch is taken where the node's test is true
(``pv != sv`` for chain nodes, odd parity of ``pv`` plus the partners
for spans, ``pv`` for the rest), ``*_key`` is ``None`` for the 1-sink,
``*_flip`` marks a complemented edge and ``*_pv`` is the branch
target's primary variable (``None`` for the sink).  The child
variables are what lets the *cube* sweep (:func:`satisfiable_batch`)
carry relational state across consecutive couples: taking a branch at
a chain node ``(pv, sv)`` pins the value of ``sv``, which is tested
next exactly when the child's PV is ``sv``.  Span branches pin
nothing — they constrain only the parity of a variable run that sits
entirely above the node's children in the order, so none of those
variables can ever be tested again.  Backends without a structural
stream fall back to the per-query loop in
:class:`~repro.api.base.DDManager`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.api.base import check_assignment_bit, duplicate_assignment_error
from repro.core.exceptions import BBDDError, VariableError

#: Bits per query of the byte-lane encoding produced from mappings.
BYTE_LANE = 8

#: Query count above which one sweep is split into sub-batches (bounds
#: the size of the cohort bitsets parked on the frontier).
DEFAULT_CHUNK = 1 << 15

_NOT_01 = bytes(range(2, 256))


class ServeError(BBDDError):
    """A query-service failure (pool worker death, unknown function, ...)."""


def lane_ones(count: int, stride: int = BYTE_LANE) -> int:
    """The ``full`` mask: one set bit per query lane."""
    if stride == 1:
        return (1 << count) - 1
    return int.from_bytes(b"\x01" * count, "little")


class ColumnBatch:
    """A batch of assignments stored columnar: one bitmask per variable.

    ``columns`` maps variables (names or indices are both fine — they
    are resolved against the manager at evaluation time) to integers
    whose bit ``i`` is the variable's value in query ``i``; ``count``
    is the number of queries.  Variables absent from ``columns`` are
    False everywhere (they must not be in the function's support — the
    same contract as :meth:`FunctionBase.evaluate
    <repro.api.base.FunctionBase.evaluate>`).

    This is the zero-copy input of :func:`evaluate_batch`: a service
    that keeps its request batches columnar never pays the per-query
    transpose that mapping input needs.
    """

    __slots__ = ("columns", "count")

    def __init__(self, columns: Mapping, count: int) -> None:
        if count < 0:
            raise BBDDError("ColumnBatch count must be non-negative")
        mask = (1 << count) - 1
        for var, bits in columns.items():
            if not isinstance(bits, int) or isinstance(bits, bool):
                raise TypeError(
                    f"column for variable {var!r} must be an int bitmask, "
                    f"got {type(bits).__name__}"
                )
            if bits & ~mask:
                raise BBDDError(
                    f"column for variable {var!r} has bits set beyond "
                    f"query {count - 1}"
                )
        self.columns = dict(columns)
        self.count = count

    def __len__(self) -> int:
        return self.count

    @classmethod
    def from_assignments(cls, assignments: Iterable[Mapping]) -> "ColumnBatch":
        """Pack an iterable of assignment mappings into columns.

        A convenience for callers that want to pay the transpose once
        and reuse the batch against several functions.
        """
        columns: Dict[object, int] = {}
        count = 0
        for i, assignment in enumerate(assignments):
            for key, bit in assignment.items():
                check_assignment_bit(bit, key, f"assignment {i}")
                if bit:
                    columns[key] = columns.get(key, 0) | (1 << i)
                else:
                    columns.setdefault(key, 0)
            count = i + 1
        return cls(columns, count)


class EncodedBatch:
    """A batch resolved against one manager, ready for the sweep.

    Internal interchange between the front-end encoders below, the
    :class:`~repro.api.base.DDManager` batch protocol and the sweep:
    ``var_bits`` maps variable *indices* to lane bitsets, ``full`` has
    one set bit per query lane, ``known_bits`` (cube queries only) maps
    variable indices to the lanes where that variable is constrained.
    """

    __slots__ = ("count", "stride", "full", "var_bits", "known_bits")

    def __init__(
        self,
        count: int,
        stride: int,
        var_bits: Dict[int, int],
        known_bits: Optional[Dict[int, int]] = None,
    ) -> None:
        self.count = count
        self.stride = stride
        self.full = lane_ones(count, stride)
        self.var_bits = var_bits
        self.known_bits = known_bits

    def unpack(self, bits: int) -> List[bool]:
        """Decode a result bitset (one answer bit per lane) to bools."""
        count = self.count
        if count == 0:
            return []
        if self.stride == 1:
            # bin() renders MSB first; a guard bit pads to exactly
            # ``count`` digits, the reversal restores query order and
            # map() keeps the per-query work at C speed.
            digits = bin(bits | (1 << count))[3:]
            return list(map("1".__eq__, digits[::-1]))
        return list(map((1).__eq__, bits.to_bytes(count, "little")))

    def iter_value_dicts(self, num_vars: int) -> Iterator[Dict[int, bool]]:
        """Per-query complete ``{index: bool}`` dicts (the loop fallback)."""
        stride = self.stride
        items = list(self.var_bits.items())
        for i in range(self.count):
            lane = 1 << (i * stride)
            values = {v: False for v in range(num_vars)}
            for var, bits in items:
                if bits & lane:
                    values[var] = True
            yield values

    def iter_known_dicts(self) -> Iterator[Dict[int, bool]]:
        """Per-query partial ``{index: bool}`` dicts of the known bits."""
        stride = self.stride
        known = self.known_bits or {}
        for i in range(self.count):
            lane = 1 << (i * stride)
            yield {
                var: bool(self.var_bits.get(var, 0) & lane)
                for var, bits in known.items()
                if bits & lane
            }


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------


def cohort_sweep(
    root_key,
    root_attr: bool,
    items: Iterable[tuple],
    var_bits: Dict[int, int],
    full: int,
) -> Tuple[int, int]:
    """Push complete-assignment query cohorts through a level stream.

    Returns ``(sat_even, sat_odd)``: the lanes that reach the 1-sink
    with even / odd accumulated complement parity.  Every lane follows
    exactly one root-to-sink path, so ``sat_even`` *is* the result
    bitset (even parity means the function is True) and the two halves
    partition ``full``.
    """
    if root_key is None:
        return (0, full) if root_attr else (full, 0)
    cohorts: Dict[object, Tuple[int, int]] = {
        root_key: (0, full) if root_attr else (full, 0)
    }
    sat_even = sat_odd = 0
    pop = cohorts.pop
    get_bits = var_bits.get
    for key, pv, sv, t_key, t_flip, _t_pv, f_key, f_flip, _f_pv in items:
        pair = pop(key, None)
        if pair is None:
            continue
        even, odd = pair
        if not even and not odd:
            continue
        if sv is None:
            t_mask = get_bits(pv, 0)
        elif type(sv) is tuple:
            # Parity span: the t-branch is taken where pv plus the
            # partner variables have odd parity.
            t_mask = get_bits(pv, 0)
            for partner in sv:
                t_mask ^= get_bits(partner, 0)
        else:
            t_mask = get_bits(pv, 0) ^ get_bits(sv, 0)
        f_mask = full & ~t_mask
        ce = even & t_mask
        co = odd & t_mask
        if ce or co:
            if t_flip:
                ce, co = co, ce
            if t_key is None:
                sat_even |= ce
                sat_odd |= co
            else:
                pe, po = cohorts.get(t_key, (0, 0))
                cohorts[t_key] = (pe | ce, po | co)
        ce = even & f_mask
        co = odd & f_mask
        if ce or co:
            if f_flip:
                ce, co = co, ce
            if f_key is None:
                sat_even |= ce
                sat_odd |= co
            else:
                pe, po = cohorts.get(f_key, (0, 0))
                cohorts[f_key] = (pe | ce, po | co)
    return sat_even, sat_odd


#: Empty cube-sweep state: {pin-0, pin-1, floating} × {even, odd parity}.
_ZERO6 = (0, 0, 0, 0, 0, 0)


def cube_sweep(
    root_key,
    root_attr: bool,
    items: Iterable[tuple],
    var_bits: Dict[int, int],
    known_bits: Dict[int, int],
    full: int,
) -> Tuple[int, int]:
    """Push *partial*-assignment (cube) cohorts through a level stream.

    Each lane asks "is ``f ∧ cube`` satisfiable"; a lane whose test is
    undecided by its cube flows into **both** branches and cohorts merge
    by union.  On BBDDs that alone would over-approximate: along a path
    the same variable appears first as a couple's SV and then as the
    next couple's PV, so two locally-free branch choices can demand
    contradictory values of it.  The sweep therefore tracks, per lane,
    whether the node's PV is *pinned* to 0 / pinned to 1 by the branch
    taken at the parent couple, or *floating* — six bitset planes
    (pin-state × parity):

    * arriving at a node, pins are reconciled with the cube (a conflict
      kills that path's lane contribution; a floating lane whose PV the
      cube constrains becomes pinned);
    * a chain branch whose SV the cube leaves free pins the SV's value
      (``sv = pv ⊕ branch``) — passed to the branch target exactly when
      the target's PV *is* that SV (otherwise the variable is skipped,
      can never be tested again, and the pin collapses to floating);
    * single-variable tests (literal/Shannon nodes) always pass
      floating — their branch constrains only the variable just tested.

    Returns ``(sat_even, sat_odd)``; bit ``i`` of ``sat_even`` means
    some cube-consistent path evaluates to True — satisfiability of
    ``f ∧ cube``.
    """
    if root_key is None:
        return (0, full) if root_attr else (full, 0)
    root = (0, 0, 0, 0, full, 0) if not root_attr else (0, 0, 0, 0, 0, full)
    cohorts: Dict[object, tuple] = {root_key: root}
    sat_even = sat_odd = 0
    pop = cohorts.pop
    get_bits = var_bits.get
    get_known = known_bits.get

    def route(child_key, flip, e0, o0, e1, o1, ef, of):
        nonlocal sat_even, sat_odd
        if not (e0 | o0 | e1 | o1 | ef | of):
            return
        if flip:
            e0, o0, e1, o1, ef, of = o0, e0, o1, e1, of, ef
        if child_key is None:
            sat_even |= e0 | e1 | ef
            sat_odd |= o0 | o1 | of
            return
        c = cohorts.get(child_key, _ZERO6)
        cohorts[child_key] = (
            c[0] | e0, c[1] | o0, c[2] | e1, c[3] | o1, c[4] | ef, c[5] | of,
        )

    for key, pv, sv, t_key, t_flip, t_pv, f_key, f_flip, f_pv in items:
        state = pop(key, None)
        if state is None:
            continue
        e0, o0, e1, o1, ef, of = state
        k = get_known(pv, 0)
        kv = k & get_bits(pv, 0)
        knv = k ^ kv
        # Reconcile pins with the cube: conflicting lanes die on this
        # path, floating lanes the cube constrains become pinned.
        e0 = (e0 & ~kv) | (ef & knv)
        o0 = (o0 & ~kv) | (of & knv)
        e1 = (e1 & ~knv) | (ef & kv)
        o1 = (o1 & ~knv) | (of & kv)
        ef &= ~k
        of &= ~k
        # Now e0/o0 hold lanes with pv = 0, e1/o1 with pv = 1, ef/of
        # with pv genuinely free (neither cube- nor pin-constrained).
        if sv is None:
            # Single-variable test: free lanes take both branches and
            # nothing is pinned downstream.
            route(t_key, t_flip, 0, 0, 0, 0, e1 | ef, o1 | of)
            route(f_key, f_flip, 0, 0, 0, 0, e0 | ef, o0 | of)
            continue
        if type(sv) is tuple:
            # Parity span: the test is the parity of pv plus every
            # partner.  Partners are skipped below both branches (they
            # sit above the children in the order) and can never be
            # pinned, so a lane whose span has *any* cube-free variable
            # reaches both branches — choosing the parity only
            # constrains variables that are never looked at again.
            # Lanes with every partner cube-known follow the partner
            # parity (kp = all partners known, xp = their parity).
            kp = full
            xp = 0
            for partner in sv:
                kp &= get_known(partner, 0)
                xp ^= get_bits(partner, 0)
            det0 = kp & ~xp & full
            det1 = kp & xp
            nb = full & ~kp
            any_e = e0 | e1 | ef
            any_o = o0 | o1 | of
            route(
                t_key, t_flip, 0, 0, 0, 0,
                (e0 & det1) | (e1 & det0) | (ef & kp) | (any_e & nb),
                (o0 & det1) | (o1 & det0) | (of & kp) | (any_o & nb),
            )
            route(
                f_key, f_flip, 0, 0, 0, 0,
                (e0 & det0) | (e1 & det1) | (ef & kp) | (any_e & nb),
                (o0 & det0) | (o1 & det1) | (of & kp) | (any_o & nb),
            )
            continue
        ks = get_known(sv, 0)
        ksv = ks & get_bits(sv, 0)
        ksnv = ks ^ ksv
        free_s = full & ~ks
        # t-branch (pv != sv): lanes whose sv the cube decides float on,
        # lanes with a free sv pin it to ~pv for the branch target.
        te0 = e1 & free_s
        to0 = o1 & free_s
        te1 = e0 & free_s
        to1 = o0 & free_s
        tef = (e0 & ksv) | (e1 & ksnv) | (ef & ks) | (ef & free_s)
        tof = (o0 & ksv) | (o1 & ksnv) | (of & ks) | (of & free_s)
        if t_pv != sv:
            # sv is skipped below this branch and can never be tested
            # again, so its pin is irrelevant: collapse to floating.
            tef |= te0 | te1
            tof |= to0 | to1
            te0 = to0 = te1 = to1 = 0
        route(t_key, t_flip, te0, to0, te1, to1, tef, tof)
        # f-branch (pv == sv).
        fe0 = e0 & free_s
        fo0 = o0 & free_s
        fe1 = e1 & free_s
        fo1 = o1 & free_s
        fef = (e0 & ksnv) | (e1 & ksv) | (ef & ks) | (ef & free_s)
        fof = (o0 & ksnv) | (o1 & ksv) | (of & ks) | (of & free_s)
        if f_pv != sv:
            fef |= fe0 | fe1
            fof |= fo0 | fo1
            fe0 = fo0 = fe1 = fo1 = 0
        route(f_key, f_flip, fe0, fo0, fe1, fo1, fef, fof)
    return sat_even, sat_odd


# ----------------------------------------------------------------------
# encoding mappings / columns against a manager
# ----------------------------------------------------------------------


def _resolve_keys(manager, keys, where: str) -> List[int]:
    """Map one key tuple to variable indices, rejecting duplicates."""
    indices = []
    seen = set()
    for key in keys:
        index = manager.var_index(key)
        if index in seen:
            raise duplicate_assignment_error(manager, index, where)
        seen.add(index)
        indices.append(index)
    return indices


def _missing_error(manager, missing, where: str) -> VariableError:
    names = ", ".join(manager.var_name(v) for v in sorted(missing))
    return VariableError(f"{where} misses support variable(s): {names}")


def _column_scan(run, start: int):
    """Slow path of one run: per-item validation with precise messages."""
    for offset, assignment in enumerate(run):
        for key, bit in assignment.items():
            check_assignment_bit(bit, key, f"assignment {start + offset}")
    raise BBDDError("batch encoding failed without an invalid value")


def encode_mappings(
    manager,
    batch: List[Mapping],
    support: Optional[frozenset] = None,
    with_known: bool = False,
) -> EncodedBatch:
    """Transpose assignment mappings into byte-lane bit columns.

    Consecutive assignments sharing one key tuple (the overwhelmingly
    common shape of a service batch) are validated once and transposed
    at C speed — ``zip(*values)`` + :func:`bytes` +
    :func:`int.from_bytes`; heterogeneous batches degrade to shorter
    runs, never to wrong answers.

    With ``support`` given, every assignment must cover it (missing
    variables raise :class:`~repro.core.exceptions.VariableError`
    naming them and the offending batch position).  With
    ``with_known=True`` the batch is treated as *cubes*: assignments
    may be partial and the per-variable constrained lanes are recorded
    in ``known_bits``.
    """
    count = len(batch)
    var_bits: Dict[int, int] = {}
    known_bits: Optional[Dict[int, int]] = {} if with_known else None
    try:
        sigs = list(map(tuple, batch))
    except TypeError:
        for i, assignment in enumerate(batch):
            if not isinstance(assignment, Mapping):
                raise TypeError(
                    f"assignment {i} must be a mapping, "
                    f"got {type(assignment).__name__}"
                ) from None
        raise
    start = 0
    while start < count:
        sig = sigs[start]
        stop = start + 1
        while stop < count and sigs[stop] == sig:
            stop += 1
        where = f"assignment {start}" if stop == start + 1 else (
            f"assignments {start}..{stop - 1}"
        )
        run = batch[start:stop]
        for offset, assignment in enumerate(run):
            # A non-mapping (e.g. a key tuple) can share a mapping's
            # key signature; reject it before any run-level error can
            # misattribute the problem.
            if not isinstance(assignment, Mapping):
                raise TypeError(
                    f"assignment {start + offset} must be a mapping, "
                    f"got {type(assignment).__name__}"
                )
        indices = _resolve_keys(manager, sig, where)
        if support is not None:
            missing = support.difference(indices)
            if missing:
                raise _missing_error(manager, missing, where)
        columns = zip(*(a.values() for a in run))
        shift = BYTE_LANE * start
        run_ones = lane_ones(stop - start) << shift
        made = 0
        for index, column in zip(indices, columns):
            made += 1
            try:
                raw = bytes(column)
            except (TypeError, ValueError):
                _column_scan(run, start)
                raise
            if raw.translate(None, _NOT_01) != raw:
                # Some value was an int outside 0/1; pinpoint it.
                for offset, byte in enumerate(raw):
                    if byte > 1:
                        check_assignment_bit(
                            byte, sig[made - 1], f"assignment {start + offset}"
                        )
            bits = int.from_bytes(raw, "little")
            if bits:
                var_bits[index] = var_bits.get(index, 0) | (bits << shift)
            if known_bits is not None:
                known_bits[index] = known_bits.get(index, 0) | run_ones
        start = stop
    return EncodedBatch(count, BYTE_LANE, var_bits, known_bits)


def encode_columns(
    manager,
    batch: ColumnBatch,
    support: Optional[frozenset] = None,
    with_known: bool = False,
) -> EncodedBatch:
    """Resolve a :class:`ColumnBatch` against a manager (stride 1)."""
    var_bits: Dict[int, int] = {}
    for key, bits in batch.columns.items():
        index = manager.var_index(key)
        if index in var_bits:
            raise VariableError(
                f"batch assigns variable {manager.var_name(index)!r} "
                "more than once"
            )
        var_bits[index] = bits
    if support is not None:
        missing = support.difference(var_bits)
        if missing:
            raise _missing_error(manager, missing, "batch")
    known_bits = None
    if with_known:
        full = (1 << batch.count) - 1
        known_bits = {index: full for index in var_bits}
    return EncodedBatch(batch.count, 1, var_bits, known_bits)


def _slice_encoded(batch: EncodedBatch, start: int, stop: int) -> EncodedBatch:
    """A lane-range view of an encoded batch (used for chunking)."""
    stride = batch.stride
    lo = start * stride
    mask = (1 << ((stop - start) * stride)) - 1
    var_bits = {}
    for var, bits in batch.var_bits.items():
        sliced = (bits >> lo) & mask
        if sliced:
            var_bits[var] = sliced
    known_bits = None
    if batch.known_bits is not None:
        known_bits = {
            var: (bits >> lo) & mask
            for var, bits in batch.known_bits.items()
            if (bits >> lo) & mask
        }
    return EncodedBatch(stop - start, stride, var_bits, known_bits)


def _encode(manager, assignments, support, with_known: bool) -> EncodedBatch:
    if isinstance(assignments, ColumnBatch):
        return encode_columns(manager, assignments, support, with_known)
    if isinstance(assignments, EncodedBatch):
        return assignments
    batch = assignments if isinstance(assignments, list) else list(assignments)
    return encode_mappings(manager, batch, support, with_known)


# ----------------------------------------------------------------------
# public batch queries
# ----------------------------------------------------------------------


def evaluate_batch(f, assignments, chunk: int = DEFAULT_CHUNK) -> List[bool]:
    """Evaluate ``f`` at every assignment with one sweep per chunk.

    ``assignments`` is an iterable of mappings (each must cover the
    function's support, like :meth:`FunctionBase.evaluate
    <repro.api.base.FunctionBase.evaluate>`) or a :class:`ColumnBatch`.
    Returns one ``bool`` per assignment, in order.  ``chunk`` bounds
    how many queries share one sweep (and therefore the cohort bitset
    sizes parked on the level frontier).
    """
    manager = f.manager
    edge = f.edge
    support = manager.support_edge(edge)
    encoded = _encode(manager, assignments, support, with_known=False)
    if encoded.count == 0:
        return []
    if manager.edge_is_sink(edge):
        return [not manager.edge_attr(edge)] * encoded.count
    results: List[bool] = []
    for start in range(0, encoded.count, chunk):
        stop = min(start + chunk, encoded.count)
        part = encoded if stop - start == encoded.count else _slice_encoded(
            encoded, start, stop
        )
        results.extend(manager.evaluate_batch_edges(edge, part))
    return results


def satisfiable_batch(f, assignments, chunk: int = DEFAULT_CHUNK) -> List[bool]:
    """For each partial assignment (cube): is ``f ∧ cube`` satisfiable?

    Assignments may constrain any subset of the variables; a query
    whose test variable is unconstrained at some node flows into both
    branches, so the whole batch still needs only one top-down sweep.
    ``f.satisfiable_batch([{}])`` is ``[not f.is_false]``.
    """
    manager = f.manager
    edge = f.edge
    encoded = _encode(manager, assignments, None, with_known=True)
    if encoded.count == 0:
        return []
    if manager.edge_is_sink(edge):
        return [not manager.edge_attr(edge)] * encoded.count
    results: List[bool] = []
    for start in range(0, encoded.count, chunk):
        stop = min(start + chunk, encoded.count)
        part = encoded if stop - start == encoded.count else _slice_encoded(
            encoded, start, stop
        )
        results.extend(manager.satisfiable_batch_edges(edge, part))
    return results
