"""Asyncio query front end: single queries coalesce into sweeps.

A :class:`BatchingServer` accepts *individual* queries (``await
server.query(name, assignment)``) and transparently merges everything
that arrives within a small latency budget into one batch per named
function, evaluated on a :class:`~repro.serve.pool.ForestPool` off the
event loop.  Interactive traffic therefore gets the amortized
``O(nodes + queries)`` cost of the levelized sweep while each caller
still sees a plain per-query future:

* the first query of a burst arms a flush timer (``batch_window``
  seconds);
* reaching ``max_batch`` pending queries flushes immediately;
* per-query wall-clock latencies land in the
  ``repro_serve_request_latency_seconds`` histogram (:mod:`repro.obs`),
  so deployments can watch the p50/p99 cost of the coalescing
  trade-off in bounded memory, and :meth:`BatchingServer.
  metrics_snapshot` merges the dispatcher's metrics with every pool
  worker's for one scrape-ready view.

:func:`serve_tcp` exposes the same surface over a newline-delimited
JSON TCP protocol (one request object per line, one response object per
line) — the transport behind ``python -m repro.serve``.
"""

from __future__ import annotations

import asyncio
import json
from typing import List, Mapping, Optional, Tuple

from repro import obs
from repro.obs.catalog import family as _metric
from repro.serve.bulk import ServeError
from repro.serve.pool import ForestPool


class BatchingServer:
    """Coalesce single queries against one forest into pool batches.

    Parameters
    ----------
    pool:
        The :class:`~repro.serve.pool.ForestPool` doing the evaluation.
    path:
        The ``.bbdd`` forest container served.
    batch_window:
        Seconds a query may wait for companions before its batch
        flushes (the latency budget of coalescing).
    max_batch:
        Pending-query count that triggers an immediate flush.
    """

    def __init__(
        self,
        pool: ForestPool,
        path,
        batch_window: float = 0.002,
        max_batch: int = 1024,
    ) -> None:
        if batch_window < 0:
            raise ServeError("batch_window must be >= 0")
        if max_batch < 1:
            raise ServeError("max_batch must be positive")
        self.pool = pool
        self.path = path
        self.batch_window = batch_window
        self.max_batch = max_batch
        self._pending: List[Tuple[str, Mapping, float, asyncio.Future]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        # Strong references to in-flight flush tasks: the event loop
        # keeps only weak ones, and a collected flush task would leave
        # every pending future unresolved.
        self._flush_tasks: set = set()
        self.queries = 0
        self.batches_flushed = 0
        # Event-driven metrics record straight into the global registry
        # (bounded memory — the old unbounded latency list is gone).
        registry = obs.REGISTRY
        self._latency_hist = _metric(
            registry, "repro_serve_request_latency_seconds"
        )
        self._batch_size_hist = _metric(registry, "repro_serve_batch_size")
        self._queue_depth = _metric(registry, "repro_serve_queue_depth")
        self._queries_total = _metric(registry, "repro_serve_queries_total")
        self._flushes_total = _metric(
            registry, "repro_serve_batches_flushed_total"
        )

    def warm(self) -> List[str]:
        """Pre-load the forest into every pool worker; root names."""
        return self.pool.warm(self.path)

    async def query(self, name: str, assignment: Mapping) -> bool:
        """Evaluate one assignment of the stored function ``name``.

        The call resolves when the query's batch does — at most
        ``batch_window`` seconds plus one pool round trip later.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((name, assignment, loop.time(), future))
        self.queries += 1
        self._queries_total.inc()
        self._queue_depth.set(len(self._pending))
        if len(self._pending) >= self.max_batch:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            self._spawn_flush(loop)
        elif self._timer is None:
            self._timer = loop.call_later(self.batch_window, self._flush_soon)
        return await future

    def _spawn_flush(self, loop) -> None:
        task = loop.create_task(self._flush())
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    def _flush_soon(self) -> None:
        self._timer = None
        self._spawn_flush(asyncio.get_running_loop())

    async def _flush(self) -> None:
        pending = self._pending
        if not pending:
            return
        self._pending = []
        self._queue_depth.set(0)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.batches_flushed += 1
        self._flushes_total.inc()
        loop = asyncio.get_running_loop()
        by_name: dict = {}
        for name, assignment, start, future in pending:
            by_name.setdefault(name, []).append((assignment, start, future))

        async def run_group(name: str, group: list) -> None:
            assignments = [assignment for assignment, _start, _future in group]
            self._batch_size_hist.labels(function=name).observe(len(group))
            try:
                values = await loop.run_in_executor(
                    None, self.pool.evaluate_batch, self.path, name, assignments
                )
            except Exception as exc:  # noqa: BLE001 - delivered per future
                for _assignment, _start, future in group:
                    if not future.done():
                        future.set_exception(
                            exc if isinstance(exc, ServeError) else ServeError(str(exc))
                        )
                return
            now = loop.time()
            observe = self._latency_hist.observe
            for (_assignment, start, future), value in zip(group, values):
                observe(now - start)
                if not future.done():
                    future.set_result(value)

        await asyncio.gather(
            *(run_group(name, group) for name, group in by_name.items())
        )

    async def p_one(self, name: str, weights: Optional[Mapping] = None) -> float:
        """``P[f = 1]`` of the stored function ``name`` (float mode).

        One weighted sweep on the pool (zero-copy against the shared
        segment where available), off the event loop.  ``weights`` maps
        variable names to ``P[x = 1]``; unlisted variables default to
        1/2.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self.pool.p_one, self.path, name, weights
        )

    async def marginals(
        self,
        name: str,
        weights: Optional[Mapping] = None,
        variables: Optional[List] = None,
    ) -> dict:
        """Posterior marginals ``P[x = 1 | f = 1]`` of ``name`` (float mode)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self.pool.marginals, self.path, name, weights, variables
        )

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of query latencies.

        Estimated from the ``repro_serve_request_latency_seconds``
        histogram buckets (PromQL-style linear interpolation), so the
        cost stays O(buckets) regardless of traffic volume.  ``q``
        outside 0..100 raises :class:`ServeError` — the interpolation
        would otherwise silently extrapolate past the bucket range and
        report a latency no query ever had.
        """
        if not 0 <= q <= 100:
            raise ServeError(f"percentile must be within 0..100, got {q!r}")
        if not self._latency_hist.count:
            return 0.0
        return self._latency_hist.quantile(q / 100.0)

    def stats(self) -> dict:
        """Coalescing counters plus the pool's dispatcher stats."""
        stats = {
            "queries": self.queries,
            "batches_flushed": self.batches_flushed,
            "mean_batch": (
                self.queries / self.batches_flushed if self.batches_flushed else 0.0
            ),
            "p50_latency_s": self.latency_percentile(50),
            "p99_latency_s": self.latency_percentile(99),
        }
        stats.update(self.pool.stats())
        return stats

    def metrics_snapshot(self) -> dict:
        """The merged metrics snapshot: this process plus pool workers.

        Local instrumentation (serve histograms, tracked managers and
        the inline host) comes from :func:`repro.obs.snapshot`; worker
        processes ship their own snapshots back over the pool's result
        channel and merge in.  Rendered by ``{"op": "metrics"}`` and the
        ``--metrics-port`` HTTP endpoint.
        """
        return obs.merge_snapshots(obs.snapshot(), *self.pool.metric_snapshots())


async def handle_client(server: BatchingServer, reader, writer, on_request=None) -> None:
    """Serve one TCP client speaking newline-delimited JSON.

    Requests: ``{"f": name, "assignment": {...}, "id": any?}``,
    ``{"op": "p_one", "f": name, "weights": {...}?}`` (the weighted
    probability ``P[f = 1]``),
    ``{"op": "marginals", "f": name, "weights": {...}?,
    "variables": [...]?}`` (posterior variable marginals),
    ``{"op": "stats"}`` or ``{"op": "metrics"}`` (the merged
    dispatcher + workers metrics snapshot); responses echo ``id`` and
    carry ``result`` or ``error``.  Each request line is handled as its own task, so a
    client that pipelines many queries on one connection still gets
    them coalesced into sweeps; responses may therefore interleave out
    of request order — correlate by ``id``.
    """
    write_lock = asyncio.Lock()
    tasks = set()

    async def answer(line: bytes) -> None:
        request_id = None
        try:
            request = json.loads(line)
            request_id = request.get("id")
            if request.get("op") == "stats":
                response = {"id": request_id, "result": server.stats()}
            elif request.get("op") == "metrics":
                response = {"id": request_id, "result": server.metrics_snapshot()}
            elif request.get("op") == "p_one":
                value = await server.p_one(request["f"], request.get("weights"))
                response = {"id": request_id, "result": value}
            elif request.get("op") == "marginals":
                value = await server.marginals(
                    request["f"],
                    request.get("weights"),
                    request.get("variables"),
                )
                response = {"id": request_id, "result": value}
            else:
                value = await server.query(
                    request["f"], request.get("assignment", {})
                )
                response = {"id": request_id, "result": value}
        except Exception as exc:  # noqa: BLE001 - reported to the client
            response = {"id": request_id, "error": f"{type(exc).__name__}: {exc}"}
        try:
            async with write_lock:
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionError, RuntimeError):  # client went away
            return
        if on_request is not None:
            on_request()

    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.CancelledError, ConnectionError):
                # Server shutdown (or client reset) while waiting for
                # the next request: end this connection quietly.
                break
            except ValueError:
                # Request line exceeded the stream limit (see
                # :func:`serve_tcp`); the line-based protocol cannot
                # resynchronize, so report and drop the connection.
                async with write_lock:
                    writer.write(
                        json.dumps(
                            {"id": None, "error": "ServeError: request line too long"}
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()
                break
            if not line:
                break
            task = asyncio.get_running_loop().create_task(answer(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
    finally:
        writer.close()


#: Per-line stream limit of the TCP front end: large enough for
#: queries over thousands of variables, finite so a garbage client
#: cannot buffer unboundedly.
TCP_LINE_LIMIT = 1 << 22


async def serve_tcp(
    server: BatchingServer,
    host: str = "127.0.0.1",
    port: int = 0,
    on_request=None,
    limit: int = TCP_LINE_LIMIT,
):
    """Start the TCP front end; returns the listening ``asyncio.Server``."""

    async def _handler(reader, writer):
        await handle_client(server, reader, writer, on_request=on_request)

    return await asyncio.start_server(_handler, host, port, limit=limit)
