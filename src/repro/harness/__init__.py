"""Experiment drivers reproducing the paper's tables and figures.

* :mod:`repro.harness.table1` — Table I: BBDD vs. baseline BDD package
  over the MCNC suite (node counts, build and sift times).
* :mod:`repro.harness.table2` — Table II: datapath synthesis case study.
* :mod:`repro.harness.figures` — Fig. 1 (biconditional expansion
  semantics) and Fig. 2 (CVO swap) validation/micro-benchmarks.
* :mod:`repro.harness.bulkeval` — looped vs batched (levelized-sweep)
  query throughput on a Table I circuit, any backend.
* :mod:`repro.harness.report` — plain-text table rendering with
  paper-vs-measured columns.
"""

from repro.harness.bulkeval import run_bulkeval
from repro.harness.table1 import run_table1
from repro.harness.table2 import run_table2

__all__ = ["run_table1", "run_table2", "run_bulkeval"]
