"""Table I: BBDD package vs. baseline BDD package over the MCNC suite.

Pipeline per benchmark (exactly the paper's protocol, Sec. IV-B): build
the decision diagrams bottom-up over the netlist using the initial
variable order provided by the benchmark file (here: the generator's
input order), record the build time; sift; record the sift time and the
final shared node count.  Run identically on both packages and summarize
the way the paper's Average row does: node reduction from the column
means, speed-up from the summed times.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.bdd.reorder import sift_bdd
from repro.circuits.registry import TABLE1_ROWS, Table1Row, full_profile
from repro.core.reorder import sift as sift_bbdd
from repro.harness.report import format_table
from repro.network.build import build_bbdd, build_bdd


class Table1Result:
    """Measurements for one benchmark on one package."""

    __slots__ = ("name", "nodes", "build_time", "sift_time", "manager", "functions")

    def __init__(
        self,
        name: str,
        nodes: int,
        build_time: float,
        sift_time: float,
        manager=None,
        functions=None,
    ) -> None:
        self.name = name
        self.nodes = nodes
        self.build_time = build_time
        self.sift_time = sift_time
        self.manager = manager
        self.functions = functions


def run_benchmark(
    network,
    package: str,
    sift: bool = True,
    max_swaps: Optional[int] = None,
) -> Table1Result:
    """Build-and-sift one benchmark on one package ("bbdd" or "bdd")."""
    t0 = time.perf_counter()
    if package == "bbdd":
        manager, functions = build_bbdd(network)
    elif package == "bdd":
        manager, functions = build_bdd(network)
    else:
        raise ValueError(f"unknown package {package!r}")
    build_time = time.perf_counter() - t0

    handles = list(functions.values())
    sift_time = 0.0
    if sift:
        t1 = time.perf_counter()
        if package == "bbdd":
            sift_bbdd(manager, max_swaps=max_swaps)
        else:
            sift_bdd(manager, max_swaps=max_swaps)
        sift_time = time.perf_counter() - t1
    nodes = manager.node_count(handles)
    return Table1Result(
        network.name, nodes, build_time, sift_time, manager=manager, functions=functions
    )


def run_table1(
    rows: Optional[Sequence[Table1Row]] = None,
    full: Optional[bool] = None,
    sift: bool = True,
    max_swaps: Optional[int] = None,
    verbose: bool = False,
    checkpoint_dir: Optional[str] = None,
) -> Dict:
    """Run the full Table I experiment; returns the result dictionary.

    With ``checkpoint_dir`` set, each benchmark's result row and BBDD
    forest are persisted there as they complete (see
    :class:`repro.io.checkpoint.CheckpointStore`), and rows with a
    stored result are reused instead of re-run — an interrupted run
    resumes where it stopped.
    """
    if rows is None:
        rows = TABLE1_ROWS
    if full is None:
        full = full_profile()
    store = None
    if checkpoint_dir is not None:
        from repro.io.checkpoint import CheckpointStore

        store = CheckpointStore(checkpoint_dir)
    # The key encodes every parameter the measurements depend on, so a
    # resume never reuses rows computed under different settings.
    settings = "full" if full else "fast"
    if not sift:
        settings += "-nosift"
    if max_swaps is not None:
        settings += f"-swaps{max_swaps}"
    results: List[dict] = []
    for row in rows:
        key = f"table1-{row.name}-{settings}"
        if store is not None:
            cached = store.load_result(key)
            if cached is not None:
                cached["cached"] = True
                results.append(cached)
                if verbose:
                    print(f"  {row.name:10s} [checkpoint] reusing stored result")
                continue
        network = row.build(full=full)
        bbdd = run_benchmark(network, "bbdd", sift=sift, max_swaps=max_swaps)
        bdd = run_benchmark(network, "bdd", sift=sift, max_swaps=max_swaps)
        record = {
            "name": row.name,
            "inputs": network.num_inputs,
            "outputs": network.num_outputs,
            "bbdd_nodes": bbdd.nodes,
            "bbdd_build": bbdd.build_time,
            "bbdd_sift": bbdd.sift_time,
            "bdd_nodes": bdd.nodes,
            "bdd_build": bdd.build_time,
            "bdd_sift": bdd.sift_time,
            "paper_bbdd_nodes": row.paper_bbdd_nodes,
            "paper_bdd_nodes": row.paper_bdd_nodes,
            "fidelity": row.fidelity,
            "cached": False,
        }
        if store is not None:
            store.save_forest(key, bbdd.manager, bbdd.functions)
            store.save_result(key, record)
        results.append(record)
        if verbose:
            print(
                f"  {row.name:10s} BBDD {bbdd.nodes:7d} nodes "
                f"({bbdd.build_time:.2f}s/{bbdd.sift_time:.2f}s)  "
                f"BDD {bdd.nodes:7d} nodes "
                f"({bdd.build_time:.2f}s/{bdd.sift_time:.2f}s)"
            )
    return summarize(results, full)


def summarize(results: List[dict], full: bool) -> Dict:
    mean = lambda key: sum(r[key] for r in results) / len(results)
    bbdd_nodes = mean("bbdd_nodes")
    bdd_nodes = mean("bdd_nodes")
    bbdd_time = sum(r["bbdd_build"] + r["bbdd_sift"] for r in results)
    bdd_time = sum(r["bdd_build"] + r["bdd_sift"] for r in results)
    node_reduction = 100.0 * (1.0 - bbdd_nodes / bdd_nodes) if bdd_nodes else 0.0
    speedup = (bdd_time / bbdd_time) if bbdd_time > 0 else float("inf")
    # Paper averages for reference.
    paper_bbdd = sum(r["paper_bbdd_nodes"] for r in results) / len(results)
    paper_bdd = sum(r["paper_bdd_nodes"] for r in results) / len(results)
    paper_reduction = 100.0 * (1.0 - paper_bbdd / paper_bdd)
    return {
        "rows": results,
        "profile": "paper-scale" if full else "fast",
        "avg_bbdd_nodes": bbdd_nodes,
        "avg_bdd_nodes": bdd_nodes,
        "node_reduction_pct": node_reduction,
        "total_bbdd_time": bbdd_time,
        "total_bdd_time": bdd_time,
        "speedup": speedup,
        "paper_node_reduction_pct": paper_reduction,
        "paper_speedup": 1.63,
    }


def render_table1(summary: Dict) -> str:
    headers = [
        "Benchmark", "In", "Out",
        "BBDD nodes", "BBDD build(s)", "BBDD sift(s)",
        "BDD nodes", "BDD build(s)", "BDD sift(s)",
    ]
    rows = [
        [
            r["name"], r["inputs"], r["outputs"],
            r["bbdd_nodes"], r["bbdd_build"], r["bbdd_sift"],
            r["bdd_nodes"], r["bdd_build"], r["bdd_sift"],
        ]
        for r in summary["rows"]
    ]
    rows.append(
        [
            "Average", "", "",
            round(summary["avg_bbdd_nodes"], 1), "", "",
            round(summary["avg_bdd_nodes"], 1), "", "",
        ]
    )
    table = format_table(
        headers,
        rows,
        title=f"Table I reproduction ({summary['profile']} profile)",
    )
    footer = (
        f"\nnode reduction: {summary['node_reduction_pct']:.2f}% "
        f"(paper: {summary['paper_node_reduction_pct']:.2f}% on its suite; "
        f"headline 19.48%)"
        f"\nspeed-up (BDD time / BBDD time): {summary['speedup']:.2f}x "
        f"(paper: 1.63x)"
    )
    return table + footer


def main(argv: Optional[Sequence[str]] = None) -> None:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(description="Reproduce Table I.")
    parser.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="persist per-benchmark results and BBDD forests in DIR and "
        "resume from them on re-runs",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale benchmark profile (default: fast; REPRO_FULL=1 also works)",
    )
    parser.add_argument("--no-sift", action="store_true", help="skip the sifting stage")
    args = parser.parse_args(argv)
    summary = run_table1(
        full=True if args.full else None,
        sift=not args.no_sift,
        verbose=True,
        checkpoint_dir=args.checkpoint,
    )
    print(render_table1(summary))


if __name__ == "__main__":  # pragma: no cover
    main()
