"""Table I: BBDD package vs. baseline BDD package over the MCNC suite.

Pipeline per benchmark (exactly the paper's protocol, Sec. IV-B): build
the decision diagrams bottom-up over the netlist using the initial
variable order provided by the benchmark file (here: the generator's
input order), record the build time; sift; record the sift time and the
final shared node count.  Every package runs through the **identical
code path** — the :mod:`repro.api` protocol (``repro.network.build.build``
with a backend name, ``manager.sift``, ``manager.node_count``) — so the
comparison measures the representations, not the drivers.  ``--backend``
selects which packages run (``bbdd``, ``bdd``, or ``both``); the summary
mirrors the paper's Average row: node reduction from the column means,
speed-up from the summed times.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.registry import TABLE1_ROWS, Table1Row, full_profile
from repro.harness.report import format_table
from repro.network.build import build

#: Backends compared by default (the paper's Table I pairing).
DEFAULT_BACKENDS: Tuple[str, ...] = ("bbdd", "bdd")


class Table1Result:
    """Measurements for one benchmark on one package."""

    __slots__ = ("name", "nodes", "build_time", "sift_time", "manager", "functions")

    def __init__(
        self,
        name: str,
        nodes: int,
        build_time: float,
        sift_time: float,
        manager=None,
        functions=None,
    ) -> None:
        self.name = name
        self.nodes = nodes
        self.build_time = build_time
        self.sift_time = sift_time
        self.manager = manager
        self.functions = functions


def _debug_check(manager, handles) -> None:
    """``REPRO_CHECK=1``: walk the store arrays after a pipeline stage.

    Validates the canonical-form invariants (no dangling child indices,
    R1/R2/R4, ``=``-edge regularity) plus the reference counters against
    a full parent scan with ``handles`` as the only external holders.
    Backends without the debug walkers are skipped.
    """
    if os.environ.get("REPRO_CHECK", "0") in ("", "0"):
        return
    check = getattr(manager, "check_invariants", None)
    if check is not None:
        check()
    scan = getattr(manager, "check_ref_counts", None)
    if scan is not None:
        scan([f.edge for f in handles])


def run_benchmark(
    network,
    package: str,
    sift: bool = True,
    max_swaps: Optional[int] = None,
) -> Table1Result:
    """Build-and-sift one benchmark on one package (any registered backend)."""
    t0 = time.perf_counter()
    manager, functions = build(network, backend=package)
    build_time = time.perf_counter() - t0

    handles = list(functions.values())
    _debug_check(manager, handles)
    sift_time = 0.0
    if sift and getattr(manager, "supports_sift", True):
        # Backends without dynamic reordering (xmem keeps canonical
        # levelized files for one fixed order) skip the sifting stage.
        t1 = time.perf_counter()
        manager.sift(max_swaps=max_swaps)
        sift_time = time.perf_counter() - t1
        _debug_check(manager, handles)
    nodes = manager.node_count(handles)
    return Table1Result(
        network.name, nodes, build_time, sift_time, manager=manager, functions=functions
    )


def run_table1(
    rows: Optional[Sequence[Table1Row]] = None,
    full: Optional[bool] = None,
    sift: bool = True,
    max_swaps: Optional[int] = None,
    verbose: bool = False,
    checkpoint_dir: Optional[str] = None,
    backends: Sequence[str] = DEFAULT_BACKENDS,
) -> Dict:
    """Run the Table I experiment; returns the result dictionary.

    ``backends`` selects the packages under test (default: both, the
    paper's comparison).  With ``checkpoint_dir`` set, each benchmark's
    result row and BBDD forest are persisted there as they complete (see
    :class:`repro.io.checkpoint.CheckpointStore`), and rows with a
    stored result are reused instead of re-run — an interrupted run
    resumes where it stopped.
    """
    backends = tuple(backends)
    if rows is None:
        rows = TABLE1_ROWS
    if full is None:
        full = full_profile()
    store = None
    if checkpoint_dir is not None:
        from repro.io.checkpoint import CheckpointStore

        store = CheckpointStore(checkpoint_dir)
    # The key encodes every parameter the measurements depend on, so a
    # resume never reuses rows computed under different settings.
    settings = "full" if full else "fast"
    if not sift:
        settings += "-nosift"
    if max_swaps is not None:
        settings += f"-swaps{max_swaps}"
    if backends != DEFAULT_BACKENDS:
        settings += "-" + "+".join(backends)
    results: List[dict] = []
    for row in rows:
        key = f"table1-{row.name}-{settings}"
        if store is not None:
            cached = store.load_result(key)
            if cached is not None:
                cached["cached"] = True
                results.append(cached)
                if verbose:
                    print(f"  {row.name:10s} [checkpoint] reusing stored result")
                continue
        network = row.build(full=full)
        record = {
            "name": row.name,
            "inputs": network.num_inputs,
            "outputs": network.num_outputs,
            "paper_bbdd_nodes": row.paper_bbdd_nodes,
            "paper_bdd_nodes": row.paper_bdd_nodes,
            "fidelity": row.fidelity,
            "cached": False,
        }
        bbdd_result = None
        for backend in backends:
            measured = run_benchmark(network, backend, sift=sift, max_swaps=max_swaps)
            record[f"{backend}_nodes"] = measured.nodes
            record[f"{backend}_build"] = measured.build_time
            record[f"{backend}_sift"] = measured.sift_time
            if backend == "bbdd":
                bbdd_result = measured
        if store is not None:
            if bbdd_result is not None:
                store.save_forest(key, bbdd_result.manager, bbdd_result.functions)
            store.save_result(key, record)
        results.append(record)
        if verbose:
            parts = [f"  {row.name:10s}"]
            for backend in backends:
                parts.append(
                    f"{backend.upper()} {record[f'{backend}_nodes']:7d} nodes "
                    f"({record[f'{backend}_build']:.2f}s/"
                    f"{record[f'{backend}_sift']:.2f}s)"
                )
            print("  ".join(parts))
    return summarize(results, full, backends=backends)


def summarize(
    results: List[dict],
    full: bool,
    backends: Sequence[str] = DEFAULT_BACKENDS,
) -> Dict:
    backends = tuple(backends)
    mean = lambda key: sum(r[key] for r in results) / len(results)
    summary: Dict = {
        "rows": results,
        "profile": "paper-scale" if full else "fast",
        "backends": list(backends),
    }
    for backend in backends:
        summary[f"avg_{backend}_nodes"] = mean(f"{backend}_nodes")
        summary[f"total_{backend}_time"] = sum(
            r[f"{backend}_build"] + r[f"{backend}_sift"] for r in results
        )
    if "bbdd" in backends and "bdd" in backends:
        bbdd_nodes = summary["avg_bbdd_nodes"]
        bdd_nodes = summary["avg_bdd_nodes"]
        bbdd_time = summary["total_bbdd_time"]
        bdd_time = summary["total_bdd_time"]
        summary["node_reduction_pct"] = (
            100.0 * (1.0 - bbdd_nodes / bdd_nodes) if bdd_nodes else 0.0
        )
        summary["speedup"] = (bdd_time / bbdd_time) if bbdd_time > 0 else float("inf")
        # Paper averages for reference.
        paper_bbdd = mean("paper_bbdd_nodes")
        paper_bdd = mean("paper_bdd_nodes")
        summary["paper_node_reduction_pct"] = 100.0 * (1.0 - paper_bbdd / paper_bdd)
        summary["paper_speedup"] = 1.63
    return summary


def render_table1(summary: Dict) -> str:
    backends = tuple(summary.get("backends", DEFAULT_BACKENDS))
    headers = ["Benchmark", "In", "Out"]
    for backend in backends:
        tag = backend.upper()
        headers += [f"{tag} nodes", f"{tag} build(s)", f"{tag} sift(s)"]
    rows = []
    for r in summary["rows"]:
        row = [r["name"], r["inputs"], r["outputs"]]
        for backend in backends:
            row += [
                r[f"{backend}_nodes"],
                r[f"{backend}_build"],
                r[f"{backend}_sift"],
            ]
        rows.append(row)
    average = ["Average", "", ""]
    for backend in backends:
        average += [round(summary[f"avg_{backend}_nodes"], 1), "", ""]
    rows.append(average)
    table = format_table(
        headers,
        rows,
        title=f"Table I reproduction ({summary['profile']} profile)",
    )
    if "node_reduction_pct" in summary:
        footer = (
            f"\nnode reduction: {summary['node_reduction_pct']:.2f}% "
            f"(paper: {summary['paper_node_reduction_pct']:.2f}% on its suite; "
            f"headline 19.48%)"
            f"\nspeed-up (BDD time / BBDD time): {summary['speedup']:.2f}x "
            f"(paper: 1.63x)"
        )
    else:
        backend = backends[0]
        footer = (
            f"\nsingle-backend run ({backend}): "
            f"total time {summary[f'total_{backend}_time']:.2f}s, "
            f"avg nodes {summary[f'avg_{backend}_nodes']:.1f}"
        )
    return table + footer


def main(argv: Optional[Sequence[str]] = None) -> None:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(description="Reproduce Table I.")
    parser.add_argument(
        "--backend",
        choices=["bbdd", "bdd", "xmem", "both"],
        default="both",
        help="package(s) under test; both compare the in-core pair "
        "through the identical repro.api code path (default: both); "
        "xmem drives the external-memory backend (no sifting stage)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="persist per-benchmark results and BBDD forests in DIR and "
        "resume from them on re-runs",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale benchmark profile (default: fast; REPRO_FULL=1 also works)",
    )
    parser.add_argument("--no-sift", action="store_true", help="skip the sifting stage")
    from repro.harness.report import add_stats_argument, emit_stats

    add_stats_argument(parser)
    args = parser.parse_args(argv)
    if args.stats is not None:
        from repro.obs import trace

        trace.enable()
    backends = DEFAULT_BACKENDS if args.backend == "both" else (args.backend,)
    summary = run_table1(
        full=True if args.full else None,
        sift=not args.no_sift,
        verbose=True,
        checkpoint_dir=args.checkpoint,
        backends=backends,
    )
    print(render_table1(summary))
    emit_stats(args.stats)


if __name__ == "__main__":  # pragma: no cover
    main()
