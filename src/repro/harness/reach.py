"""Differential reachability harness: symbolic fixpoints vs explicit BFS.

``python -m repro.harness.reach`` sweeps the benchmark FSM families of
:mod:`repro.reach.models` across backends, runs the symbolic
breadth-first fixpoint (:func:`repro.reach.reachable`, fused
``and_exists`` images) and — at checkable sizes — the explicit-state
oracle (:func:`repro.reach.explicit_reachable`), and cross-checks the
reachable state sets code for code.  Any divergence is a correctness
failure, not a statistic.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.reach import explicit_reachable, from_network, models, reachable

#: Backends swept by default (xmem exercises the external-memory path).
DEFAULT_BACKENDS = ("bbdd", "bdd", "xmem")

#: Largest state-bit count the explicit oracle is asked to enumerate.
ORACLE_LIMIT = 14


def model_suite(full: bool = False) -> List:
    """The benchmark FSM instances for one harness run."""
    if full:
        sizes = [8, 12, 16]
    else:
        sizes = [4, 6, 8]
    nets = []
    for bits in sizes:
        nets.append(models.counter(bits))
        nets.append(models.lfsr(bits))
        nets.append(models.cellular_automaton(bits))
    return nets


def run_reach(
    networks: Optional[Sequence] = None,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    full: bool = False,
    verbose: bool = False,
) -> Dict:
    """Run the differential sweep; returns the result dictionary.

    Per network and backend: fixpoint iterations, reachable-state count,
    peak diagram sizes and wall time.  Networks within the oracle limit
    are additionally checked against explicit BFS — a mismatch raises
    ``AssertionError`` immediately.
    """
    if networks is None:
        networks = model_suite(full)
    rows: List[dict] = []
    for network in networks:
        bits = len(network.latches)
        oracle = None
        oracle_time = 0.0
        if bits <= ORACLE_LIMIT:
            t0 = time.perf_counter()
            oracle = explicit_reachable(network)
            oracle_time = time.perf_counter() - t0
        record = {
            "name": network.name,
            "bits": bits,
            "oracle_states": len(oracle) if oracle is not None else None,
            "oracle_time": oracle_time,
            "checked": oracle is not None,
        }
        for backend in backends:
            system = from_network(network, backend=backend)
            t0 = time.perf_counter()
            result = reachable(system)
            elapsed = time.perf_counter() - t0
            record[f"{backend}_states"] = result.state_count
            record[f"{backend}_iterations"] = result.iterations
            record[f"{backend}_peak_nodes"] = result.visited_peak
            record[f"{backend}_time"] = elapsed
            if oracle is not None:
                codes = system.state_codes(result.states)
                assert codes == oracle, (
                    f"{network.name}/{backend}: symbolic reachable set "
                    f"({len(codes)} states) != explicit BFS ({len(oracle)})"
                )
        rows.append(record)
        if verbose:
            parts = [f"  {record['name']:12s} {bits:3d} bits"]
            for backend in backends:
                parts.append(
                    f"{backend} {record[f'{backend}_states']:6d} states/"
                    f"{record[f'{backend}_iterations']:3d} it "
                    f"({record[f'{backend}_time']:.3f}s)"
                )
            parts.append("checked" if record["checked"] else "symbolic-only")
            print("  ".join(parts))
    return {
        "rows": rows,
        "backends": list(backends),
        "checked": sum(1 for r in rows if r["checked"]),
        "profile": "full" if full else "fast",
    }


def render_reach(summary: Dict) -> str:
    """Human-readable table for one harness run."""
    from repro.harness.report import format_table

    backends = summary["backends"]
    headers = ["Model", "Bits", "Oracle"]
    for backend in backends:
        headers += [f"{backend} states", f"{backend} iters", f"{backend} s"]
    rows = []
    for r in summary["rows"]:
        row = [r["name"], r["bits"], r["oracle_states"] if r["checked"] else "-"]
        for backend in backends:
            row += [
                r[f"{backend}_states"],
                r[f"{backend}_iterations"],
                round(r[f"{backend}_time"], 3),
            ]
        rows.append(row)
    table = format_table(
        headers,
        rows,
        title=f"Reachability differential sweep ({summary['profile']} profile)",
    )
    footer = (
        f"\n{summary['checked']}/{len(summary['rows'])} models verified "
        f"against the explicit-state oracle"
    )
    return table + footer


def main(argv: Optional[Sequence[str]] = None) -> None:  # pragma: no cover
    """CLI entry: ``python -m repro.harness.reach``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Differential symbolic-vs-explicit reachability sweep."
    )
    parser.add_argument(
        "--backend",
        choices=["bbdd", "bdd", "xmem", "all"],
        default="all",
        help="backend(s) under test (default: all three)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="larger FSM profile (up to 16 state bits; symbolic-only at the top)",
    )
    from repro.harness.report import add_stats_argument, emit_stats

    add_stats_argument(parser)
    args = parser.parse_args(argv)
    if args.stats is not None:
        from repro.obs import trace

        trace.enable()
    backends = DEFAULT_BACKENDS if args.backend == "all" else (args.backend,)
    summary = run_reach(backends=backends, full=args.full, verbose=True)
    print(render_reach(summary))
    emit_stats(args.stats)


if __name__ == "__main__":  # pragma: no cover
    main()
