"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    cells: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01:
            return "<0.01"
        return f"{value:.2f}"
    return str(value)


def ratio_summary(name: str, ours: float, paper: float, unit: str = "") -> str:
    """One-line paper-vs-measured comparison."""
    return (
        f"{name}: measured {ours:.2f}{unit} (paper reports {paper:.2f}{unit})"
    )


def add_stats_argument(parser) -> None:
    """Add the shared ``--stats [PATH]`` harness flag to ``parser``.

    With the flag, span tracing (:mod:`repro.obs.trace`) is on for the
    run and the final metrics snapshot is reported — pretty-printed to
    stdout, or dumped as JSON when a ``PATH`` argument is given.
    """
    parser.add_argument(
        "--stats",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="enable span tracing and report the repro.obs metrics "
        "snapshot after the run (to stdout, or as JSON to PATH)",
    )


def emit_stats(destination) -> None:
    """Report the metrics snapshot per a ``--stats`` value.

    ``None`` does nothing; ``"-"`` pretty-prints to stdout; any other
    string is a path that receives the snapshot as JSON.
    """
    if destination is None:
        return
    from repro import obs

    snap = obs.snapshot()
    if destination == "-":
        print("\n-- repro.obs snapshot " + "-" * 38)
        print(obs.report(snap))
    else:
        import json

        with open(destination, "w", encoding="utf-8") as fileobj:
            json.dump(snap, fileobj, indent=2, sort_keys=True)
            fileobj.write("\n")
        print(f"metrics snapshot written to {destination}")
