"""Bulk-evaluation harness: looped vs batched query throughput.

Builds one Table I benchmark circuit on the selected backend, draws a
random query workload over each output's support, and measures three
serving strategies per output:

* **loop** — ``f.evaluate`` per assignment (one walk per query);
* **batch** — ``f.evaluate_batch`` on mapping input (transpose + sweep);
* **columnar** — ``f.evaluate_batch`` on a pre-packed
  :class:`~repro.serve.bulk.ColumnBatch` (sweep only).

Run it standalone::

    python -m repro.harness.bulkeval --circuit C1908 --queries 10000
    python -m repro.harness.bulkeval --backend xmem --outputs 3
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence

from repro.circuits.registry import TABLE1_ROWS
from repro.harness.report import format_table
from repro.network.build import build
from repro.serve.bulk import ColumnBatch


def run_bulkeval(
    circuit: str = "C1908",
    backend: str = "bbdd",
    queries: int = 10_000,
    outputs: Optional[int] = None,
    full: bool = False,
    seed: int = 0xB00C,
) -> Dict:
    """Measure looped vs batched evaluation on one circuit; result dict.

    ``outputs`` caps how many output functions are measured (largest
    node counts first; default: all).  Returns per-output rows plus the
    aggregate speedups.
    """
    row = next((r for r in TABLE1_ROWS if r.name.lower() == circuit.lower()), None)
    if row is None:
        names = ", ".join(r.name for r in TABLE1_ROWS)
        raise ValueError(f"unknown circuit {circuit!r}; available: {names}")
    network = row.build(full=full)
    manager, functions = build(network, backend=backend)
    measured = sorted(
        functions.items(), key=lambda item: item[1].node_count(), reverse=True
    )
    if outputs is not None:
        measured = measured[:outputs]
    rng = random.Random(seed)
    rows: List[dict] = []
    totals = {"loop": 0.0, "batch": 0.0, "columnar": 0.0}
    for name, f in measured:
        support = sorted(f.support())
        columns = {var: rng.getrandbits(queries) for var in support}
        batch = ColumnBatch(columns, queries)
        assignments = [
            {var: bool((columns[var] >> i) & 1) for var in support}
            for i in range(queries)
        ]
        t0 = time.perf_counter()
        looped = [f.evaluate(assignment) for assignment in assignments]
        t_loop = time.perf_counter() - t0
        t0 = time.perf_counter()
        from_mappings = f.evaluate_batch(assignments)
        t_batch = time.perf_counter() - t0
        t0 = time.perf_counter()
        from_columns = f.evaluate_batch(batch)
        t_columnar = time.perf_counter() - t0
        if from_mappings != looped or from_columns != looped:
            raise AssertionError(f"batched results diverge on output {name!r}")
        totals["loop"] += t_loop
        totals["batch"] += t_batch
        totals["columnar"] += t_columnar
        rows.append(
            {
                "output": name,
                "nodes": f.node_count(),
                "support": len(support),
                "loop_s": t_loop,
                "batch_s": t_batch,
                "columnar_s": t_columnar,
                "batch_speedup": t_loop / t_batch if t_batch else float("inf"),
                "columnar_speedup": (
                    t_loop / t_columnar if t_columnar else float("inf")
                ),
            }
        )
    return {
        "circuit": row.name,
        "backend": backend,
        "queries": queries,
        "rows": rows,
        "total_loop_s": totals["loop"],
        "total_batch_s": totals["batch"],
        "total_columnar_s": totals["columnar"],
        "batch_speedup": (
            totals["loop"] / totals["batch"] if totals["batch"] else float("inf")
        ),
        "columnar_speedup": (
            totals["loop"] / totals["columnar"]
            if totals["columnar"]
            else float("inf")
        ),
    }


def render_bulkeval(summary: Dict) -> str:
    """Render a :func:`run_bulkeval` summary as an ASCII table."""
    headers = [
        "Output", "Nodes", "Vars", "Loop(s)", "Batch(s)", "Columnar(s)",
        "Batch x", "Columnar x",
    ]
    rows = [
        [
            r["output"], r["nodes"], r["support"],
            round(r["loop_s"], 4), round(r["batch_s"], 4),
            round(r["columnar_s"], 4),
            round(r["batch_speedup"], 1), round(r["columnar_speedup"], 1),
        ]
        for r in summary["rows"]
    ]
    table = format_table(
        headers,
        rows,
        title=(
            f"Bulk evaluation: {summary['circuit']} on {summary['backend']} "
            f"({summary['queries']} queries/output)"
        ),
    )
    footer = (
        f"\noverall speedup vs looped evaluate: "
        f"{summary['batch_speedup']:.1f}x from mappings, "
        f"{summary['columnar_speedup']:.1f}x columnar"
    )
    return table + footer


def main(argv: Optional[Sequence[str]] = None) -> None:  # pragma: no cover
    """CLI entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Measure looped vs batched (levelized-sweep) evaluation."
    )
    parser.add_argument("--circuit", default="C1908", help="Table I circuit name")
    parser.add_argument(
        "--backend", default="bbdd", help="backend under test (bbdd/bdd/xmem)"
    )
    parser.add_argument("--queries", type=int, default=10_000)
    parser.add_argument(
        "--outputs", type=int, default=4, help="measure the N largest outputs"
    )
    parser.add_argument(
        "--full", action="store_true", help="paper-scale circuit profile"
    )
    from repro.harness.report import add_stats_argument, emit_stats

    add_stats_argument(parser)
    args = parser.parse_args(argv)
    if args.stats is not None:
        from repro.obs import trace

        trace.enable()
    summary = run_bulkeval(
        circuit=args.circuit,
        backend=args.backend,
        queries=args.queries,
        outputs=args.outputs,
        full=args.full,
    )
    print(render_bulkeval(summary))
    emit_stats(args.stats)


if __name__ == "__main__":  # pragma: no cover
    main()
