"""Table II: BBDD-based datapath synthesis vs. the conventional flow.

Per benchmark: run :func:`repro.synth.flow.baseline_flow` (the commercial
flow substitute) and :func:`repro.synth.flow.bbdd_flow` (BBDD front-end +
the same downstream machinery), assert functional equivalence of both
mapped netlists against the RTL, and report Area / Delay / Gate Count per
flow with the paper's Average-row deltas.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.circuits.registry import TABLE2_ROWS, Table2Row, full_profile
from repro.harness.report import format_table
from repro.synth.flow import baseline_flow, bbdd_flow
from repro.synth.library import default_library


def run_table2(
    rows: Optional[Sequence[Table2Row]] = None,
    full: Optional[bool] = None,
    check_equivalence: bool = True,
    verbose: bool = False,
    checkpoint_dir: Optional[str] = None,
    backend: str = "bbdd",
) -> Dict:
    """Run the Table II experiment; returns the result dictionary.

    ``backend`` names the :mod:`repro.api` package driving the front-end
    forest (the comparator/majority rewriting is BBDD-structural, so
    other backends exercise the protocol path and fall back to the
    designer's structure for mapping).  With ``checkpoint_dir`` set,
    each datapath's result row and front-end forest are persisted as
    they complete and re-runs reuse stored rows (see
    :class:`repro.io.checkpoint.CheckpointStore`).
    """
    if rows is None:
        rows = TABLE2_ROWS
    if full is None:
        full = full_profile()
    store = None
    if checkpoint_dir is not None:
        from repro.io.checkpoint import CheckpointStore

        store = CheckpointStore(checkpoint_dir)
    # Key in every parameter the measurements depend on (see table1).
    settings = "full" if full else "fast"
    if not check_equivalence:
        settings += "-nocheck"
    if backend != "bbdd":
        settings += f"-{backend}"
    library = default_library()
    results: List[dict] = []
    for row in rows:
        key = f"table2-{row.name}-{settings}"
        if store is not None:
            cached = store.load_result(key)
            if cached is not None:
                cached["cached"] = True
                results.append(cached)
                if verbose:
                    print(f"  {row.name:13s} [checkpoint] reusing stored result")
                continue
        rtl = row.build(full=full)
        base = baseline_flow(rtl, library, check_equivalence=check_equivalence)
        bbdd = bbdd_flow(
            rtl,
            library,
            check_equivalence=check_equivalence,
            keep_forest=store is not None,
            backend=backend,
        )
        # The dd-flow column keeps its historical "bbdd_*" keys for
        # checkpoint compatibility; "backend" records which package
        # actually produced it (render uses it for the column titles).
        record = {
            "name": row.name,
            "inputs": rtl.num_inputs,
            "outputs": rtl.num_outputs,
            "backend": backend,
            "bbdd_area": bbdd.area,
            "bbdd_delay": bbdd.delay_ns,
            "bbdd_gates": bbdd.gate_count,
            "bbdd_equivalent": bbdd.equivalent,
            "base_area": base.area,
            "base_delay": base.delay_ns,
            "base_gates": base.gate_count,
            "base_equivalent": base.equivalent,
            "paper_bbdd": row.paper_bbdd,
            "paper_commercial": row.paper_commercial,
            "cached": False,
        }
        if store is not None:
            if bbdd.forest is not None:
                manager, functions = bbdd.forest
                store.save_forest(key, manager, functions)
            store.save_result(key, record)
        results.append(record)
        if verbose:
            print(
                f"  {row.name:13s} BBDD {bbdd.area:8.2f}um2 {bbdd.delay_ns:6.3f}ns "
                f"{bbdd.gate_count:5d}g | base {base.area:8.2f}um2 "
                f"{base.delay_ns:6.3f}ns {base.gate_count:5d}g"
            )
    return summarize(results, full)


def summarize(results: List[dict], full: bool) -> Dict:
    mean = lambda key: sum(r[key] for r in results) / len(results)
    bbdd_area, base_area = mean("bbdd_area"), mean("base_area")
    bbdd_delay, base_delay = mean("bbdd_delay"), mean("base_delay")
    bbdd_gates, base_gates = mean("bbdd_gates"), mean("base_gates")
    return {
        "rows": results,
        "profile": "paper-scale" if full else "fast",
        "backend": results[0].get("backend", "bbdd") if results else "bbdd",
        "avg_bbdd_area": bbdd_area,
        "avg_base_area": base_area,
        "avg_bbdd_delay": bbdd_delay,
        "avg_base_delay": base_delay,
        "avg_bbdd_gates": bbdd_gates,
        "avg_base_gates": base_gates,
        "area_reduction_pct": 100.0 * (1.0 - bbdd_area / base_area),
        "delay_reduction_pct": 100.0 * (1.0 - bbdd_delay / base_delay),
        "paper_area_reduction_pct": 11.02,
        "paper_delay_reduction_pct": 32.29,
        "all_equivalent": all(
            r["bbdd_equivalent"] and r["base_equivalent"] for r in results
        ),
    }


def render_table2(summary: Dict) -> str:
    tag = summary.get("backend", "bbdd").upper()
    headers = [
        "Benchmark", "In", "Out",
        f"{tag} area", f"{tag} delay", f"{tag} gates",
        "Comm area", "Comm delay", "Comm gates",
    ]
    rows = [
        [
            r["name"], r["inputs"], r["outputs"],
            round(r["bbdd_area"], 2), round(r["bbdd_delay"], 3), r["bbdd_gates"],
            round(r["base_area"], 2), round(r["base_delay"], 3), r["base_gates"],
        ]
        for r in summary["rows"]
    ]
    rows.append(
        [
            "Average", "", "",
            round(summary["avg_bbdd_area"], 2),
            round(summary["avg_bbdd_delay"], 3),
            round(summary["avg_bbdd_gates"], 1),
            round(summary["avg_base_area"], 2),
            round(summary["avg_base_delay"], 3),
            round(summary["avg_base_gates"], 1),
        ]
    )
    table = format_table(
        headers,
        rows,
        title=f"Table II reproduction ({summary['profile']} profile)",
    )
    footer = (
        f"\narea reduction: {summary['area_reduction_pct']:.2f}% "
        f"(paper: 11.02%)"
        f"\ndelay reduction: {summary['delay_reduction_pct']:.2f}% "
        f"(paper: 32.29%)"
        f"\nall netlists equivalence-checked: {summary['all_equivalent']}"
    )
    return table + footer


def main(argv: Optional[Sequence[str]] = None) -> None:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(description="Reproduce Table II.")
    parser.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="persist per-datapath results and front-end BBDD forests in DIR "
        "and resume from them on re-runs",
    )
    parser.add_argument(
        "--backend",
        choices=["bbdd", "bdd"],
        default="bbdd",
        help="repro.api backend driving the front-end forest (the "
        "comparator/majority rewriting is BBDD-structural; other "
        "backends exercise the protocol path)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale datapath widths (default: fast; REPRO_FULL=1 also works)",
    )
    from repro.harness.report import add_stats_argument, emit_stats

    add_stats_argument(parser)
    args = parser.parse_args(argv)
    if args.stats is not None:
        from repro.obs import trace

        trace.enable()
    summary = run_table2(
        full=True if args.full else None,
        verbose=True,
        checkpoint_dir=args.checkpoint,
        backend=args.backend,
    )
    print(render_table2(summary))
    emit_stats(args.stats)


if __name__ == "__main__":  # pragma: no cover
    main()
