"""Symbolic reachability: transition systems, fixpoints and oracles.

The second first-class query family (with :mod:`repro.wmc`) layered on
the shared backend protocol: :func:`from_network` turns a sequential
:class:`~repro.network.network.LogicNetwork` into a symbolic
:class:`TransitionSystem`, :func:`reachable` drives the breadth-first
least fixpoint through fused
:meth:`~repro.api.base.FunctionBase.and_exists` relational products,
and :mod:`repro.reach.oracle` / :mod:`repro.reach.models` supply the
explicit-state ground truth and benchmark FSMs for the differential
test harness.
"""

from repro.reach import models
from repro.reach.fixpoint import ReachResult, reachable
from repro.reach.oracle import explicit_reachable, initial_codes
from repro.reach.transition import (
    ReachError,
    TransitionSystem,
    from_network,
    primed,
)

__all__ = [
    "ReachError",
    "ReachResult",
    "TransitionSystem",
    "explicit_reachable",
    "from_network",
    "initial_codes",
    "models",
    "primed",
    "reachable",
]
