"""Sequential benchmark FSMs for the reachability harness.

Three families with known orbits, each a sequential
:class:`~repro.network.network.LogicNetwork` (latches + combinational
next-state core), smallest to hardest:

* :func:`counter` — a binary up-counter; with the enable input every
  state both advances and stutters, and all ``2^bits`` states are
  reachable on one cycle (the known-cyclic termination fixture);
* :func:`lfsr` — a Fibonacci linear-feedback shift register, the
  linear/XOR-heavy shape chain-reduced diagrams love;
* :func:`cellular_automaton` — an elementary rule-110 ring, the
  *nonlinear* stress model whose transition relation is the largest of
  the three (the benchmark gate's workload).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.network.network import LogicNetwork


def counter(bits: int, enable: bool = True) -> LogicNetwork:
    """A ``bits``-wide binary up-counter, reset to zero.

    ``s' = s + 1 (mod 2^bits)`` each cycle — gated by the primary input
    ``en`` when ``enable`` is set (the counter may also hold, so image
    steps include self-loops).  Every state is reachable from the reset
    state and the orbit is one full cycle.
    """
    net = LogicNetwork(f"counter{bits}" + ("e" if enable else ""))
    states = [f"s{i}" for i in range(bits)]
    if enable:
        net.add_input("en")
    for i, state in enumerate(states):
        net.add_latch(f"d{i}", state, 0)
    net.reserve_names([f"d{i}" for i in range(bits)])
    carry = "en" if enable else net.const(True)
    for i, state in enumerate(states):
        net.add_gate("XOR", [state, carry], name=f"d{i}")
        if i + 1 < bits:
            carry = net.and_(state, carry)
    net.set_output("q", states[-1])
    net.validate()
    return net


def lfsr(bits: int, taps: Optional[Sequence[int]] = None) -> LogicNetwork:
    """A Fibonacci LFSR shifting towards bit 0, seeded with ``...0001``.

    ``taps`` are the state bits XORed into the new top bit (default:
    bit 0 and the middle bit).  No primary inputs — the orbit is a pure
    function of the seed.
    """
    net = LogicNetwork(f"lfsr{bits}")
    states = [f"s{i}" for i in range(bits)]
    for i, state in enumerate(states):
        net.add_latch(f"d{i}", state, 1 if i == 0 else 0)
    net.reserve_names([f"d{i}" for i in range(bits)])
    if taps is None:
        taps = (0, bits // 2) if bits > 1 else (0,)
    feedback = [states[t] for t in sorted(set(taps))]
    for i in range(bits - 1):
        net.add_gate("BUF", [states[i + 1]], name=f"d{i}")
    if len(feedback) == 1:
        net.add_gate("BUF", feedback, name=f"d{bits - 1}")
    else:
        net.add_gate("XOR", feedback, name=f"d{bits - 1}")
    net.set_output("q", states[0])
    net.validate()
    return net


def cellular_automaton(cells: int, seed: int = 1) -> LogicNetwork:
    """An elementary rule-110 cellular automaton on a ring of ``cells``.

    Each cell updates from its neighborhood ``(p, q, r)`` as
    ``(q | r) & ~(p & q & r)`` — nonlinear, so the transition relation
    has none of the XOR structure the other models exploit.  ``seed``
    is the initial configuration (bit ``i`` = cell ``i``).
    """
    net = LogicNetwork(f"ca{cells}")
    states = [f"c{i}" for i in range(cells)]
    for i, state in enumerate(states):
        net.add_latch(f"d{i}", state, seed >> i & 1)
    net.reserve_names([f"d{i}" for i in range(cells)])
    for i in range(cells):
        left = states[(i - 1) % cells]
        mid = states[i]
        right = states[(i + 1) % cells]
        either = net.or_(mid, right)
        all_three = net.and_(left, mid, right)
        net.add_gate("AND", [either, net.inv(all_three)], name=f"d{i}")
    net.set_output("q", states[0])
    net.validate()
    return net
