"""The explicit-state BFS oracle for differential reachability testing.

Ground truth for :func:`repro.reach.reachable`: enumerate states one at
a time, but simulate *all* input combinations of a state at once with
the bit-parallel integer words of
:func:`repro.network.network.gate_eval` — one pass over the gates per
state yields every successor.  Exponential in both state bits and
inputs, so strictly a testing device for small systems.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.network.network import gate_eval
from repro.reach.transition import ReachError


def initial_codes(network) -> List[int]:
    """Explicit initial-state codes from the latch reset values.

    Bit ``i`` of a code is latch ``i``'s value; don't-care resets (2/3)
    expand into both values.
    """
    latches = list(network.latches)
    if not latches:
        raise ReachError(
            f"network {network.name!r} has no latches - nothing to reach over"
        )
    codes = [0]
    for bit, (_data, _state, init) in enumerate(latches):
        if init == 1:
            codes = [code | (1 << bit) for code in codes]
        elif init not in (0, 1):
            codes = codes + [code | (1 << bit) for code in codes]
    return codes


def explicit_reachable(network, init_states: Optional[Iterable[int]] = None) -> Set[int]:
    """All reachable state codes of a sequential network, by explicit BFS.

    ``init_states`` is an iterable of state codes (default: the latch
    reset values via :func:`initial_codes`).  Returns the set of
    reachable codes, initial states included.
    """
    latches = list(network.latches)
    if not latches:
        raise ReachError(
            f"network {network.name!r} has no latches - nothing to reach over"
        )
    state_names = [state for _data, state, _init in latches]
    data_names = [data for data, _state, _init in latches]
    state_set = set(state_names)
    inputs = [name for name in network.inputs if name not in state_set]
    lanes = 1 << len(inputs)
    mask = (1 << lanes) - 1
    # Lane ``i`` carries input combination ``i``: input ``j``'s word has
    # bit ``i`` set iff bit ``j`` of ``i`` is set.
    patterns = []
    for j in range(len(inputs)):
        word = 0
        for lane in range(lanes):
            if lane >> j & 1:
                word |= 1 << lane
        patterns.append(word)
    order = network.topological_order()
    gates = network.gates
    if init_states is None:
        init_states = initial_codes(network)
    seen: Set[int] = set(init_states)
    queue = list(seen)
    while queue:
        code = queue.pop()
        values = {}
        for bit, name in enumerate(state_names):
            values[name] = mask if code >> bit & 1 else 0
        for j, name in enumerate(inputs):
            values[name] = patterns[j]
        for signal in order:
            gate = gates[signal]
            values[signal] = gate_eval(
                gate.op, [values[fanin] for fanin in gate.fanins], mask
            )
        words = [values[data] for data in data_names]
        for lane in range(lanes):
            nxt = 0
            for bit, word in enumerate(words):
                if word >> lane & 1:
                    nxt |= 1 << bit
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return seen
