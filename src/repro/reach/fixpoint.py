"""The BFS least-fixpoint driver for symbolic reachability."""

from __future__ import annotations

from typing import Optional

from repro.reach.transition import ReachError, TransitionSystem


class ReachResult:
    """The outcome of one reachability run.

    ``states`` is the symbolic reachable set over the current-state
    variables; ``state_count`` its explicit size; ``iterations`` the
    number of image steps to the fixpoint; the two peaks are the
    largest frontier / visited diagrams seen along the way (node
    counts — the memory story of the run).
    """

    __slots__ = (
        "states",
        "iterations",
        "state_count",
        "frontier_peak",
        "visited_peak",
    )

    def __init__(self, states, iterations, state_count, frontier_peak, visited_peak):
        self.states = states
        self.iterations = iterations
        self.state_count = state_count
        self.frontier_peak = frontier_peak
        self.visited_peak = visited_peak

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReachResult states={self.state_count} "
            f"iterations={self.iterations}>"
        )


def reachable(
    system: TransitionSystem,
    init=None,
    max_iterations: Optional[int] = None,
) -> ReachResult:
    """All states reachable from ``init`` by breadth-first image steps.

    ``init`` defaults to the system's initial predicate.  Each round
    computes the image of the *frontier* only (the states discovered
    last round, ``image.and_not(visited)``) — re-imaging the whole
    visited set would redo every earlier round's work — and the loop
    terminates when a round discovers nothing new, which is guaranteed
    on a finite state space because the visited set grows
    monotonically.  ``max_iterations`` turns a runaway (or merely
    deeper than expected) run into a :class:`ReachError` instead of an
    open-ended loop.

    Observability: bumps ``repro_reach_iterations_total`` /
    ``repro_reach_images_total`` and records the frontier/visited
    diagram peaks in the matching gauges.
    """
    from repro import obs
    from repro.obs.catalog import family

    registry = obs.REGISTRY
    reached = system.init if init is None else init
    frontier = reached
    iterations = 0
    frontier_peak = frontier.node_count()
    visited_peak = reached.node_count()
    while not frontier.is_false:
        if max_iterations is not None and iterations >= max_iterations:
            raise ReachError(
                f"no reachability fixpoint within {max_iterations} iterations"
            )
        image = system.image(frontier)
        family(registry, "repro_reach_images_total").inc()
        iterations += 1
        frontier = image.and_not(reached)
        reached = reached | frontier
        frontier_nodes = frontier.node_count()
        visited_nodes = reached.node_count()
        if frontier_nodes > frontier_peak:
            frontier_peak = frontier_nodes
        if visited_nodes > visited_peak:
            visited_peak = visited_nodes
    family(registry, "repro_reach_iterations_total").inc(iterations)
    family(registry, "repro_reach_frontier_nodes_peak").set(frontier_peak)
    family(registry, "repro_reach_visited_nodes_peak").set(visited_peak)
    return ReachResult(
        reached,
        iterations,
        system.state_count(reached),
        frontier_peak,
        visited_peak,
    )
