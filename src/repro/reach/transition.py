"""Symbolic transition systems over the network frontends.

A sequential :class:`~repro.network.network.LogicNetwork` (latches plus
a combinational next-state core, e.g. parsed from BLIF ``.latch``
lines) becomes a :class:`TransitionSystem`: current/next-state variable
pairs interleaved in the manager order (the classic heuristic that
keeps the relation small), the monolithic transition relation
``T = prod_i (s_i' <-> delta_i)``, and the initial-state predicate from
the latch reset values.  Image computation is one fused relational
product — :meth:`~repro.api.base.FunctionBase.and_exists` quantifies
the current-state and input variables *while* conjoining ``T`` with the
state set, so the conjunction is never materialized — followed by a
``let``-based frame shift renaming every next-state variable back to
its current-state partner.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.exceptions import BBDDError


class ReachError(BBDDError):
    """Raised for malformed transition systems or reachability queries."""


def primed(name: str) -> str:
    """The next-state spelling of a current-state variable name."""
    return name + "'"


class TransitionSystem:
    """A symbolic FSM: variables, transition relation, initial states.

    Build one from a sequential network with :func:`from_network`; the
    constructor is for callers assembling the pieces directly (the
    relation over current + next + input variables, the initial
    predicate over current variables).
    """

    def __init__(self, manager, current, primed_names, inputs, relation, init):
        self.manager = manager
        #: Current-state variable names, latch order (bit ``i`` of a
        #: state code is ``current[i]``).
        self.current: List[str] = list(current)
        #: Matching next-state variable names.
        self.primed: List[str] = list(primed_names)
        #: Primary-input variable names (quantified out of every image).
        self.inputs: List[str] = list(inputs)
        #: The transition relation ``T(s, x, s')``.
        self.relation = relation
        #: The initial-state predicate ``I(s)``.
        self.init = init
        self._pre = self.current + self.inputs
        self._shift: Dict[str, str] = dict(zip(self.primed, self.current))

    @property
    def bits(self) -> int:
        """Number of state bits (latches)."""
        return len(self.current)

    def image(self, states):
        """Successor set of ``states`` in one fused relational product.

        ``E s, x . T(s, x, s') & S(s)`` via
        :meth:`~repro.api.base.FunctionBase.and_exists`, then the
        next-state variables are renamed back onto the current frame.
        """
        return self.relation.and_exists(states, self._pre).let(self._shift)

    def state_count(self, states) -> int:
        """Number of states in a set over the current-state variables."""
        free = self.manager.num_vars - len(self.current)
        return states.sat_count() >> free

    def state_codes(self, states) -> set:
        """Explicit codes of a symbolic state set (bit ``i`` = latch ``i``).

        Exponential in the state bits — the differential-oracle hook for
        small systems, not a production query.
        """
        manager = self.manager
        indices = [manager.var_index(c) for c in self.current]
        others = [
            v for v in range(manager.num_vars) if v not in set(indices)
        ]
        codes = set()
        edge = states.edge
        values: Dict[int, bool] = {v: False for v in others}
        for code in range(1 << len(indices)):
            for bit, index in enumerate(indices):
                values[index] = bool(code >> bit & 1)
            if manager.evaluate_edge(edge, values):
                codes.add(code)
        return codes


def from_network(network, backend: str = "bbdd", manager=None, **kwargs):
    """The :class:`TransitionSystem` of a sequential network.

    ``network`` must carry latches
    (:attr:`~repro.network.network.LogicNetwork.latches`).  Unless a
    ``manager`` is supplied, one is created on ``backend`` with the
    interleaved order ``[s0, s0', s1, s1', ...]`` followed by the
    primary inputs; extra keyword arguments reach the backend factory.
    Latch reset values 0/1 constrain the initial predicate; don't-care
    resets (2/3) leave their bit unconstrained.
    """
    latches = list(network.latches)
    if not latches:
        raise ReachError(
            f"network {network.name!r} has no latches - nothing to reach over"
        )
    current = [state for _data, state, _init in latches]
    primed_names = [primed(name) for name in current]
    state_set = set(current)
    inputs = [name for name in network.inputs if name not in state_set]
    if manager is None:
        from repro.api import open as _open

        order: List[str] = []
        for cur, nxt in zip(current, primed_names):
            order.append(cur)
            order.append(nxt)
        order.extend(inputs)
        manager = _open(backend, order, **kwargs)
    from repro.network.build import build

    cone = network.copy()
    cone.outputs = [(primed(state), data) for data, state, _init in latches]
    _manager, deltas = build(cone, manager=manager)
    relation = manager.true()
    for _data, state, _init in latches:
        name = primed(state)
        relation = relation & manager.var(name).xnor(deltas[name])
    init = manager.true()
    for _data, state, init_val in latches:
        if init_val == 1:
            init = init & manager.var(state)
        elif init_val == 0:
            init = init & ~manager.var(state)
    return TransitionSystem(manager, current, primed_names, inputs, relation, init)
